// A wait-free shared queue from the oblivious Group-Update universal
// construction, exercised by concurrent producers and consumers, with the
// resulting history checked for linearizability.
//
// This is the "tightness" side of the paper: with unbounded registers the
// construction completes any queue operation in O(log n) shared-memory
// operations — and, being oblivious, the very same code implements every
// other type in src/objects.
//
// Run: ./build/examples/universal_queue
#include <cstdio>

#include "lin/checker.h"
#include "lin/history.h"
#include "objects/containers.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"

using namespace llsc;

namespace {

// Producers (even ids) enqueue two items; consumers (odd ids) dequeue two.
SimTask worker(ProcCtx ctx, ProcId me, HistoryRecorder* q) {
  if (me % 2 == 0) {
    for (int k = 0; k < 2; ++k) {
      ObjOp enq{"enqueue", Value::of_u64(
                               static_cast<std::uint64_t>(me * 10 + k))};
      (void)co_await q->execute(ctx, std::move(enq));
    }
    co_return Value::of_u64(0);
  }
  std::uint64_t got = 0;
  for (int k = 0; k < 2; ++k) {
    ObjOp deq{"dequeue", {}};
    const Value r = co_await q->execute(ctx, std::move(deq));
    if (!r.is_nil()) ++got;
  }
  co_return Value::of_u64(got);
}

}  // namespace

int main() {
  const int n = 6;
  GroupUpdateUC uc(n, [] { return std::make_unique<QueueObject>(); });
  HistoryRecorder recorder(uc);

  System sys(n, [&recorder](ProcCtx ctx, ProcId i, int) {
    return worker(ctx, i, &recorder);
  });
  RandomScheduler sched(/*seed=*/2024);
  const RunOutcome out = sched.run(sys, 1 << 22);
  std::printf("run terminated: %s, %d processes, %zu operations recorded\n",
              out.all_terminated ? "yes" : "no", n,
              recorder.history().ops.size());

  std::printf("\nconcurrent history (inv/resp timestamps):\n%s\n",
              recorder.history().to_string().c_str());

  const LinResult lin = check_linearizability(
      recorder.history(), [] { return std::make_unique<QueueObject>(); });
  std::printf("linearizability: %s\n", lin.summary().c_str());
  if (lin.linearizable) {
    std::printf("witness order:");
    for (const std::size_t idx : lin.witness) {
      std::printf(" %s",
                  recorder.history().ops[idx].op.to_string().c_str());
    }
    std::printf("\n");
  }

  std::printf("\nper-process shared-memory cost (worst case bound: %llu):\n",
              static_cast<unsigned long long>(uc.worst_case_shared_ops()));
  for (ProcId p = 0; p < n; ++p) {
    std::printf("  p%d: %llu ops for 2 queue operations\n", p,
                static_cast<unsigned long long>(sys.process(p).shared_ops()));
  }
  return 0;
}
