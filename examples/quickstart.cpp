// Quickstart: the simulated shared memory, coroutine processes, and a
// first wait-free algorithm.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
// This example walks the three layers a user of the library touches:
//   1. SharedMemory — the paper's LL/SC/validate/swap/move register array;
//   2. System + coroutine processes — algorithms written as straight-line
//      co_await code, driven by a scheduler;
//   3. complexity accounting — per-process shared-memory operation counts,
//      the quantity the paper's lower bound is about.
#include <cstdio>

#include "memory/shared_memory.h"
#include "runtime/system.h"
#include "sched/scheduler.h"

using namespace llsc;

namespace {

// A tiny wait-free algorithm: every process announces itself in its own
// register, then scans all announcements and returns how many processes it
// saw. (One swap + n validates per process.)
SimTask scanner(ProcCtx ctx, ProcId me, int n) {
  co_await ctx.swap(static_cast<RegId>(me), Value::of_u64(1));
  std::uint64_t seen = 0;
  for (ProcId q = 0; q < n; ++q) {
    const Value v = co_await ctx.read(static_cast<RegId>(q));
    if (!v.is_nil()) ++seen;
  }
  co_return Value::of_u64(seen);
}

}  // namespace

int main() {
  std::printf("== 1. raw shared memory ==\n");
  SharedMemory mem;
  mem.ll(/*p=*/0, /*r=*/5);  // p0 links register 5
  const OpResult sc = mem.sc(0, 5, Value::of_u64(42));
  std::printf("p0: LL(R5); SC(R5, 42) -> %s, value now %s\n",
              sc.flag ? "success" : "failure",
              mem.peek_value(5).to_string().c_str());
  mem.ll(1, 5);
  mem.swap(2, 5, Value::of_u64(7));  // p2's swap invalidates p1's link
  const OpResult fail = mem.sc(1, 5, Value::of_u64(99));
  std::printf("p1: SC after p2's swap -> %s (current value %s)\n",
              fail.flag ? "success" : "failure",
              fail.value.to_string().c_str());

  std::printf("\n== 2. processes + scheduler ==\n");
  const int n = 4;
  System sys(n, [](ProcCtx ctx, ProcId i, int procs) {
    return scanner(ctx, i, procs);
  });
  RoundRobinScheduler sched;
  const RunOutcome out = sched.run(sys, /*max_steps=*/1 << 20);
  std::printf("run terminated: %s after %llu steps\n",
              out.all_terminated ? "yes" : "no",
              static_cast<unsigned long long>(out.steps_executed));
  for (ProcId p = 0; p < n; ++p) {
    std::printf("p%d saw %llu announcements, used %llu shared ops\n", p,
                static_cast<unsigned long long>(
                    sys.process(p).result().as_u64()),
                static_cast<unsigned long long>(sys.process(p).shared_ops()));
  }

  std::printf("\n== 3. complexity accounting ==\n");
  std::printf("t(R) = max over processes = %llu shared ops\n",
              static_cast<unsigned long long>(out.max_shared_ops));
  std::printf("memory op mix: LL=%llu SC=%llu VL=%llu SWAP=%llu MOVE=%llu\n",
              static_cast<unsigned long long>(
                  sys.memory().counts()[OpKind::kLL]),
              static_cast<unsigned long long>(
                  sys.memory().counts()[OpKind::kSC]),
              static_cast<unsigned long long>(
                  sys.memory().counts()[OpKind::kValidate]),
              static_cast<unsigned long long>(
                  sys.memory().counts()[OpKind::kSwap]),
              static_cast<unsigned long long>(
                  sys.memory().counts()[OpKind::kMove]));
  return 0;
}
