// A guided tour of the lower-bound machinery: secretive schedules
// (Section 4), UP sets and Lemma 5.1 (Section 5.3), and the
// (All,A)-run / (S,A)-run indistinguishability of Lemma 5.2.
//
// Run: ./build/examples/lowerbound_tour
#include <cstdio>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "sched/secretive_schedule.h"
#include "wakeup/algorithms.h"

using namespace llsc;

int main() {
  std::printf("== Section 4: secretive complete schedules ==\n");
  // The paper's motivating example: a chain of moves R_i -> R_{i+1}.
  const int chain = 8;
  MoveSet moves;
  for (ProcId p = 0; p < chain; ++p) {
    moves.push_back({p, static_cast<RegId>(p), static_cast<RegId>(p) + 1});
  }
  std::vector<ProcId> naive;
  for (ProcId p = 0; p < chain; ++p) naive.push_back(p);
  const MoveAnalysis bad(moves, naive);
  std::printf("naive id order: R%d ends with %zu movers "
              "(reading it reveals ALL %d processes)\n",
              chain, bad.movers(chain).size(), chain);
  const auto sigma = secretive_complete_schedule(moves);
  const MoveAnalysis good(moves, sigma);
  std::printf("secretive schedule: ");
  for (const ProcId p : sigma) std::printf("p%d ", p);
  std::printf("\nper-register movers now: ");
  for (const RegId r : good.touched()) {
    std::printf("R%llu:%zu ", static_cast<unsigned long long>(r),
                good.movers(r).size());
  }
  std::printf(" (all <= 2 — Lemma 4.1)\n");

  std::printf("\n== Section 5.3: UP sets under the adversary ==\n");
  const int n = 16;
  System sys(n, swap_mix_wakeup());
  const RunLog log = run_adversary(sys);
  const UpTracker up = UpTracker::over(log);
  std::printf("round |  max |UP(X,r)|  | bound 4^r\n");
  for (int r = 0; r <= up.num_rounds(); ++r) {
    const std::size_t bound = UpTracker::lemma51_bound(r);
    if (bound > (1u << 20)) {
      std::printf("%5d | %15zu | >2^20\n", r, up.max_up_size(r));
    } else {
      std::printf("%5d | %15zu | %zu\n", r, up.max_up_size(r), bound);
    }
    if (up.max_up_size(r) >= static_cast<std::size_t>(n)) break;
  }
  std::printf("Lemma 5.1 holds over the whole run: %s\n",
              up.lemma51_holds() ? "yes" : "NO");

  std::printf("\n== Lemma 5.2: (S,A)-run indistinguishability ==\n");
  const ProcSet s = ProcSet::of(n, {0, 3, 5, 8, 11});
  System s_sys(n, swap_mix_wakeup());
  const RunLog s_log = run_s_run(s_sys, log, up, s);
  std::printf("S = %s\n", s.to_string().c_str());
  std::printf("in the (S,A)-run, processes outside S took 0 steps:\n");
  for (ProcId p = 0; p < n; ++p) {
    if (!s.contains(p) && s_sys.process(p).shared_ops() > 0) {
      std::printf("  VIOLATION at p%d\n", p);
    }
  }
  const IndistReport report = check_indistinguishability(log, s_log, up, s);
  std::printf("indistinguishability check: %s\n", report.summary().c_str());
  std::printf(
      "every X with UP(X,r) contained in S saw byte-identical executions\n"
      "through round r — the engine of the Omega(log n) lower bound.\n");
  return 0;
}
