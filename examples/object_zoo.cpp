// The Theorem 6.2 object zoo: every listed type solves n-process wakeup
// with at most two operations per process on one shared object — so every
// implementation of these types inherits the Omega(log n) lower bound.
// Here each reduction runs end-to-end through the oblivious Group-Update
// construction, and we report the shared-memory cost the winner paid.
//
// Run: ./build/examples/object_zoo
#include <cstdio>

#include "core/adversary.h"
#include "universal/group_update.h"
#include "util/str.h"
#include "wakeup/reductions.h"
#include "wakeup/spec.h"

using namespace llsc;

int main() {
  const int n = 32;
  std::printf("Theorem 6.2 reductions, n = %d processes\n", n);
  std::printf("(each process performs at most k ops on the implemented "
              "object;\n winner must pay >= (1/k) log_4 n = %.2f/k shared "
              "ops)\n\n",
              log4(n));
  std::printf("%-18s | k | wakeup | winner ops | (1/k)log4(n)\n",
              "object type");
  std::printf("-------------------+---+--------+------------+-------------\n");

  for (const ObjectReduction& red : all_reductions()) {
    GroupUpdateUC uc(n, reduction_object_factory(red.name, n));
    System sys(n, reduction_wakeup_body(red.name, uc));
    const RunLog log = run_adversary(sys);
    const WakeupCheckResult check = check_wakeup_run(sys);

    std::uint64_t winner_ops = 0;
    for (ProcId p = 0; p < n; ++p) {
      const Process& proc = sys.process(p);
      if (proc.done() && proc.result().holds_u64() &&
          proc.result().as_u64() == 1) {
        winner_ops = winner_ops == 0
                         ? proc.shared_ops()
                         : std::min(winner_ops, proc.shared_ops());
      }
    }
    std::printf("%-18s | %d | %-6s | %10llu | %.2f\n", red.name.c_str(),
                red.ops_per_process, check.ok ? "OK" : "BROKEN",
                static_cast<unsigned long long>(winner_ops),
                log4(n) / red.ops_per_process);
  }

  std::printf(
      "\nEvery reduction solved wakeup through the SAME oblivious\n"
      "construction — no queue-, counter- or bitwise-specific code ran.\n"
      "That is the paper's punchline: an oblivious universal construction\n"
      "cannot beat Omega(log n), so sublogarithmic implementations must\n"
      "exploit the semantics of the type they implement.\n");
  return 0;
}
