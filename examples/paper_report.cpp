// Regenerates the headline numbers of EXPERIMENTS.md in one run — the
// compact, benchmark-framework-free view of the reproduction. Slower
// sweeps live in bench/ (google-benchmark binaries with timing).
//
// Run: ./build/examples/paper_report
#include <cstdio>
#include <memory>

#include "core/adversary.h"
#include "core/audit.h"
#include "core/lower_bound.h"
#include "direct/direct.h"
#include "direct/rmw_universal.h"
#include "objects/arith.h"
#include "objects/basic.h"
#include "sched/scheduler.h"
#include "universal/consensus_based.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/str.h"
#include "wakeup/algorithms.h"
#include "wakeup/reductions.h"
#include "wakeup/spec.h"

using namespace llsc;

namespace {

SimTask one_op(ProcCtx ctx, UniversalConstruction* impl, ObjOp op) {
  const Value r = co_await impl->execute(ctx, std::move(op));
  co_return r;
}

std::uint64_t winner_ops_under_adversary(const ProcBody& body, int n) {
  const WakeupLowerBoundReport report = analyze_wakeup_run(body, n);
  return report.terminated ? report.winner_ops : 0;
}

std::uint64_t uc_max_ops(UniversalConstruction& uc, int n) {
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    ObjOp op{"fetch&increment", {}};
    return one_op(ctx, &uc, std::move(op));
  });
  sys.set_recording(false);
  AdversaryOptions opts;
  opts.record_snapshots = false;
  run_adversary(sys, opts);
  return sys.max_shared_ops();
}

ObjectFactory counter_factory() {
  return [] { return std::make_unique<FetchAddObject>(64, 0); };
}

}  // namespace

int main() {
  std::printf("llsc-lab paper report (Jayanti, PODC 1998)\n");
  std::printf("===========================================\n\n");

  // --- E1: Theorem 6.1 ---
  std::printf("E1  Theorem 6.1 — wakeup winner ops under the adversary\n");
  std::printf("    n      log4(n)  tournament  naive-counter\n");
  for (const int n : {4, 16, 64, 256, 1024}) {
    std::printf("    %-6d %-8.2f %-11llu %llu\n", n, log4(n),
                static_cast<unsigned long long>(
                    winner_ops_under_adversary(tournament_wakeup(), n)),
                static_cast<unsigned long long>(
                    winner_ops_under_adversary(counter_wakeup(), n)));
  }

  // --- E2: the construction spectrum ---
  std::printf("\nE2  construction spectrum — max shared ops per implemented "
              "op (fetch&increment)\n");
  std::printf("    n      log4(n)  group-update  single-register  "
              "consensus-based\n");
  for (const int n : {4, 16, 64, 256}) {
    GroupUpdateUC gu(n, counter_factory());
    SingleRegisterUC sr(n, counter_factory());
    ConsensusBasedUC cb(n, counter_factory());
    std::printf("    %-6d %-8.2f %-13llu %-16llu %llu\n", n, log4(n),
                static_cast<unsigned long long>(uc_max_ops(gu, n)),
                static_cast<unsigned long long>(uc_max_ops(sr, n)),
                static_cast<unsigned long long>(uc_max_ops(cb, n)));
  }

  // --- E3: Theorem 6.2 reductions ---
  std::printf("\nE3  Theorem 6.2 — wakeup via implemented objects "
              "(n = 64, oblivious group-update)\n");
  std::printf("    %-18s k  wakeup  winner-ops  bound (1/k)log4(n)\n",
              "object");
  const int n3 = 64;
  for (const ObjectReduction& red : all_reductions()) {
    GroupUpdateUC uc(n3, reduction_object_factory(red.name, n3));
    System sys(n3, reduction_wakeup_body(red.name, uc));
    sys.set_recording(false);
    AdversaryOptions opts;
    opts.record_snapshots = false;
    run_adversary(sys, opts);
    const WakeupCheckResult check = check_wakeup_run(sys);
    std::uint64_t winner = ~std::uint64_t{0};
    for (ProcId p = 0; p < n3; ++p) {
      const Process& proc = sys.process(p);
      if (proc.done() && proc.result().as_u64() == 1) {
        winner = std::min(winner, proc.shared_ops());
      }
    }
    std::printf("    %-18s %d  %-7s %-11llu %.2f\n", red.name.c_str(),
                red.ops_per_process, check.ok ? "OK" : "BROKEN",
                static_cast<unsigned long long>(winner),
                log4(n3) / red.ops_per_process);
  }

  // --- E9: oblivious vs exploiting vs RMW ---
  std::printf("\nE9  the punchline (n = 64) — max shared ops per op\n");
  {
    const int n = 64;
    GroupUpdateUC oblivious(n, [] {
      return std::make_unique<RegisterObject>();
    });
    DirectRegister direct(0);
    RmwUniversalUC rmw(n, [] { return std::make_unique<RegisterObject>(); });
    const auto run_writes = [n](UniversalConstruction& impl,
                                bool adversarial) {
      System sys(n, [&impl](ProcCtx ctx, ProcId i, int) {
        ObjOp op{"write", Value::of_u64(static_cast<std::uint64_t>(i))};
        return one_op(ctx, &impl, std::move(op));
      });
      sys.set_recording(false);
      if (adversarial) {
        AdversaryOptions opts;
        opts.record_snapshots = false;
        run_adversary(sys, opts);
      } else {
        RoundRobinScheduler sched;
        sched.run(sys, 1 << 24);
      }
      return sys.max_shared_ops();
    };
    std::printf("    register via oblivious group-update : %llu\n",
                static_cast<unsigned long long>(run_writes(oblivious, true)));
    std::printf("    register via direct swap/validate   : %llu\n",
                static_cast<unsigned long long>(run_writes(direct, true)));
    std::printf("    register via RMW universal          : %llu "
                "(adversary refuses RMW; round-robin)\n",
                static_cast<unsigned long long>(run_writes(rmw, false)));
    std::printf("    lower bound log4(n) for LL/SC rows  : %.2f\n", log4(n));
  }

  // --- Section 7: register widths ---
  std::printf("\nS7  register-width audit (n = 64)\n");
  {
    const int n = 64;
    System tour(n, tournament_wakeup());
    run_adversary(tour);
    std::printf("    tournament wakeup     : %s\n",
                audit_register_widths(tour.trace()).summary().c_str());
    GroupUpdateUC uc(n, counter_factory());
    System gu(n, [&uc](ProcCtx ctx, ProcId, int) {
      ObjOp op{"fetch&increment", {}};
      return one_op(ctx, &uc, std::move(op));
    });
    RoundRobinScheduler sched;
    sched.run(gu, 1 << 24);
    std::printf("    group-update registers: %s\n",
                audit_register_widths(gu.trace()).summary().c_str());
    std::printf(
        "    (the log-time WAKEUP fits O(log n)-bit registers; the\n"
        "     log-time CONSTRUCTION does not — Section 7's open gap)\n");
  }
  return 0;
}
