// Watch Theorem 6.1 happen: the Fig. 2 adversary forces every wakeup
// algorithm's "winner" (the process that detects everyone is up) to spend
// at least log_4 n shared-memory operations — and catches a cheating
// algorithm with an (S,A)-run witness.
//
// Run: ./build/examples/wakeup_adversary
#include <cstdio>

#include "core/lower_bound.h"
#include "util/str.h"
#include "wakeup/algorithms.h"

using namespace llsc;

namespace {

void show(const char* name, const ProcBody& body, int n) {
  const WakeupLowerBoundReport report = analyze_wakeup_run(body, n);
  std::printf("%-22s n=%5d  winner=p%-4d ops=%5llu  log4(n)=%5.2f  %s\n",
              name, n, report.winner,
              static_cast<unsigned long long>(report.winner_ops),
              report.log4_n, report.bound_met ? "bound met" : "BOUND BROKEN");
}

}  // namespace

int main() {
  std::printf("Theorem 6.1 under the Fig. 2 adversary\n");
  std::printf("(winner ops must be >= log_4 n in every terminating run)\n\n");

  for (const int n : {4, 16, 64, 256, 1024}) {
    show("tournament (log n)", tournament_wakeup(), n);
  }
  std::printf("\n");
  for (const int n : {4, 16, 64}) {
    show("naive counter (n)", counter_wakeup(), n);
  }
  std::printf("\n");
  for (const int n : {4, 16, 64}) {
    show("swap+move mix", swap_mix_wakeup(), n);
  }

  std::printf("\nA cheating 'wakeup' that answers after only 2 operations:\n");
  const int n = 256;  // log_4 256 = 4 > 2
  const WakeupLowerBoundReport cheat =
      analyze_wakeup_run(cheating_wakeup(2), n);
  std::printf("  %s\n", cheat.summary().c_str());
  std::printf(
      "  The driver replayed the proof: S = UP(winner, 2) has |S| = %llu "
      "<= 4^2,\n"
      "  and in the (S,A)-run — where the other %llu processes never take\n"
      "  a step — the winner still returned 1: the wakeup specification is\n"
      "  violated, so no correct algorithm can be this fast.\n",
      static_cast<unsigned long long>(cheat.s_size),
      static_cast<unsigned long long>(n - cheat.s_size));
  std::printf("  Indistinguishability check (Lemma 5.2): %s\n",
              cheat.indist.summary().c_str());
  return 0;
}
