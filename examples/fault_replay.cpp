// fault_replay — run a fault plan against a scenario, or replay a JSON
// artifact bit-for-bit, on the simulator and/or the hw backend.
//
//   # Run a scenario under injected faults and (optionally) freeze it:
//   fault_replay --scenario fixed_ll_sc --n 4 --sc-fail-rate 0.25 \
//                --fault-seed 7 --seed 1 --out artifact.json
//
//   # Replay an artifact (e.g. one dumped by the Monte-Carlo driver) and
//   # verify the taxonomy + per-process op counts match the recording:
//   fault_replay --replay artifact.json --platform both
//
//   # Self-check used by CI: run, dump, reload, replay on both
//   # substrates, verify bit-for-bit:
//   fault_replay --selftest
//
// Exit status 0 iff every requested run/replay matched expectations.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "hw/fault.h"
#include "hw/fault_scenarios.h"
#include "hw/hw_executor.h"

namespace {

using namespace llsc;

struct Args {
  std::string scenario = "fixed_ll_sc";
  std::string replay_path;
  std::string out_path;
  std::string platform = "sim";  // sim | hw | both
  int n = 4;
  int max_rounds = 1 << 12;
  std::uint64_t seed = 1;  // toss seed
  FaultPlan plan;
  bool selftest = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: fault_replay [--selftest]\n"
               "       fault_replay --replay FILE [--platform sim|hw|both]\n"
               "       fault_replay --scenario NAME --n N [--seed S]\n"
               "         [--platform sim|hw|both] [--out FILE]\n"
               "         [--fault-seed S] [--sc-fail-rate R]"
               " [--vl-fail-rate R]\n"
               "         [--stall-rate R --max-stall-units U]"
               " [--crash P@OPS ...]\n"
               "         [--strategy oblivious|adaptive|burst]"
               " [--fault-budget B]\n"
               "         [--burst-len L --burst-period P]\n"
               "         [--max-rounds R] [--timeout_ms MS]\n"
               "scenarios:");
  for (const std::string& s : fault_scenario_names()) {
    std::fprintf(stderr, " %s", s.c_str());
  }
  std::fprintf(stderr, "\n");
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--selftest") {
      args->selftest = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replay_path = v;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scenario = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (arg == "--platform") {
      const char* v = next();
      if (v == nullptr) return false;
      args->platform = v;
    } else if (arg == "--n") {
      const char* v = next();
      if (v == nullptr) return false;
      args->n = std::atoi(v);
    } else if (arg == "--max-rounds") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_rounds = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sc-fail-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.sc_fail_rate = std::atof(v);
    } else if (arg == "--vl-fail-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.vl_fail_rate = std::atof(v);
    } else if (arg == "--stall-rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.stall_rate = std::atof(v);
    } else if (arg == "--max-stall-units") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.max_stall_units =
          static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--strategy") {
      const char* v = next();
      if (v == nullptr || !fault_strategy_from_string(v, &args->plan.strategy)) {
        return false;
      }
    } else if (arg == "--fault-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.fault_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--burst-len") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.burst_len = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--burst-period") {
      const char* v = next();
      if (v == nullptr) return false;
      args->plan.burst_period = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--crash") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* at = std::strchr(v, '@');
      if (at == nullptr) return false;
      CrashSpec spec;
      spec.proc = std::atoi(v);
      spec.after_ops = std::strtoull(at + 1, nullptr, 10);
      args->plan.crashes.push_back(spec);
    } else if (arg.rfind("--timeout_ms=", 0) == 0) {
      set_default_hw_timeout_ms(
          std::strtoull(arg.c_str() + std::strlen("--timeout_ms="), nullptr,
                        10));
    } else if (arg == "--timeout_ms") {
      const char* v = next();
      if (v == nullptr) return false;
      set_default_hw_timeout_ms(std::strtoull(v, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Outcome of one run, reduced to the replay contract: taxonomy +
// per-process executed-op counts.
struct Observed {
  RunStatus status = RunStatus::kClean;
  std::vector<std::uint64_t> proc_ops;
  DecisionTrace trace;  // decisions an adversarial strategy recorded
};

Observed run_on_simulator(const ProcBody& body, int n, std::uint64_t seed,
                          int max_rounds, const FaultPlan& plan) {
  AdversaryOptions adversary;
  adversary.max_rounds = max_rounds;
  const McSampleOutcome sample =
      run_mc_sample(body, n, seed, adversary, plan.enabled() ? &plan : nullptr);
  return Observed{sample.status, sample.proc_ops, sample.decision_trace};
}

Observed run_on_hw(const ProcBody& body, int n, std::uint64_t seed,
                   const FaultPlan& plan) {
  HwRunOptions options;
  options.seed = seed;
  options.fault = plan.enabled() ? &plan : nullptr;
  HwExecutor exec(options);
  const HwRunResult run = exec.run(n, body);
  Observed obs;
  obs.proc_ops = run.shared_ops;
  obs.status = run.status;
  obs.trace = run.decision_trace;
  // The executor has no wakeup spec; apply the same winner check the
  // Monte-Carlo classification uses so taxonomies line up.
  if (run.status == RunStatus::kClean) {
    bool has_winner = false;
    for (const Value& v : run.results) {
      if (v.holds_u64() && v.as_u64() == 1) has_winner = true;
    }
    if (!has_winner) obs.status = RunStatus::kSpecViolation;
  }
  return obs;
}

void print_observed(const char* platform, const Observed& obs) {
  std::printf("%s: status=%s proc_ops=[", platform, to_string(obs.status));
  for (std::size_t i = 0; i < obs.proc_ops.size(); ++i) {
    std::printf("%s%llu", i ? ", " : "",
                static_cast<unsigned long long>(obs.proc_ops[i]));
  }
  std::printf("]\n");
}

bool check_match(const char* platform, const Observed& obs,
                 const FaultArtifact& artifact) {
  if (obs.status != artifact.status) {
    std::printf("%s: MISMATCH status %s != recorded %s\n", platform,
                to_string(obs.status), to_string(artifact.status));
    return false;
  }
  if (obs.proc_ops != artifact.proc_ops) {
    std::printf("%s: MISMATCH per-process op counts\n", platform);
    return false;
  }
  std::printf("%s: replay matches (status=%s, %zu op counts)\n", platform,
              to_string(obs.status), obs.proc_ops.size());
  return true;
}

int replay(const Args& args) {
  std::ifstream file(args.replay_path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", args.replay_path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  FaultArtifact artifact;
  std::string error;
  if (!FaultArtifact::from_json(buffer.str(), &artifact, &error)) {
    std::fprintf(stderr, "bad artifact %s: %s\n", args.replay_path.c_str(),
                 error.c_str());
    return 1;
  }
  const ProcBody body = fault_scenario(artifact.scenario);
  if (!body) {
    std::fprintf(stderr, "artifact scenario '%s' is not registered\n",
                 artifact.scenario.c_str());
    return 1;
  }
  bool ok = true;
  if (args.platform == "sim" || args.platform == "both") {
    const Observed obs =
        run_on_simulator(body, artifact.n, artifact.toss_seed,
                         artifact.max_rounds, artifact.plan);
    ok = check_match("sim", obs, artifact) && ok;
  }
  if (args.platform == "hw" || args.platform == "both") {
    const Observed obs =
        run_on_hw(body, artifact.n, artifact.toss_seed, artifact.plan);
    ok = check_match("hw", obs, artifact) && ok;
  }
  return ok ? 0 : 1;
}

int run_once(const Args& args) {
  const ProcBody body = fault_scenario(args.scenario);
  if (!body) {
    std::fprintf(stderr, "unknown scenario '%s'\n", args.scenario.c_str());
    usage();
    return 1;
  }
  std::optional<Observed> sim;
  std::optional<Observed> hw;
  if (args.platform == "sim" || args.platform == "both") {
    sim = run_on_simulator(body, args.n, args.seed, args.max_rounds,
                           args.plan);
    print_observed("sim", *sim);
  }
  if (args.platform == "hw" || args.platform == "both") {
    hw = run_on_hw(body, args.n, args.seed, args.plan);
    print_observed("hw", *hw);
  }
  if (!args.out_path.empty()) {
    FaultArtifact artifact;
    artifact.scenario = args.scenario;
    artifact.n = args.n;
    artifact.toss_seed = args.seed;
    artifact.max_rounds = args.max_rounds;
    const Observed& ref = sim ? *sim : *hw;
    artifact.status = ref.status;
    artifact.proc_ops = ref.proc_ops;
    artifact.plan = args.plan;
    // Freeze the adversary's recorded decisions into the plan: the
    // artifact then replays the adaptive/burst schedule through the pure
    // trace-lookup path on either substrate.
    if (artifact.plan.trace.empty()) artifact.plan.trace = ref.trace;
    std::ofstream out(args.out_path);
    out << artifact.to_json();
    if (!out.good()) {
      std::fprintf(stderr, "failed writing %s\n", args.out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", args.out_path.c_str());
  }
  if (sim && hw &&
      (sim->status != hw->status || sim->proc_ops != hw->proc_ops)) {
    std::printf("NOTE: sim and hw disagree (scenario not "
                "schedule-independent, or a stall/timing effect)\n");
    return 1;
  }
  return 0;
}

// One record-on-sim / replay-on-both leg of the self-check.
int selftest_leg(const char* label, const Args& record_args) {
  Args args = record_args;
  if (run_once(args) != 0) {
    std::fprintf(stderr, "selftest (%s): recording run failed\n", label);
    return 1;
  }
  Args replay_args;
  replay_args.replay_path = args.out_path;
  replay_args.platform = "both";
  const int rc = replay(replay_args);
  std::remove(args.out_path.c_str());
  if (rc != 0) {
    std::fprintf(stderr, "selftest (%s): replay mismatched\n", label);
  }
  return rc;
}

// CI self-check: record on the simulator, then verify the artifact
// replays bit-for-bit on BOTH substrates via the normal replay path —
// once for the oblivious crash + SC-failure storm (PR 3's contract) and
// once per adversarial strategy (the record/replay contract for traces).
int selftest() {
  Args oblivious;
  oblivious.scenario = "fixed_ll_sc";
  oblivious.n = 4;
  oblivious.seed = 42;
  oblivious.plan.seed = 7;
  oblivious.plan.sc_fail_rate = 0.5;
  oblivious.plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 3});
  oblivious.platform = "sim";
  oblivious.out_path = "fault_replay_selftest.json";
  if (selftest_leg("oblivious", oblivious) != 0) return 1;

  Args adaptive;
  adaptive.scenario = "fixed_ll_sc";
  adaptive.n = 4;
  adaptive.seed = 42;
  adaptive.plan.seed = 7;
  adaptive.plan.strategy = FaultStrategyKind::kAdaptive;
  adaptive.plan.fault_budget = 6;
  adaptive.platform = "sim";
  adaptive.out_path = "fault_replay_selftest_adaptive.json";
  if (selftest_leg("adaptive", adaptive) != 0) return 1;

  Args burst;
  burst.scenario = "fixed_ll_sc";
  burst.n = 4;
  burst.seed = 42;
  burst.plan.seed = 7;
  burst.plan.strategy = FaultStrategyKind::kBurst;
  burst.plan.burst_len = 2;
  burst.plan.burst_period = 4;
  burst.platform = "sim";
  burst.out_path = "fault_replay_selftest_burst.json";
  if (selftest_leg("burst", burst) != 0) return 1;

  std::printf("selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    usage();
    return 2;
  }
  if (args.selftest) return selftest();
  if (!args.replay_path.empty()) return replay(args);
  return run_once(args);
}
