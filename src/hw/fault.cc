// JSON round-trip for FaultPlan / FaultArtifact (schema in
// docs/fault_injection.md). The container images carry no JSON library,
// so this is a small hand-rolled reader scoped to exactly the values the
// schema uses: objects, arrays, strings, numbers, booleans. Unknown keys
// are skipped so artifacts stay forward-compatible.
#include "hw/fault.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace llsc {
namespace {

// --- writer --------------------------------------------------------------

void append_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

std::string double_repr(double v) {
  // Round-trippable without dragging in <charconv> float support quirks:
  // %.17g re-parses to the same double.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- reader --------------------------------------------------------------
//
// Minimal recursive-descent JSON value. Numbers are kept both as double
// and (when the text is a plain non-negative integer) as uint64, because
// seeds do not survive a double round-trip.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::uint64_t uint_value = 0;
  bool has_uint = false;
  std::string string_value;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string_value);
    }
    if (c == 't' || c == 'f') return parse_bool(out);
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") == 0) {
        pos_ += 4;
        out->kind = JsonValue::Kind::kNull;
        return true;
      }
      return fail("bad literal");
    }
    return parse_number(out);
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          default:
            return fail("unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parse_bool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->bool_value = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->bool_value = false;
      return true;
    }
    return fail("bad literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    out->kind = JsonValue::Kind::kNumber;
    try {
      out->number = std::stod(token);
    } catch (...) {
      return fail("bad number");
    }
    if (integral && token[0] != '-') {
      try {
        out->uint_value = std::stoull(token);
        out->has_uint = true;
      } catch (...) {
        // Out-of-range integers fall back to the double value.
      }
    }
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return "a boolean";
    case JsonValue::Kind::kNumber:
      return "a number";
    case JsonValue::Kind::kString:
      return "a string";
    case JsonValue::Kind::kArray:
      return "an array";
    case JsonValue::Kind::kObject:
      return "an object";
  }
  return "an unknown value";
}

// Field-level diagnostics: every failure names the offending key and the
// expected type/range, so a malformed artifact fails with something a
// human can act on instead of a generic "missing field".
bool field_error(std::string* error, const std::string& key,
                 const std::string& what) {
  if (error != nullptr && error->empty()) {
    *error = "field '" + key + "': " + what;
  }
  return false;
}

bool get_u64(const JsonValue& obj, const std::string& key, std::uint64_t* out,
             std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return field_error(error, key, "missing (expected an unsigned integer)");
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    return field_error(error, key, std::string("expected an unsigned "
                                               "integer, got ") +
                                       kind_name(v->kind));
  }
  if (!v->has_uint) {
    return field_error(error, key,
                       "expected an unsigned 64-bit integer, got " +
                           double_repr(v->number));
  }
  *out = v->uint_value;
  return true;
}

bool get_u32(const JsonValue& obj, const std::string& key, std::uint32_t* out,
             std::string* error) {
  std::uint64_t u = 0;
  if (!get_u64(obj, key, &u, error)) return false;
  if (u > 0xFFFFFFFFull) {
    return field_error(error, key,
                       "expected an integer in [0, 4294967295], got " +
                           std::to_string(u));
  }
  *out = static_cast<std::uint32_t>(u);
  return true;
}

bool get_double(const JsonValue& obj, const std::string& key, double* out,
                std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return field_error(error, key, "missing (expected a number)");
  }
  if (v->kind != JsonValue::Kind::kNumber) {
    return field_error(error, key, std::string("expected a number, got ") +
                                       kind_name(v->kind));
  }
  *out = v->number;
  return true;
}

// Probability fields must land in [0, 1] — a rate of 7 is a corrupt
// artifact, not a very unlucky run.
bool get_rate(const JsonValue& obj, const std::string& key, double* out,
              std::string* error) {
  if (!get_double(obj, key, out, error)) return false;
  if (std::isnan(*out) || *out < 0.0 || *out > 1.0) {
    return field_error(error, key, "expected a probability in [0, 1], got " +
                                       double_repr(*out));
  }
  return true;
}

bool get_bool(const JsonValue& obj, const std::string& key, bool* out,
              std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    return field_error(error, key, "missing (expected true or false)");
  }
  if (v->kind != JsonValue::Kind::kBool) {
    return field_error(error, key,
                       std::string("expected true or false, got ") +
                           kind_name(v->kind));
  }
  *out = v->bool_value;
  return true;
}

bool plan_from_value(const JsonValue& obj, FaultPlan* out, std::string* error) {
  if (obj.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "plan is not an object";
    return false;
  }
  FaultPlan plan;
  if (!get_u64(obj, "seed", &plan.seed, error)) return false;
  if (!get_rate(obj, "sc_fail_rate", &plan.sc_fail_rate, error)) return false;
  if (!get_rate(obj, "vl_fail_rate", &plan.vl_fail_rate, error)) return false;
  if (!get_rate(obj, "stall_rate", &plan.stall_rate, error)) return false;
  if (!get_u32(obj, "max_stall_units", &plan.max_stall_units, error)) {
    return false;
  }
  if (!get_u32(obj, "stall_unit_ns", &plan.stall_unit_ns, error)) return false;
  // Adversarial-placement fields are optional: oblivious plans (PR 3 and
  // earlier producers) omit them entirely and parse to the defaults.
  const JsonValue* strategy = obj.find("strategy");
  if (strategy != nullptr) {
    if (strategy->kind != JsonValue::Kind::kString) {
      return field_error(error, "strategy",
                         std::string("expected one of \"oblivious\", "
                                     "\"adaptive\", \"burst\", got ") +
                             kind_name(strategy->kind));
    }
    if (!fault_strategy_from_string(strategy->string_value, &plan.strategy)) {
      return field_error(error, "strategy",
                         "expected one of \"oblivious\", \"adaptive\", "
                         "\"burst\", got \"" +
                             strategy->string_value + "\"");
    }
  }
  if (obj.find("fault_budget") != nullptr) {
    if (!get_u64(obj, "fault_budget", &plan.fault_budget, error)) return false;
  }
  if (obj.find("burst_len") != nullptr) {
    if (!get_u32(obj, "burst_len", &plan.burst_len, error)) return false;
  }
  if (obj.find("burst_period") != nullptr) {
    if (!get_u32(obj, "burst_period", &plan.burst_period, error)) return false;
  }
  const JsonValue* trace = obj.find("trace");
  if (trace != nullptr) {
    if (trace->kind != JsonValue::Kind::kArray) {
      if (error != nullptr) *error = "'trace' is not an array";
      return false;
    }
    for (const JsonValue& d : trace->items) {
      if (d.kind != JsonValue::Kind::kObject) {
        if (error != nullptr) *error = "trace entry is not an object";
        return false;
      }
      FaultDecision decision;
      std::uint64_t proc = 0;
      if (!get_u64(d, "proc", &proc, error)) return false;
      decision.proc = static_cast<ProcId>(proc);
      if (!get_u64(d, "op", &decision.op_index, error)) return false;
      const JsonValue* vl = d.find("vl");
      if (vl != nullptr && vl->kind == JsonValue::Kind::kBool) {
        decision.is_vl = vl->bool_value;
      }
      if (d.find("score") != nullptr) {
        if (!get_u64(d, "score", &decision.score, error)) return false;
      }
      plan.trace.decisions.push_back(decision);
    }
  }
  const JsonValue* crashes = obj.find("crashes");
  if (crashes == nullptr) {
    return field_error(error, "crashes",
                       "missing (expected an array of crash entries)");
  }
  if (crashes->kind != JsonValue::Kind::kArray) {
    return field_error(error, "crashes",
                       std::string("expected an array, got ") +
                           kind_name(crashes->kind));
  }
  for (const JsonValue& c : crashes->items) {
    if (c.kind != JsonValue::Kind::kObject) {
      return field_error(error, "crashes",
                         std::string("expected entries of the form "
                                     "{\"proc\", \"after_ops\"}, got ") +
                             kind_name(c.kind));
    }
    CrashSpec spec;
    std::uint64_t proc = 0;
    if (!get_u64(c, "proc", &proc, error)) return false;
    spec.proc = static_cast<ProcId>(proc);
    if (!get_u64(c, "after_ops", &spec.after_ops, error)) return false;
    // Optional recovery directive; pre-recovery artifacts omit it and
    // parse to the crash-stop default.
    const JsonValue* recovery = c.find("recovery");
    if (recovery != nullptr) {
      if (recovery->kind != JsonValue::Kind::kObject) {
        return field_error(error, "recovery",
                           std::string("expected an object "
                                       "{\"delay_units\", \"max_restarts\", "
                                       "\"amnesia\"}, got ") +
                               kind_name(recovery->kind));
      }
      if (!get_u32(*recovery, "delay_units", &spec.recovery.delay_units,
                   error)) {
        return false;
      }
      if (!get_u32(*recovery, "max_restarts", &spec.recovery.max_restarts,
                   error)) {
        return false;
      }
      if (recovery->find("amnesia") != nullptr &&
          !get_bool(*recovery, "amnesia", &spec.recovery.amnesia, error)) {
        return false;
      }
    }
    plan.crashes.push_back(spec);
  }
  *out = plan;
  return true;
}

void plan_to_stream(const FaultPlan& plan, std::ostringstream& out,
                    const char* indent) {
  out << "{\n";
  out << indent << "  \"seed\": " << plan.seed << ",\n";
  out << indent << "  \"sc_fail_rate\": " << double_repr(plan.sc_fail_rate)
      << ",\n";
  out << indent << "  \"vl_fail_rate\": " << double_repr(plan.vl_fail_rate)
      << ",\n";
  out << indent << "  \"stall_rate\": " << double_repr(plan.stall_rate)
      << ",\n";
  out << indent << "  \"max_stall_units\": " << plan.max_stall_units << ",\n";
  out << indent << "  \"stall_unit_ns\": " << plan.stall_unit_ns << ",\n";
  // Keep the PR 3 schema byte-stable for oblivious plans: the adversarial
  // fields appear only when they carry non-default values.
  if (plan.strategy != FaultStrategyKind::kOblivious) {
    out << indent << "  \"strategy\": \"" << to_string(plan.strategy)
        << "\",\n";
  }
  if (plan.fault_budget != 0) {
    out << indent << "  \"fault_budget\": " << plan.fault_budget << ",\n";
  }
  if (plan.burst_len != 0 || plan.burst_period != 0) {
    out << indent << "  \"burst_len\": " << plan.burst_len << ",\n";
    out << indent << "  \"burst_period\": " << plan.burst_period << ",\n";
  }
  if (!plan.trace.empty()) {
    out << indent << "  \"trace\": [";
    for (std::size_t i = 0; i < plan.trace.decisions.size(); ++i) {
      const FaultDecision& d = plan.trace.decisions[i];
      if (i != 0) out << ",";
      out << "\n"
          << indent << "    {\"proc\": " << d.proc
          << ", \"op\": " << d.op_index
          << ", \"vl\": " << (d.is_vl ? "true" : "false")
          << ", \"score\": " << d.score << "}";
    }
    out << "\n" << indent << "  ],\n";
  }
  out << indent << "  \"crashes\": [";
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    const CrashSpec& c = plan.crashes[i];
    if (i != 0) out << ",";
    out << "\n"
        << indent << "    {\"proc\": " << c.proc
        << ", \"after_ops\": " << c.after_ops;
    // Crash-stop entries keep the pre-recovery schema byte for byte; the
    // recovery object appears only when the entry actually recovers.
    if (c.recovery.enabled()) {
      out << ", \"recovery\": {\"delay_units\": " << c.recovery.delay_units
          << ", \"max_restarts\": " << c.recovery.max_restarts
          << ", \"amnesia\": " << (c.recovery.amnesia ? "true" : "false")
          << "}";
    }
    out << "}";
  }
  if (!plan.crashes.empty()) out << "\n" << indent << "  ";
  out << "]\n" << indent << "}";
}

RunStatus status_from_string(const std::string& s, bool* ok) {
  *ok = true;
  if (s == "clean") return RunStatus::kClean;
  if (s == "spec-violation") return RunStatus::kSpecViolation;
  if (s == "crashed") return RunStatus::kCrashed;
  if (s == "hung") return RunStatus::kHung;
  *ok = false;
  return RunStatus::kClean;
}

}  // namespace

std::string FaultPlan::to_json() const {
  std::ostringstream out;
  plan_to_stream(*this, out, "");
  out << "\n";
  return out.str();
}

bool FaultPlan::from_json(const std::string& text, FaultPlan* out,
                          std::string* error) {
  if (error != nullptr) error->clear();
  JsonValue root;
  Parser parser(text, error);
  if (!parser.parse(&root)) return false;
  return plan_from_value(root, out, error);
}

std::string FaultArtifact::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"scenario\": ";
  append_escaped(out, scenario);
  out << ",\n";
  out << "  \"n\": " << n << ",\n";
  out << "  \"sample_index\": " << sample_index << ",\n";
  out << "  \"toss_seed\": " << toss_seed << ",\n";
  out << "  \"max_rounds\": " << max_rounds << ",\n";
  out << "  \"status\": \"" << to_string(status) << "\",\n";
  // Storage/width keys are emitted only for non-boxed runs, keeping the
  // schema of boxed-policy artifacts byte-stable across PRs.
  if (storage != StoragePolicy::kBoxed) {
    out << "  \"storage_policy\": \"" << to_string(storage) << "\",\n";
    out << "  \"overflow_events\": " << overflow_events << ",\n";
    out << "  \"max_bits\": " << max_bits << ",\n";
    out << "  \"boxed_fallback_registers\": " << boxed_fallback_registers
        << ",\n";
  }
  // Reclamation keys follow the same contract: emitted only when the
  // sample ran a non-default reclaimer.
  if (reclaimer != ReclaimPolicy::kEpoch) {
    out << "  \"reclaimer\": \"" << to_string(reclaimer) << "\",\n";
    out << "  \"nodes_retired\": " << nodes_retired << ",\n";
    out << "  \"nodes_reclaimed\": " << nodes_reclaimed << ",\n";
  }
  out << "  \"proc_ops\": [";
  for (std::size_t i = 0; i < proc_ops.size(); ++i) {
    if (i != 0) out << ", ";
    out << proc_ops[i];
  }
  out << "],\n";
  out << "  \"plan\": ";
  plan_to_stream(plan, out, "  ");
  out << "\n}\n";
  return out.str();
}

bool FaultArtifact::from_json(const std::string& text, FaultArtifact* out,
                              std::string* error) {
  if (error != nullptr) error->clear();
  JsonValue root;
  Parser parser(text, error);
  if (!parser.parse(&root)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) *error = "artifact is not an object";
    return false;
  }
  FaultArtifact artifact;
  const JsonValue* scenario = root.find("scenario");
  if (scenario == nullptr || scenario->kind != JsonValue::Kind::kString) {
    if (error != nullptr) *error = "missing 'scenario' string";
    return false;
  }
  artifact.scenario = scenario->string_value;
  std::uint64_t u = 0;
  if (!get_u64(root, "n", &u, error)) return false;
  artifact.n = static_cast<int>(u);
  const JsonValue* sample = root.find("sample_index");
  if (sample != nullptr && sample->kind == JsonValue::Kind::kNumber) {
    artifact.sample_index = static_cast<int>(sample->number);
  }
  if (!get_u64(root, "toss_seed", &artifact.toss_seed, error)) return false;
  if (!get_u64(root, "max_rounds", &u, error)) return false;
  artifact.max_rounds = static_cast<int>(u);
  const JsonValue* status = root.find("status");
  if (status == nullptr || status->kind != JsonValue::Kind::kString) {
    if (error != nullptr) *error = "missing 'status' string";
    return false;
  }
  bool status_ok = false;
  artifact.status = status_from_string(status->string_value, &status_ok);
  if (!status_ok) {
    if (error != nullptr) *error = "unknown status '" + status->string_value + "'";
    return false;
  }
  // Optional storage/width block (absent on boxed-policy artifacts).
  const JsonValue* storage = root.find("storage_policy");
  if (storage != nullptr) {
    if (storage->kind != JsonValue::Kind::kString) {
      if (error != nullptr) *error = "'storage_policy' is not a string";
      return false;
    }
    if (storage->string_value == "inline") {
      artifact.storage = StoragePolicy::kInline;
    } else if (storage->string_value == "inline-strict") {
      artifact.storage = StoragePolicy::kInlineStrict;
    } else if (storage->string_value == "boxed") {
      artifact.storage = StoragePolicy::kBoxed;
    } else {
      if (error != nullptr) {
        *error = "unknown storage_policy '" + storage->string_value + "'";
      }
      return false;
    }
    if (root.find("overflow_events") != nullptr &&
        !get_u64(root, "overflow_events", &artifact.overflow_events, error)) {
      return false;
    }
    if (root.find("max_bits") != nullptr) {
      if (!get_u64(root, "max_bits", &u, error)) return false;
      artifact.max_bits = static_cast<std::size_t>(u);
    }
    if (root.find("boxed_fallback_registers") != nullptr &&
        !get_u64(root, "boxed_fallback_registers",
                 &artifact.boxed_fallback_registers, error)) {
      return false;
    }
  }
  // Optional reclamation block (absent on epoch-policy artifacts).
  const JsonValue* reclaimer = root.find("reclaimer");
  if (reclaimer != nullptr) {
    if (reclaimer->kind != JsonValue::Kind::kString) {
      if (error != nullptr) *error = "'reclaimer' is not a string";
      return false;
    }
    if (reclaimer->string_value == "epoch") {
      artifact.reclaimer = ReclaimPolicy::kEpoch;
    } else if (reclaimer->string_value == "hazard") {
      artifact.reclaimer = ReclaimPolicy::kHazard;
    } else {
      if (error != nullptr) {
        *error = "unknown reclaimer '" + reclaimer->string_value + "'";
      }
      return false;
    }
    if (root.find("nodes_retired") != nullptr &&
        !get_u64(root, "nodes_retired", &artifact.nodes_retired, error)) {
      return false;
    }
    if (root.find("nodes_reclaimed") != nullptr &&
        !get_u64(root, "nodes_reclaimed", &artifact.nodes_reclaimed,
                 error)) {
      return false;
    }
  }
  const JsonValue* ops = root.find("proc_ops");
  if (ops == nullptr || ops->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "missing 'proc_ops' array";
    return false;
  }
  for (const JsonValue& v : ops->items) {
    if (v.kind != JsonValue::Kind::kNumber || !v.has_uint) {
      if (error != nullptr) *error = "non-integer entry in 'proc_ops'";
      return false;
    }
    artifact.proc_ops.push_back(v.uint_value);
  }
  const JsonValue* plan = root.find("plan");
  if (plan == nullptr) {
    if (error != nullptr) *error = "missing 'plan' object";
    return false;
  }
  if (!plan_from_value(*plan, &artifact.plan, error)) return false;
  *out = artifact;
  return true;
}

}  // namespace llsc
