// Reclaimer — the reclamation-policy seam behind RegisterStorage.
//
// BoxedStorage (and InlineStorage's demoted registers) publish immutable
// heap nodes through a single CAS word. A reader that loaded the word just
// before a writer's CAS can still dereference the replaced node, so the
// storage layer never frees a node directly: it *retires* the node to a
// Reclaimer, and every dereference happens inside a Reclaimer critical
// section. What "safe to free" means is the policy this seam varies:
//
//   EpochReclaimer         — the pre-seam three-epoch scheme, byte for
//       byte: a critical-section entry stores the global epoch into the
//       slot's epoch word, retirement stamps the node with the current
//       global epoch, and every kScanInterval retires a scan advances the
//       global epoch (iff every slot is quiescent or current) and frees
//       the two-epochs-stale prefix. Protected loads are plain acquire
//       loads — near-zero cost — but one peer parked inside an operation
//       pins the epoch and every slot's garbage grows unboundedly.
//   HazardPointerReclaimer — one hazard word per slot: a protected load
//       publishes the candidate word, re-reads the register word, and
//       retries until they agree; a retired-list scan frees every node no
//       hazard word names. Per-slot garbage is bounded by the scan
//       threshold (O(num_slots)), so total unreclaimed nodes are
//       O(num_slots²) regardless of stalled or crashed peers.
//
// Slots. A slot is one unit of protection + one retired list. The storage
// layer resolves the invoking ProcId to a slot via slot_of(p): by default
// slot == ProcId (the 1:1 executor's thread contract), but an executor
// multiplexing M processes onto N carrier threads may bind each carrier to
// a dedicated slot (CarrierBinding) when the policy wants it
// (carrier_slots()) — hazard words then scale with real threads, not
// logical processes. This is sound because no protection spans a yield:
// every storage operation brackets its protections inside one Guard, and
// oversubscribed coroutines only yield between operations, so a logical
// process migrating carriers re-establishes protection on the new
// carrier's slot. The EpochReclaimer declines carrier binding and keeps
// one epoch slot per logical process — bit-for-bit the pre-seam layout.
//
// Thread contract: begin/end/acquire/confirm/retire on one slot must be
// serialized (the storage layer's per-process thread contract plus the
// oversubscribed executor's run-queue handoff guarantee this); stats() and
// quiescent teardown require all slots quiescent.
#ifndef LLSC_HW_RECLAIM_H_
#define LLSC_HW_RECLAIM_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "memory/op.h"
#include "memory/reclaim_policy.h"
#include "memory/value.h"

namespace llsc {

// The unit of reclamation: an immutable (once published) boxed register
// node. Defined here — not in register_storage.h — because the Reclaimer
// owns the node lifecycle; the storage layer owns only the versioning
// discipline.
struct VersionedNode {
  Value value;
  std::uint64_t version = 1;
};

// A register word is either a VersionedNode* (bit 0 clear — nodes are
// 8-byte aligned) or an inline tagged word (bit 0 set; see
// memory/storage_policy.h). Inline words need no reclamation protection.
inline bool is_node_word(std::uint64_t w) { return (w & 1) == 0; }
inline VersionedNode* as_node(std::uint64_t w) {
  return reinterpret_cast<VersionedNode*>(static_cast<std::uintptr_t>(w));
}
inline std::uint64_t from_node(VersionedNode* n) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(n));
}

class Reclaimer {
 public:
  explicit Reclaimer(int num_slots);
  virtual ~Reclaimer();
  Reclaimer(const Reclaimer&) = delete;
  Reclaimer& operator=(const Reclaimer&) = delete;

  virtual ReclaimPolicy policy() const = 0;
  int num_slots() const { return num_slots_; }

  // True when executors multiplexing M processes onto N carrier threads
  // should bind each carrier to a slot (hazard); false when slots must
  // stay per logical process (epoch — the pre-seam layout).
  virtual bool carrier_slots() const = 0;

  // --- the critical-section protocol (per slot, serialized) ---
  // Enter/exit a critical section. Node words loaded via acquire/confirm
  // may be dereferenced only between begin and end.
  virtual void begin(int slot) = 0;
  virtual void end(int slot) = 0;
  // Protected load: returns the register word, safe to dereference until
  // end() (hazard: until the slot's next acquire/confirm overwrites the
  // hazard word — callers dereference only the most recent protected
  // load, which every storage operation already does).
  virtual std::uint64_t acquire(int slot,
                                const std::atomic<std::uint64_t>& word) = 0;
  // Like acquire, but for a word `w` the caller already loaded (e.g. the
  // reload a failed CAS wrote back). Returns `w` once protected, or the
  // newer current word if `w` was replaced before protection stuck —
  // callers must use the returned word. Identity under epochs.
  virtual std::uint64_t confirm(int slot,
                                const std::atomic<std::uint64_t>& word,
                                std::uint64_t w) = 0;
  // Hand a node the slot's thread just unlinked over to the policy.
  virtual void retire(int slot, VersionedNode* n) = 0;
  // Crash recovery: drop every protection the slot holds, mirroring
  // RegisterStorage::invalidate_links for links — a dead incarnation's
  // guard already unwound (RAII), so this is the belt-and-braces reset a
  // restart performs before the new incarnation's first operation.
  virtual void release(int slot) = 0;
  // Free everything that can ever be freed, assuming all slots quiescent
  // (teardown; also what the destructor does).
  virtual void quiesce() = 0;

  virtual ReclaimStats stats() const = 0;

  // Resolve the slot for an operation invoked by process p: the calling
  // thread's CarrierBinding for this reclaimer if one is active, else p.
  int slot_of(ProcId p) const;

  // RAII critical section + the protected-load surface storage ops use.
  class Guard {
   public:
    Guard(Reclaimer& r, ProcId p) : r_(r), slot_(r.slot_of(p)) {
      r_.begin(slot_);
    }
    ~Guard() { r_.end(slot_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    std::uint64_t acquire(const std::atomic<std::uint64_t>& word) {
      return r_.acquire(slot_, word);
    }
    std::uint64_t confirm(const std::atomic<std::uint64_t>& word,
                          std::uint64_t w) {
      return r_.confirm(slot_, word, w);
    }
    void retire(VersionedNode* n) { r_.retire(slot_, n); }

   private:
    Reclaimer& r_;
    int slot_;
  };

  // Binds the calling carrier thread to `slot` for this reclaimer's
  // slot_of resolution; restores the previous binding on destruction.
  // Executors create one per worker thread when carrier_slots() is true.
  class CarrierBinding {
   public:
    CarrierBinding(Reclaimer& r, int slot);
    ~CarrierBinding();
    CarrierBinding(const CarrierBinding&) = delete;
    CarrierBinding& operator=(const CarrierBinding&) = delete;

   private:
    const Reclaimer* prev_owner_;
    int prev_slot_;
  };

 private:
  int num_slots_;
};

// The pre-seam three-epoch scheme, preserved exactly: same loads, stores,
// scan cadence, and counters as the pre-refactor BoxedStorage, so default
// runs stay byte-stable.
class EpochReclaimer final : public Reclaimer {
 public:
  explicit EpochReclaimer(int num_slots);
  ~EpochReclaimer() override;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kEpoch; }
  bool carrier_slots() const override { return false; }

  void begin(int slot) override;
  void end(int slot) override;
  std::uint64_t acquire(int slot,
                        const std::atomic<std::uint64_t>& word) override;
  std::uint64_t confirm(int slot, const std::atomic<std::uint64_t>& word,
                        std::uint64_t w) override;
  void retire(int slot, VersionedNode* n) override;
  void release(int slot) override;
  void quiesce() override;
  ReclaimStats stats() const override;

 private:
  struct alignas(64) Slot {
    // 0 = quiescent; otherwise the global epoch observed at critical-
    // section entry. Written only by the slot's thread; read by everyone.
    std::atomic<std::uint64_t> epoch{0};
    // Retired nodes with their retirement epoch; epochs are non-decreasing
    // in deque order, so the freeable nodes form a prefix.
    std::deque<std::pair<std::uint64_t, VersionedNode*>> retired;
    std::uint64_t retires_since_scan = 0;
    std::uint64_t retired_count = 0;
    std::uint64_t freed = 0;
    std::uint64_t scan_passes = 0;
    std::size_t high_water = 0;
  };

  // Attempt a global-epoch advance, then free this slot's retired prefix
  // that is two epochs stale.
  void scan_and_reclaim(Slot& s);

  std::vector<std::unique_ptr<Slot>> slots_;
  alignas(64) std::atomic<std::uint64_t> global_{1};
};

// Per-slot hazard pointers: bounded garbage under stalled/crashed peers at
// the price of a publish + re-validate round-trip per protected load.
class HazardPointerReclaimer final : public Reclaimer {
 public:
  explicit HazardPointerReclaimer(int num_slots);
  ~HazardPointerReclaimer() override;

  ReclaimPolicy policy() const override { return ReclaimPolicy::kHazard; }
  bool carrier_slots() const override { return true; }

  void begin(int slot) override;
  void end(int slot) override;
  std::uint64_t acquire(int slot,
                        const std::atomic<std::uint64_t>& word) override;
  std::uint64_t confirm(int slot, const std::atomic<std::uint64_t>& word,
                        std::uint64_t w) override;
  void retire(int slot, VersionedNode* n) override;
  void release(int slot) override;
  void quiesce() override;
  ReclaimStats stats() const override;

  // Per-slot retired-list size that triggers a scan; a scan keeps at most
  // num_slots nodes (each hazard word protects one), so a slot's list
  // never exceeds threshold + 1 and total garbage is O(num_slots²).
  std::size_t scan_threshold() const { return scan_threshold_; }

 private:
  struct alignas(64) Slot {
    // The one word this slot's thread may dereference; 0 = none.
    std::atomic<std::uint64_t> hazard{0};
    std::vector<VersionedNode*> retired;
    std::uint64_t retired_count = 0;
    std::uint64_t freed = 0;
    std::uint64_t scan_passes = 0;
    std::uint64_t protect_retries = 0;
    std::uint64_t max_stall_spins = 0;
    std::size_t high_water = 0;
  };

  // Publish-and-revalidate until the register word and the hazard word
  // agree; returns the protected (possibly newer-than-`w`) word.
  std::uint64_t protect(Slot& s, const std::atomic<std::uint64_t>& word,
                        std::uint64_t w);
  // Free every retired node no hazard word names.
  void scan(Slot& s);

  std::vector<std::unique_ptr<Slot>> slots_;
  const std::size_t scan_threshold_;
};

std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          int num_slots);

}  // namespace llsc

#endif  // LLSC_HW_RECLAIM_H_
