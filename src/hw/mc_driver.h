// Parallel Monte-Carlo driver for the Lemma 3.1 estimator.
//
// estimate_expected_complexity (core/lower_bound.h) runs its samples
// serially; the samples are embarrassingly parallel — each builds its own
// System over its own SeededTossAssignment. This driver shards E4-style
// sample sets across worker threads and folds the per-sample outcomes
// into the SAME ExpectedComplexityEstimate, bit-for-bit:
//
//   * the per-sample seeds are drawn from Rng(seed) in serial order up
//     front, so sample i sees the identical toss assignment it would see
//     in the serial driver;
//   * each worker claims sample indices from a shared atomic cursor and
//     writes its outcome (terminated, winner_ops, max_ops — all integers)
//     into a per-sample slot;
//   * the fold walks the slots in index order. The accumulators sum
//     integer-valued doubles far below 2^53, so the index-order fold is
//     exact and equals the serial sum exactly, not just approximately.
//
// A ProcBody passed here is invoked concurrently from several workers (one
// System per sample, but body(ctx, i, n) itself runs on many threads), so
// it must be stateless or internally synchronized — true of everything in
// wakeup/algorithms.h, and asserted in tests/hw_mc_test.cc.
#ifndef LLSC_HW_MC_DRIVER_H_
#define LLSC_HW_MC_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/lower_bound.h"
#include "hw/fault.h"

namespace llsc {

struct McShardStats {
  int worker = 0;
  int samples_run = 0;
  double wall_seconds = 0.0;
};

struct McRunOptions {
  // <= 0 picks std::thread::hardware_concurrency() (capped by the sample
  // count); 1 degenerates to the serial driver on this thread.
  int num_workers = 0;
  AdversaryOptions adversary;
  // Register-storage policy threaded to every sample's run_mc_sample —
  // the serial estimator's trailing parameter, so parity holds under
  // kInline/kInlineStrict exactly as it does under kBoxed.
  StoragePolicy storage = default_storage_policy();
  // Node-reclamation policy threaded the same way (the simulator only
  // does accounting — memory/reclaim_policy.h — but carrying the id keeps
  // MC artifacts replayable on the hw substrate under the same policy).
  ReclaimPolicy reclaimer = default_reclaim_policy();
  // Fault plan for the sweep (hw/fault.h); per-sample schedules are
  // derived from it with derive_sample_plan(plan, toss_seed) — exactly as
  // the serial estimator does, so parity is preserved under injection.
  // Caller keeps it alive for the call. nullptr disables injection.
  const FaultPlan* fault = nullptr;
  // When non-empty, every failing sample (crashed / hung / spec-violation)
  // dumps a FaultArtifact JSON here (fault_sample_<i>.json, capped at
  // kMaxArtifacts per call) for tools/replay_fault.py.
  std::string artifact_dir;
  // Scenario name recorded in artifacts; must name a registered scenario
  // (hw/fault_scenarios.h) for `fault_replay` to rebuild the body.
  std::string scenario = "custom";

  static constexpr int kMaxArtifacts = 32;
};

struct ParallelMcResult {
  // Identical (bitwise, field by field) to what the serial
  // estimate_expected_complexity returns for the same inputs — fault plan
  // included.
  ExpectedComplexityEstimate estimate;
  int num_workers = 0;
  double wall_seconds = 0.0;
  std::vector<McShardStats> shards;
  // Paths of the artifacts written for failing samples (empty unless
  // options.artifact_dir was set and some sample failed).
  std::vector<std::string> artifacts;
};

ParallelMcResult estimate_expected_complexity_parallel(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    const McRunOptions& options);

// Back-compat signature (pre-fault-injection callers).
ParallelMcResult estimate_expected_complexity_parallel(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    int num_workers = 0, const AdversaryOptions& adversary = {});

}  // namespace llsc

#endif  // LLSC_HW_MC_DRIVER_H_
