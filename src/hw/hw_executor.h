// HwExecutor — run the paper's n-process algorithms on n real threads.
//
// The executor is the synchronous counterpart of System + a scheduler:
// it builds one Process control block per simulated process, points each
// at an HwPlatform (HwMemory + a pre-committed toss assignment), and runs
// each process's coroutine body on its own std::thread. Because the
// platform is synchronous, every co_awaited LL/SC/VL/swap/move executes
// inline and a body runs start-to-finish on its thread — the interleaving
// of shared-memory steps is whatever the hardware and the OS produce,
// which is exactly the point.
//
// Determinism: coin tosses are served from SeededTossAssignment(seed)
// (outcome(p, j) is a pure function of seed — a per-process shard of one
// seed), so repeated runs with the same seed replay the same toss
// outcomes and differ only in step interleaving. Per-process shared-op
// and toss counters live in the per-thread Process blocks (no shared
// counters to contend on); an atomic start gate lines all threads up
// before the first step so throughput numbers measure concurrent
// execution, not thread spawn skew (a gate rather than std::barrier so a
// partial spawn failure can abort and join the already-spawned workers).
//
// Robustness (hw/fault.h): run() optionally routes every shared-memory
// op through a FaultInjector (same decision stream as the simulator) and
// arms a watchdog that cancels workers that blow the run deadline or
// stop making progress; the result carries a clean/crashed/hung taxonomy
// instead of wedging the caller.
#ifndef LLSC_HW_HW_EXECUTOR_H_
#define LLSC_HW_HW_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "hw/fault.h"
#include "hw/hw_memory.h"
#include "hw/latency_histogram.h"
#include "hw/platform.h"
#include "runtime/process.h"
#include "runtime/toss.h"
#include "universal/universal.h"

namespace llsc {

// Platform over HwMemory: steps execute inline on the calling thread.
class HwPlatform final : public Platform {
 public:
  HwPlatform(HwMemory* memory, std::shared_ptr<const TossAssignment> tosses)
      : memory_(memory), tosses_(std::move(tosses)) {}

  bool synchronous() const override { return true; }
  OpResult apply(ProcId p, const PendingOp& op) override {
    return memory_->apply(p, op);
  }
  std::uint64_t toss(ProcId p, std::uint64_t j) override {
    return tosses_->outcome(p, j);
  }
  std::string name() const override { return "hw"; }

 private:
  HwMemory* memory_;
  std::shared_ptr<const TossAssignment> tosses_;
};

struct HwRunOptions {
  // Seed of the SeededTossAssignment serving every process's coin tosses
  // (ignored when `tosses` is set).
  std::uint64_t seed = 1;
  std::shared_ptr<const TossAssignment> tosses;
  // Size of the fixed register table. Algorithms must declare enough
  // (e.g. GroupUpdateUC::register_span()); the default fits every
  // workload in tests/bench at n ≤ 1024.
  std::size_t num_registers = 1 << 12;
  // Retry-loop backoff policy for the run's HwMemory (hw/backoff.h);
  // kAdaptiveParking is the right choice when n exceeds the core count.
  BackoffOptions backoff;
  // Register-storage policy for the run's HwMemory (boxed nodes vs inline
  // 64-bit tagged words — memory/storage_policy.h); defaults to the
  // LLSC_STORAGE_POLICY environment variable, else boxed.
  StoragePolicy storage = default_storage_policy();
  // Node-reclamation policy for the run's HwMemory (three-epoch batches vs
  // per-slot hazard pointers — memory/reclaim_policy.h, hw/reclaim.h);
  // defaults to the LLSC_RECLAIMER environment variable, else epochs.
  ReclaimPolicy reclaimer = default_reclaim_policy();
  // Fault plan for this run (hw/fault.h); nullptr or a disabled plan means
  // no injection. The plan is used as-is — sweeping drivers derive
  // per-sample seeds themselves (derive_sample_plan). Caller keeps the
  // plan alive for the duration of run().
  const FaultPlan* fault = nullptr;
  // Watchdog deadline for one run(): when the run exceeds this wall-clock
  // budget the watchdog cancels every worker at its next shared-memory op
  // or toss, and the run reports RunStatus::kHung. nullopt inherits the
  // process-wide default (set_default_hw_timeout_ms / LLSC_TIMEOUT_MS);
  // 0 disables the deadline.
  std::optional<std::uint64_t> timeout_ms;
  // Hang detection: cancel when the per-thread progress counters of the
  // still-running workers stop advancing for this long. 0 disables.
  std::uint64_t progress_timeout_ms = 0;
  // Watchdog poll period (only meaningful when a deadline or progress
  // window is armed).
  std::uint64_t watchdog_poll_ms = 5;
  // Labeled logical-object register ranges (memory/storage_policy.h),
  // e.g. from UniversalConstruction::register_groups(). When non-empty
  // the run's width stats attribute demoted registers per group.
  std::vector<RegisterGroup> register_groups;
};

// Scheduler counters of one oversubscribed run (hw/oversub_executor.h);
// all-zero on the 1:1 HwExecutor, which has no scheduler.
struct HwSchedStats {
  int num_threads = 0;       // carrier threads (N); 0 on a 1:1 run
  int num_procs = 0;         // logical processes (M); 0 on a 1:1 run
  std::uint64_t resumes = 0;     // coroutine start/resume edges
  std::uint64_t yields = 0;      // coroutines re-queued at a yield point
  std::uint64_t steals = 0;      // pops from another worker's shard
  std::uint64_t idle_parks = 0;  // idle workers parked on the run's spot
  std::uint64_t idle_park_skips = 0;  // parks cut short by the re-check
};

// Per-process outcome of one hw run.
enum class HwProcOutcome : std::uint8_t {
  kDone = 0,     // body ran to completion
  kCrashed = 1,  // crash-stopped by the fault plan
  kHung = 2,     // cancelled by the watchdog before completing
};

struct HwRunResult {
  int n = 0;
  bool ok = false;  // all processes ran to completion (status == kClean)
  // Failure taxonomy (hw/fault.h): kClean when every process terminated,
  // kCrashed when the fault plan crash-stopped at least one process,
  // kHung when the watchdog cancelled a worker and nobody crashed.
  // (kSpecViolation is assigned by workload-level checkers such as the
  // Monte-Carlo drivers — the executor itself has no spec to check.)
  RunStatus status = RunStatus::kClean;
  std::vector<HwProcOutcome> proc_status;    // per process
  int crashed_procs = 0;
  int hung_procs = 0;
  bool cancelled = false;  // the watchdog fired
  // All vectors below hold one entry per process (index = ProcId);
  // results[p] is nil unless proc_status[p] == kDone.
  std::vector<Value> results;
  std::vector<std::uint64_t> shared_ops;     // t(p) per process
  std::vector<std::uint64_t> num_tosses;     // per process
  std::uint64_t max_shared_ops = 0;          // the paper's t(R)
  std::uint64_t total_shared_ops = 0;
  double wall_seconds = 0.0;
  HwReclaimStats reclaim;
  HwBackoffStats backoff;
  // Width/overflow accounting from the run's storage policy (the hw twin
  // of S7's WidthAudit — see core/audit.h: width_audit_from_stats).
  RegisterWidthStats width;
  FaultStats fault;  // injected-fault decision counters (zero w/o a plan)
  // Decisions recorded by an adversarial FaultStrategy (hw/fault_adversary.h);
  // empty on the inline oblivious path. Embed into FaultPlan::trace to
  // replay this run's placement bit-for-bit on either substrate.
  DecisionTrace decision_trace;
  // Oversubscribed-scheduler counters (zero on a 1:1 run).
  HwSchedStats sched;
  // Per-operation enqueue→complete latency, populated only by service-
  // mode runs (hw/service.h); empty elsewhere.
  LatencyHistogram latency;
};

// Process-wide default for HwRunOptions::timeout_ms. Resolution order:
// the last set_default_hw_timeout_ms() call, else the LLSC_TIMEOUT_MS
// environment variable, else 0 (no deadline). This is how --timeout_ms
// reaches the HwExecutors that tests and benches construct internally.
std::uint64_t default_hw_timeout_ms();
void set_default_hw_timeout_ms(std::uint64_t ms);

// Deadline multiplier for tests that arm *tight* watchdog deadlines (a
// few tens of ms, to see the watchdog fire fast): the LLSC_TIMEOUT_SCALE
// environment variable, default 1, read once. Sanitized CI jobs (TSan
// sets 4) run several times slower than native and hard-coded small
// deadlines flake there; scale_timeout_ms(50) instead of a literal 50.
std::uint64_t hw_timeout_scale();
std::uint64_t scale_timeout_ms(std::uint64_t ms);

class HwExecutor {
 public:
  explicit HwExecutor(HwRunOptions options = {});

  // Runs body(ctx, i, n) for i in [0, n), one OS thread per process,
  // against a fresh HwMemory. Exceptions thrown by a body are re-thrown
  // on the calling thread after all threads join.
  HwRunResult run(int n, const ProcBody& body);

  const HwRunOptions& options() const { return options_; }

 private:
  HwRunOptions options_;
};

// --- universal-construction throughput workloads -------------------------
//
// The same workload shape on both platforms: every process performs
// `ops_per_process` operations (produced by make_op(p, k)) through the
// construction and returns the sum of its u64 responses. Per-operation
// wall-clock latency is recorded into per-process vectors (no sharing).

using UcOpFactory = std::function<ObjOp(ProcId p, int k)>;

struct UcThroughput {
  int n = 0;
  int ops_per_process = 0;
  std::uint64_t total_uc_ops = 0;
  double wall_seconds = 0.0;
  double ops_per_second = 0.0;
  // max over p of (shared ops of p / ops_per_process) — the per-operation
  // shared-access cost to compare against worst_case_shared_ops().
  double shared_ops_per_uc_op = 0.0;
  std::uint64_t max_shared_ops = 0;
  // Sum over processes of returned response sums (for sanity checks;
  // only kDone processes contribute on a degraded run).
  std::uint64_t response_sum = 0;
  // Run taxonomy + fault counters, copied from the underlying HwRunResult
  // (always kClean / zero on the simulator path).
  RunStatus status = RunStatus::kClean;
  FaultStats fault;
  // One entry per completed operation, merged across processes, unsorted.
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
};

// Runs the workload on real threads via `exec`.
UcThroughput run_uc_on_hw(HwExecutor& exec, UniversalConstruction& uc, int n,
                          int ops_per_process, const UcOpFactory& make_op);

// Runs the identical workload (same body coroutine) on the simulator
// under a round-robin schedule — the contrast column for the hw bench.
UcThroughput run_uc_on_simulator(UniversalConstruction& uc, int n,
                                 int ops_per_process,
                                 const UcOpFactory& make_op,
                                 std::uint64_t seed = 1);

}  // namespace llsc

#endif  // LLSC_HW_HW_EXECUTOR_H_
