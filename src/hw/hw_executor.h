// HwExecutor — run the paper's n-process algorithms on n real threads.
//
// The executor is the synchronous counterpart of System + a scheduler:
// it builds one Process control block per simulated process, points each
// at an HwPlatform (HwMemory + a pre-committed toss assignment), and runs
// each process's coroutine body on its own std::thread. Because the
// platform is synchronous, every co_awaited LL/SC/VL/swap/move executes
// inline and a body runs start-to-finish on its thread — the interleaving
// of shared-memory steps is whatever the hardware and the OS produce,
// which is exactly the point.
//
// Determinism: coin tosses are served from SeededTossAssignment(seed)
// (outcome(p, j) is a pure function of seed — a per-process shard of one
// seed), so repeated runs with the same seed replay the same toss
// outcomes and differ only in step interleaving. Per-process shared-op
// and toss counters live in the per-thread Process blocks (no shared
// counters to contend on); a std::barrier lines all threads up before the
// first step so throughput numbers measure concurrent execution, not
// thread spawn skew.
#ifndef LLSC_HW_HW_EXECUTOR_H_
#define LLSC_HW_HW_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/hw_memory.h"
#include "hw/platform.h"
#include "runtime/process.h"
#include "runtime/toss.h"
#include "universal/universal.h"

namespace llsc {

// Platform over HwMemory: steps execute inline on the calling thread.
class HwPlatform final : public Platform {
 public:
  HwPlatform(HwMemory* memory, std::shared_ptr<const TossAssignment> tosses)
      : memory_(memory), tosses_(std::move(tosses)) {}

  bool synchronous() const override { return true; }
  OpResult apply(ProcId p, const PendingOp& op) override {
    return memory_->apply(p, op);
  }
  std::uint64_t toss(ProcId p, std::uint64_t j) override {
    return tosses_->outcome(p, j);
  }
  std::string name() const override { return "hw"; }

 private:
  HwMemory* memory_;
  std::shared_ptr<const TossAssignment> tosses_;
};

struct HwRunOptions {
  // Seed of the SeededTossAssignment serving every process's coin tosses
  // (ignored when `tosses` is set).
  std::uint64_t seed = 1;
  std::shared_ptr<const TossAssignment> tosses;
  // Size of the fixed register table. Algorithms must declare enough
  // (e.g. GroupUpdateUC::register_span()); the default fits every
  // workload in tests/bench at n ≤ 1024.
  std::size_t num_registers = 1 << 12;
  // Retry-loop backoff policy for the run's HwMemory (hw/backoff.h);
  // kAdaptiveParking is the right choice when n exceeds the core count.
  BackoffOptions backoff;
};

struct HwRunResult {
  int n = 0;
  bool ok = false;  // all processes ran to completion
  std::vector<Value> results;                // per process
  std::vector<std::uint64_t> shared_ops;     // t(p) per process
  std::vector<std::uint64_t> num_tosses;     // per process
  std::uint64_t max_shared_ops = 0;          // the paper's t(R)
  std::uint64_t total_shared_ops = 0;
  double wall_seconds = 0.0;
  HwReclaimStats reclaim;
  HwBackoffStats backoff;
};

class HwExecutor {
 public:
  explicit HwExecutor(HwRunOptions options = {});

  // Runs body(ctx, i, n) for i in [0, n), one OS thread per process,
  // against a fresh HwMemory. Exceptions thrown by a body are re-thrown
  // on the calling thread after all threads join.
  HwRunResult run(int n, const ProcBody& body);

  const HwRunOptions& options() const { return options_; }

 private:
  HwRunOptions options_;
};

// --- universal-construction throughput workloads -------------------------
//
// The same workload shape on both platforms: every process performs
// `ops_per_process` operations (produced by make_op(p, k)) through the
// construction and returns the sum of its u64 responses. Per-operation
// wall-clock latency is recorded into per-process vectors (no sharing).

using UcOpFactory = std::function<ObjOp(ProcId p, int k)>;

struct UcThroughput {
  int n = 0;
  int ops_per_process = 0;
  std::uint64_t total_uc_ops = 0;
  double wall_seconds = 0.0;
  double ops_per_second = 0.0;
  // max over p of (shared ops of p / ops_per_process) — the per-operation
  // shared-access cost to compare against worst_case_shared_ops().
  double shared_ops_per_uc_op = 0.0;
  std::uint64_t max_shared_ops = 0;
  // Sum over processes of returned response sums (for sanity checks).
  std::uint64_t response_sum = 0;
  // One entry per completed operation, merged across processes, unsorted.
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t latency_p50_ns = 0;
  std::uint64_t latency_p99_ns = 0;
};

// Runs the workload on real threads via `exec`.
UcThroughput run_uc_on_hw(HwExecutor& exec, UniversalConstruction& uc, int n,
                          int ops_per_process, const UcOpFactory& make_op);

// Runs the identical workload (same body coroutine) on the simulator
// under a round-robin schedule — the contrast column for the hw bench.
UcThroughput run_uc_on_simulator(UniversalConstruction& uc, int n,
                                 int ops_per_process,
                                 const UcOpFactory& make_op,
                                 std::uint64_t seed = 1);

}  // namespace llsc

#endif  // LLSC_HW_HW_EXECUTOR_H_
