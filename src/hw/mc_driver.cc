#include "hw/mc_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>

#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace llsc {

namespace {

using Clock = std::chrono::steady_clock;

// Outcome of one sample, written by exactly one worker into its own slot
// before the join (which is the synchronization point for the fold).
struct SampleOutcome {
  bool terminated = false;
  // Some process returned 1; winner_ops is meaningful only when true.
  // terminated && !has_winner is a wakeup-spec violation.
  bool has_winner = false;
  std::uint64_t winner_ops = 0;
  std::uint64_t max_ops = 0;
};

SampleOutcome run_one_sample(const ProcBody& algo, int n, std::uint64_t seed,
                             const AdversaryOptions& adversary) {
  SampleOutcome out;
  const auto tosses = std::make_shared<SeededTossAssignment>(seed);
  System sys(n, algo, tosses);
  sys.set_recording(false);
  AdversaryOptions opts = adversary;
  opts.record_snapshots = false;
  const RunLog log = run_adversary(sys, opts);
  if (!log.all_terminated) return out;
  out.terminated = true;
  std::uint64_t winner_ops = ~std::uint64_t{0};
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (proc.done() && proc.result().holds_u64() &&
        proc.result().as_u64() == 1) {
      winner_ops = std::min(winner_ops, proc.shared_ops());
    }
  }
  // No 1-returner in a terminated run is a wakeup-spec violation; leave
  // has_winner false so the fold counts it instead of folding a bogus
  // winner_ops = 0 into the minimum.
  out.has_winner = winner_ops != ~std::uint64_t{0};
  out.winner_ops = out.has_winner ? winner_ops : 0;
  out.max_ops = sys.max_shared_ops();
  return out;
}

}  // namespace

ParallelMcResult estimate_expected_complexity_parallel(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    int num_workers, const AdversaryOptions& adversary) {
  LLSC_EXPECTS(samples >= 1, "need at least one sample");
  if (num_workers <= 0) {
    num_workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  num_workers = std::min(num_workers, samples);

  // Sample seeds in serial draw order — the whole reproducibility story.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(samples));
  Rng rng(seed);
  for (auto& s : seeds) s = rng.next_u64();

  std::vector<SampleOutcome> outcomes(static_cast<std::size_t>(samples));
  std::atomic<int> cursor{0};
  std::vector<McShardStats> shards(static_cast<std::size_t>(num_workers));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_workers));

  const auto worker_loop = [&](int w) {
    const Clock::time_point w0 = Clock::now();
    McShardStats& stats = shards[static_cast<std::size_t>(w)];
    stats.worker = w;
    for (;;) {
      const int i = cursor.fetch_add(1);
      if (i >= samples) break;
      outcomes[static_cast<std::size_t>(i)] = run_one_sample(
          algo, n, seeds[static_cast<std::size_t>(i)], adversary);
      ++stats.samples_run;
    }
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - w0).count();
  };

  const Clock::time_point t0 = Clock::now();
  if (num_workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          worker_loop(w);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Index-order fold — arithmetic identical to the serial driver's loop.
  ExpectedComplexityEstimate est;
  est.n = n;
  est.samples = samples;
  est.min_winner_ops = ~std::uint64_t{0};
  int terminated = 0;
  int winner_samples = 0;
  double sum_winner = 0.0;
  double sum_max = 0.0;
  for (const SampleOutcome& o : outcomes) {
    if (!o.terminated) continue;
    ++terminated;
    sum_max += static_cast<double>(o.max_ops);
    if (!o.has_winner) {
      ++est.spec_violations;
      continue;
    }
    ++winner_samples;
    sum_winner += static_cast<double>(o.winner_ops);
    est.min_winner_ops = std::min(est.min_winner_ops, o.winner_ops);
  }
  est.termination_rate =
      static_cast<double>(terminated) / static_cast<double>(samples);
  if (winner_samples > 0) est.mean_winner_ops = sum_winner / winner_samples;
  if (terminated > 0) est.mean_max_ops = sum_max / terminated;
  est.bound = est.termination_rate * log4(static_cast<double>(n));
  est.bound_met =
      winner_samples == 0 ||
      static_cast<double>(est.min_winner_ops) + 1e-9 >=
          log4(static_cast<double>(n));
  // The ~0 sentinel must not leak into printed/JSON rows when no sample
  // produced a winner.
  if (est.min_winner_ops == ~std::uint64_t{0}) est.min_winner_ops = 0;

  ParallelMcResult result;
  result.estimate = est;
  result.num_workers = num_workers;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.shards = std::move(shards);
  return result;
}

}  // namespace llsc
