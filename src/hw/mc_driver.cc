#include "hw/mc_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace llsc {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ParallelMcResult estimate_expected_complexity_parallel(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    int num_workers, const AdversaryOptions& adversary) {
  McRunOptions options;
  options.num_workers = num_workers;
  options.adversary = adversary;
  return estimate_expected_complexity_parallel(algo, n, samples, seed,
                                               options);
}

ParallelMcResult estimate_expected_complexity_parallel(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    const McRunOptions& options) {
  LLSC_EXPECTS(samples >= 1, "need at least one sample");
  const AdversaryOptions& adversary = options.adversary;
  const bool inject = options.fault != nullptr && options.fault->enabled();
  int num_workers = options.num_workers;
  if (num_workers <= 0) {
    num_workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  num_workers = std::min(num_workers, samples);

  // Sample seeds in serial draw order — the whole reproducibility story.
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(samples));
  Rng rng(seed);
  for (auto& s : seeds) s = rng.next_u64();

  std::vector<McSampleOutcome> outcomes(static_cast<std::size_t>(samples));
  std::atomic<int> cursor{0};
  std::vector<McShardStats> shards(static_cast<std::size_t>(num_workers));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_workers));

  const auto worker_loop = [&](int w) {
    const Clock::time_point w0 = Clock::now();
    McShardStats& stats = shards[static_cast<std::size_t>(w)];
    stats.worker = w;
    for (;;) {
      const int i = cursor.fetch_add(1);
      if (i >= samples) break;
      const std::uint64_t toss_seed = seeds[static_cast<std::size_t>(i)];
      // Per-sample plan derivation mirrors the serial estimator exactly —
      // a pure function of (base plan, toss seed), independent of which
      // worker claims the sample.
      FaultPlan sample_plan;
      if (inject) sample_plan = derive_sample_plan(*options.fault, toss_seed);
      outcomes[static_cast<std::size_t>(i)] =
          run_mc_sample(algo, n, toss_seed, adversary,
                        inject ? &sample_plan : nullptr, options.storage,
                        options.reclaimer);
      ++stats.samples_run;
    }
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - w0).count();
  };

  const Clock::time_point t0 = Clock::now();
  if (num_workers == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          worker_loop(w);
        } catch (...) {
          errors[static_cast<std::size_t>(w)] = std::current_exception();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }

  // Index-order fold — arithmetic identical to the serial driver's loop.
  ExpectedComplexityEstimate est;
  est.n = n;
  est.samples = samples;
  est.min_winner_ops = ~std::uint64_t{0};
  int terminated = 0;
  int winner_samples = 0;
  double sum_winner = 0.0;
  double sum_max = 0.0;
  for (const McSampleOutcome& o : outcomes) {
    if (!o.terminated) {
      if (o.status == RunStatus::kCrashed) {
        ++est.crashed_samples;
      } else {
        ++est.hung_samples;
      }
      continue;
    }
    ++terminated;
    sum_max += static_cast<double>(o.max_ops);
    if (!o.has_winner) {
      ++est.spec_violations;
      continue;
    }
    ++winner_samples;
    sum_winner += static_cast<double>(o.winner_ops);
    est.min_winner_ops = std::min(est.min_winner_ops, o.winner_ops);
  }
  est.termination_rate =
      static_cast<double>(terminated) / static_cast<double>(samples);
  if (winner_samples > 0) est.mean_winner_ops = sum_winner / winner_samples;
  if (terminated > 0) est.mean_max_ops = sum_max / terminated;
  est.bound = est.termination_rate * log4(static_cast<double>(n));
  est.bound_met =
      winner_samples == 0 ||
      static_cast<double>(est.min_winner_ops) + 1e-9 >=
          log4(static_cast<double>(n));
  // The ~0 sentinel must not leak into printed/JSON rows when no sample
  // produced a winner.
  if (est.min_winner_ops == ~std::uint64_t{0}) est.min_winner_ops = 0;

  ParallelMcResult result;
  result.estimate = est;
  result.num_workers = num_workers;
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.shards = std::move(shards);

  // Freeze every failing sample (up to the cap) to a replayable artifact:
  // seed + effective plan + observed taxonomy and per-process op counts.
  if (!options.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.artifact_dir, ec);
    for (int i = 0;
         i < samples &&
         static_cast<int>(result.artifacts.size()) < McRunOptions::kMaxArtifacts;
         ++i) {
      const McSampleOutcome& o = outcomes[static_cast<std::size_t>(i)];
      if (o.status == RunStatus::kClean) continue;
      FaultArtifact artifact;
      artifact.scenario = options.scenario;
      artifact.n = n;
      artifact.sample_index = i;
      artifact.toss_seed = seeds[static_cast<std::size_t>(i)];
      artifact.max_rounds = adversary.max_rounds;
      artifact.status = o.status;
      artifact.proc_ops = o.proc_ops;
      artifact.storage = o.width.policy;
      artifact.overflow_events = o.width.overflow_events;
      artifact.max_bits = o.width.max_bits;
      artifact.boxed_fallback_registers = o.width.boxed_fallback_registers;
      artifact.reclaimer = o.reclaim.policy;
      artifact.nodes_retired = o.reclaim.nodes_retired;
      artifact.nodes_reclaimed = o.reclaim.nodes_freed;
      if (inject) {
        artifact.plan = derive_sample_plan(*options.fault,
                                           artifact.toss_seed);
        // Adversarial samples embed their recorded decisions, turning the
        // online schedule into a pure, substrate-independent replay.
        artifact.plan.trace = o.decision_trace;
      }
      const std::string path =
          options.artifact_dir + "/fault_sample_" + std::to_string(i) +
          ".json";
      std::ofstream file(path);
      if (!file) continue;
      file << artifact.to_json();
      if (file.good()) result.artifacts.push_back(path);
    }
  }
  return result;
}

}  // namespace llsc
