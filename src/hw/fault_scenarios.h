// Named workload scenarios for fault replay.
//
// A FaultArtifact (hw/fault.h) records only data — seed, plan, observed
// taxonomy — so the replaying side must be able to rebuild the workload
// body from a name. This registry maps those names to ProcBody factories;
// the same names are used by the Monte-Carlo drivers when dumping
// artifacts and by examples/fault_replay.cpp + tools/replay_fault.py when
// feeding them back.
//
// The fixed_* scenarios execute a schedule-independent NUMBER of shared
// ops per process (their outcomes may differ, their counts cannot), which
// is what makes per-process op counts comparable bit-for-bit between the
// simulator's adversary schedule and the hw backend's free-running
// threads.
#ifndef LLSC_HW_FAULT_SCENARIOS_H_
#define LLSC_HW_FAULT_SCENARIOS_H_

#include <string>
#include <vector>

#include "runtime/process.h"

namespace llsc {

// Returns the body for `name`, or an empty ProcBody when unknown:
//   "tournament"            — tournament_wakeup()
//   "randomized_tournament" — randomized_tournament_wakeup()
//   "counter"               — counter_wakeup()
//   "fixed_swap"            — each process swaps its own register 8 times
//   "fixed_ll_sc"           — 8 x (LL; SC) on one shared register
//   "uc_single_register"    — 2 fetch&increments per process through a
//                             fixed-shape SingleRegisterUC
//   "uc_combining"          — 2 fetch&increments per process through
//                             CombiningUniversal's fixed two-attempt mode
//   "tas_fixed"             — fixed-shape randomized test-and-set
//                             (objects/tas.h): splitter chain + tournament
//                             + nil-preserving claim SCs, schedule-
//                             independent op count
//   "leader_fixed"          — tas_fixed plus one read of the claim
//                             register (objects/leader.h)
//   "tas_strict"            — the strict randomized TAS protocol
//                             (randomized_tas_body): deterministic safety,
//                             schedule-dependent op counts
//   "leader_strict"         — strict leader election on top of it
//                             (leader_election_body)
ProcBody fault_scenario(const std::string& name);

// Names accepted by fault_scenario, for CLI help text.
std::vector<std::string> fault_scenario_names();

}  // namespace llsc

#endif  // LLSC_HW_FAULT_SCENARIOS_H_
