// Deterministic fault injection for both execution substrates.
//
// The paper's Theorem 6.1 holds under an adversarial scheduler; real LL/SC
// hardware (and every LL/SC-from-CAS construction, Blelloch & Wei) is
// adversarial in one more way: SC and VL may fail *spuriously*, processes
// may be delayed arbitrarily, and processes may crash-stop. A FaultPlan
// turns those adversaries into a reproducible test input:
//
//   * spurious SC/VL failures — modelled as spurious *reservation loss*:
//     for process p's k-th shared-memory op, a pure hash of
//     (plan.seed, p, k) decides whether p's link on the target register is
//     spuriously lost. A lost link forces the SC/VL outcome to failure and
//     stays dead until p's next LL on that register, exactly like a lost
//     hardware reservation. The underlying memory is NOT written by a
//     forced-failed SC (the value reported is the register's current
//     value, as the paper's failed SC reports it).
//   * stalls — a per-op hash decides whether p is delayed before or after
//     the op and for how many bounded units. On the hw backend a unit is
//     `stall_unit_ns` of wall clock; on the simulator the scheduler
//     already owns time, so the decision is counted but costs nothing
//     (the Fig. 2 adversary *is* the delay adversary there).
//   * crash-stop — the plan names (process, after_ops) pairs; process p
//     halts forever when it is about to execute shared-memory op number
//     `after_ops` (0-based), i.e. after executing exactly `after_ops`
//     ops. Crashes happen only at op boundaries, so no register is ever
//     left torn.
//   * crash-RECOVERY — a crash entry may carry a RecoverySpec: after a
//     hash-decided delay of 1..delay_units stall units the process
//     rejoins, either resuming its suspended coroutine frame
//     (amnesia=false, a long pause) or restarting the body from scratch
//     with all private coroutine state lost (amnesia=true — the restarted
//     incarnation keeps its cumulative op/toss counters so the decision
//     and toss streams continue where the dead incarnation left off, and
//     its LL reservations are invalidated, never adopted). Every recovery
//     decision is pure in (plan.seed, p, incarnation), so crash→rejoin
//     schedules replay bit-for-bit across substrates.
//
// Every *oblivious* decision is a pure function of (plan.seed, p, k)
// where k counts p's *executed* shared-memory ops — never of wall-clock
// time or the cross-process interleaving. Two runs with the same plan,
// toss seed and algorithm therefore draw identical fault schedules on the
// hw backend and the simulator, which is what makes a failing schedule
// found on one substrate replayable on the other (tools/replay_fault.py).
//
// Adversarial placement (this file + hw/fault_adversary.h) relaxes purity
// on the *recording* side only: a FaultStrategy may observe the op stream
// (the paper's Fig. 2 adversary watches every process's knowledge) and
// spend a bounded fault budget online. Every decision it takes is
// appended to a DecisionTrace; the trace serializes into the FaultPlan
// JSON and a traced plan replays through a pure (p, k)-lookup — i.e. the
// oblivious path — bit-for-bit on either substrate. Record once, replay
// anywhere.
//
// Threading: the injector keeps one cache-line-padded lane per process;
// a lane is touched only by the thread running that process (the same
// contract HwMemory's ThreadCtx relies on). Aggregate stats() is for
// quiescent use.
//
// This header is intentionally free of heavy dependencies and fully
// inline, so llsc_core (the serial Lemma 3.1 estimator) and llsc_runtime
// (System) can consume it without linking llsc_hw; the JSON round-trip
// lives in fault.cc (llsc_hw), and the strategy implementations behind
// make_fault_strategy live in hw/fault_adversary.cc — compiled into
// llsc_core (see src/core/CMakeLists.txt) because every injector
// constructor (serial estimator included) must be able to build them.
#ifndef LLSC_HW_FAULT_H_
#define LLSC_HW_FAULT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memory/op.h"
#include "memory/reclaim_policy.h"
#include "memory/storage_policy.h"
#include "util/check.h"
#include "util/rng.h"

namespace llsc {

// Failure taxonomy for one run / Monte-Carlo sample. The hw backend and
// the simulator classify with the same precedence: a crash-stop explains
// the failure even when it also left peers hung.
enum class RunStatus : std::uint8_t {
  kClean = 0,          // terminated, spec satisfied (where one applies)
  kSpecViolation = 1,  // terminated but the object/wakeup spec was broken
  kCrashed = 2,        // >= 1 process crash-stopped; run did not terminate
  kHung = 3,           // did not terminate and nobody crashed (wedged)
};

inline const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kClean:
      return "clean";
    case RunStatus::kSpecViolation:
      return "spec-violation";
    case RunStatus::kCrashed:
      return "crashed";
    case RunStatus::kHung:
      return "hung";
  }
  return "unknown";
}

// How spurious SC/VL failures are *placed*. Oblivious is PR 3's behavior
// (pure per-op hash roll); Adaptive and Burst are adversarial strategies
// implemented in hw/fault_adversary.h.
enum class FaultStrategyKind : std::uint8_t {
  kOblivious = 0,  // pure hash roll, optionally budget-capped
  kAdaptive = 1,   // Fig. 2-style: fail the most knowledgeable process
  kBurst = 2,      // correlated windows of the per-process op index
};

inline const char* to_string(FaultStrategyKind kind) {
  switch (kind) {
    case FaultStrategyKind::kOblivious:
      return "oblivious";
    case FaultStrategyKind::kAdaptive:
      return "adaptive";
    case FaultStrategyKind::kBurst:
      return "burst";
  }
  return "unknown";
}

inline bool fault_strategy_from_string(const std::string& name,
                                       FaultStrategyKind* out) {
  if (name == "oblivious") {
    *out = FaultStrategyKind::kOblivious;
  } else if (name == "adaptive") {
    *out = FaultStrategyKind::kAdaptive;
  } else if (name == "burst") {
    *out = FaultStrategyKind::kBurst;
  } else {
    return false;
  }
  return true;
}

// One adversarial injection decision: "p's op_index-th executed op — an SC
// (or VL) whose link was still live — spuriously loses its reservation".
// `score` is a strategy diagnostic (the victim's knowledge-set size for
// Adaptive, the window ordinal for Burst, 0 for budgeted Oblivious); it is
// serialized so a replayed trace still explains *why* each SC was failed.
struct FaultDecision {
  ProcId proc = 0;
  std::uint64_t op_index = 0;
  bool is_vl = false;
  std::uint64_t score = 0;

  friend bool operator==(const FaultDecision& a, const FaultDecision& b) {
    return a.proc == b.proc && a.op_index == b.op_index &&
           a.is_vl == b.is_vl && a.score == b.score;
  }
};

// The full decision record of one run, sorted by (proc, op_index). A plan
// whose trace is non-empty is in *replay mode*: strategies and rates are
// ignored and exactly the traced (proc, op_index) pairs are failed — a
// pure per-process lookup, so replay keeps the oblivious determinism
// contract on both substrates.
struct DecisionTrace {
  std::vector<FaultDecision> decisions;

  bool empty() const { return decisions.empty(); }
  std::size_t size() const { return decisions.size(); }

  friend bool operator==(const DecisionTrace& a, const DecisionTrace& b) {
    return a.decisions == b.decisions;
  }
};

// Recovery directive attached to a crash. Defaults mean "no recovery"
// (PR 3 crash-stop), and a default spec is omitted from the JSON so old
// plans round-trip byte for byte.
struct RecoverySpec {
  // Upper bound of the hash-decided rejoin delay, in stall units of
  // `stall_unit_ns` wall-clock on the hw backend (the simulator counts
  // the units in FaultStats; schedule time there belongs to the
  // adversary). 0 means rejoin immediately.
  std::uint32_t delay_units = 0;
  // Total restarts the process may take across the whole run; 0 disables
  // recovery for this crash entry.
  std::uint32_t max_restarts = 0;
  // true: the coroutine frame is discarded and the body restarts from
  // scratch (private state lost, LL reservations invalidated). false: the
  // suspended frame resumes where it crashed — a pause, not a rebirth.
  bool amnesia = true;

  bool enabled() const { return max_restarts > 0; }

  friend bool operator==(const RecoverySpec& a, const RecoverySpec& b) {
    return a.delay_units == b.delay_units &&
           a.max_restarts == b.max_restarts && a.amnesia == b.amnesia;
  }
};

// Crash-stop directive: `proc` halts when about to execute its
// `after_ops`-th shared-memory operation (0-based), i.e. it executes
// exactly `after_ops` ops and then freezes — forever, unless `recovery`
// allows it to rejoin. Successive entries for one process are the crash
// points of successive incarnations (after_ops always counts cumulative
// executed ops).
struct CrashSpec {
  ProcId proc = 0;
  std::uint64_t after_ops = 0;
  RecoverySpec recovery;

  friend bool operator==(const CrashSpec& a, const CrashSpec& b) {
    return a.proc == b.proc && a.after_ops == b.after_ops &&
           a.recovery == b.recovery;
  }
};

// A complete, seeded fault schedule. JSON round-trip in fault.cc.
struct FaultPlan {
  // Seed of the per-op decision hash (independent of the toss seed).
  std::uint64_t seed = 0;
  // Probability that an SC (resp. VL) spuriously loses its reservation.
  double sc_fail_rate = 0.0;
  double vl_fail_rate = 0.0;
  // Probability that an op is stalled, and the stall length: uniform in
  // [1, max_stall_units] units of `stall_unit_ns` wall-clock nanoseconds
  // on the hw backend (simulator: decision counted, no wall cost).
  double stall_rate = 0.0;
  std::uint32_t max_stall_units = 0;
  std::uint32_t stall_unit_ns = 1000;
  std::vector<CrashSpec> crashes;
  // Adversarial placement (hw/fault_adversary.h). All defaults reproduce
  // PR 3's oblivious behavior and are omitted from the JSON when default,
  // so oblivious plans keep their schema byte-for-byte.
  FaultStrategyKind strategy = FaultStrategyKind::kOblivious;
  // Total spurious failures the strategy may inject. For kAdaptive this is
  // the adversary's budget (0 injects nothing); for kOblivious/kBurst it
  // caps the stream (0 = uncapped, the PR 3 semantics).
  std::uint64_t fault_budget = 0;
  // kBurst: fail every SC/VL whose per-process op index k satisfies
  // k % burst_period < burst_len (budget permitting).
  std::uint32_t burst_len = 0;
  std::uint32_t burst_period = 0;
  // Non-empty => replay mode: exactly these decisions are injected and
  // strategy/rates are ignored for SC/VL placement (stalls/crashes still
  // apply). Populated by recording runs; see DecisionTrace.
  DecisionTrace trace;

  bool has_trace() const { return !trace.empty(); }
  // True when at least one crash entry allows the process to rejoin.
  bool has_recovery() const {
    for (const CrashSpec& c : crashes) {
      if (c.recovery.enabled()) return true;
    }
    return false;
  }
  // True when the injector must consult a FaultStrategy object instead of
  // the inline oblivious hash roll.
  bool uses_strategy() const {
    return has_trace() || strategy != FaultStrategyKind::kOblivious ||
           fault_budget > 0;
  }

  bool enabled() const {
    return sc_fail_rate > 0.0 || vl_fail_rate > 0.0 ||
           (stall_rate > 0.0 && max_stall_units > 0) || !crashes.empty() ||
           has_trace() ||
           (strategy == FaultStrategyKind::kAdaptive && fault_budget > 0) ||
           (strategy == FaultStrategyKind::kBurst && burst_len > 0 &&
            burst_period > 0);
  }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.seed == b.seed && a.sc_fail_rate == b.sc_fail_rate &&
           a.vl_fail_rate == b.vl_fail_rate && a.stall_rate == b.stall_rate &&
           a.max_stall_units == b.max_stall_units &&
           a.stall_unit_ns == b.stall_unit_ns && a.crashes == b.crashes &&
           a.strategy == b.strategy && a.fault_budget == b.fault_budget &&
           a.burst_len == b.burst_len && a.burst_period == b.burst_period &&
           a.trace == b.trace;
  }

  // fault.cc (llsc_hw): schema documented in docs/fault_injection.md.
  std::string to_json() const;
  static bool from_json(const std::string& text, FaultPlan* out,
                        std::string* error);
};

// Per-sample plan derivation for Monte-Carlo sweeps: same fault *rates*,
// decision stream re-seeded from the sample's toss seed so samples draw
// independent schedules. Artifacts record the derived plan, so a replay
// needs no knowledge of the sweep that produced it.
inline FaultPlan derive_sample_plan(const FaultPlan& base,
                                    std::uint64_t toss_seed) {
  FaultPlan plan = base;
  plan.seed = mix64(base.seed ^ mix64(toss_seed ^ 0x5F4A7C15F39CC060ull));
  return plan;
}

// Decision counters, substrate-independent: they count *decisions*, never
// wall-clock, so a replay on the other substrate reproduces them exactly.
struct FaultStats {
  std::uint64_t ops = 0;  // ops routed through the injector
  std::uint64_t injected_sc_failures = 0;
  std::uint64_t injected_vl_failures = 0;
  std::uint64_t stalls = 0;
  std::uint64_t stall_units = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  // Injected rejoin delay, in stall units (wall time on hw; counted only
  // on the simulator — same convention as stall_units).
  std::uint64_t recovery_units = 0;
};

// Decision-hash machinery, at namespace scope so the strategy
// implementations (hw/fault_adversary.cc) roll *exactly* the stream the
// inline oblivious path rolls — a budgeted-oblivious run with the budget
// un-hit is bit-for-bit the PR 3 behavior.
inline constexpr std::uint64_t kFaultFailSalt = 0xC2B2AE3D27D4EB4Full;
inline constexpr std::uint64_t kFaultStallSalt = 0x9E3779B97F4A7C15ull;
inline constexpr std::uint64_t kFaultStallLenSalt = 0x165667B19E3779F9ull;
inline constexpr std::uint64_t kFaultStallPosSalt = 0x27D4EB2F165667C5ull;
inline constexpr std::uint64_t kFaultRecoverySalt = 0x85EBCA77C2B2AE63ull;

// Pure decision hash for p's k-th executed op under `seed`.
inline std::uint64_t fault_op_hash(std::uint64_t seed, ProcId p,
                                   std::uint64_t k) {
  return mix64(seed ^ mix64((static_cast<std::uint64_t>(p) + 1) *
                                0x9E3779B97F4A7C15ull ^
                            k));
}

// Uniform double in [0, 1) from a hash value.
inline double fault_unit_roll(std::uint64_t h) {
  return static_cast<double>(mix64(h) >> 11) * 0x1.0p-53;
}

// Placement policy seam behind FaultInjector. Implementations live in
// hw/fault_adversary.h|cc (compiled into llsc_core so the serial
// estimator can construct them; see src/core/CMakeLists.txt).
//
// Threading: decide()/observe() are called from the victim's own thread
// (one thread per process on the hw backend); adversarial implementations
// serialize internally — the serialized order under their lock *is* the
// observed history their decisions are deterministic in. snapshot_trace()
// is for quiescent use (after the run joined).
class FaultStrategy {
 public:
  virtual ~FaultStrategy() = default;

  // Decide whether p's k-th executed op — an SC or VL whose link is still
  // live — spuriously loses its reservation. `h` is the oblivious decision
  // hash fault_op_hash(plan.seed, p, k), so pure strategies can reproduce
  // the inline roll.
  virtual bool decide(ProcId p, std::uint64_t k, const PendingOp& op,
                      std::uint64_t h) = 0;

  // Observe the result of EVERY op routed through the injector, after it
  // executed (knowledge tracking for adaptive placement). Default: ignore.
  virtual void observe(ProcId p, std::uint64_t k, const PendingOp& op,
                       const OpResult& result) {
    (void)p;
    (void)k;
    (void)op;
    (void)result;
  }

  // p rejoined after a crash. Amnesia restarts lose all private state, so
  // a knowledge-tracking adversary (hw/fault_adversary.cc) resets what it
  // credits p with knowing — the restarted-process asymmetry the paper's
  // Fig. 2 adversary exploits. Default: ignore.
  virtual void on_recovery(ProcId p, bool amnesia) {
    (void)p;
    (void)amnesia;
  }

  // Snapshot the decisions recorded so far, sorted by (proc, op_index).
  virtual void snapshot_trace(DecisionTrace* out) const = 0;
};

// Builds the strategy a plan calls for (trace replay > adaptive > burst >
// budgeted oblivious). Returns nullptr when plan.uses_strategy() is false
// — the injector then keeps PR 3's inline path. Defined in
// hw/fault_adversary.cc (linked into llsc_core).
std::unique_ptr<FaultStrategy> make_fault_strategy(const FaultPlan& plan,
                                                   int num_processes);

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int num_processes) : plan_(plan) {
    lanes_.reserve(static_cast<std::size_t>(num_processes));
    for (int p = 0; p < num_processes; ++p) {
      lanes_.push_back(std::make_unique<Lane>());
    }
    // Per-process crash specs, sorted by after_ops: entry i is the crash
    // point of incarnation i (a lane cursor advances on recovery).
    // Without recovery only the first — the minimum — ever fires, which
    // is exactly the pre-recovery behavior.
    for (const CrashSpec& c : plan_.crashes) {
      crash_specs_[c.proc].push_back(c);
    }
    for (auto& [p, specs] : crash_specs_) {
      std::stable_sort(specs.begin(), specs.end(),
                       [](const CrashSpec& a, const CrashSpec& b) {
                         return a.after_ops < b.after_ops;
                       });
    }
    if (plan_.uses_strategy()) {
      strategy_ = make_fault_strategy(plan_, num_processes);
    }
  }

  const FaultPlan& plan() const { return plan_; }
  int num_processes() const { return static_cast<int>(lanes_.size()); }

  // True when p, having executed `ops_done` shared-memory ops, must
  // crash-stop instead of executing the next one. The lane's crash cursor
  // points at the next unconsumed CrashSpec; a spec is consumed only by
  // note_recovery, so the cumulative op count cannot re-fire a crash the
  // process already took and recovered from.
  bool crash_pending(ProcId p, std::uint64_t ops_done) const {
    const CrashSpec* spec = current_crash_spec(p);
    return spec != nullptr && ops_done >= spec->after_ops;
  }
  // Overload using the injector's own executed-op count for p (the hw
  // platform wrapper has no Process to ask).
  bool crash_pending(ProcId p) const { return crash_pending(p, lane(p).ops); }

  // Record the crash (idempotent). The caller halts the process.
  void note_crash(ProcId p) {
    Lane& l = lane(p);
    if (!l.crashed) {
      l.crashed = true;
      ++l.stats.crashes;
    }
  }

  // Recovery directive of the crash that is pending or just fired for p
  // (the lane cursor's spec). Returns false — crash-stop is final — when
  // the spec carries no recovery or p exhausted its restart allowance.
  bool recovery_spec(ProcId p, RecoverySpec* out) const {
    const CrashSpec* spec = current_crash_spec(p);
    if (spec == nullptr || !spec->recovery.enabled()) return false;
    if (lane(p).restarts >= spec->recovery.max_restarts) return false;
    *out = spec->recovery;
    return true;
  }

  // True when p crashed and is allowed to rejoin (the simulator's
  // System::all_halted treats such a process as still runnable).
  bool recovery_pending(ProcId p) const {
    RecoverySpec spec;
    return lane(p).crashed && recovery_spec(p, &spec);
  }

  // Hash-decided rejoin delay for p's NEXT recovery, pure in
  // (plan.seed, p, incarnation): 1..delay_units stall units (0 when the
  // spec asks for no delay).
  std::uint32_t recovery_delay_units(ProcId p) const {
    RecoverySpec spec;
    if (!recovery_spec(p, &spec) || spec.delay_units == 0) return 0;
    const std::uint64_t h =
        fault_op_hash(plan_.seed, p, lane(p).incarnation) ^
        kFaultRecoverySalt;
    return 1 + static_cast<std::uint32_t>(mix64(h) % spec.delay_units);
  }

  // Consume the pending crash and rejoin p: advances the crash cursor (so
  // the cumulative op count cannot re-fire the consumed spec), bumps the
  // incarnation, and accounts the hash-decided delay. Returns the delay
  // in stall units — the hw substrates sleep it, the simulator only
  // counts it (the adversary owns schedule time there). Amnesia clears
  // the lane's spuriously-dead links: the new incarnation holds no
  // reservations at all, dead or alive.
  std::uint32_t note_recovery(ProcId p) {
    Lane& l = lane(p);
    RecoverySpec spec;
    LLSC_EXPECTS(recovery_spec(p, &spec),
                 "note_recovery without a pending recoverable crash");
    const std::uint32_t units = recovery_delay_units(p);
    l.crashed = false;
    ++l.crash_idx;
    ++l.restarts;
    ++l.incarnation;
    ++l.stats.recoveries;
    l.stats.recovery_units += units;
    if (spec.amnesia) l.dead_links.clear();
    if (strategy_ != nullptr) strategy_->on_recovery(p, spec.amnesia);
    return units;
  }

  // Incarnation counter of p's lane: 0 until the first recovery.
  std::uint32_t incarnation(ProcId p) const { return lane(p).incarnation; }

  // Execute p's next shared-memory op with faults applied. `exec` performs
  // a (possibly substituted) op against the real memory; `stall(units)` is
  // the substrate's delay primitive (wall-clock on hw, no-op on the
  // simulator). Must not be called when crash_pending(p) — the caller
  // handles crashes first. Called only from p's thread.
  template <typename Exec, typename Stall>
  OpResult apply(ProcId p, const PendingOp& op, Exec&& exec, Stall&& stall) {
    Lane& l = lane(p);
    const std::uint64_t k = l.ops++;
    ++l.stats.ops;
    const std::uint64_t h = op_hash(p, k);

    std::uint32_t before_units = 0;
    std::uint32_t after_units = 0;
    if (plan_.stall_rate > 0.0 && plan_.max_stall_units > 0 &&
        fault_unit_roll(h ^ kFaultStallSalt) < plan_.stall_rate) {
      const std::uint32_t units =
          1 + static_cast<std::uint32_t>(mix64(h ^ kFaultStallLenSalt) %
                                         plan_.max_stall_units);
      ++l.stats.stalls;
      l.stats.stall_units += units;
      // Position derived from the hash too: half the stalls land before
      // the op, half after.
      if (mix64(h ^ kFaultStallPosSalt) & 1) {
        before_units = units;
      } else {
        after_units = units;
      }
    }
    if (before_units != 0) stall(before_units);

    OpResult result;
    switch (op.kind) {
      case OpKind::kLL:
        // A fresh link supersedes any spuriously-lost one.
        l.dead_links.erase(op.reg);
        result = exec(op);
        break;
      case OpKind::kSC: {
        const bool already_dead = l.dead_links.count(op.reg) != 0;
        const bool spurious =
            !already_dead &&
            (strategy_ != nullptr
                 ? strategy_->decide(p, k, op, h)
                 : plan_.sc_fail_rate > 0.0 &&
                       fault_unit_roll(h ^ kFaultFailSalt) <
                           plan_.sc_fail_rate);
        if (spurious) {
          l.dead_links.insert(op.reg);
          ++l.stats.injected_sc_failures;
        }
        if (already_dead || spurious) {
          // The reservation is gone: the SC fails without touching memory
          // and reports the register's current value (the paper's failed-SC
          // response), fetched via a read-only probe.
          PendingOp probe;
          probe.kind = OpKind::kValidate;
          probe.reg = op.reg;
          result = exec(probe);
          result.flag = false;
        } else {
          result = exec(op);
        }
        break;
      }
      case OpKind::kValidate: {
        const bool already_dead = l.dead_links.count(op.reg) != 0;
        const bool spurious =
            !already_dead &&
            (strategy_ != nullptr
                 ? strategy_->decide(p, k, op, h)
                 : plan_.vl_fail_rate > 0.0 &&
                       fault_unit_roll(h ^ kFaultFailSalt) <
                           plan_.vl_fail_rate);
        if (spurious) {
          l.dead_links.insert(op.reg);
          ++l.stats.injected_vl_failures;
        }
        result = exec(op);
        if (already_dead || spurious) result.flag = false;
        break;
      }
      default:
        result = exec(op);
        break;
    }
    if (strategy_ != nullptr) strategy_->observe(p, k, op, result);

    if (after_units != 0) stall(after_units);
    return result;
  }

  // Executed-op count of p's lane (equals Process::shared_ops() when every
  // op is routed through apply()).
  std::uint64_t ops_executed(ProcId p) const { return lane(p).ops; }

  // The placement strategy in effect (nullptr on the inline oblivious
  // path) and the decisions it recorded. Quiescent use only.
  const FaultStrategy* strategy() const { return strategy_.get(); }
  DecisionTrace trace() const {
    DecisionTrace t;
    if (strategy_ != nullptr) strategy_->snapshot_trace(&t);
    return t;
  }

  // Aggregate decision counters; quiescent use only.
  FaultStats stats() const {
    FaultStats s;
    for (const auto& l : lanes_) {
      s.ops += l->stats.ops;
      s.injected_sc_failures += l->stats.injected_sc_failures;
      s.injected_vl_failures += l->stats.injected_vl_failures;
      s.stalls += l->stats.stalls;
      s.stall_units += l->stats.stall_units;
      s.crashes += l->stats.crashes;
      s.recoveries += l->stats.recoveries;
      s.recovery_units += l->stats.recovery_units;
    }
    return s;
  }

 private:
  struct alignas(64) Lane {
    std::uint64_t ops = 0;
    bool crashed = false;
    // Cursor into the process's sorted CrashSpec list: the next
    // unconsumed crash. Advanced by note_recovery only.
    std::uint32_t crash_idx = 0;
    std::uint32_t restarts = 0;
    std::uint32_t incarnation = 0;
    // Registers whose reservation was spuriously lost and not yet
    // refreshed by an LL ("link dead" in the injected model).
    std::unordered_set<RegId> dead_links;
    FaultStats stats;
  };

  Lane& lane(ProcId p) { return *lanes_[static_cast<std::size_t>(p)]; }
  const Lane& lane(ProcId p) const {
    return *lanes_[static_cast<std::size_t>(p)];
  }

  // The CrashSpec p's lane cursor points at, nullptr when exhausted.
  const CrashSpec* current_crash_spec(ProcId p) const {
    const auto it = crash_specs_.find(p);
    if (it == crash_specs_.end()) return nullptr;
    const Lane& l = lane(p);
    if (l.crash_idx >= it->second.size()) return nullptr;
    return &it->second[l.crash_idx];
  }

  // Pure decision hash for p's k-th executed op.
  std::uint64_t op_hash(ProcId p, std::uint64_t k) const {
    return fault_op_hash(plan_.seed, p, k);
  }

  FaultPlan plan_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unordered_map<ProcId, std::vector<CrashSpec>> crash_specs_;
  std::unique_ptr<FaultStrategy> strategy_;
};

// One failing Monte-Carlo sample, frozen to disk so `fault_replay` /
// tools/replay_fault.py can reproduce it bit-for-bit (same taxonomy, same
// per-process op counts) on either substrate. JSON round-trip in fault.cc.
struct FaultArtifact {
  // Name of a registered scenario (hw/fault_scenarios.h); "custom" means
  // the producing driver ran an unregistered body and the artifact only
  // documents the failure.
  std::string scenario = "custom";
  int n = 0;
  int sample_index = -1;
  std::uint64_t toss_seed = 0;
  int max_rounds = 0;
  RunStatus status = RunStatus::kClean;
  std::vector<std::uint64_t> proc_ops;  // per-process t(p) at halt
  FaultPlan plan;                       // effective (already derived) plan
  // Register-storage accounting of the failing sample
  // (memory/storage_policy.h). Serialized only when the policy is not
  // kBoxed, so artifacts produced by boxed runs keep the PR 3/4 schema
  // byte for byte; parsed as optional with kBoxed defaults.
  StoragePolicy storage = StoragePolicy::kBoxed;
  std::uint64_t overflow_events = 0;
  std::size_t max_bits = 0;
  std::uint64_t boxed_fallback_registers = 0;
  // Node-reclamation accounting of the failing sample
  // (memory/reclaim_policy.h). Same byte-stability contract as the storage
  // block: serialized only when the policy is not kEpoch, so artifacts
  // produced by default-policy runs keep the existing schema byte for
  // byte; parsed as optional with kEpoch defaults.
  ReclaimPolicy reclaimer = ReclaimPolicy::kEpoch;
  std::uint64_t nodes_retired = 0;
  std::uint64_t nodes_reclaimed = 0;

  std::string to_json() const;
  static bool from_json(const std::string& text, FaultArtifact* out,
                        std::string* error);
};

}  // namespace llsc

#endif  // LLSC_HW_FAULT_H_
