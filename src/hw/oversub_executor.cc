#include "hw/oversub_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "hw/run_support.h"
#include "util/check.h"

namespace llsc {

namespace {

using hw_internal::CancelledSignal;
using hw_internal::Clock;
using hw_internal::CrashStopSignal;
using hw_internal::MonitoredHwPlatform;
using hw_internal::RunMonitor;
using hw_internal::Watchdog;

// The monitored platform plus the yield policy: after an op executed
// inline, decide whether the coroutine gives its carrier thread back.
// ops_since_yield_ is indexed by ProcId and only ever touched from the
// carrier thread currently running that process (a process's steps are
// serialized by the run queue), so plain integers suffice.
class OversubPlatform final : public MonitoredHwPlatform {
 public:
  OversubPlatform(HwMemory* memory,
                  std::shared_ptr<const TossAssignment> tosses,
                  FaultInjector* injector, RunMonitor* monitor,
                  std::uint32_t stall_unit_ns, YieldPolicy policy,
                  std::uint32_t every_k, int m)
      : MonitoredHwPlatform(memory, std::move(tosses), injector, monitor,
                            stall_unit_ns),
        policy_(policy),
        every_k_(std::max<std::uint32_t>(1, every_k)),
        ops_since_yield_(static_cast<std::size_t>(m), 0) {}

  bool yield_after_op(ProcId p, const PendingOp& op,
                      const OpResult& result) override {
    switch (policy_) {
      case YieldPolicy::kEveryOp:
        return true;
      case YieldPolicy::kEveryK: {
        std::uint32_t& c = ops_since_yield_[static_cast<std::size_t>(p)];
        if (++c >= every_k_) {
          c = 0;
          return true;
        }
        return false;
      }
      case YieldPolicy::kOnScFailure:
        return op.kind == OpKind::kSC && !result.flag;
    }
    return false;
  }

  bool yield_now(ProcId p) override {
    (void)p;
    return true;
  }

 private:
  YieldPolicy policy_;
  std::uint32_t every_k_;
  std::vector<std::uint32_t> ops_since_yield_;
};

// One run-queue shard per carrier thread. A worker pops its own shard
// from the front (FIFO keeps arrival order, which keeps service-mode
// latencies honest) and steals from a sibling's back when dry.
struct alignas(64) Shard {
  std::mutex mu;
  std::deque<Process*> q;
};

// Pool-wide scheduler state. The idle protocol mirrors the register
// ParkSpot protocol: every push bumps work_epoch and wakes registered
// waiters; an idle worker snapshots the epoch BEFORE its scan and hands
// the (word, snapshot) pair to Backoff::on_failure, whose post-register
// re-check closes the push-after-scan/park-before-wake window exactly
// like the register-side lost-wakeup fix.
struct SchedState {
  SchedState(int num_threads, Waiter* waiter)
      : shards(static_cast<std::size_t>(num_threads)), waiter(waiter) {}

  void push(int shard_idx, Process* proc) {
    {
      Shard& s = shards[static_cast<std::size_t>(shard_idx)];
      std::lock_guard<std::mutex> lock(s.mu);
      s.q.push_back(proc);
    }
    work_epoch.fetch_add(1, std::memory_order_seq_cst);
    if (idle_spot.waiters.load(std::memory_order_seq_cst) != 0) {
      idle_spot.seq.fetch_add(1, std::memory_order_seq_cst);
      waiter->wake_all(idle_spot.seq);
    }
  }

  // Termination / cancellation: wake every idle worker unconditionally.
  void broadcast() {
    work_epoch.fetch_add(1, std::memory_order_seq_cst);
    idle_spot.seq.fetch_add(1, std::memory_order_seq_cst);
    waiter->wake_all(idle_spot.seq);
  }

  Process* pop(int w, std::uint64_t* steals) {
    {
      Shard& own = shards[static_cast<std::size_t>(w)];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.q.empty()) {
        Process* proc = own.q.front();
        own.q.pop_front();
        return proc;
      }
    }
    const int n = static_cast<int>(shards.size());
    for (int d = 1; d < n; ++d) {
      Shard& victim = shards[static_cast<std::size_t>((w + d) % n)];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.q.empty()) {
        Process* proc = victim.q.back();
        victim.q.pop_back();
        ++*steals;
        return proc;
      }
    }
    return nullptr;
  }

  std::vector<Shard> shards;
  Waiter* waiter;
  std::atomic<std::uint64_t> work_epoch{0};
  ParkSpot idle_spot;
  std::atomic<int> remaining{0};
};

}  // namespace

const char* to_string(YieldPolicy policy) {
  switch (policy) {
    case YieldPolicy::kEveryOp:
      return "every-op";
    case YieldPolicy::kEveryK:
      return "every-k";
    case YieldPolicy::kOnScFailure:
      return "on-sc-failure";
  }
  LLSC_UNREACHABLE("bad YieldPolicy");
}

OversubscribedExecutor::OversubscribedExecutor(OversubRunOptions options)
    : options_(std::move(options)) {}

HwRunResult OversubscribedExecutor::run(int m, const ProcBody& body) {
  LLSC_EXPECTS(m >= 1, "an execution needs at least one process");
  int num_threads = options_.num_threads > 0
                        ? options_.num_threads
                        : static_cast<int>(std::thread::hardware_concurrency());
  if (num_threads < 1) num_threads = 1;
  // More carriers than processes is pure overhead: the extras would only
  // ever spin on empty shards.
  num_threads = std::min(num_threads, m);

  // M per-process contexts: links and backoff state are keyed by ProcId,
  // which is what makes a coroutine's migration between carrier threads
  // invisible to the memory (see the header's contract). Reclamation slots
  // follow the policy: epochs keep one slot per logical process (the
  // pre-seam layout), hazard pointers get one slot per carrier thread —
  // N hazard words instead of M — bound below via CarrierBinding. That is
  // sound because no protection spans a yield: operations bracket their
  // protections internally, and coroutines yield only between operations.
  const bool carrier_slots =
      options_.reclaimer == ReclaimPolicy::kHazard;
  HwMemory memory(options_.num_registers, m, options_.backoff,
                  options_.storage, options_.reclaimer,
                  carrier_slots ? num_threads : 0);
  if (!options_.register_groups.empty()) {
    memory.set_register_groups(options_.register_groups);
  }
  std::shared_ptr<const TossAssignment> tosses = options_.tosses;
  if (!tosses) {
    tosses = std::make_shared<SeededTossAssignment>(options_.seed);
  }
  const bool inject =
      options_.fault != nullptr && options_.fault->enabled();
  std::optional<FaultInjector> injector;
  if (inject) injector.emplace(*options_.fault, m);
  RunMonitor monitor(m);
  OversubPlatform platform(
      &memory, tosses, injector ? &*injector : nullptr, &monitor,
      inject ? options_.fault->stall_unit_ns : 0, options_.yield_policy,
      options_.yield_every_k, m);

  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(static_cast<std::size_t>(m));
  for (ProcId i = 0; i < m; ++i) {
    auto proc = std::make_unique<Process>(i, m);
    proc->set_platform(&platform);
    proc->attach(body(ProcCtx(proc.get()), i, m));
    procs.push_back(std::move(proc));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));
  std::vector<HwProcOutcome> outcome(static_cast<std::size_t>(m),
                                     HwProcOutcome::kDone);

  Waiter* waiter = options_.backoff.waiter != nullptr
                       ? options_.backoff.waiter
                       : &Waiter::system();
  SchedState sched(num_threads, waiter);
  sched.remaining.store(m, std::memory_order_relaxed);
  // Initial placement p mod N, filled before any worker exists — no
  // signals needed yet.
  for (ProcId i = 0; i < m; ++i) {
    sched.shards[static_cast<std::size_t>(i % num_threads)].q.push_back(
        procs[static_cast<std::size_t>(i)].get());
  }

  // Idle-worker backoff: always the parking tier (that is the point of a
  // pool), whatever the memory-side policy is; the waiter is shared so
  // tests can stub both sides at once.
  BackoffOptions idle_options;
  idle_options.policy = BackoffPolicy::kAdaptiveParking;
  idle_options.park_threshold = 2;
  idle_options.waiter = waiter;

  std::mutex stats_mutex;
  HwSchedStats sched_stats;
  sched_stats.num_threads = num_threads;
  sched_stats.num_procs = m;

  const auto worker_fn = [&](int w) {
    // Under a carrier-slot reclaimer (hazard pointers), every protection
    // this worker's coroutines take is charged to slot w for the worker's
    // lifetime — protections are per-operation, so nothing leaks across a
    // migration. The binding is a thread_local and unwinds on exit.
    std::optional<Reclaimer::CarrierBinding> reclaim_binding;
    if (memory.reclaimer().carrier_slots()) {
      reclaim_binding.emplace(memory.reclaimer(), w);
    }
    Backoff idle(idle_options);
    std::uint64_t resumes = 0;
    std::uint64_t yields = 0;
    std::uint64_t steals = 0;
    for (;;) {
      if (sched.remaining.load(std::memory_order_acquire) == 0) break;
      if (monitor.cancel.load(std::memory_order_relaxed)) break;
      // Epoch snapshot precedes the scan: a push landing mid-scan moves
      // the epoch, and the park's re-check sees it.
      const std::uint64_t epoch =
          sched.work_epoch.load(std::memory_order_seq_cst);
      Process* proc = sched.pop(w, &steals);
      if (proc == nullptr) {
        idle.on_failure(&sched.idle_spot, &sched.work_epoch, epoch);
        continue;
      }
      idle.on_success();
      const ProcId pid = proc->id();
      const std::size_t s = static_cast<std::size_t>(pid);
      monitor.note_sched(pid);
      ++resumes;
      bool finished = false;
      try {
        if (proc->step_kind() == StepKind::kNotStarted) {
          proc->start();
        } else {
          proc->resume_yielded();
        }
        if (proc->step_kind() == StepKind::kYielded) {
          ++yields;
          sched.push(w, proc);  // locality: back on this worker's shard
        } else {
          finished = true;
        }
      } catch (const CrashStopSignal&) {
        // Only amnesiac (or unrecoverable) crashes unwind to here — a
        // pause-and-resume recovery is served inline by the platform. If
        // the plan owes this process a restart, serve the rejoin delay on
        // this carrier, drop the dead incarnation's reservations, respawn
        // the coroutine, and re-queue it on this worker's shard; it is
        // neither finished (remaining stays put) nor hung.
        bool restarted = false;
        RecoverySpec rspec;
        if (injector && injector->recovery_spec(pid, &rspec)) {
          const std::uint32_t units = injector->note_recovery(pid);
          try {
            platform.recovery_wait(pid, units);
            memory.invalidate_links(pid);
            monitor.note_restart(pid);
            proc->restart(body);
            sched.push(w, proc);
            restarted = true;
          } catch (const CancelledSignal&) {
            outcome[s] = HwProcOutcome::kHung;
          }
        } else {
          outcome[s] = HwProcOutcome::kCrashed;
        }
        finished = !restarted;
      } catch (const CancelledSignal&) {
        outcome[s] = HwProcOutcome::kHung;
        finished = true;
      } catch (...) {
        errors[s] = std::current_exception();
        outcome[s] = HwProcOutcome::kHung;
        // A failed body must not leave its peers running toward a result
        // the rethrow below will discard.
        monitor.cancel.store(true, std::memory_order_relaxed);
        finished = true;
      }
      if (finished) {
        monitor.progress[s].finished.store(true, std::memory_order_release);
        if (sched.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          sched.broadcast();  // the last finisher wakes every idle worker
        }
      }
    }
    // Cancellation path: hasten peers that are riding out a park timeout.
    sched.broadcast();
    const BackoffStats& b = idle.stats();
    std::lock_guard<std::mutex> lock(stats_mutex);
    sched_stats.resumes += resumes;
    sched_stats.yields += yields;
    sched_stats.steals += steals;
    sched_stats.idle_parks += b.parks;
    sched_stats.idle_park_skips += b.park_skips;
  };

  // Same start-gate pattern as HwExecutor: workers check in on `ready`
  // and hold on `gate` so the wall clock starts with the pool poised, and
  // a partial spawn failure can abort (-1) and join instead of wedging.
  std::atomic<int> ready{0};
  std::atomic<int> gate{0};  // 0 = hold, 1 = run, -1 = abort
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  const auto join_all = [&] {
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  };
  try {
    for (int w = 0; w < num_threads; ++w) {
      threads.emplace_back([&, w] {
        ready.fetch_add(1, std::memory_order_release);
        ready.notify_one();
        gate.wait(0, std::memory_order_acquire);
        if (gate.load(std::memory_order_acquire) < 0) return;
        worker_fn(w);
      });
    }
  } catch (...) {
    gate.store(-1, std::memory_order_release);
    gate.notify_all();
    join_all();
    throw;
  }
  for (int seen = ready.load(std::memory_order_acquire); seen < num_threads;
       seen = ready.load(std::memory_order_acquire)) {
    ready.wait(seen, std::memory_order_acquire);
  }
  const Clock::time_point t0 = Clock::now();
  gate.store(1, std::memory_order_release);
  gate.notify_all();

  Watchdog watchdog(
      &monitor,
      Watchdog::Config{
          .deadline_ms = options_.timeout_ms ? *options_.timeout_ms
                                             : default_hw_timeout_ms(),
          .progress_timeout_ms = options_.progress_timeout_ms,
          .poll_ms = options_.watchdog_poll_ms,
          .oversub_factor = static_cast<std::uint64_t>(
              (m + num_threads - 1) / num_threads)},
      t0);

  join_all();
  const Clock::time_point t1 = Clock::now();
  watchdog.stop();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  HwRunResult out;
  out.n = m;
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.cancelled = monitor.cancel.load(std::memory_order_relaxed);
  out.proc_status = outcome;
  out.results.resize(static_cast<std::size_t>(m));
  out.shared_ops.reserve(static_cast<std::size_t>(m));
  out.num_tosses.reserve(static_cast<std::size_t>(m));
  for (ProcId i = 0; i < m; ++i) {
    const auto& proc = procs[static_cast<std::size_t>(i)];
    const std::size_t s = static_cast<std::size_t>(i);
    if (outcome[s] == HwProcOutcome::kCrashed) {
      ++out.crashed_procs;
    } else if (outcome[s] == HwProcOutcome::kDone && proc->done()) {
      out.results[s] = proc->result();
    } else {
      // Includes coroutines still parked on a shard when the run was
      // cancelled: they are never resumed (destroying a suspended frame
      // is fine) and report as hung.
      out.proc_status[s] = HwProcOutcome::kHung;
      ++out.hung_procs;
    }
    out.shared_ops.push_back(proc->shared_ops());
    out.num_tosses.push_back(proc->num_tosses());
    out.max_shared_ops = std::max(out.max_shared_ops, proc->shared_ops());
    out.total_shared_ops += proc->shared_ops();
  }
  out.status = out.crashed_procs > 0
                   ? RunStatus::kCrashed
                   : (out.hung_procs > 0 ? RunStatus::kHung
                                         : RunStatus::kClean);
  out.ok = out.status == RunStatus::kClean;
  LLSC_CHECK(out.ok || inject || out.cancelled,
             "a process failed to run to completion on the pool");
  out.reclaim = memory.reclaim_stats();
  out.backoff = memory.backoff_stats();
  out.width = memory.width_stats();
  if (injector) {
    out.fault = injector->stats();
    out.decision_trace = injector->trace();
  }
  out.sched = sched_stats;
  return out;
}

}  // namespace llsc
