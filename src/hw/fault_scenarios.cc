#include "hw/fault_scenarios.h"

#include "memory/value.h"
#include "wakeup/algorithms.h"

namespace llsc {

namespace {

constexpr int kFixedRounds = 8;

// Each process hammers its own register: exactly kFixedRounds swaps per
// process, no cross-process data flow, so the per-process op count is 8
// on any substrate under any schedule or fault plan (short of a crash).
// Returns 1 so the wakeup-style winner scan sees a clean sample.
SimTask fixed_swap_body(ProcCtx ctx, ProcId i, int) {
  const RegId mine = static_cast<RegId>(i);
  for (int k = 0; k < kFixedRounds; ++k) {
    (void)co_await ctx.swap(mine, Value::of_u64(static_cast<std::uint64_t>(k)));
  }
  co_return Value::of_u64(1);
}

// kFixedRounds x (LL; SC) on ONE shared register: contended, so SC
// outcomes differ between substrates and injected spurious failures bite,
// but the op count is fixed at 2 * kFixedRounds per process regardless.
SimTask fixed_ll_sc_body(ProcCtx ctx, ProcId i, int) {
  for (int k = 0; k < kFixedRounds; ++k) {
    const Value cur = co_await ctx.ll(0);
    const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
    (void)co_await ctx.sc(
        0, Value::of_u64(base + static_cast<std::uint64_t>(i) + 1));
  }
  co_return Value::of_u64(1);
}

}  // namespace

ProcBody fault_scenario(const std::string& name) {
  if (name == "tournament") return tournament_wakeup();
  if (name == "randomized_tournament") return randomized_tournament_wakeup();
  if (name == "counter") return counter_wakeup();
  if (name == "fixed_swap") return &fixed_swap_body;
  if (name == "fixed_ll_sc") return &fixed_ll_sc_body;
  return {};
}

std::vector<std::string> fault_scenario_names() {
  return {"tournament", "randomized_tournament", "counter", "fixed_swap",
          "fixed_ll_sc"};
}

}  // namespace llsc
