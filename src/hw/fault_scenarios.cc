#include "hw/fault_scenarios.h"

#include <memory>

#include "memory/value.h"
#include "objects/arith.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "universal/combining.h"
#include "universal/single_register.h"
#include "wakeup/algorithms.h"

namespace llsc {

namespace {

constexpr int kFixedRounds = 8;
constexpr int kUcScenarioOps = 2;

// Each process hammers its own register: exactly kFixedRounds swaps per
// process, no cross-process data flow, so the per-process op count is 8
// on any substrate under any schedule or fault plan (short of a crash).
// Returns 1 so the wakeup-style winner scan sees a clean sample.
SimTask fixed_swap_body(ProcCtx ctx, ProcId i, int) {
  const RegId mine = static_cast<RegId>(i);
  for (int k = 0; k < kFixedRounds; ++k) {
    (void)co_await ctx.swap(mine, Value::of_u64(static_cast<std::uint64_t>(k)));
  }
  co_return Value::of_u64(1);
}

// kFixedRounds x (LL; SC) on ONE shared register: contended, so SC
// outcomes differ between substrates and injected spurious failures bite,
// but the op count is fixed at 2 * kFixedRounds per process regardless.
SimTask fixed_ll_sc_body(ProcCtx ctx, ProcId i, int) {
  for (int k = 0; k < kFixedRounds; ++k) {
    const Value cur = co_await ctx.ll(0);
    const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
    (void)co_await ctx.sc(
        0, Value::of_u64(base + static_cast<std::uint64_t>(i) + 1));
  }
  co_return Value::of_u64(1);
}

// Universal-construction scenarios: every process runs kUcScenarioOps
// fetch&increment operations through a FIXED-shape universal construction
// (single-register's two-attempt loop, or combining with a pinned attempt
// budget + full announce scans), so the per-process op count is schedule-
// independent even though SC outcomes, batch contents, and responses are
// not. Fault tolerance: neither shape faults when injected SC loss leaves
// an operation unapplied — single-register runs with tolerate_unapplied,
// combining's fixed mode returns nil by contract.
struct UcScenarioState {
  std::unique_ptr<UniversalConstruction> uc;
};

SimTask uc_scenario_worker(ProcCtx ctx,
                           std::shared_ptr<UcScenarioState> state) {
  for (int k = 0; k < kUcScenarioOps; ++k) {
    // Hoisted: braced temporaries may not appear in co_await expressions
    // (GCC 12 workaround; see runtime/sub_task.h).
    ObjOp op{"fetch&increment", {}};
    (void)co_await state->uc->execute(ctx, std::move(op));
  }
  co_return Value::of_u64(1);
}

ProcBody uc_scenario(bool combining) {
  // One construction per run, shared by the run's n processes. Both
  // substrates instantiate the bodies for processes 0..n-1 in ascending
  // order on the driving thread before any step executes, so "i == 0"
  // marks a run boundary and rebuilding there gives every run (including
  // the record and replay legs of one differential triple) a fresh,
  // identical starting state.
  // The incarnation guard keeps a crash-recovery restart of process 0
  // from rebuilding the construction mid-run: only incarnation 0's
  // instantiation marks a run boundary (the shared object survives a
  // crash; only the dead incarnation's private frame is lost).
  auto state = std::make_shared<UcScenarioState>();
  return [state, combining](ProcCtx ctx, ProcId i, int n) {
    if (i == 0 && ctx.incarnation() == 0) {
      ObjectFactory factory = [] {
        return std::make_unique<FetchAddObject>(64, 0);
      };
      if (combining) {
        state->uc = std::make_unique<CombiningUniversal>(
            n, std::move(factory), /*base=*/0,
            CombiningOptions{.max_attempts = 2, .scan_all = true});
      } else {
        state->uc = std::make_unique<SingleRegisterUC>(
            n, std::move(factory), /*base=*/0, /*tolerate_unapplied=*/true);
      }
    }
    return uc_scenario_worker(ctx, state);
  };
}

}  // namespace

ProcBody fault_scenario(const std::string& name) {
  if (name == "tournament") return tournament_wakeup();
  if (name == "randomized_tournament") return randomized_tournament_wakeup();
  if (name == "counter") return counter_wakeup();
  if (name == "fixed_swap") return &fixed_swap_body;
  if (name == "fixed_ll_sc") return &fixed_ll_sc_body;
  if (name == "uc_single_register") return uc_scenario(/*combining=*/false);
  if (name == "uc_combining") return uc_scenario(/*combining=*/true);
  // Fixed-shape TAS / leader election (objects/tas.h, objects/leader.h):
  // schedule-independent op counts, nil-preserving claim SCs, winnerless
  // completed runs allowed under forced-failure plans — the differential
  // sweep's record/replay contract applies verbatim.
  if (name == "tas_fixed") return fixed_shape_tas_body();
  if (name == "leader_fixed") return fixed_shape_leader_body();
  // Strict protocols: schedule-dependent op counts but deterministic
  // safety; registered so shrunk fuzzer artifacts replay by name.
  if (name == "tas_strict") return randomized_tas_body();
  if (name == "leader_strict") return leader_election_body();
  return {};
}

std::vector<std::string> fault_scenario_names() {
  return {"tournament",  "randomized_tournament", "counter",
          "fixed_swap",  "fixed_ll_sc",           "uc_single_register",
          "uc_combining", "tas_fixed",            "leader_fixed",
          "tas_strict",   "leader_strict"};
}

}  // namespace llsc
