#include "hw/hw_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "hw/run_support.h"
#include "sched/scheduler.h"
#include "runtime/system.h"
#include "util/check.h"

namespace llsc {

namespace {

using hw_internal::CancelledSignal;
using hw_internal::Clock;
using hw_internal::CrashStopSignal;
using hw_internal::MonitoredHwPlatform;
using hw_internal::RunMonitor;
using hw_internal::Watchdog;

// Process-wide timeout default; ~0 marks "not resolved yet" so the
// LLSC_TIMEOUT_MS environment variable is read lazily, after a test/bench
// main() had its chance to call set_default_hw_timeout_ms().
std::atomic<std::uint64_t> g_default_timeout_ms{~0ull};

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> sorted_or_not,
                            int pct) {
  if (sorted_or_not.empty()) return 0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const std::size_t last = sorted_or_not.size() - 1;
  const std::size_t idx = (last * static_cast<std::size_t>(pct)) / 100;
  return sorted_or_not[idx];
}

// The shared workload coroutine (free function — see the GCC 12 coroutine
// notes in src/runtime/sim_task.h): `ops` operations through the
// construction, per-op wall latency appended to *latencies, responses
// summed into the return value. On the hw platform every co_await runs
// inline, so the recorded latency is the true on-thread cost of one UC
// operation under contention; on the simulator it additionally spans the
// interleaved steps of other processes and only the aggregate rate is
// meaningful.
SimTask uc_workload_body(ProcCtx ctx, UniversalConstruction* uc, int ops,
                         const UcOpFactory* make_op,
                         std::vector<std::uint64_t>* latencies) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    ObjOp op = (*make_op)(ctx.id(), k);
    const Clock::time_point t0 = Clock::now();
    const Value r = co_await uc->execute(ctx, std::move(op));
    const Clock::time_point t1 = Clock::now();
    latencies->push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

UcThroughput summarize(int n, int ops_per_process, double wall_seconds,
                       std::vector<std::vector<std::uint64_t>> latencies,
                       const std::vector<std::uint64_t>& shared_ops,
                       std::uint64_t response_sum) {
  UcThroughput out;
  out.n = n;
  out.ops_per_process = ops_per_process;
  out.total_uc_ops =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(ops_per_process);
  out.wall_seconds = wall_seconds;
  out.ops_per_second =
      wall_seconds > 0 ? static_cast<double>(out.total_uc_ops) / wall_seconds
                       : 0.0;
  for (auto& per_proc : latencies) {
    out.latencies_ns.insert(out.latencies_ns.end(), per_proc.begin(),
                            per_proc.end());
  }
  out.latency_p50_ns = percentile_ns(out.latencies_ns, 50);
  out.latency_p99_ns = percentile_ns(out.latencies_ns, 99);
  for (std::uint64_t t : shared_ops) {
    out.max_shared_ops = std::max(out.max_shared_ops, t);
  }
  out.shared_ops_per_uc_op =
      ops_per_process > 0
          ? static_cast<double>(out.max_shared_ops) / ops_per_process
          : 0.0;
  out.response_sum = response_sum;
  return out;
}

}  // namespace

std::uint64_t default_hw_timeout_ms() {
  std::uint64_t v = g_default_timeout_ms.load(std::memory_order_relaxed);
  if (v != ~0ull) return v;
  v = 0;
  if (const char* env = std::getenv("LLSC_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) v = static_cast<std::uint64_t>(parsed);
  }
  g_default_timeout_ms.store(v, std::memory_order_relaxed);
  return v;
}

void set_default_hw_timeout_ms(std::uint64_t ms) {
  g_default_timeout_ms.store(ms, std::memory_order_relaxed);
}

std::uint64_t hw_timeout_scale() {
  static const std::uint64_t scale = [] {
    std::uint64_t v = 1;
    if (const char* env = std::getenv("LLSC_TIMEOUT_SCALE")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && parsed >= 1) v = static_cast<std::uint64_t>(parsed);
    }
    return v;
  }();
  return scale;
}

std::uint64_t scale_timeout_ms(std::uint64_t ms) {
  return ms * hw_timeout_scale();
}

HwExecutor::HwExecutor(HwRunOptions options) : options_(std::move(options)) {}

HwRunResult HwExecutor::run(int n, const ProcBody& body) {
  LLSC_EXPECTS(n >= 1, "an execution needs at least one process");
  HwMemory memory(options_.num_registers, n, options_.backoff,
                  options_.storage, options_.reclaimer);
  if (!options_.register_groups.empty()) {
    memory.set_register_groups(options_.register_groups);
  }
  std::shared_ptr<const TossAssignment> tosses = options_.tosses;
  if (!tosses) {
    tosses = std::make_shared<SeededTossAssignment>(options_.seed);
  }
  const bool inject =
      options_.fault != nullptr && options_.fault->enabled();
  std::optional<FaultInjector> injector;
  if (inject) injector.emplace(*options_.fault, n);
  RunMonitor monitor(n);
  MonitoredHwPlatform platform(
      &memory, tosses, injector ? &*injector : nullptr, &monitor,
      inject ? options_.fault->stall_unit_ns : 0);

  // Build control blocks and coroutine frames on the calling thread; a
  // frame first executes inside start() on its worker thread (SimTask's
  // initial suspend keeps attach() from running any body code here).
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    auto proc = std::make_unique<Process>(i, n);
    proc->set_platform(&platform);
    proc->attach(body(ProcCtx(proc.get()), i, n));
    procs.push_back(std::move(proc));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<HwProcOutcome> outcome(static_cast<std::size_t>(n),
                                     HwProcOutcome::kDone);
  // Start gate: workers check in on `ready` and block on `gate` until the
  // main thread flips it, so the wall clock starts when every worker is
  // poised at its first instruction rather than at spawn time. Unlike the
  // std::barrier this replaces, the gate has an abort value (-1): if
  // spawning thread j fails, threads 0..j-1 can be released and joined
  // instead of deadlocking the barrier forever.
  std::atomic<int> ready{0};
  std::atomic<int> gate{0};  // 0 = hold, 1 = run, -1 = abort
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  const auto join_all = [&] {
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  };
  try {
    for (ProcId i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        ready.fetch_add(1, std::memory_order_release);
        ready.notify_one();
        gate.wait(0, std::memory_order_acquire);
        if (gate.load(std::memory_order_acquire) < 0) return;
        const std::size_t s = static_cast<std::size_t>(i);
        for (;;) {
          try {
            // Synchronous platform: this runs the whole body (or, after a
            // restart, the new incarnation's body) to completion.
            procs[s]->start();
            break;
          } catch (const CrashStopSignal&) {
            // The signal unwound the coroutine (an await_suspend exception
            // is re-thrown inside the frame), so the Process block reads as
            // done-with-no-result; outcome[] is the source of truth here.
            // A pause-and-resume (amnesia=false) recovery never reaches
            // this catch — the platform serves it inline without
            // unwinding — so a recoverable crash here is an amnesiac
            // restart: serve the delay, drop the dead incarnation's
            // reservations, and respawn the body on this same thread.
            RecoverySpec rspec;
            if (injector && injector->recovery_spec(i, &rspec)) {
              const std::uint32_t units = injector->note_recovery(i);
              try {
                platform.recovery_wait(i, units);
              } catch (const CancelledSignal&) {
                outcome[s] = HwProcOutcome::kHung;
                break;
              }
              memory.invalidate_links(i);
              monitor.note_restart(i);
              procs[s]->restart(body);
              continue;
            }
            outcome[s] = HwProcOutcome::kCrashed;
            break;
          } catch (const CancelledSignal&) {
            outcome[s] = HwProcOutcome::kHung;
            break;
          } catch (...) {
            errors[s] = std::current_exception();
            outcome[s] = HwProcOutcome::kHung;
            // A failed body must not leave its peers running to a result
            // that will be discarded by the rethrow below — and with a
            // plan that crashes those peers' SC partners they might never
            // finish at all.
            monitor.cancel.store(true, std::memory_order_relaxed);
            break;
          }
        }
        monitor.progress[s].finished.store(true, std::memory_order_release);
      });
    }
  } catch (...) {
    gate.store(-1, std::memory_order_release);
    gate.notify_all();
    join_all();
    throw;
  }
  for (int seen = ready.load(std::memory_order_acquire); seen < n;
       seen = ready.load(std::memory_order_acquire)) {
    ready.wait(seen, std::memory_order_acquire);
  }
  // The clock starts just before the release (not after the join: on a
  // single-core host the OS may run a worker to completion before this
  // thread is rescheduled, which would shrink the measured window).
  const Clock::time_point t0 = Clock::now();
  gate.store(1, std::memory_order_release);
  gate.notify_all();

  // Watchdog (hw/run_support.h): deadline + progress stagnation, oversub
  // factor 1 — every logical process owns a thread here.
  Watchdog watchdog(
      &monitor,
      Watchdog::Config{
          .deadline_ms = options_.timeout_ms ? *options_.timeout_ms
                                             : default_hw_timeout_ms(),
          .progress_timeout_ms = options_.progress_timeout_ms,
          .poll_ms = options_.watchdog_poll_ms,
          .oversub_factor = 1},
      t0);

  join_all();
  const Clock::time_point t1 = Clock::now();
  watchdog.stop();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  HwRunResult out;
  out.n = n;
  out.wall_seconds = seconds_between(t0, t1);
  out.cancelled = monitor.cancel.load(std::memory_order_relaxed);
  out.proc_status = outcome;
  out.results.resize(static_cast<std::size_t>(n));
  out.shared_ops.reserve(static_cast<std::size_t>(n));
  out.num_tosses.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    const auto& proc = procs[static_cast<std::size_t>(i)];
    const std::size_t s = static_cast<std::size_t>(i);
    if (outcome[s] == HwProcOutcome::kCrashed) {
      ++out.crashed_procs;
    } else if (outcome[s] == HwProcOutcome::kDone && proc->done()) {
      out.results[s] = proc->result();
    } else {
      out.proc_status[s] = HwProcOutcome::kHung;
      ++out.hung_procs;
    }
    out.shared_ops.push_back(proc->shared_ops());
    out.num_tosses.push_back(proc->num_tosses());
    out.max_shared_ops = std::max(out.max_shared_ops, proc->shared_ops());
    out.total_shared_ops += proc->shared_ops();
  }
  out.status = out.crashed_procs > 0
                   ? RunStatus::kCrashed
                   : (out.hung_procs > 0 ? RunStatus::kHung
                                         : RunStatus::kClean);
  out.ok = out.status == RunStatus::kClean;
  // Without a fault plan or a watchdog firing, anything short of full
  // completion is an executor bug — keep the seed's loud failure.
  LLSC_CHECK(out.ok || inject || out.cancelled,
             "a process failed to run to completion on hw");
  out.reclaim = memory.reclaim_stats();
  out.backoff = memory.backoff_stats();
  out.width = memory.width_stats();
  if (injector) {
    out.fault = injector->stats();
    out.decision_trace = injector->trace();
  }
  return out;
}

UcThroughput run_uc_on_hw(HwExecutor& exec, UniversalConstruction& uc, int n,
                          int ops_per_process, const UcOpFactory& make_op) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  for (auto& v : latencies) {
    v.reserve(static_cast<std::size_t>(ops_per_process));
  }
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  const HwRunResult run = exec.run(n, body);
  std::uint64_t response_sum = 0;
  for (const Value& v : run.results) {
    if (v.holds_u64()) response_sum += v.as_u64();  // nil: crashed/hung proc
  }
  UcThroughput out =
      summarize(n, ops_per_process, run.wall_seconds, std::move(latencies),
                run.shared_ops, response_sum);
  out.status = run.status;
  out.fault = run.fault;
  return out;
}

UcThroughput run_uc_on_simulator(UniversalConstruction& uc, int n,
                                 int ops_per_process,
                                 const UcOpFactory& make_op,
                                 std::uint64_t seed) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  System sys(n, body, std::make_shared<SeededTossAssignment>(seed));
  sys.set_recording(false);
  const Clock::time_point t0 = Clock::now();
  RoundRobinScheduler sched;
  const bool done = sched.run(sys, 1ull << 40).all_terminated;
  const Clock::time_point t1 = Clock::now();
  LLSC_CHECK(done, "simulator workload did not terminate");
  std::uint64_t response_sum = 0;
  std::vector<std::uint64_t> shared_ops;
  shared_ops.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    response_sum += sys.process(p).result().as_u64();
    shared_ops.push_back(sys.process(p).shared_ops());
  }
  return summarize(n, ops_per_process, seconds_between(t0, t1),
                   std::move(latencies), shared_ops, response_sum);
}

}  // namespace llsc
