#include "hw/hw_executor.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "sched/scheduler.h"
#include "runtime/system.h"
#include "util/check.h"

namespace llsc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> sorted_or_not,
                            int pct) {
  if (sorted_or_not.empty()) return 0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const std::size_t last = sorted_or_not.size() - 1;
  const std::size_t idx = (last * static_cast<std::size_t>(pct)) / 100;
  return sorted_or_not[idx];
}

// The shared workload coroutine (free function — see the GCC 12 coroutine
// notes in src/runtime/sim_task.h): `ops` operations through the
// construction, per-op wall latency appended to *latencies, responses
// summed into the return value. On the hw platform every co_await runs
// inline, so the recorded latency is the true on-thread cost of one UC
// operation under contention; on the simulator it additionally spans the
// interleaved steps of other processes and only the aggregate rate is
// meaningful.
SimTask uc_workload_body(ProcCtx ctx, UniversalConstruction* uc, int ops,
                         const UcOpFactory* make_op,
                         std::vector<std::uint64_t>* latencies) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    ObjOp op = (*make_op)(ctx.id(), k);
    const Clock::time_point t0 = Clock::now();
    const Value r = co_await uc->execute(ctx, std::move(op));
    const Clock::time_point t1 = Clock::now();
    latencies->push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

UcThroughput summarize(int n, int ops_per_process, double wall_seconds,
                       std::vector<std::vector<std::uint64_t>> latencies,
                       const std::vector<std::uint64_t>& shared_ops,
                       std::uint64_t response_sum) {
  UcThroughput out;
  out.n = n;
  out.ops_per_process = ops_per_process;
  out.total_uc_ops =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(ops_per_process);
  out.wall_seconds = wall_seconds;
  out.ops_per_second =
      wall_seconds > 0 ? static_cast<double>(out.total_uc_ops) / wall_seconds
                       : 0.0;
  for (auto& per_proc : latencies) {
    out.latencies_ns.insert(out.latencies_ns.end(), per_proc.begin(),
                            per_proc.end());
  }
  out.latency_p50_ns = percentile_ns(out.latencies_ns, 50);
  out.latency_p99_ns = percentile_ns(out.latencies_ns, 99);
  for (std::uint64_t t : shared_ops) {
    out.max_shared_ops = std::max(out.max_shared_ops, t);
  }
  out.shared_ops_per_uc_op =
      ops_per_process > 0
          ? static_cast<double>(out.max_shared_ops) / ops_per_process
          : 0.0;
  out.response_sum = response_sum;
  return out;
}

}  // namespace

HwExecutor::HwExecutor(HwRunOptions options) : options_(std::move(options)) {}

HwRunResult HwExecutor::run(int n, const ProcBody& body) {
  LLSC_EXPECTS(n >= 1, "an execution needs at least one process");
  HwMemory memory(options_.num_registers, n, options_.backoff);
  std::shared_ptr<const TossAssignment> tosses = options_.tosses;
  if (!tosses) {
    tosses = std::make_shared<SeededTossAssignment>(options_.seed);
  }
  HwPlatform platform(&memory, tosses);

  // Build control blocks and coroutine frames on the calling thread; a
  // frame first executes inside start() on its worker thread (SimTask's
  // initial suspend keeps attach() from running any body code here).
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    auto proc = std::make_unique<Process>(i, n);
    proc->set_platform(&platform);
    proc->attach(body(ProcCtx(proc.get()), i, n));
    procs.push_back(std::move(proc));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  // n workers + this thread, so the wall clock starts when every worker
  // is poised at its first instruction rather than at spawn time.
  std::barrier sync(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      sync.arrive_and_wait();
      try {
        // Synchronous platform: this runs the whole body to completion.
        procs[static_cast<std::size_t>(i)]->start();
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
  }
  // The clock starts just before this thread's arrival releases the
  // barrier (not after: on a single-core host the OS may run a worker to
  // completion before this thread is rescheduled, which would shrink the
  // measured window to ~zero).
  const Clock::time_point t0 = Clock::now();
  sync.arrive_and_wait();
  for (auto& t : threads) t.join();
  const Clock::time_point t1 = Clock::now();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  HwRunResult out;
  out.n = n;
  out.wall_seconds = seconds_between(t0, t1);
  out.results.reserve(static_cast<std::size_t>(n));
  out.shared_ops.reserve(static_cast<std::size_t>(n));
  out.num_tosses.reserve(static_cast<std::size_t>(n));
  out.ok = true;
  for (const auto& proc : procs) {
    if (!proc->done()) {
      out.ok = false;
      continue;
    }
    out.results.push_back(proc->result());
    out.shared_ops.push_back(proc->shared_ops());
    out.num_tosses.push_back(proc->num_tosses());
    out.max_shared_ops = std::max(out.max_shared_ops, proc->shared_ops());
    out.total_shared_ops += proc->shared_ops();
  }
  LLSC_CHECK(out.ok, "a process failed to run to completion on hw");
  out.reclaim = memory.reclaim_stats();
  out.backoff = memory.backoff_stats();
  return out;
}

UcThroughput run_uc_on_hw(HwExecutor& exec, UniversalConstruction& uc, int n,
                          int ops_per_process, const UcOpFactory& make_op) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  for (auto& v : latencies) {
    v.reserve(static_cast<std::size_t>(ops_per_process));
  }
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  const HwRunResult run = exec.run(n, body);
  std::uint64_t response_sum = 0;
  for (const Value& v : run.results) response_sum += v.as_u64();
  return summarize(n, ops_per_process, run.wall_seconds, std::move(latencies),
                   run.shared_ops, response_sum);
}

UcThroughput run_uc_on_simulator(UniversalConstruction& uc, int n,
                                 int ops_per_process,
                                 const UcOpFactory& make_op,
                                 std::uint64_t seed) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  System sys(n, body, std::make_shared<SeededTossAssignment>(seed));
  sys.set_recording(false);
  const Clock::time_point t0 = Clock::now();
  RoundRobinScheduler sched;
  const bool done = sched.run(sys, 1ull << 40).all_terminated;
  const Clock::time_point t1 = Clock::now();
  LLSC_CHECK(done, "simulator workload did not terminate");
  std::uint64_t response_sum = 0;
  std::vector<std::uint64_t> shared_ops;
  shared_ops.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    response_sum += sys.process(p).result().as_u64();
    shared_ops.push_back(sys.process(p).shared_ops());
  }
  return summarize(n, ops_per_process, seconds_between(t0, t1),
                   std::move(latencies), shared_ops, response_sum);
}

}  // namespace llsc
