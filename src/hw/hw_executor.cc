#include "hw/hw_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "sched/scheduler.h"
#include "runtime/system.h"
#include "util/check.h"

namespace llsc {

namespace {

using Clock = std::chrono::steady_clock;

// Process-wide timeout default; ~0 marks "not resolved yet" so the
// LLSC_TIMEOUT_MS environment variable is read lazily, after a test/bench
// main() had its chance to call set_default_hw_timeout_ms().
std::atomic<std::uint64_t> g_default_timeout_ms{~0ull};

// Thrown (file-local) out of the monitored platform to unwind a worker's
// coroutine stack; caught in the worker lambda and turned into a per-
// process outcome. These never escape run().
struct CrashStopSignal {};
struct CancelledSignal {};

// Per-worker progress state, padded so the watchdog's reads don't share
// lines with the workers' increments.
struct alignas(64) WorkerProgress {
  std::atomic<std::uint64_t> steps{0};
  std::atomic<bool> finished{false};
};

// Shared run monitor: the cancel flag every worker polls at each shared
// step, plus the per-worker progress counters the watchdog watches.
struct RunMonitor {
  explicit RunMonitor(int n) : progress(static_cast<std::size_t>(n)) {}

  void check_cancel(ProcId p) const {
    if (cancel.load(std::memory_order_relaxed)) {
      (void)p;
      throw CancelledSignal{};
    }
  }
  void note_step(ProcId p) {
    progress[static_cast<std::size_t>(p)].steps.fetch_add(
        1, std::memory_order_relaxed);
  }

  std::atomic<bool> cancel{false};
  std::vector<WorkerProgress> progress;
};

// HwPlatform plus the robustness hooks: a cancellation checkpoint and a
// progress tick on every shared-memory op and toss, and (when a plan is
// installed) the fault injector in front of the memory. Worker bodies
// therefore observe watchdog cancellation and crash-stops as exceptions
// at step boundaries — a body that loops without ever taking a step
// cannot be cancelled (nothing can preempt a native thread), which is
// why tests keep a ctest-level timeout as backstop.
class MonitoredHwPlatform final : public Platform {
 public:
  MonitoredHwPlatform(HwMemory* memory,
                      std::shared_ptr<const TossAssignment> tosses,
                      FaultInjector* injector, RunMonitor* monitor,
                      std::uint32_t stall_unit_ns)
      : memory_(memory),
        tosses_(std::move(tosses)),
        injector_(injector),
        monitor_(monitor),
        stall_unit_ns_(stall_unit_ns) {}

  bool synchronous() const override { return true; }

  OpResult apply(ProcId p, const PendingOp& op) override {
    monitor_->check_cancel(p);
    OpResult result;
    if (injector_ != nullptr) {
      if (injector_->crash_pending(p)) {
        injector_->note_crash(p);
        throw CrashStopSignal{};
      }
      result = injector_->apply(
          p, op, [&](const PendingOp& o) { return memory_->apply(p, o); },
          [&](std::uint32_t units) { stall(p, units); });
    } else {
      result = memory_->apply(p, op);
    }
    monitor_->note_step(p);
    return result;
  }

  std::uint64_t toss(ProcId p, std::uint64_t j) override {
    monitor_->check_cancel(p);
    monitor_->note_step(p);
    return tosses_->outcome(p, j);
  }

  std::string name() const override { return "hw"; }

 private:
  // Injected delay: sleep unit by unit with a cancellation checkpoint per
  // unit, so a stalled worker still honours the watchdog promptly.
  void stall(ProcId p, std::uint32_t units) {
    for (std::uint32_t u = 0; u < units; ++u) {
      monitor_->check_cancel(p);
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_unit_ns_));
    }
  }

  HwMemory* memory_;
  std::shared_ptr<const TossAssignment> tosses_;
  FaultInjector* injector_;
  RunMonitor* monitor_;
  std::uint32_t stall_unit_ns_;
};

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t percentile_ns(std::vector<std::uint64_t> sorted_or_not,
                            int pct) {
  if (sorted_or_not.empty()) return 0;
  std::sort(sorted_or_not.begin(), sorted_or_not.end());
  const std::size_t last = sorted_or_not.size() - 1;
  const std::size_t idx = (last * static_cast<std::size_t>(pct)) / 100;
  return sorted_or_not[idx];
}

// The shared workload coroutine (free function — see the GCC 12 coroutine
// notes in src/runtime/sim_task.h): `ops` operations through the
// construction, per-op wall latency appended to *latencies, responses
// summed into the return value. On the hw platform every co_await runs
// inline, so the recorded latency is the true on-thread cost of one UC
// operation under contention; on the simulator it additionally spans the
// interleaved steps of other processes and only the aggregate rate is
// meaningful.
SimTask uc_workload_body(ProcCtx ctx, UniversalConstruction* uc, int ops,
                         const UcOpFactory* make_op,
                         std::vector<std::uint64_t>* latencies) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    ObjOp op = (*make_op)(ctx.id(), k);
    const Clock::time_point t0 = Clock::now();
    const Value r = co_await uc->execute(ctx, std::move(op));
    const Clock::time_point t1 = Clock::now();
    latencies->push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

UcThroughput summarize(int n, int ops_per_process, double wall_seconds,
                       std::vector<std::vector<std::uint64_t>> latencies,
                       const std::vector<std::uint64_t>& shared_ops,
                       std::uint64_t response_sum) {
  UcThroughput out;
  out.n = n;
  out.ops_per_process = ops_per_process;
  out.total_uc_ops =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(ops_per_process);
  out.wall_seconds = wall_seconds;
  out.ops_per_second =
      wall_seconds > 0 ? static_cast<double>(out.total_uc_ops) / wall_seconds
                       : 0.0;
  for (auto& per_proc : latencies) {
    out.latencies_ns.insert(out.latencies_ns.end(), per_proc.begin(),
                            per_proc.end());
  }
  out.latency_p50_ns = percentile_ns(out.latencies_ns, 50);
  out.latency_p99_ns = percentile_ns(out.latencies_ns, 99);
  for (std::uint64_t t : shared_ops) {
    out.max_shared_ops = std::max(out.max_shared_ops, t);
  }
  out.shared_ops_per_uc_op =
      ops_per_process > 0
          ? static_cast<double>(out.max_shared_ops) / ops_per_process
          : 0.0;
  out.response_sum = response_sum;
  return out;
}

}  // namespace

std::uint64_t default_hw_timeout_ms() {
  std::uint64_t v = g_default_timeout_ms.load(std::memory_order_relaxed);
  if (v != ~0ull) return v;
  v = 0;
  if (const char* env = std::getenv("LLSC_TIMEOUT_MS")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) v = static_cast<std::uint64_t>(parsed);
  }
  g_default_timeout_ms.store(v, std::memory_order_relaxed);
  return v;
}

void set_default_hw_timeout_ms(std::uint64_t ms) {
  g_default_timeout_ms.store(ms, std::memory_order_relaxed);
}

std::uint64_t hw_timeout_scale() {
  static const std::uint64_t scale = [] {
    std::uint64_t v = 1;
    if (const char* env = std::getenv("LLSC_TIMEOUT_SCALE")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && parsed >= 1) v = static_cast<std::uint64_t>(parsed);
    }
    return v;
  }();
  return scale;
}

std::uint64_t scale_timeout_ms(std::uint64_t ms) {
  return ms * hw_timeout_scale();
}

HwExecutor::HwExecutor(HwRunOptions options) : options_(std::move(options)) {}

HwRunResult HwExecutor::run(int n, const ProcBody& body) {
  LLSC_EXPECTS(n >= 1, "an execution needs at least one process");
  HwMemory memory(options_.num_registers, n, options_.backoff,
                  options_.storage);
  if (!options_.register_groups.empty()) {
    memory.set_register_groups(options_.register_groups);
  }
  std::shared_ptr<const TossAssignment> tosses = options_.tosses;
  if (!tosses) {
    tosses = std::make_shared<SeededTossAssignment>(options_.seed);
  }
  const bool inject =
      options_.fault != nullptr && options_.fault->enabled();
  std::optional<FaultInjector> injector;
  if (inject) injector.emplace(*options_.fault, n);
  RunMonitor monitor(n);
  MonitoredHwPlatform platform(
      &memory, tosses, injector ? &*injector : nullptr, &monitor,
      inject ? options_.fault->stall_unit_ns : 0);

  // Build control blocks and coroutine frames on the calling thread; a
  // frame first executes inside start() on its worker thread (SimTask's
  // initial suspend keeps attach() from running any body code here).
  std::vector<std::unique_ptr<Process>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    auto proc = std::make_unique<Process>(i, n);
    proc->set_platform(&platform);
    proc->attach(body(ProcCtx(proc.get()), i, n));
    procs.push_back(std::move(proc));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<HwProcOutcome> outcome(static_cast<std::size_t>(n),
                                     HwProcOutcome::kDone);
  // Start gate: workers check in on `ready` and block on `gate` until the
  // main thread flips it, so the wall clock starts when every worker is
  // poised at its first instruction rather than at spawn time. Unlike the
  // std::barrier this replaces, the gate has an abort value (-1): if
  // spawning thread j fails, threads 0..j-1 can be released and joined
  // instead of deadlocking the barrier forever.
  std::atomic<int> ready{0};
  std::atomic<int> gate{0};  // 0 = hold, 1 = run, -1 = abort
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  const auto join_all = [&] {
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  };
  try {
    for (ProcId i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        ready.fetch_add(1, std::memory_order_release);
        ready.notify_one();
        gate.wait(0, std::memory_order_acquire);
        if (gate.load(std::memory_order_acquire) < 0) return;
        const std::size_t s = static_cast<std::size_t>(i);
        try {
          // Synchronous platform: this runs the whole body to completion.
          procs[s]->start();
        } catch (const CrashStopSignal&) {
          // The signal unwound the coroutine (an await_suspend exception
          // is re-thrown inside the frame), so the Process block reads as
          // done-with-no-result; outcome[] is the source of truth here.
          outcome[s] = HwProcOutcome::kCrashed;
        } catch (const CancelledSignal&) {
          outcome[s] = HwProcOutcome::kHung;
        } catch (...) {
          errors[s] = std::current_exception();
          outcome[s] = HwProcOutcome::kHung;
          // A failed body must not leave its peers running to a result
          // that will be discarded by the rethrow below — and with a
          // plan that crashes those peers' SC partners they might never
          // finish at all.
          monitor.cancel.store(true, std::memory_order_relaxed);
        }
        monitor.progress[s].finished.store(true, std::memory_order_release);
      });
    }
  } catch (...) {
    gate.store(-1, std::memory_order_release);
    gate.notify_all();
    join_all();
    throw;
  }
  for (int seen = ready.load(std::memory_order_acquire); seen < n;
       seen = ready.load(std::memory_order_acquire)) {
    ready.wait(seen, std::memory_order_acquire);
  }
  // The clock starts just before the release (not after the join: on a
  // single-core host the OS may run a worker to completion before this
  // thread is rescheduled, which would shrink the measured window).
  const Clock::time_point t0 = Clock::now();
  gate.store(1, std::memory_order_release);
  gate.notify_all();

  // Watchdog: polls the deadline and the per-worker progress counters,
  // and flips the cancel flag when the run is out of budget or wedged.
  const std::uint64_t deadline_ms =
      options_.timeout_ms ? *options_.timeout_ms : default_hw_timeout_ms();
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool run_finished = false;
  std::thread watchdog;
  if (deadline_ms > 0 || options_.progress_timeout_ms > 0) {
    watchdog = std::thread([&] {
      const auto poll =
          std::chrono::milliseconds(std::max<std::uint64_t>(
              1, options_.watchdog_poll_ms));
      std::uint64_t last_sum = ~0ull;
      int last_finished = -1;
      Clock::time_point last_change = Clock::now();
      std::unique_lock<std::mutex> lock(watchdog_mutex);
      for (;;) {
        if (watchdog_cv.wait_for(lock, poll, [&] { return run_finished; })) {
          return;
        }
        const Clock::time_point now = Clock::now();
        if (deadline_ms > 0 &&
            now - t0 >= std::chrono::milliseconds(deadline_ms)) {
          monitor.cancel.store(true, std::memory_order_relaxed);
          continue;  // keep waiting for run_finished
        }
        if (options_.progress_timeout_ms > 0) {
          std::uint64_t sum = 0;
          int finished = 0;
          for (const WorkerProgress& w : monitor.progress) {
            sum += w.steps.load(std::memory_order_relaxed);
            finished += w.finished.load(std::memory_order_relaxed) ? 1 : 0;
          }
          if (sum != last_sum || finished != last_finished) {
            last_sum = sum;
            last_finished = finished;
            last_change = now;
          } else if (finished < n &&
                     now - last_change >= std::chrono::milliseconds(
                                              options_.progress_timeout_ms)) {
            monitor.cancel.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  join_all();
  const Clock::time_point t1 = Clock::now();
  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mutex);
      run_finished = true;
    }
    watchdog_cv.notify_all();
    watchdog.join();
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  HwRunResult out;
  out.n = n;
  out.wall_seconds = seconds_between(t0, t1);
  out.cancelled = monitor.cancel.load(std::memory_order_relaxed);
  out.proc_status = outcome;
  out.results.resize(static_cast<std::size_t>(n));
  out.shared_ops.reserve(static_cast<std::size_t>(n));
  out.num_tosses.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    const auto& proc = procs[static_cast<std::size_t>(i)];
    const std::size_t s = static_cast<std::size_t>(i);
    if (outcome[s] == HwProcOutcome::kCrashed) {
      ++out.crashed_procs;
    } else if (outcome[s] == HwProcOutcome::kDone && proc->done()) {
      out.results[s] = proc->result();
    } else {
      out.proc_status[s] = HwProcOutcome::kHung;
      ++out.hung_procs;
    }
    out.shared_ops.push_back(proc->shared_ops());
    out.num_tosses.push_back(proc->num_tosses());
    out.max_shared_ops = std::max(out.max_shared_ops, proc->shared_ops());
    out.total_shared_ops += proc->shared_ops();
  }
  out.status = out.crashed_procs > 0
                   ? RunStatus::kCrashed
                   : (out.hung_procs > 0 ? RunStatus::kHung
                                         : RunStatus::kClean);
  out.ok = out.status == RunStatus::kClean;
  // Without a fault plan or a watchdog firing, anything short of full
  // completion is an executor bug — keep the seed's loud failure.
  LLSC_CHECK(out.ok || inject || out.cancelled,
             "a process failed to run to completion on hw");
  out.reclaim = memory.reclaim_stats();
  out.backoff = memory.backoff_stats();
  out.width = memory.width_stats();
  if (injector) {
    out.fault = injector->stats();
    out.decision_trace = injector->trace();
  }
  return out;
}

UcThroughput run_uc_on_hw(HwExecutor& exec, UniversalConstruction& uc, int n,
                          int ops_per_process, const UcOpFactory& make_op) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  for (auto& v : latencies) {
    v.reserve(static_cast<std::size_t>(ops_per_process));
  }
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  const HwRunResult run = exec.run(n, body);
  std::uint64_t response_sum = 0;
  for (const Value& v : run.results) {
    if (v.holds_u64()) response_sum += v.as_u64();  // nil: crashed/hung proc
  }
  UcThroughput out =
      summarize(n, ops_per_process, run.wall_seconds, std::move(latencies),
                run.shared_ops, response_sum);
  out.status = run.status;
  out.fault = run.fault;
  return out;
}

UcThroughput run_uc_on_simulator(UniversalConstruction& uc, int n,
                                 int ops_per_process,
                                 const UcOpFactory& make_op,
                                 std::uint64_t seed) {
  std::vector<std::vector<std::uint64_t>> latencies(
      static_cast<std::size_t>(n));
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return uc_workload_body(ctx, &uc, ops_per_process, &make_op,
                            &latencies[static_cast<std::size_t>(i)]);
  };
  System sys(n, body, std::make_shared<SeededTossAssignment>(seed));
  sys.set_recording(false);
  const Clock::time_point t0 = Clock::now();
  RoundRobinScheduler sched;
  const bool done = sched.run(sys, 1ull << 40).all_terminated;
  const Clock::time_point t1 = Clock::now();
  LLSC_CHECK(done, "simulator workload did not terminate");
  std::uint64_t response_sum = 0;
  std::vector<std::uint64_t> shared_ops;
  shared_ops.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    response_sum += sys.process(p).result().as_u64();
    shared_ops.push_back(sys.process(p).shared_ops());
  }
  return summarize(n, ops_per_process, seconds_between(t0, t1),
                   std::move(latencies), shared_ops, response_sum);
}

}  // namespace llsc
