#include "hw/fault_adversary.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

// ---------------------------------------------------------------------------
// RecordingFaultStrategy

RecordingFaultStrategy::RecordingFaultStrategy(const FaultPlan& plan,
                                               bool budget_required)
    : unlimited_(!budget_required && plan.fault_budget == 0),
      budget_remaining_(plan.fault_budget) {}

void RecordingFaultStrategy::record(ProcId p, std::uint64_t k, bool is_vl,
                                    std::uint64_t score) {
  if (!unlimited_) {
    LLSC_CHECK(budget_remaining_ > 0, "recording past the fault budget");
    --budget_remaining_;
  }
  FaultDecision d;
  d.proc = p;
  d.op_index = k;
  d.is_vl = is_vl;
  d.score = score;
  trace_.decisions.push_back(d);
}

void RecordingFaultStrategy::snapshot_trace(DecisionTrace* out) const {
  std::lock_guard<std::mutex> guard(mu_);
  *out = trace_;
  std::sort(out->decisions.begin(), out->decisions.end(),
            [](const FaultDecision& a, const FaultDecision& b) {
              return a.proc != b.proc ? a.proc < b.proc
                                      : a.op_index < b.op_index;
            });
}

std::size_t RecordingFaultStrategy::decisions_recorded() const {
  std::lock_guard<std::mutex> guard(mu_);
  return trace_.decisions.size();
}

// ---------------------------------------------------------------------------
// ObliviousStrategy

ObliviousStrategy::ObliviousStrategy(const FaultPlan& plan)
    : RecordingFaultStrategy(plan, /*budget_required=*/false),
      sc_rate_(plan.sc_fail_rate),
      vl_rate_(plan.vl_fail_rate) {}

bool ObliviousStrategy::decide(ProcId p, std::uint64_t k, const PendingOp& op,
                               std::uint64_t h) {
  const bool is_vl = op.kind == OpKind::kValidate;
  const double rate = is_vl ? vl_rate_ : sc_rate_;
  // The exact inline-path roll: same hash, same salt, same threshold.
  if (!(rate > 0.0) || fault_unit_roll(h ^ kFaultFailSalt) >= rate) {
    return false;
  }
  std::lock_guard<std::mutex> guard(mu_);
  if (!budget_left()) return false;
  record(p, k, is_vl, /*score=*/0);
  return true;
}

// ---------------------------------------------------------------------------
// BurstStrategy

BurstStrategy::BurstStrategy(const FaultPlan& plan)
    : RecordingFaultStrategy(plan, /*budget_required=*/false),
      len_(plan.burst_len),
      period_(plan.burst_period) {}

bool BurstStrategy::decide(ProcId p, std::uint64_t k, const PendingOp& op,
                           std::uint64_t h) {
  (void)h;
  if (period_ == 0 || len_ == 0 || k % period_ >= len_) return false;
  std::lock_guard<std::mutex> guard(mu_);
  if (!budget_left()) return false;
  record(p, k, op.kind == OpKind::kValidate, /*score=*/k / period_);
  return true;
}

// ---------------------------------------------------------------------------
// KnowledgeModel

KnowledgeModel::KnowledgeModel(int num_processes)
    : n_(num_processes), live_links_(static_cast<std::size_t>(num_processes)) {
  know_.reserve(static_cast<std::size_t>(n_));
  for (ProcId p = 0; p < n_; ++p) know_.push_back(ProcSet::singleton(n_, p));
}

const ProcSet& KnowledgeModel::reg_knowledge(RegId reg) {
  auto it = reg_know_.find(reg);
  if (it == reg_know_.end()) {
    it = reg_know_.emplace(reg, ProcSet(n_)).first;
  }
  return it->second;
}

void KnowledgeModel::learn_from(ProcId p, RegId reg) {
  know_[static_cast<std::size_t>(p)].unite(reg_knowledge(reg));
}

void KnowledgeModel::publish(ProcId p, RegId reg) {
  reg_know_[reg] = know_[static_cast<std::size_t>(p)];
}

void KnowledgeModel::invalidate_links(RegId reg) {
  for (auto& links : live_links_) links.erase(reg);
}

void KnowledgeModel::set_reg_knowledge(RegId reg, ProcSet s) {
  reg_know_[reg] = std::move(s);
}

void KnowledgeModel::link(ProcId p, RegId reg) {
  live_links_[static_cast<std::size_t>(p)].insert(reg);
}

void KnowledgeModel::unlink(ProcId p, RegId reg) {
  live_links_[static_cast<std::size_t>(p)].erase(reg);
}

void KnowledgeModel::on_amnesia(ProcId p) {
  if (p < 0 || p >= n_) return;
  know_[static_cast<std::size_t>(p)] = ProcSet::singleton(n_, p);
  live_links_[static_cast<std::size_t>(p)].clear();
}

bool KnowledgeModel::has_live_link(ProcId p, RegId reg) const {
  return live_links_[static_cast<std::size_t>(p)].count(reg) != 0;
}

std::size_t KnowledgeModel::knowledge(ProcId p) const {
  LLSC_EXPECTS(p >= 0 && p < n_, "process id out of range");
  return know_[static_cast<std::size_t>(p)].count();
}

std::size_t KnowledgeModel::max_knowledge() const {
  std::size_t best = 0;
  for (const ProcSet& s : know_) best = std::max(best, s.count());
  return best;
}

ProcId KnowledgeModel::argmax_knowledge() const {
  const std::size_t best = max_knowledge();
  for (ProcId p = 0; p < n_; ++p) {
    if (know_[static_cast<std::size_t>(p)].count() == best) return p;
  }
  return -1;
}

void KnowledgeModel::observe(ProcId p, const PendingOp& op,
                             const OpResult& result) {
  if (p < 0 || p >= n_) return;
  switch (op.kind) {
    case OpKind::kLL:
      // Section 5.3 process rule 1: a load observes the register's
      // knowledge; a fresh link supersedes a lost one.
      learn_from(p, op.reg);
      link(p, op.reg);
      break;
    case OpKind::kValidate:
      learn_from(p, op.reg);
      if (!result.flag) unlink(p, op.reg);
      break;
    case OpKind::kSC:
      // A failed SC still reports the current value (learn); a
      // successful one additionally determines it (register rule 1) and
      // consumes every outstanding reservation on the register.
      learn_from(p, op.reg);
      if (result.flag) {
        publish(p, op.reg);
        invalidate_links(op.reg);
      } else {
        unlink(p, op.reg);
      }
      break;
    case OpKind::kSwap:
      // Swapper reads the old value, then determines the new one
      // (register rule 2); the write kills outstanding links.
      learn_from(p, op.reg);
      publish(p, op.reg);
      invalidate_links(op.reg);
      break;
    case OpKind::kMove: {
      // Register rule 3: destination gets source knowledge plus the
      // mover's; process rule 2: the mover itself learns nothing.
      ProcSet influx = reg_knowledge(op.src);
      influx.unite(know_[static_cast<std::size_t>(p)]);
      set_reg_knowledge(op.reg, std::move(influx));
      invalidate_links(op.reg);
      break;
    }
    case OpKind::kRmw:
      learn_from(p, op.reg);
      publish(p, op.reg);
      invalidate_links(op.reg);
      break;
  }
}

// ---------------------------------------------------------------------------
// AdaptiveStrategy

AdaptiveStrategy::AdaptiveStrategy(const FaultPlan& plan, int num_processes)
    : AdaptiveStrategy(plan, num_processes,
                       std::make_unique<KnowledgeModel>(num_processes)) {}

AdaptiveStrategy::AdaptiveStrategy(const FaultPlan& plan, int num_processes,
                                   std::unique_ptr<KnowledgeModel> model)
    : RecordingFaultStrategy(plan, /*budget_required=*/true),
      model_(std::move(model)) {
  LLSC_EXPECTS(model_ != nullptr, "adaptive strategy needs a model");
  LLSC_EXPECTS(model_->num_processes() == num_processes,
               "knowledge model sized for a different run");
}

void AdaptiveStrategy::retarget() {
  const std::size_t best = model_->max_knowledge();
  // Sticky: keep the current target while it remains an argmax, so the
  // budget starves one victim instead of spraying across ties.
  if (target_ >= 0 && model_->knowledge(target_) == best) {
    return;
  }
  target_ = model_->argmax_knowledge();
}

bool AdaptiveStrategy::decide(ProcId p, std::uint64_t k, const PendingOp& op,
                              std::uint64_t h) {
  (void)h;
  std::lock_guard<std::mutex> guard(mu_);
  if (!budget_left()) return false;
  // Don't waste budget on an SC that fails naturally: only live links.
  if (!model_->has_live_link(p, op.reg)) return false;
  retarget();
  if (p != target_) return false;
  record(p, k, op.kind == OpKind::kValidate,
         /*score=*/model_->knowledge(p));
  return true;
}

void AdaptiveStrategy::observe(ProcId p, std::uint64_t k, const PendingOp& op,
                               const OpResult& result) {
  (void)k;
  std::lock_guard<std::mutex> guard(mu_);
  model_->observe(p, op, result);
}

void AdaptiveStrategy::on_recovery(ProcId p, bool amnesia) {
  if (!amnesia) return;
  std::lock_guard<std::mutex> guard(mu_);
  model_->on_amnesia(p);
  // The sticky target may now point at a process that forgot everything;
  // the next decide() re-picks the argmax.
}

std::size_t AdaptiveStrategy::knowledge(ProcId p) const {
  std::lock_guard<std::mutex> guard(mu_);
  return model_->knowledge(p);
}

ProcId AdaptiveStrategy::current_target() const {
  std::lock_guard<std::mutex> guard(mu_);
  return target_;
}

// ---------------------------------------------------------------------------
// TraceReplayStrategy

TraceReplayStrategy::TraceReplayStrategy(const FaultPlan& plan,
                                         int num_processes)
    : fail_at_(static_cast<std::size_t>(num_processes)),
      trace_(plan.trace) {
  for (const FaultDecision& d : trace_.decisions) {
    LLSC_EXPECTS(d.proc >= 0 && d.proc < num_processes,
                 "trace decision names a process outside [0, n)");
    fail_at_[static_cast<std::size_t>(d.proc)].insert(d.op_index);
  }
}

bool TraceReplayStrategy::decide(ProcId p, std::uint64_t k,
                                 const PendingOp& op, std::uint64_t h) {
  (void)op;
  (void)h;
  return fail_at_[static_cast<std::size_t>(p)].count(k) != 0;
}

void TraceReplayStrategy::snapshot_trace(DecisionTrace* out) const {
  *out = trace_;
}

// ---------------------------------------------------------------------------

std::unique_ptr<FaultStrategy> make_fault_strategy(const FaultPlan& plan,
                                                   int num_processes) {
  if (!plan.uses_strategy()) return nullptr;
  // A recorded trace wins over everything: replay is pure and exact.
  if (plan.has_trace()) {
    return std::make_unique<TraceReplayStrategy>(plan, num_processes);
  }
  switch (plan.strategy) {
    case FaultStrategyKind::kAdaptive:
      return std::make_unique<AdaptiveStrategy>(plan, num_processes);
    case FaultStrategyKind::kBurst:
      return std::make_unique<BurstStrategy>(plan);
    case FaultStrategyKind::kOblivious:
      return std::make_unique<ObliviousStrategy>(plan);
  }
  return nullptr;
}

}  // namespace llsc
