#include "hw/service.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "hw/run_support.h"
#include "memory/rmw.h"
#include "objects/arith.h"
#include "universal/combining.h"
#include "util/check.h"
#include "util/rng.h"

namespace llsc {

namespace {

using Clock = std::chrono::steady_clock;

// Shared, read-only-during-run state the client bodies point at.
struct ServiceShared {
  Clock::time_point epoch;  // t = 0 of the arrival schedule
  ServiceWorkload workload = ServiceWorkload::kFetchInc;
  std::shared_ptr<const RmwFunction> inc;
  std::unique_ptr<UniversalConstruction> uc;  // kCombining only
};

// Deterministic arrival offsets (ns from epoch) for process p: i.i.d.
// exponential gaps with mean m/λ, so the superposition of the m per-
// process streams is Poisson with aggregate rate λ. Seeded per process,
// so the schedule is a pure function of (seed, p) — replayable, and
// independent of how coroutines migrate between carrier threads.
std::vector<std::uint64_t> arrival_schedule(std::uint64_t seed, ProcId p,
                                            int ops, double rate_hz, int m) {
  Rng rng(mix64(seed ^ 0x53B51CE5A10ADull ^
                (static_cast<std::uint64_t>(p) << 32)));
  const double mean_gap_ns =
      rate_hz > 0 ? 1e9 * static_cast<double>(m) / rate_hz : 0.0;
  std::vector<std::uint64_t> arrivals;
  arrivals.reserve(static_cast<std::size_t>(ops));
  double t = 0.0;
  for (int k = 0; k < ops; ++k) {
    // 1 - u in (0, 1], so the log never sees 0.
    const double u = 1.0 - rng.next_double();
    t += mean_gap_ns > 0 ? -mean_gap_ns * std::log(u) : 0.0;
    arrivals.push_back(static_cast<std::uint64_t>(t));
  }
  return arrivals;
}

// One client process: wait (cooperatively) for each scheduled arrival,
// perform the workload's operation, record completion − scheduled
// arrival. A free function taking pointers, per the GCC 12 coroutine
// notes in runtime/sim_task.h; the co_await sits in the loop BODY, never
// in a condition (see Process::resume()).
//
// Crash-recovery: the latency histogram is the journal — its count is the
// number of COMPLETED requests, so a restarted incarnation resumes the
// arrival schedule at k = latency->count() and the request a crash caught
// mid-op is re-served (its recorded latency then spans the crash and the
// rejoin delay, the honest open-loop cost). A crash between arrival and
// completion bumps *in_flight before rethrowing, so the availability
// accounting can explain every served/offered gap; the crashed attempt
// itself never records a latency and never counts as served.
SimTask client_body(ProcCtx ctx, const ServiceShared* shared,
                    const std::vector<std::uint64_t>* arrivals,
                    LatencyHistogram* latency,
                    std::atomic<std::uint64_t>* in_flight) {
  for (std::size_t k = latency->count(); k < arrivals->size(); ++k) {
    const Clock::time_point due =
        shared->epoch + std::chrono::nanoseconds((*arrivals)[k]);
    while (Clock::now() < due) {
      co_await ctx.yield();
    }
    try {
      if (shared->workload == ServiceWorkload::kFetchInc) {
        (void)co_await ctx.rmw(0, shared->inc);
      } else if (shared->workload == ServiceWorkload::kWakeup) {
        for (;;) {
          const Value cur = co_await ctx.ll(0);
          const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
          const ScResult sc = co_await ctx.sc(0, Value::of_u64(base + 1));
          if (sc.ok) break;
        }
      } else {
        ObjOp op{"fetch&increment", {}};
        (void)co_await shared->uc->execute(ctx, std::move(op));
      }
    } catch (const hw_internal::CrashStopSignal&) {
      in_flight->fetch_add(1, std::memory_order_relaxed);
      throw;
    }
    const Clock::time_point done = Clock::now();
    latency->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(done - due)
            .count()));
  }
  co_return Value::of_u64(latency->count());
}

}  // namespace

const char* to_string(ServiceWorkload workload) {
  switch (workload) {
    case ServiceWorkload::kFetchInc:
      return "fetch_inc";
    case ServiceWorkload::kWakeup:
      return "wakeup";
    case ServiceWorkload::kCombining:
      return "combining";
  }
  LLSC_UNREACHABLE("bad ServiceWorkload");
}

ServiceResult run_service(const ServiceOptions& options) {
  LLSC_EXPECTS(options.procs >= 1, "service needs at least one process");
  LLSC_EXPECTS(options.ops_per_proc >= 0, "negative ops_per_proc");
  const int m = options.procs;

  ServiceShared shared;
  shared.workload = options.workload;
  shared.inc = make_rmw("fetch&add1", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  if (options.workload == ServiceWorkload::kCombining) {
    shared.uc = std::make_unique<CombiningUniversal>(
        m, [] { return std::make_unique<FetchAddObject>(64, 0); },
        /*base=*/0);
  }

  std::vector<std::vector<std::uint64_t>> arrivals;
  arrivals.reserve(static_cast<std::size_t>(m));
  for (ProcId p = 0; p < m; ++p) {
    arrivals.push_back(arrival_schedule(options.seed, p, options.ops_per_proc,
                                        options.arrival_rate_hz, m));
  }
  std::vector<LatencyHistogram> latency(static_cast<std::size_t>(m));

  OversubRunOptions run_options;
  run_options.seed = options.seed;
  run_options.backoff = options.backoff;
  run_options.storage = options.storage;
  run_options.timeout_ms = options.timeout_ms;
  run_options.progress_timeout_ms = options.progress_timeout_ms;
  run_options.num_threads = options.threads;
  run_options.yield_policy = options.yield_policy;
  run_options.yield_every_k = options.yield_every_k;
  run_options.fault = options.fault;
  if (shared.uc) run_options.register_groups = shared.uc->register_groups();

  std::atomic<std::uint64_t> in_flight_at_crash{0};
  const ProcBody body = [&](ProcCtx ctx, ProcId i, int) {
    return client_body(ctx, &shared, &arrivals[static_cast<std::size_t>(i)],
                       &latency[static_cast<std::size_t>(i)],
                       &in_flight_at_crash);
  };

  // The arrival clock starts a hair before the pool's start gate opens
  // (epoch is captured here, the gate inside run()); the skew is spawn
  // cost only and biases the FIRST arrival's latency upward, never any
  // steady-state percentile.
  OversubscribedExecutor exec(run_options);
  shared.epoch = Clock::now();
  ServiceResult out;
  out.run = exec.run(m, body);
  for (const LatencyHistogram& h : latency) {
    out.run.latency.merge(h);
  }
  out.arrival_rate_hz = options.arrival_rate_hz;
  out.offered_ops = static_cast<std::uint64_t>(m) *
                    static_cast<std::uint64_t>(options.ops_per_proc);
  out.served_ops = out.run.latency.count();
  out.throughput_ops_per_sec =
      out.run.wall_seconds > 0
          ? static_cast<double>(out.served_ops) / out.run.wall_seconds
          : 0.0;
  out.in_flight_at_crash = in_flight_at_crash.load(std::memory_order_relaxed);
  out.crashes = out.run.fault.crashes;
  out.recoveries = out.run.fault.recoveries;
  if (out.recoveries > 0 && options.fault != nullptr) {
    out.mttr_ms = static_cast<double>(out.run.fault.recovery_units) *
                  static_cast<double>(options.fault->stall_unit_ns) /
                  static_cast<double>(out.recoveries) / 1e6;
  }
  out.availability =
      out.offered_ops > 0
          ? static_cast<double>(out.served_ops) /
                static_cast<double>(out.offered_ops)
          : 1.0;
  return out;
}

}  // namespace llsc
