#include "hw/hw_history.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace llsc {

ConcurrentHistoryRecorder::ConcurrentHistoryRecorder(UniversalConstruction& uc,
                                                     int num_procs)
    : uc_(&uc) {
  LLSC_EXPECTS(num_procs >= 1, "recorder needs at least one process slot");
  slots_.reserve(static_cast<std::size_t>(num_procs));
  for (int i = 0; i < num_procs; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

SubTask<Value> ConcurrentHistoryRecorder::execute(ProcCtx ctx, ObjOp op) {
  const ProcId p = ctx.id();
  LLSC_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < slots_.size(),
               "process id outside the recorder's slots");
  HistOp rec;
  rec.proc = p;
  rec.op = op;
  // fetch_add is the linearization point of "invoked": everything already
  // responded has a strictly smaller stamp.
  rec.inv_time = clock_.fetch_add(1) + 1;
  const Value r = co_await uc_->execute(ctx, std::move(op));
  rec.response = r;
  rec.resp_time = clock_.fetch_add(1) + 1;
  slots_[static_cast<std::size_t>(p)]->ops.push_back(std::move(rec));
  co_return r;
}

History ConcurrentHistoryRecorder::take() {
  History h;
  for (auto& slot : slots_) {
    h.ops.insert(h.ops.end(), slot->ops.begin(), slot->ops.end());
    slot->ops.clear();
  }
  std::sort(h.ops.begin(), h.ops.end(),
            [](const HistOp& a, const HistOp& b) {
              return a.inv_time < b.inv_time;
            });
  return h;
}

}  // namespace llsc
