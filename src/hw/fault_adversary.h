// Adversarial fault placement: the FaultStrategy implementations.
//
// PR 3's injector is oblivious — every spurious SC/VL failure is a pure
// hash of (seed, proc, op-index). The paper's Fig. 2 adversary is not: it
// watches what every process could have *learned* and aims its failures
// at the most knowledgeable ones, which is exactly what drives the
// Omega(log n) rounds of Theorem 6.1 (knowledge at most quadruples per
// round, Lemma 5.1). This file gives the fault layer that capability:
//
//   * ObliviousStrategy — the PR 3 hash roll, optionally capped by a
//     fault budget. With the budget un-hit it is bit-for-bit the inline
//     path (same salt, same roll), which is tested.
//   * BurstStrategy — correlated failure windows: every SC/VL whose
//     per-process executed-op index k satisfies k % period < len fails
//     (budget permitting). Models correlated reservation loss (cache-line
//     migration storms) rather than independent coin flips.
//   * AdaptiveStrategy — the online adversary. It maintains the same
//     knowledge bookkeeping as core/up_tracker (know(p) per process,
//     know(r) per register, unions on LL/SC/swap/move exactly as in
//     Section 5.3) plus which LL links are live, and spends its entire
//     budget failing SCs/VLs of the *most knowledgeable* live-link
//     process. The target is sticky: it is re-picked only when the
//     current target stops being an argmax, so the budget concentrates
//     on one victim the way the paper's adversary starves one winner.
//   * TraceReplayStrategy — pure (proc, op-index) lookup of a recorded
//     DecisionTrace. This is the replay half of the record/replay
//     contract: every strategy above appends its decisions to a trace;
//     serializing that trace into the plan (fault.cc) and re-running
//     replays the adversarial schedule bit-for-bit on either substrate,
//     because the lookup is as pure as the oblivious hash.
//
// Threading: decide()/observe() arrive on each process's own thread on
// the hw backend. The recording strategies serialize on one mutex; the
// serialized order under that lock is the observed history the decisions
// are deterministic in (on the simulator that order is the deterministic
// schedule, so recorded traces are reproducible; on the hw backend the
// trace is the ground truth and replay is what reproduces it).
//
// This translation unit is compiled into llsc_core, not llsc_hw: the
// FaultInjector constructor (header-inline, used by the serial estimator
// in core/lower_bound.cc) calls make_fault_strategy, and llsc_core cannot
// link llsc_hw. See src/core/CMakeLists.txt.
#ifndef LLSC_HW_FAULT_ADVERSARY_H_
#define LLSC_HW_FAULT_ADVERSARY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/proc_set.h"
#include "hw/fault.h"
#include "memory/op.h"

namespace llsc {

// Budget accounting + decision recording shared by the adversarial
// strategies. All mutable state sits behind one mutex (see file comment).
class RecordingFaultStrategy : public FaultStrategy {
 public:
  // `budget_required`: when true a fault_budget of 0 means "inject
  // nothing" (the adaptive adversary has no rate to fall back on); when
  // false it means "uncapped" (the PR 3 oblivious semantics).
  RecordingFaultStrategy(const FaultPlan& plan, bool budget_required);

  void snapshot_trace(DecisionTrace* out) const override;

  // Decisions recorded so far (quiescent or test use).
  std::size_t decisions_recorded() const;

 protected:
  // Callers hold mu_.
  bool budget_left() const {
    return unlimited_ || budget_remaining_ > 0;
  }
  // Record one decision and spend one unit of budget. Callers hold mu_
  // and have checked budget_left().
  void record(ProcId p, std::uint64_t k, bool is_vl, std::uint64_t score);

  mutable std::mutex mu_;

 private:
  bool unlimited_ = false;
  std::uint64_t budget_remaining_ = 0;
  DecisionTrace trace_;
};

// The PR 3 hash roll behind the strategy seam, budget-capped. With
// fault_budget == 0 (uncapped) its decisions are bit-for-bit the inline
// oblivious path's.
class ObliviousStrategy final : public RecordingFaultStrategy {
 public:
  explicit ObliviousStrategy(const FaultPlan& plan);

  bool decide(ProcId p, std::uint64_t k, const PendingOp& op,
              std::uint64_t h) override;

 private:
  double sc_rate_;
  double vl_rate_;
};

// Correlated failure windows over the per-process executed-op index.
class BurstStrategy final : public RecordingFaultStrategy {
 public:
  explicit BurstStrategy(const FaultPlan& plan);

  bool decide(ProcId p, std::uint64_t k, const PendingOp& op,
              std::uint64_t h) override;

 private:
  std::uint32_t len_;
  std::uint32_t period_;
};

// Section 5.3 knowledge bookkeeping behind its own seam: know(p) per
// process, know(r) per register, unions on LL/SC/swap/move exactly as in
// core/up_tracker, plus which LL links are live. The model is OBJECT-
// AGNOSTIC — it sees raw shared-memory ops, so the same instance accounts
// for a wakeup run, a TAS run, or a leader-election run identically; that
// is what keeps the adaptive adversary's budget accounting uniform across
// workloads. observe() is virtual — the per-object knowledge hook: a
// workload whose object semantics leak more information than the raw op
// stream (say, a response that names another process) can subclass and
// teach the adversary that extra knowledge, while the budget/targeting
// logic in AdaptiveStrategy stays untouched.
//
// Not internally synchronized: the owning strategy's mutex guards it (the
// strategy serializes decide/observe anyway, see the file comment).
class KnowledgeModel {
 public:
  explicit KnowledgeModel(int num_processes);
  virtual ~KnowledgeModel() = default;

  // The hook point: fold one executed op into the knowledge state.
  // Default = the Section 5.3 register/process rules for all six op kinds.
  virtual void observe(ProcId p, const PendingOp& op, const OpResult& result);

  // An amnesiac rejoin: p knows only itself and holds no live links (its
  // dead predecessor's reservations were invalidated, not adopted).
  void on_amnesia(ProcId p);

  int num_processes() const { return n_; }
  bool has_live_link(ProcId p, RegId reg) const;
  std::size_t knowledge(ProcId p) const;  // |know(p)|
  std::size_t max_knowledge() const;
  // Lowest process id attaining max_knowledge().
  ProcId argmax_knowledge() const;

 protected:
  // Building blocks for subclass hooks.
  const ProcSet& reg_knowledge(RegId reg);
  void learn_from(ProcId p, RegId reg);  // know(p) |= know(reg)
  void publish(ProcId p, RegId reg);     // know(reg) = know(p)
  void invalidate_links(RegId reg);      // everyone's link on reg dies
  void set_reg_knowledge(RegId reg, ProcSet s);
  void link(ProcId p, RegId reg);
  void unlink(ProcId p, RegId reg);

 private:
  const int n_;
  std::vector<ProcSet> know_;                    // know(p), Section 5.3
  std::unordered_map<RegId, ProcSet> reg_know_;  // know(r)
  std::vector<std::unordered_set<RegId>> live_links_;
};

// The online Fig. 2-style adversary: fail the most knowledgeable process.
class AdaptiveStrategy final : public RecordingFaultStrategy {
 public:
  AdaptiveStrategy(const FaultPlan& plan, int num_processes);
  // Injects a custom knowledge model (the per-object hook). The default
  // constructor — and make_fault_strategy — install the object-agnostic
  // base model, whose decisions are byte-stable with the pre-seam
  // implementation (pinned by the E13 trace regression test).
  AdaptiveStrategy(const FaultPlan& plan, int num_processes,
                   std::unique_ptr<KnowledgeModel> model);

  bool decide(ProcId p, std::uint64_t k, const PendingOp& op,
              std::uint64_t h) override;
  void observe(ProcId p, std::uint64_t k, const PendingOp& op,
               const OpResult& result) override;
  // Amnesia resets p's knowledge via KnowledgeModel::on_amnesia; a
  // pause-and-resume recovery keeps everything — the frame survived.
  void on_recovery(ProcId p, bool amnesia) override;

  // Test introspection (quiescent use).
  std::size_t knowledge(ProcId p) const;
  ProcId current_target() const;

 private:
  void retarget();  // sticky argmax |know(p)|; callers hold mu_.

  std::unique_ptr<KnowledgeModel> model_;
  ProcId target_ = -1;
};

// Pure replay of a recorded DecisionTrace: p's op k fails iff (p, k) is
// in the trace. Lock-free (the lookup structure is immutable after
// construction); snapshot_trace echoes the input trace, so a replayed
// run re-serializes to the same artifact.
class TraceReplayStrategy final : public FaultStrategy {
 public:
  TraceReplayStrategy(const FaultPlan& plan, int num_processes);

  bool decide(ProcId p, std::uint64_t k, const PendingOp& op,
              std::uint64_t h) override;
  void snapshot_trace(DecisionTrace* out) const override;

 private:
  std::vector<std::unordered_set<std::uint64_t>> fail_at_;  // per proc: {k}
  DecisionTrace trace_;
};

}  // namespace llsc

#endif  // LLSC_HW_FAULT_ADVERSARY_H_
