// Bounded exponential backoff for contended CAS retry loops.
//
// Standard shape (cf. the Synch-framework-style thread harnesses): start
// with a handful of spin iterations, double on every failure up to a cap,
// and past a threshold yield the CPU instead of burning it — which matters
// both under heavy contention and when threads outnumber cores.
#ifndef LLSC_HW_BACKOFF_H_
#define LLSC_HW_BACKOFF_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace llsc {

class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024)
      : min_spins_(min_spins), max_spins_(max_spins), current_(min_spins) {}

  // Wait once (called after a failed CAS), then widen the next window.
  void pause() {
    if (current_ >= kYieldThreshold) {
      std::this_thread::yield();
    } else {
      for (std::uint32_t i = 0; i < current_; ++i) {
        cpu_relax();
      }
    }
    if (current_ < max_spins_) current_ *= 2;
  }

  void reset() { current_ = min_spins_; }

 private:
  // Spin windows at or above this count give up the timeslice instead;
  // essential on machines with fewer cores than worker threads.
  static constexpr std::uint32_t kYieldThreshold = 256;

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::uint32_t min_spins_;
  std::uint32_t max_spins_;
  std::uint32_t current_;
};

}  // namespace llsc

#endif  // LLSC_HW_BACKOFF_H_
