// Backoff policies for contended CAS retry loops (HwMemory::install/rmw).
//
// Three tiers, selectable per HwMemory/HwExecutor at construction:
//
//   kFixed            the classic Synch-framework shape: the spin window
//                     starts at min_spins on every operation and doubles
//                     (clamped to max_spins) on every failed CAS; windows
//                     at or above yield_threshold give up the timeslice
//                     instead of spinning.
//   kAdaptive         the window persists across operations and tracks the
//                     observed CAS-failure rate: multiplicative increase
//                     (×2, clamped) on failure streaks, additive decrease
//                     (−decrease_step, clamped) on success streaks. Under
//                     sustained contention the window stays wide without
//                     re-learning it every operation; when contention
//                     drains, successive successes walk it back down.
//   kAdaptiveParking  kAdaptive plus a third tier: once the window has
//                     been saturated at max_spins for park_threshold
//                     consecutive failures, the thread parks on the
//                     register's ParkSpot futex word instead of burning a
//                     timeslice — essential when worker threads outnumber
//                     cores. Successful writers wake parked threads; a
//                     bounded park timeout means progress never depends on
//                     the wakeup arriving (see Waiter).
//
// The policy object is per-thread (no shared state); the park/wake
// rendezvous goes through a per-register ParkSpot and a Waiter, which
// tests stub out to drive the park path deterministically.
#ifndef LLSC_HW_BACKOFF_H_
#define LLSC_HW_BACKOFF_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>

namespace llsc {

enum class BackoffPolicy : int {
  kFixed = 0,
  kAdaptive = 1,
  kAdaptiveParking = 2,
};

const char* to_string(BackoffPolicy policy);

// How a thread blocks once backoff escalates past spinning/yielding.
// The default (system()) parks on a futex on Linux and falls back to a
// short sleep elsewhere. Implementations must be wait-bounded: wait()
// may return spuriously and MUST return after a bounded timeout even if
// no wake ever arrives — callers re-check and retry, so a missed wake
// costs latency, never progress.
class Waiter {
 public:
  virtual ~Waiter() = default;
  // Block while word == expected (or until timeout/spurious return).
  virtual void wait(std::atomic<std::uint32_t>& word,
                    std::uint32_t expected) = 0;
  // Wake every thread blocked in wait() on `word`.
  virtual void wake_all(std::atomic<std::uint32_t>& word) = 0;

  // Process-wide default: FutexWaiter on Linux, TimedSleepWaiter elsewhere.
  static Waiter& system();
};

// Per-register park rendezvous. Writers install their value, then bump
// `seq` and wake — but only when `waiters` is non-zero; parkers register
// in `waiters`, re-snapshot `seq`, RE-CHECK the register word they failed
// against, and only then wait. The re-check closes the lost-wakeup
// window: a writer that installed before the parker's `waiters` increment
// may legitimately skip the seq bump (it saw waiters == 0), but that same
// install is what the parker's re-check observes, so the parker returns
// to its retry loop instead of sleeping out the Waiter timeout. A writer
// that installs after the increment observes waiters != 0 (both sides use
// seq_cst) and issues the wake.
struct ParkSpot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> waiters{0};
};

struct BackoffOptions {
  BackoffPolicy policy = BackoffPolicy::kFixed;
  std::uint32_t min_spins = 4;
  std::uint32_t max_spins = 1024;
  // Windows at or above this spin count yield the CPU instead of spinning;
  // essential on machines with fewer cores than worker threads.
  std::uint32_t yield_threshold = 256;
  // Adaptive: how much a successful CAS narrows the window.
  std::uint32_t decrease_step = 32;
  // Parking: consecutive failures at a saturated (== max_spins) window
  // before the thread parks instead of yielding.
  std::uint32_t park_threshold = 4;
  // nullptr selects Waiter::system(); tests inject a stub.
  Waiter* waiter = nullptr;
};

// Counters one Backoff instance accumulated (per thread; aggregate via
// HwMemory::backoff_stats()).
struct BackoffStats {
  std::uint64_t cas_failures = 0;
  std::uint64_t cas_successes = 0;
  std::uint64_t spin_pauses = 0;  // backoff waits served by spinning
  std::uint64_t yields = 0;       // ... by yielding the timeslice
  std::uint64_t parks = 0;        // ... by parking on a ParkSpot
  // Parks cut short by the pre-wait register re-check: the word changed
  // between the CAS failure and the park, so the thread skipped the wait
  // entirely instead of riding out the Waiter timeout.
  std::uint64_t park_skips = 0;

  double failure_rate() const {
    const std::uint64_t attempts = cas_failures + cas_successes;
    return attempts == 0
               ? 0.0
               : static_cast<double>(cas_failures) /
                     static_cast<double>(attempts);
  }
};

class Backoff {
 public:
  explicit Backoff(const BackoffOptions& options = {});

  // Called once at the top of each retry loop. kFixed re-arms the window
  // at min_spins; the adaptive policies carry it across operations and
  // only reset the saturation streak.
  void begin_op();

  // Called after a failed CAS: wait once (spin, yield, or park on `spot`
  // depending on tier and window), then widen the window — multiplicative
  // increase clamped to max_spins. `spot` may be null (no parking tier
  // available at this call site). When parking, `word` is the atomic the
  // caller's CAS failed against and `observed` the value it saw: after
  // registering in `waiters` the parker re-reads `word` and skips the
  // wait if it moved (see ParkSpot). A null `word` skips the re-check and
  // leans on the Waiter timeout alone.
  void on_failure(ParkSpot* spot = nullptr,
                  const std::atomic<std::uint64_t>* word = nullptr,
                  std::uint64_t observed = 0);

  // Called after the retry loop's CAS lands: adaptive policies narrow the
  // window (additive decrease clamped to min_spins).
  void on_success();

  BackoffPolicy policy() const { return options_.policy; }
  std::uint32_t window() const { return window_; }
  const BackoffStats& stats() const { return stats_; }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  void park(ParkSpot& spot, const std::atomic<std::uint64_t>* word,
            std::uint64_t observed);

  BackoffOptions options_;
  Waiter* waiter_;
  std::uint32_t window_;
  // Consecutive on_failure calls with the window already at max_spins;
  // crossing park_threshold engages the parking tier.
  std::uint32_t saturated_streak_ = 0;
  BackoffStats stats_;
};

inline Backoff::Backoff(const BackoffOptions& options)
    : options_(options),
      waiter_(options.waiter != nullptr ? options.waiter : &Waiter::system()),
      window_(options.min_spins) {
  // Degenerate configurations clamp instead of trapping: the policy is a
  // performance knob, never a correctness gate.
  if (options_.min_spins == 0) options_.min_spins = 1;
  if (options_.max_spins < options_.min_spins) {
    options_.max_spins = options_.min_spins;
  }
  window_ = options_.min_spins;
}

inline void Backoff::begin_op() {
  saturated_streak_ = 0;
  if (options_.policy == BackoffPolicy::kFixed) {
    window_ = options_.min_spins;
  }
}

inline void Backoff::on_failure(ParkSpot* spot,
                                const std::atomic<std::uint64_t>* word,
                                std::uint64_t observed) {
  ++stats_.cas_failures;
  const bool saturated = window_ >= options_.max_spins;
  saturated_streak_ = saturated ? saturated_streak_ + 1 : 0;
  if (options_.policy == BackoffPolicy::kAdaptiveParking && spot != nullptr &&
      saturated_streak_ > options_.park_threshold) {
    ++stats_.parks;
    park(*spot, word, observed);
  } else if (window_ >= options_.yield_threshold) {
    ++stats_.yields;
    std::this_thread::yield();
  } else {
    ++stats_.spin_pauses;
    for (std::uint32_t i = 0; i < window_; ++i) cpu_relax();
  }
  // Multiplicative increase, clamped. (The pre-clamp form `if (window <
  // max) window *= 2` overshoots a non-power-of-two cap by up to 2×.)
  window_ = std::min(window_ * 2, options_.max_spins);
}

inline void Backoff::on_success() {
  ++stats_.cas_successes;
  saturated_streak_ = 0;
  if (options_.policy == BackoffPolicy::kFixed) return;
  // Additive decrease, clamped at the floor.
  window_ = window_ > options_.min_spins + options_.decrease_step
                ? window_ - options_.decrease_step
                : options_.min_spins;
}

inline void Backoff::park(ParkSpot& spot,
                          const std::atomic<std::uint64_t>* word,
                          std::uint64_t observed) {
  // Order matters, twice over. (1) Register as a waiter BEFORE
  // snapshotting seq, so a writer that bumps seq after our snapshot is
  // guaranteed to observe waiters != 0 and issue the wake. (2) Re-check
  // the contended word AFTER registering: a writer that installed before
  // our increment saw waiters == 0 and skipped its seq bump, so the only
  // trace of its write is the word itself — seeing it changed here means
  // a retry will observe new state, and sleeping would trade that for a
  // full Waiter timeout. Both sides are seq_cst, so one of the two
  // signals (changed word, or seq bump + wake) is always visible.
  spot.waiters.fetch_add(1, std::memory_order_seq_cst);
  const std::uint32_t seen = spot.seq.load(std::memory_order_seq_cst);
  if (word != nullptr &&
      word->load(std::memory_order_seq_cst) != observed) {
    ++stats_.park_skips;
    spot.waiters.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  waiter_->wait(spot.seq, seen);
  spot.waiters.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace llsc

#endif  // LLSC_HW_BACKOFF_H_
