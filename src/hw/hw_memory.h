// HwMemory — a lock-free multi-threaded emulation of the paper's
// LL/SC/VL/swap/move shared memory over pointer-width CAS.
//
// Real hardware does not expose the paper's operations; following the
// CAS-from-LL/SC literature (Blelloch & Wei, "LL/SC and Atomic Copy:
// Constant Time, Space Efficient Implementations using only pointer-width
// CAS" — see PAPERS.md and docs/hw_backend.md for where we simplify), each
// register is a single `std::atomic<Node*>` head pointer. A Node is an
// immutable (value, version) pair; every successful write installs a fresh
// node whose version is its predecessor's plus one, so versions of a
// register strictly increase and are never reused.
//
//   LL(p, r)   : load head; record its version as p's link for r; return
//                the value.
//   SC(p, r, v): succeeds iff head still carries p's linked version AND
//                the pointer CAS from that node succeeds — i.e. iff no
//                successful SC/swap/move hit r since p's LL, exactly the
//                paper's Pset semantics (a successful write invalidates
//                every outstanding link, including the writer's own).
//   VL(p, r)   : link-valid flag (current version == linked version) plus
//                the current value; no state change.
//   swap/move  : unconditional install via a CAS retry loop with bounded
//                exponential backoff (lock-free; in the paper's model they
//                are single steps — see docs/hw_backend.md §relaxations).
//   RMW(p,r,f) : atomic read-modify-write via the same retry loop
//                (the Section 7 strong operation).
//
// ABA safety and reclamation. SC's pointer CAS is sound because a node
// can neither be re-linked (writes install fresh allocations only) nor
// freed-and-reused while any thread might still dereference it: replaced
// nodes are retired into the unlinking thread's list and freed by
// epoch-based reclamation (three-epoch scheme, see docs/hw_backend.md)
// only two global epochs after retirement. Link validity itself needs no
// protection at all — a link is a version NUMBER, not a pointer, and
// versions are never reused. Per-thread contexts and register heads are
// cache-line padded; heavy writers back off exponentially.
//
// Thread contract: operations for process p must all be issued by the one
// thread running p (the HwExecutor guarantees this). Different processes'
// operations may run fully concurrently. peek_* observers are for
// quiescent use only (before threads start or after they join).
#ifndef LLSC_HW_HW_MEMORY_H_
#define LLSC_HW_HW_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "hw/backoff.h"
#include "memory/op.h"
#include "memory/rmw.h"
#include "memory/value.h"

namespace llsc {

inline constexpr std::size_t kCacheLineBytes = 64;

// Reclamation counters (approximate totals aggregated over threads; read
// when quiescent).
struct HwReclaimStats {
  std::uint64_t nodes_allocated = 0;
  std::uint64_t nodes_retired = 0;
  std::uint64_t nodes_freed = 0;
  std::uint64_t global_epoch = 0;
};

// Backoff counters aggregated over threads (read when quiescent), plus
// the wake side of the parking tier, which is charged to the writer
// thread that issued the wake.
struct HwBackoffStats {
  BackoffPolicy policy = BackoffPolicy::kFixed;
  std::uint64_t cas_failures = 0;
  std::uint64_t cas_successes = 0;
  std::uint64_t spin_pauses = 0;
  std::uint64_t yields = 0;
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;

  double failure_rate() const {
    const std::uint64_t attempts = cas_failures + cas_successes;
    return attempts == 0
               ? 0.0
               : static_cast<double>(cas_failures) /
                     static_cast<double>(attempts);
  }
};

class HwMemory {
 public:
  // A fixed table of `num_registers` registers (the simulator's lazy
  // "infinite" array would need a concurrent map; algorithms declare their
  // span up front) serving threads/processes [0, num_threads). `backoff`
  // selects the retry-loop policy for every contended CAS site.
  HwMemory(std::size_t num_registers, int num_threads,
           const BackoffOptions& backoff = {});
  ~HwMemory();
  HwMemory(const HwMemory&) = delete;
  HwMemory& operator=(const HwMemory&) = delete;

  // The paper's five operations plus the optional Section 7 RMW; `p` is
  // the invoking process == the invoking thread's slot.
  Value ll(ProcId p, RegId r);
  OpResult sc(ProcId p, RegId r, Value v);
  OpResult validate(ProcId p, RegId r);
  Value swap(ProcId p, RegId r, Value v);
  void move(ProcId p, RegId src, RegId dst);
  Value rmw(ProcId p, RegId r, const RmwFunction& f);

  // Uniform entry point mirroring SharedMemory::apply (this is what the
  // HwPlatform routes Process steps through).
  OpResult apply(ProcId p, const PendingOp& op);

  std::size_t num_registers() const { return regs_.size(); }
  int num_threads() const { return static_cast<int>(ctxs_.size()); }

  // --- quiescent observation (tests / post-run accounting only) ---
  Value peek_value(RegId r) const;
  std::uint64_t peek_version(RegId r) const;
  bool peek_link_live(RegId r, ProcId p) const;
  HwReclaimStats reclaim_stats() const;
  HwBackoffStats backoff_stats() const;

 private:
  // Immutable once published; `version` strictly increases per register
  // starting from 1 (so link 0 means "no live link").
  struct Node {
    Value value;
    std::uint64_t version = 1;
  };

  struct alignas(kCacheLineBytes) PaddedHead {
    std::atomic<Node*> head{nullptr};
    // Park rendezvous for the adaptive+parking backoff tier; shares the
    // head's (already-padded) line, which the waking writer just owned.
    ParkSpot park;
  };

  struct alignas(kCacheLineBytes) ThreadCtx {
    // 0 = quiescent; otherwise the global epoch observed at critical-
    // section entry. Written only by the owning thread; read by everyone.
    std::atomic<std::uint64_t> epoch{0};
    // Linked version per register (owner-thread private).
    std::vector<std::uint64_t> link;
    // Retired nodes with their retirement epoch; epochs are non-decreasing
    // in deque order, so the freeable nodes form a prefix.
    std::deque<std::pair<std::uint64_t, Node*>> retired;
    std::uint64_t retires_since_scan = 0;
    std::uint64_t allocated = 0;
    std::uint64_t retired_count = 0;
    std::uint64_t freed = 0;
    // Retry-loop backoff state and counters (owner-thread private).
    Backoff backoff;
    std::uint64_t wakes = 0;
  };

  // RAII epoch critical section: dereferencing head-loaded nodes is safe
  // only between construction and destruction.
  class EpochGuard {
   public:
    EpochGuard(const std::atomic<std::uint64_t>& global, ThreadCtx& ctx)
        : ctx_(ctx) {
      ctx_.epoch.store(global.load());
    }
    ~EpochGuard() { ctx_.epoch.store(0); }
    EpochGuard(const EpochGuard&) = delete;
    EpochGuard& operator=(const EpochGuard&) = delete;

   private:
    ThreadCtx& ctx_;
  };

  ThreadCtx& ctx(ProcId p);
  std::atomic<Node*>& head(RegId r);
  Node* make_node(ThreadCtx& c, Value v, std::uint64_t version);
  void retire(ThreadCtx& c, Node* n);
  // Attempt a global-epoch advance, then free this thread's retired
  // prefix that is two epochs stale.
  void scan_and_reclaim(ThreadCtx& c);
  // Unconditional install of `v` into r with a version bump (swap/move
  // tail); returns the replaced value.
  Value install(ThreadCtx& c, RegId r, Value v);
  // Wake threads parked on r's ParkSpot after a successful write (no-op
  // unless someone is registered as a waiter).
  void wake_waiters(ThreadCtx& c, RegId r);

  std::vector<PaddedHead> regs_;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
  BackoffOptions backoff_options_;
  Waiter* waiter_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> global_epoch_{1};
};

}  // namespace llsc

#endif  // LLSC_HW_HW_MEMORY_H_
