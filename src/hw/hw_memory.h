// HwMemory — a lock-free multi-threaded emulation of the paper's
// LL/SC/VL/swap/move shared memory, behind a register-storage policy seam.
//
// Real hardware does not expose the paper's operations; following the
// CAS-from-LL/SC literature (Blelloch & Wei, "LL/SC and Atomic Copy:
// Constant Time, Space Efficient Implementations using only pointer-width
// CAS" — see PAPERS.md and docs/hw_backend.md for where we simplify), each
// register is a single 64-bit atomic word. *What that word holds* is the
// storage policy (hw/register_storage.h, memory/storage_policy.h):
//
//   kBoxed (default) — the word is a pointer to an immutable heap
//       Node{value, version}; every successful write installs a fresh node
//       with version + 1 and replaced nodes go through three-epoch
//       reclamation. Values are unbounded, exactly the paper's model.
//   kInline / kInlineStrict — the word *is* the value while it fits
//       (16-bit version tag + 47-bit payload), Section 7's bounded-register
//       regime: writes are a single CAS with no allocation. Overflow
//       demotes that register to boxing (kInline) or throws
//       RegisterOverflowError (kInlineStrict).
//
//   LL(p, r)   : load the word; record the link it asserts; return the
//                value.
//   SC(p, r, v): succeeds iff the register still asserts p's link AND the
//                CAS from that exact word succeeds — i.e. iff no
//                successful SC/swap/move hit r since p's LL, exactly the
//                paper's Pset semantics (a successful write invalidates
//                every outstanding link, including the writer's own).
//   VL(p, r)   : link-valid flag plus the current value; no state change.
//   swap/move  : unconditional install via a CAS retry loop with bounded
//                exponential backoff (lock-free; in the paper's model they
//                are single steps — see docs/hw_backend.md §relaxations).
//   RMW(p,r,f) : atomic read-modify-write via the same retry loop
//                (the Section 7 strong operation).
//
// Thread contract: operations for process p must all be issued by the one
// thread running p (the HwExecutor guarantees this). Different processes'
// operations may run fully concurrently. peek_* observers are for
// quiescent use only (before threads start or after they join).
#ifndef LLSC_HW_HW_MEMORY_H_
#define LLSC_HW_HW_MEMORY_H_

#include <memory>

#include "hw/backoff.h"
#include "hw/register_storage.h"
#include "memory/op.h"
#include "memory/rmw.h"
#include "memory/storage_policy.h"
#include "memory/value.h"

namespace llsc {

class HwMemory {
 public:
  // A fixed table of `num_registers` registers (the simulator's lazy
  // "infinite" array would need a concurrent map; algorithms declare their
  // span up front) serving threads/processes [0, num_threads). `backoff`
  // selects the retry-loop policy for every contended CAS site; `storage`
  // the register representation (default: the LLSC_STORAGE_POLICY
  // environment variable, else boxed); `reclaim` the node-reclamation
  // policy (default: LLSC_RECLAIMER, else three-epoch batches).
  // `reclaim_slots` sizes the Reclaimer's slot table — 0 means one slot
  // per thread/process; oversubscribed executors pass their carrier count
  // when the policy binds slots to carriers (hw/reclaim.h).
  HwMemory(std::size_t num_registers, int num_threads,
           const BackoffOptions& backoff = {},
           StoragePolicy storage = default_storage_policy(),
           ReclaimPolicy reclaim = default_reclaim_policy(),
           int reclaim_slots = 0);
  ~HwMemory();
  HwMemory(const HwMemory&) = delete;
  HwMemory& operator=(const HwMemory&) = delete;

  // The paper's five operations plus the optional Section 7 RMW; `p` is
  // the invoking process == the invoking thread's slot.
  Value ll(ProcId p, RegId r) { return storage_->ll(p, r); }
  OpResult sc(ProcId p, RegId r, Value v) {
    return storage_->sc(p, r, std::move(v));
  }
  OpResult validate(ProcId p, RegId r) { return storage_->validate(p, r); }
  Value swap(ProcId p, RegId r, Value v) {
    return storage_->swap(p, r, std::move(v));
  }
  void move(ProcId p, RegId src, RegId dst) { storage_->move(p, src, dst); }
  Value rmw(ProcId p, RegId r, const RmwFunction& f) {
    return storage_->rmw(p, r, f);
  }

  // Uniform entry point mirroring SharedMemory::apply (this is what the
  // HwPlatform routes Process steps through).
  OpResult apply(ProcId p, const PendingOp& op);

  std::size_t num_registers() const { return storage_->num_registers(); }
  int num_threads() const { return storage_->num_threads(); }
  StoragePolicy storage_policy() const { return storage_->policy(); }
  ReclaimPolicy reclaim_policy() const { return storage_->reclaim_policy(); }

  // The run's reclamation policy object (hw/reclaim.h): executors bind
  // carrier threads to slots through it when Reclaimer::carrier_slots().
  Reclaimer& reclaimer() { return storage_->reclaimer(); }

  // --- quiescent observation (tests / post-run accounting only) ---
  Value peek_value(RegId r) const { return storage_->peek_value(r); }
  std::uint64_t peek_version(RegId r) const {
    return storage_->peek_version(r);
  }
  bool peek_link_live(RegId r, ProcId p) const {
    return storage_->peek_link_live(r, p);
  }
  HwReclaimStats reclaim_stats() const { return storage_->reclaim_stats(); }
  HwBackoffStats backoff_stats() const { return storage_->backoff_stats(); }
  RegisterWidthStats width_stats() const { return storage_->width_stats(); }

  // Per-logical-object width attribution (memory/storage_policy.h); set
  // before threads start.
  void set_register_groups(std::vector<RegisterGroup> groups) {
    storage_->set_register_groups(std::move(groups));
  }

  // Crash-recovery: drop every link p holds (hw/register_storage.h). Call
  // from the carrier thread restarting p.
  void invalidate_links(ProcId p) { storage_->invalidate_links(p); }

 private:
  std::unique_ptr<RegisterStorage> storage_;
};

}  // namespace llsc

#endif  // LLSC_HW_HW_MEMORY_H_
