// Platform: where a process's shared-memory steps and coin tosses execute.
//
// The paper's model has one shared memory and one step relation; this
// library now has two execution substrates for the SAME algorithm sources:
//
//   * the simulator (runtime/system.h) — the paper's model, exactly: steps
//     are *deferred*; a suspended process exposes its pending step and a
//     scheduler (possibly the Fig. 2 adversary) decides when it executes
//     against the paper-faithful SharedMemory;
//   * the hardware backend (hw/hw_executor.h) — steps are *synchronous*;
//     each process runs on its own OS thread and every LL/SC/VL/swap/move
//     completes inline against the lock-free HwMemory emulation.
//
// Platform is the seam between them. The coroutine awaitables in
// runtime/process.h route every step through Process::submit_op /
// submit_toss, which consult the process's Platform: a deferred platform
// suspends the coroutine (the scheduler later delivers the result), a
// synchronous platform executes the step immediately and the coroutine
// continues without suspending. Algorithm code — wakeup algorithms,
// universal constructions — is identical on both; only who advances the
// process differs.
//
// Coin tosses are served from a pre-committed assignment on BOTH
// platforms (outcome(p, j) is a pure function of the seed), so a run's
// toss outcomes are reproducible across platforms and across repeated
// hw runs — only the interleaving of shared-memory steps varies.
//
// Register storage is a second seam below this one
// (memory/storage_policy.h): both substrates honour the same
// boxed/inline policy choice — HwMemory by swapping its RegisterStorage
// backend (hw/register_storage.h), SharedMemory by mirroring the width /
// overflow accounting — so a policy can be compared across platforms
// without touching algorithm code.
#ifndef LLSC_HW_PLATFORM_H_
#define LLSC_HW_PLATFORM_H_

#include <cstdint>
#include <string>

#include "memory/op.h"

namespace llsc {

class Platform {
 public:
  virtual ~Platform() = default;

  // True when steps complete inline on the calling thread (hw backend);
  // false when a scheduler must pick the moment and deliver the result
  // (simulator).
  virtual bool synchronous() const = 0;

  // Executes one shared-memory step on behalf of process p. On a
  // synchronous platform this is called from p's own thread at the moment
  // the algorithm issues the operation; on a deferred platform, from the
  // scheduler when it decides p's pending step happens.
  virtual OpResult apply(ProcId p, const PendingOp& op) = 0;

  // Raw 64-bit outcome of p's j-th coin toss (0-based). Must be a pure
  // function of (p, j) so runs replay identically (paper Section 5.2).
  virtual std::uint64_t toss(ProcId p, std::uint64_t j) = 0;

  // --- cooperative-scheduling hooks (hw/oversub_executor.h) ---
  //
  // Only meaningful on synchronous platforms that multiplex M logical
  // processes onto fewer carrier threads. After apply() ran p's op inline,
  // yield_after_op asks whether the coroutine should give up its carrier
  // thread (the op's result is already latched; the scheduler resumes the
  // coroutine later and the awaitable reads it then). yield_now is the
  // same question for an explicit ctx.yield() point. Both default to
  // false: 1:1 platforms and the simulator never suspend here, so
  // algorithm code with yield points runs unchanged everywhere.
  virtual bool yield_after_op(ProcId p, const PendingOp& op,
                              const OpResult& result) {
    (void)p;
    (void)op;
    (void)result;
    return false;
  }
  virtual bool yield_now(ProcId p) {
    (void)p;
    return false;
  }

  virtual std::string name() const = 0;
};

}  // namespace llsc

#endif  // LLSC_HW_PLATFORM_H_
