// OversubscribedExecutor — M logical processes on an N-thread pool.
//
// HwExecutor's 1 process = 1 OS thread model caps hw-substrate scenarios
// at core count; the paper's Ω(log n) curve (and the follow-up bounds in
// PAPERS.md) only separates from its competitors at n far beyond that.
// This executor multiplexes M coroutine processes onto N carrier threads
// by reusing the runtime's awaitable suspension points as yield points:
// each co_awaited shared-memory op still executes inline against
// HwMemory (the platform stays synchronous), but afterwards — under the
// configured YieldPolicy — the coroutine parks its handle on a per-worker
// run-queue shard instead of monopolizing the thread. Workers pop their
// own shard FIFO, steal from siblings when dry, and fall back to the
// adaptive+parking Backoff (hw/backoff.h) on the executor's idle
// ParkSpot when the whole pool runs dry — the same fixed
// register-in-waiters → re-check protocol the register spots use, with
// the work-epoch counter as the re-checked word.
//
// Determinism contract (what makes the oversubscribed leg of
// hw_fault_diff_test replay bit-for-bit):
//   * tosses — SeededTossAssignment outcomes are pure in (seed, p, j) and
//     each Process carries its own toss counter, so a coroutine observes
//     the identical toss stream no matter which carrier thread resumes
//     it (toss migration safety);
//   * faults — FaultInjector decisions are pure in (plan seed, p,
//     op-index) or replayed from a DecisionTrace keyed the same way;
//   * memory — HwMemory is constructed with M per-process contexts
//     (links, epochs, backoff state are per ProcId, not per thread), and
//     a coroutine's steps are serialized by the run queue: the shard
//     mutex handoff is the happens-before edge between consecutive
//     carrier threads of one process.
//
// The watchdog (hw/run_support.h) tracks progress per LOGICAL process
// and scales its stagnation window by ⌈M/N⌉, so a correctly parked
// coroutine — runnable, just unscheduled — is not misread as hung.
#ifndef LLSC_HW_OVERSUB_EXECUTOR_H_
#define LLSC_HW_OVERSUB_EXECUTOR_H_

#include <cstdint>

#include "hw/hw_executor.h"

namespace llsc {

// When does a coroutine give its carrier thread back to the scheduler?
enum class YieldPolicy : int {
  // After every shared-memory op: maximal interleaving, the scheduler
  // round-robins runnable processes at op granularity. The default, and
  // what service-mode latency runs want.
  kEveryOp = 0,
  // After every k-th shared-memory op of a process: amortizes scheduling
  // cost when ops are cheap and fairness at op granularity is overkill.
  kEveryK = 1,
  // Only after a FAILED SC: a process losing its register races is the
  // one burning its timeslice; winners keep their thread. The polite-
  // loser discipline of flat combining, at the scheduler level.
  kOnScFailure = 2,
};

const char* to_string(YieldPolicy policy);

struct OversubRunOptions : HwRunOptions {
  // Carrier threads (N). 0 = std::thread::hardware_concurrency().
  int num_threads = 0;
  YieldPolicy yield_policy = YieldPolicy::kEveryOp;
  // kEveryK's k; clamped to >= 1.
  std::uint32_t yield_every_k = 8;
};

class OversubscribedExecutor {
 public:
  explicit OversubscribedExecutor(OversubRunOptions options = {});

  // Runs body(ctx, i, m) for i in [0, m) — M logical processes scheduled
  // over the option's N carrier threads against a fresh HwMemory with M
  // per-process contexts. Returns the same result shape as
  // HwExecutor::run (n = m), plus populated HwSchedStats. Exceptions
  // thrown by a body are re-thrown on the calling thread after the pool
  // joins. ctx.yield() suspends here (and only here).
  HwRunResult run(int m, const ProcBody& body);

  const OversubRunOptions& options() const { return options_; }

 private:
  OversubRunOptions options_;
};

}  // namespace llsc

#endif  // LLSC_HW_OVERSUB_EXECUTOR_H_
