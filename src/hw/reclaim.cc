#include "hw/reclaim.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

namespace {

// Retired nodes per batch before a slot pays for an epoch scan. Small
// enough that peak garbage stays bounded (≤ interval × slots × ~3 epochs
// while nobody stalls), large enough to amortize the O(slots) scan. The
// pre-seam constant, unchanged.
constexpr std::uint64_t kScanInterval = 64;

// The calling thread's carrier binding (at most one reclaimer at a time;
// a nested run would rebind and restore through CarrierBinding).
thread_local const Reclaimer* tls_bound_reclaimer = nullptr;
thread_local int tls_bound_slot = -1;

}  // namespace

Reclaimer::Reclaimer(int num_slots) : num_slots_(num_slots) {
  LLSC_EXPECTS(num_slots >= 1, "need at least one reclaimer slot");
}

Reclaimer::~Reclaimer() = default;

int Reclaimer::slot_of(ProcId p) const {
  if (tls_bound_reclaimer == this) return tls_bound_slot;
  return static_cast<int>(p);
}

Reclaimer::CarrierBinding::CarrierBinding(Reclaimer& r, int slot)
    : prev_owner_(tls_bound_reclaimer), prev_slot_(tls_bound_slot) {
  LLSC_EXPECTS(slot >= 0 && slot < r.num_slots(),
               "carrier slot outside this reclaimer's slot table");
  tls_bound_reclaimer = &r;
  tls_bound_slot = slot;
}

Reclaimer::CarrierBinding::~CarrierBinding() {
  tls_bound_reclaimer = prev_owner_;
  tls_bound_slot = prev_slot_;
}

// --- EpochReclaimer ------------------------------------------------------

EpochReclaimer::EpochReclaimer(int num_slots) : Reclaimer(num_slots) {
  slots_.reserve(static_cast<std::size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

EpochReclaimer::~EpochReclaimer() {
  for (auto& s : slots_) {
    for (auto& [epoch, node] : s->retired) delete node;
  }
}

void EpochReclaimer::begin(int slot) {
  slots_[static_cast<std::size_t>(slot)]->epoch.store(global_.load());
}

void EpochReclaimer::end(int slot) {
  slots_[static_cast<std::size_t>(slot)]->epoch.store(0);
}

std::uint64_t EpochReclaimer::acquire(
    int slot, const std::atomic<std::uint64_t>& word) {
  (void)slot;  // the slot's epoch entry already protects everything
  return word.load(std::memory_order_acquire);
}

std::uint64_t EpochReclaimer::confirm(int slot,
                                      const std::atomic<std::uint64_t>& word,
                                      std::uint64_t w) {
  (void)slot;
  (void)word;
  return w;  // already covered by the epoch critical section
}

void EpochReclaimer::retire(int slot, VersionedNode* n) {
  // Global epochs are monotone, so retirement epochs are non-decreasing
  // per slot and the freeable nodes always form a deque prefix.
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  s.retired.emplace_back(global_.load(), n);
  ++s.retired_count;
  if (s.retired.size() > s.high_water) s.high_water = s.retired.size();
  if (++s.retires_since_scan >= kScanInterval) {
    s.retires_since_scan = 0;
    scan_and_reclaim(s);
  }
}

void EpochReclaimer::scan_and_reclaim(Slot& s) {
  ++s.scan_passes;
  std::uint64_t global = global_.load();
  // Advance the global epoch iff every slot is quiescent or already in
  // the current epoch. A slot stuck in an older critical section blocks
  // the advance — that is the grace-period guarantee.
  bool can_advance = true;
  for (const auto& t : slots_) {
    const std::uint64_t e = t->epoch.load();
    if (e != 0 && e != global) {
      can_advance = false;
      break;
    }
  }
  if (can_advance) {
    if (global_.compare_exchange_strong(global, global + 1)) {
      global = global + 1;
    } else {
      global = global_.load();  // someone else advanced; also fine
    }
  }
  // A node retired in epoch e is untouchable once the global epoch
  // reaches e + 2: any thread that could hold a reference entered its
  // critical section at an epoch ≤ e, and both advances past e required
  // that thread to have exited (observed via acquire loads of its epoch,
  // which is the happens-before edge making the delete race-free).
  while (!s.retired.empty() && s.retired.front().first + 2 <= global) {
    delete s.retired.front().second;
    s.retired.pop_front();
    ++s.freed;
  }
}

void EpochReclaimer::release(int slot) {
  slots_[static_cast<std::size_t>(slot)]->epoch.store(0);
}

void EpochReclaimer::quiesce() {
  for (auto& s : slots_) {
    for (auto& [epoch, node] : s->retired) {
      delete node;
      ++s->freed;
    }
    s->retired.clear();
  }
}

ReclaimStats EpochReclaimer::stats() const {
  ReclaimStats out;
  out.policy = ReclaimPolicy::kEpoch;
  out.global_epoch = global_.load();
  for (const auto& s : slots_) {
    out.nodes_retired += s->retired_count;
    out.nodes_freed += s->freed;
    out.scan_passes += s->scan_passes;
    out.node_high_water += s->high_water;
  }
  return out;
}

// --- HazardPointerReclaimer ----------------------------------------------

HazardPointerReclaimer::HazardPointerReclaimer(int num_slots)
    : Reclaimer(num_slots),
      // A scan keeps at most num_slots nodes, so a threshold of
      // 2 × num_slots guarantees every scan frees at least half the list
      // (amortized O(1) scans per retire); the floor of 64 keeps scans
      // rare at small slot counts.
      scan_threshold_(std::max<std::size_t>(
          64, 2 * static_cast<std::size_t>(num_slots))) {
  slots_.reserve(static_cast<std::size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

HazardPointerReclaimer::~HazardPointerReclaimer() {
  for (auto& s : slots_) {
    for (VersionedNode* n : s->retired) delete n;
  }
}

void HazardPointerReclaimer::begin(int slot) {
  (void)slot;  // protection is per load, not per critical section
}

void HazardPointerReclaimer::end(int slot) {
  // Release ordering: a scanner acquiring this store (or any later store
  // to the hazard word — every publish is seq_cst, hence also a release)
  // sees all of this slot's dereferences as happened-before, making the
  // subsequent delete race-free.
  slots_[static_cast<std::size_t>(slot)]->hazard.store(
      0, std::memory_order_release);
}

std::uint64_t HazardPointerReclaimer::protect(
    Slot& s, const std::atomic<std::uint64_t>& word, std::uint64_t w) {
  std::uint64_t spins = 0;
  for (;;) {
    if (!is_node_word(w)) {
      // Inline words carry no heap node; drop any stale protection so a
      // scan is not forced to keep an unrelated node alive.
      s.hazard.store(0, std::memory_order_release);
      break;
    }
    // The publish must be ordered before the re-read on the one memory
    // order scanners can rely on (they fence seq_cst before reading
    // hazards): either the scanner sees this hazard, or this re-read sees
    // the scanner's earlier unlink and retries.
    s.hazard.store(w, std::memory_order_seq_cst);
    const std::uint64_t cur = word.load(std::memory_order_seq_cst);
    if (cur == w) break;
    w = cur;
    ++spins;
  }
  s.protect_retries += spins;
  if (spins > s.max_stall_spins) s.max_stall_spins = spins;
  return w;
}

std::uint64_t HazardPointerReclaimer::acquire(
    int slot, const std::atomic<std::uint64_t>& word) {
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  return protect(s, word, word.load(std::memory_order_acquire));
}

std::uint64_t HazardPointerReclaimer::confirm(
    int slot, const std::atomic<std::uint64_t>& word, std::uint64_t w) {
  return protect(*slots_[static_cast<std::size_t>(slot)], word, w);
}

void HazardPointerReclaimer::retire(int slot, VersionedNode* n) {
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  s.retired.push_back(n);
  ++s.retired_count;
  if (s.retired.size() > s.high_water) s.high_water = s.retired.size();
  if (s.retired.size() >= scan_threshold_) scan(s);
}

void HazardPointerReclaimer::scan(Slot& s) {
  ++s.scan_passes;
  // The retiring thread unlinked every node in s.retired (sequenced before
  // this scan); the fence orders those unlinks before the hazard reads, so
  // a protector that misses the unlink is guaranteed visible here.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::vector<std::uint64_t> protected_words;
  protected_words.reserve(slots_.size());
  for (const auto& t : slots_) {
    const std::uint64_t h = t->hazard.load(std::memory_order_acquire);
    if (h != 0) protected_words.push_back(h);
  }
  std::sort(protected_words.begin(), protected_words.end());
  std::vector<VersionedNode*> kept;
  for (VersionedNode* n : s.retired) {
    if (std::binary_search(protected_words.begin(), protected_words.end(),
                           from_node(n))) {
      kept.push_back(n);
    } else {
      delete n;
      ++s.freed;
    }
  }
  s.retired.swap(kept);
}

void HazardPointerReclaimer::release(int slot) {
  slots_[static_cast<std::size_t>(slot)]->hazard.store(
      0, std::memory_order_release);
}

void HazardPointerReclaimer::quiesce() {
  for (auto& s : slots_) {
    for (VersionedNode* n : s->retired) {
      delete n;
      ++s->freed;
    }
    s->retired.clear();
  }
}

ReclaimStats HazardPointerReclaimer::stats() const {
  ReclaimStats out;
  out.policy = ReclaimPolicy::kHazard;
  for (const auto& s : slots_) {
    out.nodes_retired += s->retired_count;
    out.nodes_freed += s->freed;
    out.scan_passes += s->scan_passes;
    out.protect_retries += s->protect_retries;
    if (s->max_stall_spins > out.max_stall_spins) {
      out.max_stall_spins = s->max_stall_spins;
    }
    out.node_high_water += s->high_water;
  }
  return out;
}

// --- factory -------------------------------------------------------------

std::unique_ptr<Reclaimer> make_reclaimer(ReclaimPolicy policy,
                                          int num_slots) {
  switch (policy) {
    case ReclaimPolicy::kEpoch:
      return std::make_unique<EpochReclaimer>(num_slots);
    case ReclaimPolicy::kHazard:
      return std::make_unique<HazardPointerReclaimer>(num_slots);
  }
  LLSC_UNREACHABLE("bad ReclaimPolicy");
}

}  // namespace llsc
