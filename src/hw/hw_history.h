// Thread-safe history recording for hw runs.
//
// lin/history.h's HistoryRecorder assumes the simulator's cooperative
// single-threaded step flow; on HwExecutor, operations of different
// processes invoke and respond genuinely concurrently. This recorder
// stamps invocations and responses with a global atomic counter — a
// conservative approximation of real time: if op A's response stamp is
// below op B's invocation stamp then A really did complete before B began,
// so any linearization admitted under these stamps respects the true
// real-time partial order. (Overlap may be over-reported, which only makes
// the checker's job easier, never unsound.)
//
// Each process writes its completed ops into its own padded slot; take()
// merges after the threads have joined, so no lock is ever held on the
// operation path.
#ifndef LLSC_HW_HW_HISTORY_H_
#define LLSC_HW_HW_HISTORY_H_

#include <atomic>
#include <memory>
#include <vector>

#include "hw/hw_memory.h"
#include "lin/history.h"
#include "runtime/sub_task.h"
#include "universal/universal.h"

namespace llsc {

class ConcurrentHistoryRecorder {
 public:
  ConcurrentHistoryRecorder(UniversalConstruction& uc, int num_procs);

  // Executes `op` through the wrapped construction, recording it into the
  // calling process's slot. Safe to call concurrently from distinct
  // processes; a single process's calls must be sequential (they are — a
  // process is one thread).
  SubTask<Value> execute(ProcCtx ctx, ObjOp op);

  // Merged history ordered by invocation stamp. Call only after the
  // executor run has completed (quiescence).
  History take();

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::vector<HistOp> ops;
  };

  UniversalConstruction* uc_;
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace llsc

#endif  // LLSC_HW_HW_HISTORY_H_
