#include "hw/register_storage.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace llsc {

RegisterStorage::RegisterStorage(std::size_t num_registers, int num_threads,
                                 const BackoffOptions& backoff,
                                 ReclaimPolicy reclaim, int reclaim_slots)
    : regs_(num_registers),
      backoff_options_(backoff),
      waiter_(backoff.waiter != nullptr ? backoff.waiter
                                        : &Waiter::system()),
      reclaimer_(make_reclaimer(
          reclaim, reclaim_slots > 0 ? reclaim_slots : num_threads)) {
  // A Node* must leave bit 0 clear for the inline-word discriminator.
  static_assert(alignof(Node) >= 2);
  LLSC_EXPECTS(num_registers >= 1, "need at least one register");
  LLSC_EXPECTS(num_threads >= 1, "need at least one thread slot");
  ctxs_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    auto c = std::make_unique<ThreadCtx>();
    c->link.assign(num_registers, 0);
    c->backoff = Backoff(backoff_options_);
    ctxs_.push_back(std::move(c));
  }
}

RegisterStorage::~RegisterStorage() {
  // Quiescent teardown: free live boxed heads here; the Reclaimer's
  // destructor frees everything still on its retired lists.
  for (auto& r : regs_) {
    const std::uint64_t w = r.word.load(std::memory_order_relaxed);
    if (w != 0 && is_node_word(w)) delete as_node(w);
  }
}

RegisterStorage::ThreadCtx& RegisterStorage::ctx(ProcId p) {
  LLSC_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < ctxs_.size(),
               "process id outside this memory's thread slots");
  return *ctxs_[static_cast<std::size_t>(p)];
}

void RegisterStorage::invalidate_links(ProcId p) {
  // Owner-thread private data (see header): a zero link word means "no
  // live link", so every SC/VL of the new incarnation fails until it LLs.
  ThreadCtx& c = ctx(p);
  std::fill(c.link.begin(), c.link.end(), 0);
  // The dead incarnation's reclamation protections die with it: its guard
  // already unwound during the crash, so this reset is idempotent, but a
  // restart must never inherit a protection (or pinned epoch) it did not
  // take itself.
  reclaimer_->release(reclaimer_->slot_of(p));
}

std::atomic<std::uint64_t>& RegisterStorage::word(RegId r) {
  LLSC_EXPECTS(r < regs_.size(),
               "register id outside this memory's fixed table");
  return regs_[static_cast<std::size_t>(r)].word;
}

const std::atomic<std::uint64_t>& RegisterStorage::word(RegId r) const {
  LLSC_EXPECTS(r < regs_.size(),
               "register id outside this memory's fixed table");
  return regs_[static_cast<std::size_t>(r)].word;
}

RegisterStorage::Node* RegisterStorage::make_node(ThreadCtx& c, Value v,
                                                  std::uint64_t version) {
  ++c.allocated;
  return new Node{std::move(v), version};
}

void RegisterStorage::wake_waiters(ThreadCtx& c, RegId r) {
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  if (spot.waiters.load(std::memory_order_seq_cst) == 0) return;
  spot.seq.fetch_add(1, std::memory_order_seq_cst);
  waiter_->wake_all(spot.seq);
  ++c.wakes;
}

void RegisterStorage::note_install(ThreadCtx& c, const Value& v,
                                   bool inline_install) {
  note_install_bits(c, v.encoded_bits(), inline_install);
}

void RegisterStorage::note_install_bits(ThreadCtx& c,
                                        std::size_t encoded_bits,
                                        bool inline_install) {
  ++c.writes_inspected;
  if (encoded_bits > c.max_bits) c.max_bits = encoded_bits;
  if (inline_install) {
    ++c.inline_installs;
  } else {
    ++c.boxed_installs;
  }
}

bool RegisterStorage::peek_link_live(RegId r, ProcId p) const {
  const ThreadCtx& c = *ctxs_[static_cast<std::size_t>(p)];
  const std::uint64_t linked = c.link[static_cast<std::size_t>(r)];
  return linked != 0 && peek_version(r) == linked;
}

HwReclaimStats RegisterStorage::reclaim_stats() const {
  HwReclaimStats s = reclaimer_->stats();
  for (const auto& c : ctxs_) {
    s.nodes_allocated += c->allocated;
  }
  return s;
}

HwBackoffStats RegisterStorage::backoff_stats() const {
  HwBackoffStats s;
  s.policy = backoff_options_.policy;
  for (const auto& c : ctxs_) {
    const BackoffStats& b = c->backoff.stats();
    s.cas_failures += b.cas_failures;
    s.cas_successes += b.cas_successes;
    s.spin_pauses += b.spin_pauses;
    s.yields += b.yields;
    s.parks += b.parks;
    s.park_skips += b.park_skips;
    s.wakes += c->wakes;
  }
  return s;
}

RegisterWidthStats RegisterStorage::width_stats() const {
  RegisterWidthStats s;
  s.policy = policy();
  for (const auto& c : ctxs_) {
    s.writes_inspected += c->writes_inspected;
    if (c->max_bits > s.max_bits) s.max_bits = c->max_bits;
    s.overflow_events += c->overflow_events;
    s.inline_installs += c->inline_installs;
    s.boxed_installs += c->boxed_installs;
  }
  return s;
}

// --- BoxedStorage --------------------------------------------------------

BoxedStorage::BoxedStorage(std::size_t num_registers, int num_threads,
                           const BackoffOptions& backoff,
                           ReclaimPolicy reclaim, int reclaim_slots)
    : RegisterStorage(num_registers, num_threads, backoff, reclaim,
                      reclaim_slots) {
  // Registers start as (nil, version 1): a plain nil node per register so
  // operations never see a null head. Initial nodes are not charged to any
  // thread's allocation counter (they predate all operations).
  for (auto& r : regs_) {
    r.word.store(from_node(new Node{Value{}, 1}), std::memory_order_relaxed);
  }
}

Value BoxedStorage::ll(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  Node* cur = as_node(g.acquire(word(r)));
  c.link[static_cast<std::size_t>(r)] = cur->version;
  return cur->value;
}

OpResult BoxedStorage::sc(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  // The link dies on this SC no matter what (paper: a successful SC
  // clears the whole Pset including the writer; a failed SC means the
  // link was already dead).
  const std::uint64_t linked =
      std::exchange(c.link[static_cast<std::size_t>(r)], 0);
  std::atomic<std::uint64_t>& h = word(r);
  std::uint64_t curw = g.acquire(h);
  Node* cur = as_node(curw);
  if (linked == 0 || cur->version != linked) {
    return OpResult{.flag = false, .value = cur->value};
  }
  Node* fresh = make_node(c, std::move(v), cur->version + 1);
  // Width bits while fresh is still private: once published it may be
  // replaced, retired, and freed by a concurrent writer before we read
  // it (the hazard word protects cur, not fresh).
  const std::size_t fresh_bits = fresh->value.encoded_bits();
  if (h.compare_exchange_strong(curw, from_node(fresh),
                                std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
    Value prev = cur->value;
    g.retire(cur);
    // A successful SC changes the head, so installers parked on r can
    // make progress again.
    wake_waiters(c, r);
    note_install_bits(c, fresh_bits, /*inline_install=*/false);
    return OpResult{.flag = true, .value = std::move(prev)};
  }
  // Lost the race: a concurrent write invalidated the link between our
  // load and the CAS. `curw` was reloaded by the failed CAS; confirm
  // re-protects it (a no-op under epochs) so reporting its value is safe.
  delete fresh;
  --c.allocated;
  curw = g.confirm(h, curw);
  return OpResult{.flag = false, .value = as_node(curw)->value};
}

OpResult BoxedStorage::validate(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  Node* cur = as_node(g.acquire(word(r)));
  const std::uint64_t linked = c.link[static_cast<std::size_t>(r)];
  return OpResult{.flag = linked != 0 && cur->version == linked,
                  .value = cur->value};
}

Value BoxedStorage::install(Reclaimer::Guard& g, ThreadCtx& c, RegId r,
                            Value v) {
  std::atomic<std::uint64_t>& h = word(r);
  Node* fresh = make_node(c, std::move(v), 0);
  const std::size_t fresh_bits = fresh->value.encoded_bits();
  std::uint64_t curw = g.acquire(h);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  c.backoff.begin_op();
  for (;;) {
    fresh->version = as_node(curw)->version + 1;
    if (h.compare_exchange_weak(curw, from_node(fresh),
                                std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
      break;
    }
    c.backoff.on_failure(&spot, &h, curw);
    curw = g.confirm(h, curw);
  }
  c.backoff.on_success();
  wake_waiters(c, r);
  Node* cur = as_node(curw);
  Value prev = cur->value;
  g.retire(cur);
  note_install_bits(c, fresh_bits, /*inline_install=*/false);
  return prev;
}

Value BoxedStorage::swap(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  Value prev = install(g, c, r, std::move(v));
  // The install cleared r's Pset; the writer's own link dies with it.
  c.link[static_cast<std::size_t>(r)] = 0;
  return prev;
}

void BoxedStorage::move(ProcId p, RegId src, RegId dst) {
  LLSC_EXPECTS(src != dst, "move(R, R) is excluded from the model");
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  // Two linearization points (read src, install into dst) where the
  // paper's move is one step — see docs/hw_backend.md §relaxations.
  Value v = as_node(g.acquire(word(src)))->value;
  (void)install(g, c, dst, std::move(v));
  c.link[static_cast<std::size_t>(dst)] = 0;
}

Value BoxedStorage::rmw(ProcId p, RegId r, const RmwFunction& f) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  std::atomic<std::uint64_t>& h = word(r);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  c.backoff.begin_op();
  for (;;) {
    std::uint64_t curw = g.acquire(h);
    Node* cur = as_node(curw);
    Node* fresh = make_node(c, f.apply(cur->value), cur->version + 1);
    const std::size_t fresh_bits = fresh->value.encoded_bits();
    if (h.compare_exchange_strong(curw, from_node(fresh),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      c.backoff.on_success();
      wake_waiters(c, r);
      Value prev = cur->value;
      g.retire(cur);
      note_install_bits(c, fresh_bits, /*inline_install=*/false);
      c.link[static_cast<std::size_t>(r)] = 0;
      return prev;
    }
    delete fresh;
    --c.allocated;
    c.backoff.on_failure(&spot, &h, curw);
  }
}

Value BoxedStorage::peek_value(RegId r) const {
  return as_node(word(r).load(std::memory_order_acquire))->value;
}

std::uint64_t BoxedStorage::peek_version(RegId r) const {
  return as_node(word(r).load(std::memory_order_acquire))->version;
}

// --- InlineStorage -------------------------------------------------------

InlineStorage::InlineStorage(std::size_t num_registers, int num_threads,
                             const BackoffOptions& backoff, bool strict,
                             ReclaimPolicy reclaim, int reclaim_slots)
    : RegisterStorage(num_registers, num_threads, backoff, reclaim,
                      reclaim_slots),
      strict_(strict) {
  // Registers start as inline (nil, tag 1) — no allocation at all until a
  // value overflows the word.
  const std::uint64_t nil_word = encode_inline(Value{}, 1);
  for (auto& r : regs_) {
    r.word.store(nil_word, std::memory_order_relaxed);
  }
}

void InlineStorage::throw_overflow(RegId r, const Value& v) const {
  throw RegisterOverflowError(
      "register " + std::to_string(r) + ": value " + v.to_string() +
      " does not fit in a 64-bit inline register word (strict policy)");
}

Value InlineStorage::ll(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  const std::uint64_t cur = g.acquire(word(r));
  c.link[static_cast<std::size_t>(r)] = link_of(cur);
  return value_of(cur);
}

OpResult InlineStorage::sc(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  const std::uint64_t linked =
      std::exchange(c.link[static_cast<std::size_t>(r)], 0);
  std::atomic<std::uint64_t>& h = word(r);
  std::uint64_t cur = g.acquire(h);
  if (linked == 0 || link_of(cur) != linked) {
    return OpResult{.flag = false, .value = value_of(cur)};
  }
  const bool fits = value_fits_inline(v);
  if (!is_node_word(cur) && fits) {
    // The pure bounded-register path: one CAS, no allocation.
    const std::uint64_t fresh =
        encode_inline(v, next_inline_tag(inline_tag(cur)));
    if (h.compare_exchange_strong(cur, fresh, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      Value prev = decode_inline(cur);
      wake_waiters(c, r);
      note_install(c, v, /*inline_install=*/true);
      return OpResult{.flag = true, .value = std::move(prev)};
    }
    cur = g.confirm(h, cur);
    return OpResult{.flag = false, .value = value_of(cur)};
  }
  if (!fits && strict_) throw_overflow(r, v);
  // Demote the register (first even-version node) or replace the node of
  // an already-demoted one.
  Node* fresh = make_node(
      c, std::move(v), is_node_word(cur) ? as_node(cur)->version + 2 : 2);
  const std::size_t fresh_bits = fresh->value.encoded_bits();
  if (h.compare_exchange_strong(cur, from_node(fresh),
                                std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
    Value prev;
    if (is_node_word(cur)) {
      prev = as_node(cur)->value;
      g.retire(as_node(cur));
    } else {
      prev = decode_inline(cur);
    }
    wake_waiters(c, r);
    if (!fits) ++c.overflow_events;
    note_install_bits(c, fresh_bits, /*inline_install=*/false);
    return OpResult{.flag = true, .value = std::move(prev)};
  }
  delete fresh;
  --c.allocated;
  cur = g.confirm(h, cur);
  return OpResult{.flag = false, .value = value_of(cur)};
}

OpResult InlineStorage::validate(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  const std::uint64_t cur = g.acquire(word(r));
  const std::uint64_t linked = c.link[static_cast<std::size_t>(r)];
  return OpResult{.flag = linked != 0 && link_of(cur) == linked,
                  .value = value_of(cur)};
}

Value InlineStorage::install(Reclaimer::Guard& g, ThreadCtx& c, RegId r,
                             const Value& v) {
  const bool fits = value_fits_inline(v);
  if (!fits && strict_) throw_overflow(r, v);
  std::atomic<std::uint64_t>& h = word(r);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  Node* fresh = nullptr;  // allocated lazily, only for the node path
  std::uint64_t cur = g.acquire(h);
  c.backoff.begin_op();
  Value prev;
  bool inline_install = false;
  for (;;) {
    if (!is_node_word(cur) && fits) {
      const std::uint64_t next =
          encode_inline(v, next_inline_tag(inline_tag(cur)));
      if (h.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
        prev = decode_inline(cur);
        inline_install = true;
        break;
      }
    } else {
      if (fresh == nullptr) fresh = make_node(c, v, 0);
      fresh->version = is_node_word(cur) ? as_node(cur)->version + 2 : 2;
      if (h.compare_exchange_weak(cur, from_node(fresh),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
        if (is_node_word(cur)) {
          prev = as_node(cur)->value;
          g.retire(as_node(cur));
        } else {
          prev = decode_inline(cur);
        }
        fresh = nullptr;  // the register owns it now
        break;
      }
    }
    c.backoff.on_failure(&spot, &h, cur);
    cur = g.confirm(h, cur);
  }
  if (fresh != nullptr) {  // defensive: allocated but won another path
    delete fresh;
    --c.allocated;
  }
  c.backoff.on_success();
  wake_waiters(c, r);
  if (!fits) ++c.overflow_events;
  note_install(c, v, inline_install);
  return prev;
}

Value InlineStorage::swap(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  Value prev = install(g, c, r, v);
  c.link[static_cast<std::size_t>(r)] = 0;
  return prev;
}

void InlineStorage::move(ProcId p, RegId src, RegId dst) {
  LLSC_EXPECTS(src != dst, "move(R, R) is excluded from the model");
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  Value v = value_of(g.acquire(word(src)));
  (void)install(g, c, dst, v);
  c.link[static_cast<std::size_t>(dst)] = 0;
}

Value InlineStorage::rmw(ProcId p, RegId r, const RmwFunction& f) {
  ThreadCtx& c = ctx(p);
  Reclaimer::Guard g(*reclaimer_, p);
  std::atomic<std::uint64_t>& h = word(r);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  c.backoff.begin_op();
  std::uint64_t cur = g.acquire(h);
  for (;;) {
    Value curv = value_of(cur);
    Value next = f.apply(curv);
    const bool fits = value_fits_inline(next);
    if (!is_node_word(cur) && fits) {
      const std::uint64_t nw =
          encode_inline(next, next_inline_tag(inline_tag(cur)));
      if (h.compare_exchange_strong(cur, nw, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
        c.backoff.on_success();
        wake_waiters(c, r);
        note_install(c, next, /*inline_install=*/true);
        c.link[static_cast<std::size_t>(r)] = 0;
        return curv;
      }
      c.backoff.on_failure(&spot, &h, cur);
      cur = g.confirm(h, cur);
      continue;
    }
    if (!fits && strict_) throw_overflow(r, next);
    Node* fresh = make_node(
        c, std::move(next),
        is_node_word(cur) ? as_node(cur)->version + 2 : 2);
    const std::size_t fresh_bits = fresh->value.encoded_bits();
    if (h.compare_exchange_strong(cur, from_node(fresh),
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      c.backoff.on_success();
      wake_waiters(c, r);
      if (is_node_word(cur)) g.retire(as_node(cur));
      if (!fits) ++c.overflow_events;
      note_install_bits(c, fresh_bits, /*inline_install=*/false);
      c.link[static_cast<std::size_t>(r)] = 0;
      return curv;
    }
    delete fresh;
    --c.allocated;
    c.backoff.on_failure(&spot, &h, cur);
    cur = g.confirm(h, cur);
  }
}

Value InlineStorage::peek_value(RegId r) const {
  return value_of(word(r).load(std::memory_order_acquire));
}

std::uint64_t InlineStorage::peek_version(RegId r) const {
  return link_of(word(r).load(std::memory_order_acquire));
}

RegisterWidthStats InlineStorage::width_stats() const {
  RegisterWidthStats s = RegisterStorage::width_stats();
  // Demotion is sticky, so the demoted-register count is exactly the
  // number of words currently holding a node (quiescent read).
  std::vector<RegId> demoted;
  for (std::size_t r = 0; r < regs_.size(); ++r) {
    const std::uint64_t w = regs_[r].word.load(std::memory_order_acquire);
    if (w != 0 && is_node_word(w)) {
      ++s.boxed_fallback_registers;
      demoted.push_back(static_cast<RegId>(r));
    }
  }
  attribute_boxed_fallbacks(register_groups(), demoted, s);
  return s;
}

// --- factory -------------------------------------------------------------

std::unique_ptr<RegisterStorage> make_register_storage(
    StoragePolicy policy, std::size_t num_registers, int num_threads,
    const BackoffOptions& backoff, ReclaimPolicy reclaim,
    int reclaim_slots) {
  switch (policy) {
    case StoragePolicy::kBoxed:
      return std::make_unique<BoxedStorage>(num_registers, num_threads,
                                            backoff, reclaim, reclaim_slots);
    case StoragePolicy::kInline:
      return std::make_unique<InlineStorage>(num_registers, num_threads,
                                             backoff, /*strict=*/false,
                                             reclaim, reclaim_slots);
    case StoragePolicy::kInlineStrict:
      return std::make_unique<InlineStorage>(num_registers, num_threads,
                                             backoff, /*strict=*/true,
                                             reclaim, reclaim_slots);
  }
  LLSC_UNREACHABLE("bad StoragePolicy");
}

}  // namespace llsc
