// RegisterStorage — the storage-policy seam behind HwMemory.
//
// HwMemory's public API (the paper's LL/SC/VL/swap/move plus the Section 7
// RMW) is fixed; *how a register stores its value* is the policy this seam
// varies:
//
//   BoxedStorage  — each register's word is always a pointer to an
//                   immutable heap VersionedNode{Value, version}; every
//                   successful write installs a fresh node with version + 1
//                   and the replaced node is retired to the run's
//                   Reclaimer (hw/reclaim.h — three-epoch batches by
//                   default, per-slot hazard pointers under
//                   ReclaimPolicy::kHazard). This is the pre-seam HwMemory
//                   behavior, preserved exactly under the default epoch
//                   policy (same versions, same allocation counts).
//   InlineStorage — while a register's values fit, its word *is* the
//                   value: a 64-bit tagged word (memory/storage_policy.h
//                   codec — 16-bit version tag, 47-bit payload, bit 0 set)
//                   and a write is one CAS with no allocation and no
//                   reclamation. The first write that does not fit either
//                   demotes that one register to boxing permanently
//                   (kInline) or throws RegisterOverflowError
//                   (kInlineStrict).
//
// Link discipline across the two node/inline representations: a process's
// link for a register is the 64-bit word it would have to still observe —
// the node's version for a boxed register, the whole tagged word for an
// inline one. Inline words always have bit 0 set (odd); nodes installed by
// InlineStorage carry even versions (2, 4, …), so a link taken before a
// register was demoted can never validate against a node installed after,
// and vice versa. BoxedStorage keeps the legacy odd-and-even versions
// (1, 2, 3, …) — bit-identical to the pre-seam backend.
//
// ABA: boxed versions never recur (64-bit counter), so boxed SC is exact.
// An inline word's 16-bit tag wraps 0xFFFF → 1, so a *wrong* inline SC
// success requires exactly k · 65535 intervening completed writes, the
// last of which re-encodes the linked payload — the bounded-register price
// Section 7 is about, documented in docs/hw_backend.md.
//
// Reclamation discipline: every operation brackets its node dereferences
// inside one Reclaimer::Guard, loads register words through the guard
// (acquire for fresh loads, confirm for words a failed CAS handed back),
// and retires unlinked nodes through it. No protection ever spans an
// operation boundary — the invariant that lets oversubscribed executors
// bind hazard slots to carrier threads (see hw/reclaim.h).
#ifndef LLSC_HW_REGISTER_STORAGE_H_
#define LLSC_HW_REGISTER_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/backoff.h"
#include "hw/reclaim.h"
#include "memory/op.h"
#include "memory/reclaim_policy.h"
#include "memory/rmw.h"
#include "memory/storage_policy.h"
#include "memory/value.h"

namespace llsc {

inline constexpr std::size_t kCacheLineBytes = 64;

// Back-compat alias: the reclamation counters moved to
// memory/reclaim_policy.h when the Reclaimer seam was extracted.
using HwReclaimStats = ReclaimStats;

// Backoff counters aggregated over threads (read when quiescent), plus
// the wake side of the parking tier, which is charged to the writer
// thread that issued the wake.
struct HwBackoffStats {
  BackoffPolicy policy = BackoffPolicy::kFixed;
  std::uint64_t cas_failures = 0;
  std::uint64_t cas_successes = 0;
  std::uint64_t spin_pauses = 0;
  std::uint64_t yields = 0;
  std::uint64_t parks = 0;
  std::uint64_t park_skips = 0;  // parks cut short by the word re-check
  std::uint64_t wakes = 0;

  double failure_rate() const {
    const std::uint64_t attempts = cas_failures + cas_successes;
    return attempts == 0
               ? 0.0
               : static_cast<double>(cas_failures) /
                     static_cast<double>(attempts);
  }
};

class RegisterStorage {
 public:
  // `reclaim_slots` sizes the Reclaimer's slot table; 0 means one slot per
  // thread/process (the 1:1 layout). Oversubscribed executors pass their
  // carrier count when the policy binds slots to carriers (hw/reclaim.h).
  RegisterStorage(std::size_t num_registers, int num_threads,
                  const BackoffOptions& backoff,
                  ReclaimPolicy reclaim = default_reclaim_policy(),
                  int reclaim_slots = 0);
  virtual ~RegisterStorage();
  RegisterStorage(const RegisterStorage&) = delete;
  RegisterStorage& operator=(const RegisterStorage&) = delete;

  virtual StoragePolicy policy() const = 0;
  ReclaimPolicy reclaim_policy() const { return reclaimer_->policy(); }

  virtual Value ll(ProcId p, RegId r) = 0;
  virtual OpResult sc(ProcId p, RegId r, Value v) = 0;
  virtual OpResult validate(ProcId p, RegId r) = 0;
  virtual Value swap(ProcId p, RegId r, Value v) = 0;
  virtual void move(ProcId p, RegId src, RegId dst) = 0;
  virtual Value rmw(ProcId p, RegId r, const RmwFunction& f) = 0;

  std::size_t num_registers() const { return regs_.size(); }
  int num_threads() const { return static_cast<int>(ctxs_.size()); }

  // Crash-recovery support (hw/fault.h): drop every link p holds, so a
  // restarted incarnation cannot adopt a reservation its dead predecessor
  // took, and release the reclamation protections of p's slot (the dead
  // incarnation's guard already unwound; this is the explicit reset).
  // Links are owner-thread private; call this from the carrier thread
  // performing p's restart — the same thread-contract every operation for
  // p already obeys.
  void invalidate_links(ProcId p);

  // The run's reclamation policy object (executors use this to bind
  // carrier threads to slots; tests to reach policy internals).
  Reclaimer& reclaimer() { return *reclaimer_; }
  const Reclaimer& reclaimer() const { return *reclaimer_; }

  // --- quiescent observation (tests / post-run accounting only) ---
  virtual Value peek_value(RegId r) const = 0;
  // For a boxed register this is the node's version; for an inline one it
  // is the whole tagged word (what peek_link_live compares links against).
  virtual std::uint64_t peek_version(RegId r) const = 0;
  bool peek_link_live(RegId r, ProcId p) const;
  HwReclaimStats reclaim_stats() const;
  HwBackoffStats backoff_stats() const;
  virtual RegisterWidthStats width_stats() const;

  // Labeled logical-object ranges (memory/storage_policy.h). When set,
  // InlineStorage::width_stats() attributes each demoted register to its
  // group in boxed_fallback_by_group; empty (the default) keeps the
  // breakdown empty and existing artifact schemas byte-stable. Set before
  // the run; not thread-safe against concurrent operations.
  void set_register_groups(std::vector<RegisterGroup> groups) {
    groups_ = std::move(groups);
  }
  const std::vector<RegisterGroup>& register_groups() const {
    return groups_;
  }

 protected:
  // Immutable once published; versions per register strictly increase and
  // are never reused (from 1 step 1 under BoxedStorage; from 2 step 2 —
  // always even — for InlineStorage's demoted registers). The node type
  // itself lives with its lifecycle owner, the Reclaimer (hw/reclaim.h).
  using Node = VersionedNode;

  struct alignas(kCacheLineBytes) PaddedWord {
    // Either a Node* (bit 0 clear — nodes are 8-byte aligned) or, under
    // InlineStorage, a tagged inline word (bit 0 set). Derived
    // constructors initialize it; 0 only before that.
    std::atomic<std::uint64_t> word{0};
    // Park rendezvous for the adaptive+parking backoff tier; shares the
    // word's (already-padded) line, which the waking writer just owned.
    ParkSpot park;
  };

  struct alignas(kCacheLineBytes) ThreadCtx {
    // Linked word per register (owner-thread private); 0 = no live link.
    std::vector<std::uint64_t> link;
    // Net completed-install allocations (a node deleted after losing its
    // CAS race is un-counted on the spot).
    std::uint64_t allocated = 0;
    // Retry-loop backoff state and counters (owner-thread private).
    Backoff backoff;
    std::uint64_t wakes = 0;
    // Width accounting (owner-thread private; see RegisterWidthStats).
    std::uint64_t writes_inspected = 0;
    std::size_t max_bits = 0;
    std::uint64_t overflow_events = 0;
    std::uint64_t inline_installs = 0;
    std::uint64_t boxed_installs = 0;
  };

  ThreadCtx& ctx(ProcId p);
  std::atomic<std::uint64_t>& word(RegId r);
  const std::atomic<std::uint64_t>& word(RegId r) const;
  Node* make_node(ThreadCtx& c, Value v, std::uint64_t version);
  // Wake threads parked on r's ParkSpot after a successful write (no-op
  // unless someone is registered as a waiter).
  void wake_waiters(ThreadCtx& c, RegId r);
  // Width accounting at a *completed* install (SC success, swap, move,
  // rmw) — never per CAS retry, so simulator and hw totals agree.
  void note_install(ThreadCtx& c, const Value& v, bool inline_install);
  // Same, from bits precomputed while the installed node was still
  // private. A published node may be replaced, retired, and freed by a
  // concurrent writer at any time — only the node in this slot's hazard
  // word is protected — so its value must not be read after the CAS.
  void note_install_bits(ThreadCtx& c, std::size_t encoded_bits,
                         bool inline_install);

  std::vector<PaddedWord> regs_;
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
  BackoffOptions backoff_options_;
  std::vector<RegisterGroup> groups_;
  Waiter* waiter_;
  std::unique_ptr<Reclaimer> reclaimer_;
};

// The pre-seam HwMemory: every register word is a Node*, versions run
// 1, 2, 3, … per register, every write allocates.
class BoxedStorage : public RegisterStorage {
 public:
  BoxedStorage(std::size_t num_registers, int num_threads,
               const BackoffOptions& backoff,
               ReclaimPolicy reclaim = default_reclaim_policy(),
               int reclaim_slots = 0);

  StoragePolicy policy() const override { return StoragePolicy::kBoxed; }

  Value ll(ProcId p, RegId r) override;
  OpResult sc(ProcId p, RegId r, Value v) override;
  OpResult validate(ProcId p, RegId r) override;
  Value swap(ProcId p, RegId r, Value v) override;
  void move(ProcId p, RegId src, RegId dst) override;
  Value rmw(ProcId p, RegId r, const RmwFunction& f) override;

  Value peek_value(RegId r) const override;
  std::uint64_t peek_version(RegId r) const override;

 private:
  // Unconditional install of `v` into r with a version bump (swap/move
  // tail); returns the replaced value. Dereferences through `g`.
  Value install(Reclaimer::Guard& g, ThreadCtx& c, RegId r, Value v);
};

// The bounded-register regime: one 64-bit tagged word per register while
// its values fit, per-register demotion to boxing (or a thrown
// RegisterOverflowError under kInlineStrict) when one does not.
class InlineStorage final : public RegisterStorage {
 public:
  InlineStorage(std::size_t num_registers, int num_threads,
                const BackoffOptions& backoff, bool strict,
                ReclaimPolicy reclaim = default_reclaim_policy(),
                int reclaim_slots = 0);

  StoragePolicy policy() const override {
    return strict_ ? StoragePolicy::kInlineStrict : StoragePolicy::kInline;
  }

  Value ll(ProcId p, RegId r) override;
  OpResult sc(ProcId p, RegId r, Value v) override;
  OpResult validate(ProcId p, RegId r) override;
  Value swap(ProcId p, RegId r, Value v) override;
  void move(ProcId p, RegId src, RegId dst) override;
  Value rmw(ProcId p, RegId r, const RmwFunction& f) override;

  Value peek_value(RegId r) const override;
  std::uint64_t peek_version(RegId r) const override;
  RegisterWidthStats width_stats() const override;

 private:
  // The link a register's current word asserts: the whole word when
  // inline, the node's (even) version when demoted.
  static std::uint64_t link_of(std::uint64_t w) {
    return is_node_word(w) ? as_node(w)->version : w;
  }
  Value value_of(std::uint64_t w) const {
    return is_node_word(w) ? as_node(w)->value : decode_inline(w);
  }
  [[noreturn]] void throw_overflow(RegId r, const Value& v) const;
  // Unconditional install (swap/move tail): inline CAS when the register
  // is inline and `v` fits, demotion or node replacement otherwise.
  Value install(Reclaimer::Guard& g, ThreadCtx& c, RegId r, const Value& v);

  const bool strict_;
};

std::unique_ptr<RegisterStorage> make_register_storage(
    StoragePolicy policy, std::size_t num_registers, int num_threads,
    const BackoffOptions& backoff,
    ReclaimPolicy reclaim = default_reclaim_policy(), int reclaim_slots = 0);

}  // namespace llsc

#endif  // LLSC_HW_REGISTER_STORAGE_H_
