// HDR-style log-bucketed latency histogram.
//
// Service-mode runs (hw/service.h) record one enqueue→complete latency
// per completed operation; at M = 64N logical processes that is far too
// many samples to keep raw, and a sorted-vector percentile (the
// UcThroughput approach) would dominate the run's own memory traffic.
// This histogram is the classic HDR shape instead: power-of-two major
// buckets ("octaves") split into 2^kSubBits linear sub-buckets, giving a
// bounded relative error of 2^-kSubBits (~3% at the default 5 bits) over
// the full 64-bit range with O(1) record and a fixed ~15 KB footprint.
//
// Not thread-safe: record into one instance per process (a logical
// process's ops are serialized even under oversubscription) and merge()
// after the run.
#ifndef LLSC_HW_LATENCY_HISTOGRAM_H_
#define LLSC_HW_LATENCY_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace llsc {

class LatencyHistogram {
 public:
  // Sub-bucket resolution: each octave [2^k, 2^{k+1}) splits into
  // 2^kSubBits equal linear buckets; values below 2^kSubBits are exact.
  static constexpr int kSubBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(64 - kSubBits + 1) * kSubBuckets;

  LatencyHistogram() : buckets_(kNumBuckets, 0) {}

  void record(std::uint64_t value_ns) {
    ++buckets_[index_of(value_ns)];
    ++count_;
    if (value_ns > max_) max_ = value_ns;
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }

  // Value at the q-th quantile (q in [0, 1]), reported as the upper edge
  // of the bucket holding the rank-⌈q·count⌉ sample — an overestimate by
  // at most the bucket width (2^-kSubBits relative). 0 when empty.
  std::uint64_t quantile_ns(double q) const {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) return upper_edge(i);
    }
    return max_;  // unreachable with count_ > 0
  }

  std::uint64_t p50_ns() const { return quantile_ns(0.50); }
  std::uint64_t p90_ns() const { return quantile_ns(0.90); }
  std::uint64_t p99_ns() const { return quantile_ns(0.99); }
  std::uint64_t p999_ns() const { return quantile_ns(0.999); }

  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits;
    const std::uint64_t sub = (v >> shift) & (kSubBuckets - 1);
    return static_cast<std::size_t>(shift + 1) * kSubBuckets +
           static_cast<std::size_t>(sub);
  }

  // Largest value mapping to bucket i (the inverse of index_of, upper
  // edge inclusive).
  static std::uint64_t upper_edge(std::size_t i) {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const std::uint64_t shift = i / kSubBuckets - 1;
    const std::uint64_t sub = i % kSubBuckets;
    return ((kSubBuckets + sub + 1) << shift) - 1;
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace llsc

#endif  // LLSC_HW_LATENCY_HISTOGRAM_H_
