// Open-loop service-mode load generator over OversubscribedExecutor.
//
// The north star's "millions of users" scenario: M logical client
// processes multiplexed on N carrier threads, each issuing operations at
// Poisson arrival times rather than back-to-back (closed-loop). Each
// process draws exponential inter-arrival gaps with mean M/λ — the
// superposition of the M streams is a Poisson process of aggregate rate
// λ — and the gaps are derived deterministically from (seed, p), so a
// service run's offered load replays exactly.
//
// A process waits for its next arrival by cooperative yielding
// (ctx.yield() — no carrier thread is pinned while waiting), executes
// the configured operation through the usual awaitables, and records the
// enqueue→complete latency: completion time minus the SCHEDULED arrival,
// so queueing delay under backlog is included — the open-loop convention
// that makes p99 honest when the system saturates (coordinated-omission-
// free). Latencies land in the per-process LatencyHistograms and are
// merged into HwRunResult::latency.
#ifndef LLSC_HW_SERVICE_H_
#define LLSC_HW_SERVICE_H_

#include <cstdint>
#include <optional>

#include "hw/oversub_executor.h"

namespace llsc {

enum class ServiceWorkload : int {
  // fetch&add(1) on one shared register via the RMW awaitable — the
  // Section 7 strong-operation baseline: one shared op per request.
  kFetchInc = 0,
  // LL;SC increment retry loop on one shared register — the naive
  // wakeup-counter shape whose retries amplify under contention.
  kWakeup = 1,
  // fetch&increment through CombiningUniversal — batching absorbs the
  // contention that kWakeup melts under.
  kCombining = 2,
};

const char* to_string(ServiceWorkload workload);

struct ServiceOptions {
  int procs = 64;    // M logical client processes
  int threads = 4;   // N carrier threads (0 = hardware_concurrency)
  // Aggregate Poisson arrival rate λ across all processes, ops/second.
  double arrival_rate_hz = 50'000.0;
  int ops_per_proc = 8;
  ServiceWorkload workload = ServiceWorkload::kFetchInc;
  std::uint64_t seed = 1;
  YieldPolicy yield_policy = YieldPolicy::kEveryOp;
  std::uint32_t yield_every_k = 8;
  BackoffOptions backoff;
  StoragePolicy storage = default_storage_policy();
  std::optional<std::uint64_t> timeout_ms;
  std::uint64_t progress_timeout_ms = 0;
  // Fault plan for the run (hw/fault.h), nullptr = no injection. Crash
  // entries with a RecoverySpec model a crash-storm with repair: a client
  // crashed mid-request does NOT count as served (its latency is never
  // recorded — see ServiceResult::in_flight_at_crash), and an amnesiac
  // rejoin resumes the arrival schedule at the first unserved request
  // (completed requests are journaled in the latency histogram's count).
  // Caller keeps the plan alive for the run.
  const FaultPlan* fault = nullptr;
};

struct ServiceResult {
  // Full run result; run.latency holds the merged enqueue→complete
  // histogram (p50/p90/p99/p999 via its accessors), run.sched the
  // scheduler counters.
  HwRunResult run;
  double arrival_rate_hz = 0.0;  // configured λ
  std::uint64_t offered_ops = 0;  // procs × ops_per_proc
  std::uint64_t served_ops = 0;   // completed (latency-recorded) ops
  double throughput_ops_per_sec = 0.0;  // served / wall
  // --- availability accounting (zero without a fault plan) ---
  // Requests a crash caught between arrival and completion. Each such
  // request is not served (no latency recorded); under recovery the new
  // incarnation re-serves the same arrival, so one request can be counted
  // here once per crash it absorbed. served <= offered always holds;
  // served == offered on a fully-recovered run.
  std::uint64_t in_flight_at_crash = 0;
  std::uint64_t crashes = 0;     // injected crash-stops (FaultStats)
  std::uint64_t recoveries = 0;  // rejoins consumed (FaultStats)
  // Mean time to repair: average injected rejoin delay, wall-clock
  // (recovery_units × stall_unit_ns / recoveries). 0 with no recoveries.
  double mttr_ms = 0.0;
  // served / offered in [0, 1]; 1.0 when offered == 0.
  double availability = 1.0;
};

// Runs one open-loop service experiment. The offered/served accounting
// always holds served <= offered, with equality on a clean run.
ServiceResult run_service(const ServiceOptions& options);

}  // namespace llsc

#endif  // LLSC_HW_SERVICE_H_
