#include "hw/hw_memory.h"

#include <utility>

#include "hw/backoff.h"
#include "util/check.h"

namespace llsc {

namespace {

// Retired nodes per batch before a thread pays for an epoch scan. Small
// enough that peak garbage stays bounded (≤ interval × threads × ~3
// epochs), large enough to amortize the O(threads) scan.
constexpr std::uint64_t kScanInterval = 64;

}  // namespace

HwMemory::HwMemory(std::size_t num_registers, int num_threads,
                   const BackoffOptions& backoff)
    : regs_(num_registers),
      backoff_options_(backoff),
      waiter_(backoff.waiter != nullptr ? backoff.waiter
                                        : &Waiter::system()) {
  LLSC_EXPECTS(num_registers >= 1, "need at least one register");
  LLSC_EXPECTS(num_threads >= 1, "need at least one thread slot");
  ctxs_.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    auto c = std::make_unique<ThreadCtx>();
    c->link.assign(num_registers, 0);
    c->backoff = Backoff(backoff_options_);
    ctxs_.push_back(std::move(c));
  }
  // Registers start as (nil, version 1): a plain nil node per register so
  // operations never see a null head.
  for (auto& r : regs_) {
    r.head.store(new Node{Value{}, 1}, std::memory_order_relaxed);
  }
}

HwMemory::~HwMemory() {
  // Quiescent teardown: free live heads and everything still retired.
  for (auto& r : regs_) {
    delete r.head.load(std::memory_order_relaxed);
  }
  for (auto& c : ctxs_) {
    for (auto& [epoch, node] : c->retired) delete node;
  }
}

HwMemory::ThreadCtx& HwMemory::ctx(ProcId p) {
  LLSC_EXPECTS(p >= 0 && static_cast<std::size_t>(p) < ctxs_.size(),
               "process id outside this memory's thread slots");
  return *ctxs_[static_cast<std::size_t>(p)];
}

std::atomic<HwMemory::Node*>& HwMemory::head(RegId r) {
  LLSC_EXPECTS(r < regs_.size(),
               "register id outside this memory's fixed table");
  return regs_[static_cast<std::size_t>(r)].head;
}

HwMemory::Node* HwMemory::make_node(ThreadCtx& c, Value v,
                                    std::uint64_t version) {
  ++c.allocated;
  return new Node{std::move(v), version};
}

void HwMemory::retire(ThreadCtx& c, Node* n) {
  // Global epochs are monotone, so retirement epochs are non-decreasing
  // per thread and the freeable nodes always form a deque prefix.
  c.retired.emplace_back(global_epoch_.load(), n);
  ++c.retired_count;
  if (++c.retires_since_scan >= kScanInterval) {
    c.retires_since_scan = 0;
    scan_and_reclaim(c);
  }
}

void HwMemory::scan_and_reclaim(ThreadCtx& c) {
  std::uint64_t global = global_epoch_.load();
  // Advance the global epoch iff every thread is quiescent or already in
  // the current epoch. A thread stuck in an older critical section blocks
  // the advance — that is the grace-period guarantee.
  bool can_advance = true;
  for (const auto& t : ctxs_) {
    const std::uint64_t e = t->epoch.load();
    if (e != 0 && e != global) {
      can_advance = false;
      break;
    }
  }
  if (can_advance) {
    if (global_epoch_.compare_exchange_strong(global, global + 1)) {
      global = global + 1;
    } else {
      global = global_epoch_.load();  // someone else advanced; also fine
    }
  }
  // A node retired in epoch e is untouchable once the global epoch
  // reaches e + 2: any thread that could hold a reference entered its
  // critical section at an epoch ≤ e, and both advances past e required
  // that thread to have exited (observed via acquire loads of its epoch,
  // which is the happens-before edge making the delete race-free).
  while (!c.retired.empty() && c.retired.front().first + 2 <= global) {
    delete c.retired.front().second;
    c.retired.pop_front();
    ++c.freed;
  }
}

Value HwMemory::ll(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  Node* cur = head(r).load(std::memory_order_acquire);
  c.link[static_cast<std::size_t>(r)] = cur->version;
  return cur->value;
}

OpResult HwMemory::sc(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  // The link dies on this SC no matter what (paper: a successful SC
  // clears the whole Pset including the writer; a failed SC means the
  // link was already dead).
  const std::uint64_t linked =
      std::exchange(c.link[static_cast<std::size_t>(r)], 0);
  std::atomic<Node*>& h = head(r);
  Node* cur = h.load(std::memory_order_acquire);
  if (linked == 0 || cur->version != linked) {
    return OpResult{.flag = false, .value = cur->value};
  }
  Node* fresh = make_node(c, std::move(v), cur->version + 1);
  if (h.compare_exchange_strong(cur, fresh, std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
    Value prev = cur->value;
    retire(c, cur);
    // A successful SC changes the head, so installers parked on r can
    // make progress again.
    wake_waiters(c, r);
    return OpResult{.flag = true, .value = std::move(prev)};
  }
  // Lost the race: a concurrent write invalidated the link between our
  // load and the CAS. `cur` was reloaded by the failed CAS and is
  // protected by our epoch guard, so reporting its value is safe.
  delete fresh;
  --c.allocated;
  return OpResult{.flag = false, .value = cur->value};
}

OpResult HwMemory::validate(ProcId p, RegId r) {
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  Node* cur = head(r).load(std::memory_order_acquire);
  const std::uint64_t linked = c.link[static_cast<std::size_t>(r)];
  return OpResult{.flag = linked != 0 && cur->version == linked,
                  .value = cur->value};
}

Value HwMemory::install(ThreadCtx& c, RegId r, Value v) {
  std::atomic<Node*>& h = head(r);
  Node* fresh = make_node(c, std::move(v), 0);
  Node* cur = h.load(std::memory_order_acquire);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  c.backoff.begin_op();
  for (;;) {
    fresh->version = cur->version + 1;
    if (h.compare_exchange_weak(cur, fresh, std::memory_order_acq_rel,
                                std::memory_order_acquire)) {
      break;
    }
    c.backoff.on_failure(&spot);
  }
  c.backoff.on_success();
  wake_waiters(c, r);
  Value prev = cur->value;
  retire(c, cur);
  return prev;
}

void HwMemory::wake_waiters(ThreadCtx& c, RegId r) {
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  if (spot.waiters.load(std::memory_order_seq_cst) == 0) return;
  spot.seq.fetch_add(1, std::memory_order_seq_cst);
  waiter_->wake_all(spot.seq);
  ++c.wakes;
}

Value HwMemory::swap(ProcId p, RegId r, Value v) {
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  Value prev = install(c, r, std::move(v));
  // The install cleared r's Pset; the writer's own link dies with it.
  c.link[static_cast<std::size_t>(r)] = 0;
  return prev;
}

void HwMemory::move(ProcId p, RegId src, RegId dst) {
  LLSC_EXPECTS(src != dst, "move(R, R) is excluded from the model");
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  // Two linearization points (read src, install into dst) where the
  // paper's move is one step — see docs/hw_backend.md §relaxations.
  Value v = head(src).load(std::memory_order_acquire)->value;
  (void)install(c, dst, std::move(v));
  c.link[static_cast<std::size_t>(dst)] = 0;
}

Value HwMemory::rmw(ProcId p, RegId r, const RmwFunction& f) {
  ThreadCtx& c = ctx(p);
  EpochGuard guard(global_epoch_, c);
  std::atomic<Node*>& h = head(r);
  ParkSpot& spot = regs_[static_cast<std::size_t>(r)].park;
  c.backoff.begin_op();
  for (;;) {
    Node* cur = h.load(std::memory_order_acquire);
    Node* fresh = make_node(c, f.apply(cur->value), cur->version + 1);
    if (h.compare_exchange_strong(cur, fresh, std::memory_order_acq_rel,
                                  std::memory_order_acquire)) {
      c.backoff.on_success();
      wake_waiters(c, r);
      Value prev = cur->value;
      retire(c, cur);
      c.link[static_cast<std::size_t>(r)] = 0;
      return prev;
    }
    delete fresh;
    --c.allocated;
    c.backoff.on_failure(&spot);
  }
}

OpResult HwMemory::apply(ProcId p, const PendingOp& op) {
  switch (op.kind) {
    case OpKind::kLL:
      return OpResult{.flag = true, .value = ll(p, op.reg)};
    case OpKind::kSC:
      return sc(p, op.reg, op.arg);
    case OpKind::kValidate:
      return validate(p, op.reg);
    case OpKind::kSwap:
      return OpResult{.flag = true, .value = swap(p, op.reg, op.arg)};
    case OpKind::kMove:
      move(p, op.src, op.reg);
      return OpResult{.flag = true, .value = Value{}};
    case OpKind::kRmw:
      LLSC_EXPECTS(op.rmw != nullptr, "RMW op without a function");
      return OpResult{.flag = true, .value = rmw(p, op.reg, *op.rmw)};
  }
  LLSC_UNREACHABLE("bad OpKind");
}

Value HwMemory::peek_value(RegId r) const {
  return regs_[static_cast<std::size_t>(r)]
      .head.load(std::memory_order_acquire)
      ->value;
}

std::uint64_t HwMemory::peek_version(RegId r) const {
  return regs_[static_cast<std::size_t>(r)]
      .head.load(std::memory_order_acquire)
      ->version;
}

bool HwMemory::peek_link_live(RegId r, ProcId p) const {
  const ThreadCtx& c = *ctxs_[static_cast<std::size_t>(p)];
  const std::uint64_t linked = c.link[static_cast<std::size_t>(r)];
  return linked != 0 && peek_version(r) == linked;
}

HwReclaimStats HwMemory::reclaim_stats() const {
  HwReclaimStats s;
  s.global_epoch = global_epoch_.load();
  for (const auto& c : ctxs_) {
    s.nodes_allocated += c->allocated;
    s.nodes_retired += c->retired_count;
    s.nodes_freed += c->freed;
  }
  return s;
}

HwBackoffStats HwMemory::backoff_stats() const {
  HwBackoffStats s;
  s.policy = backoff_options_.policy;
  for (const auto& c : ctxs_) {
    const BackoffStats& b = c->backoff.stats();
    s.cas_failures += b.cas_failures;
    s.cas_successes += b.cas_successes;
    s.spin_pauses += b.spin_pauses;
    s.yields += b.yields;
    s.parks += b.parks;
    s.wakes += c->wakes;
  }
  return s;
}

}  // namespace llsc
