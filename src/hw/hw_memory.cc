#include "hw/hw_memory.h"

#include <utility>

#include "util/check.h"

namespace llsc {

HwMemory::HwMemory(std::size_t num_registers, int num_threads,
                   const BackoffOptions& backoff, StoragePolicy storage,
                   ReclaimPolicy reclaim, int reclaim_slots)
    : storage_(make_register_storage(storage, num_registers, num_threads,
                                     backoff, reclaim, reclaim_slots)) {}

HwMemory::~HwMemory() = default;

OpResult HwMemory::apply(ProcId p, const PendingOp& op) {
  switch (op.kind) {
    case OpKind::kLL:
      return OpResult{.flag = true, .value = ll(p, op.reg)};
    case OpKind::kSC:
      return sc(p, op.reg, op.arg);
    case OpKind::kValidate:
      return validate(p, op.reg);
    case OpKind::kSwap:
      return OpResult{.flag = true, .value = swap(p, op.reg, op.arg)};
    case OpKind::kMove:
      move(p, op.src, op.reg);
      return OpResult{.flag = true, .value = Value{}};
    case OpKind::kRmw:
      LLSC_EXPECTS(op.rmw != nullptr, "RMW op without a function");
      return OpResult{.flag = true, .value = rmw(p, op.reg, *op.rmw)};
  }
  LLSC_UNREACHABLE("bad OpKind");
}

}  // namespace llsc
