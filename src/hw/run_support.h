// Shared run plumbing for the real-thread executors.
//
// HwExecutor (1 logical process = 1 OS thread) and OversubscribedExecutor
// (M logical processes on N carrier threads) share everything below: the
// file-local-style signals that unwind a worker's coroutine stack, the
// per-logical-process progress monitor the watchdog reads, the Platform
// wrapper that adds cancellation checkpoints + fault injection in front
// of HwMemory, and the watchdog thread itself.
//
// The monitor tracks progress per LOGICAL PROCESS (indexed by ProcId),
// not per carrier thread — under oversubscription a correctly parked
// coroutine owns no thread, and a per-thread view would misread M-N
// runnable-but-unscheduled processes as a wedged run. The watchdog's
// stagnation window scales by ⌈M/N⌉ for the same reason: one logical
// process legitimately waits ~M/N scheduling quanta between its own
// steps, so a window tuned for 1:1 fires spuriously at 16:1. (Callers
// still apply LLSC_TIMEOUT_SCALE via scale_timeout_ms when arming tight
// windows; the two factors compose.)
//
// Everything here is an implementation detail of the executors — tests
// and benches should not include this header.
#ifndef LLSC_HW_RUN_SUPPORT_H_
#define LLSC_HW_RUN_SUPPORT_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hw/fault.h"
#include "hw/hw_memory.h"
#include "hw/platform.h"
#include "runtime/toss.h"

namespace llsc {
namespace hw_internal {

using Clock = std::chrono::steady_clock;

// Thrown out of the monitored platform to unwind a worker's coroutine
// stack; caught by the executor's worker loop and turned into a per-
// process outcome. These never escape an executor's run().
struct CrashStopSignal {};
struct CancelledSignal {};

// Per-logical-process progress state, padded so the watchdog's reads
// don't share lines with the workers' increments. Incarnations and
// recovery waits feed the watchdog's stagnation signature alongside raw
// steps: a process serving its recovery delay takes no shared steps, and
// a freshly restarted one may re-execute the same step count — neither
// must read as a wedged run, and neither must count double as progress
// (the signature sums all three, so each restart/wait-unit moves it
// exactly once).
struct alignas(64) WorkerProgress {
  std::atomic<std::uint64_t> steps{0};
  std::atomic<std::uint32_t> incarnations{0};
  std::atomic<std::uint64_t> recovery_waits{0};
  std::atomic<bool> finished{false};
};

// Shared run monitor: the cancel flag every worker polls at each shared
// step, plus the per-process progress counters the watchdog watches.
struct RunMonitor {
  explicit RunMonitor(int m) : progress(static_cast<std::size_t>(m)) {}

  void check_cancel(ProcId p) const {
    if (cancel.load(std::memory_order_relaxed)) {
      (void)p;
      throw CancelledSignal{};
    }
  }
  void note_step(ProcId p) {
    progress[static_cast<std::size_t>(p)].steps.fetch_add(
        1, std::memory_order_relaxed);
  }
  // A scheduling edge (resume / cooperative yield in the oversubscribed
  // executor) counts as progress too: an open-loop service body waiting
  // for its arrival time yields in a loop without taking shared steps,
  // and must not read as stagnant while the scheduler is cycling it.
  void note_sched(ProcId p) { note_step(p); }
  // A crash-recovery restart of p (new incarnation about to run).
  void note_restart(ProcId p) {
    progress[static_cast<std::size_t>(p)].incarnations.fetch_add(
        1, std::memory_order_relaxed);
  }
  // One served unit of p's recovery delay.
  void note_recovery_wait(ProcId p) {
    progress[static_cast<std::size_t>(p)].recovery_waits.fetch_add(
        1, std::memory_order_relaxed);
  }

  std::atomic<bool> cancel{false};
  std::vector<WorkerProgress> progress;
};

// HwPlatform plus the robustness hooks: a cancellation checkpoint and a
// progress tick on every shared-memory op and toss, and (when a plan is
// installed) the fault injector in front of the memory. Worker bodies
// therefore observe watchdog cancellation and crash-stops as exceptions
// at step boundaries — a body that loops without ever taking a step
// cannot be cancelled (nothing can preempt a native thread), which is
// why tests keep a ctest-level timeout as backstop.
//
// Non-final: OversubscribedExecutor derives to implement the Platform
// yield hooks over the same apply/toss plumbing.
class MonitoredHwPlatform : public Platform {
 public:
  MonitoredHwPlatform(HwMemory* memory,
                      std::shared_ptr<const TossAssignment> tosses,
                      FaultInjector* injector, RunMonitor* monitor,
                      std::uint32_t stall_unit_ns)
      : memory_(memory),
        tosses_(std::move(tosses)),
        injector_(injector),
        monitor_(monitor),
        stall_unit_ns_(stall_unit_ns) {}

  bool synchronous() const override { return true; }

  OpResult apply(ProcId p, const PendingOp& op) override {
    monitor_->check_cancel(p);
    OpResult result;
    if (injector_ != nullptr) {
      if (injector_->crash_pending(p)) {
        injector_->note_crash(p);
        RecoverySpec rspec;
        if (injector_->recovery_spec(p, &rspec) && !rspec.amnesia) {
          // Pause-and-resume recovery needs no frame teardown: consume
          // the crash, serve the delay in place, and fall through to the
          // op the process was about to take. Amnesiac recovery must
          // unwind the coroutine, so it throws to the worker loop.
          const std::uint32_t units = injector_->note_recovery(p);
          recovery_wait(p, units);
        } else {
          throw CrashStopSignal{};
        }
      }
      result = injector_->apply(
          p, op, [&](const PendingOp& o) { return memory_->apply(p, o); },
          [&](std::uint32_t units) { stall(p, units); });
    } else {
      result = memory_->apply(p, op);
    }
    monitor_->note_step(p);
    return result;
  }

  std::uint64_t toss(ProcId p, std::uint64_t j) override {
    monitor_->check_cancel(p);
    monitor_->note_step(p);
    return tosses_->outcome(p, j);
  }

  std::string name() const override { return "hw"; }

  // Serve p's recovery delay: like stall(), but each unit also ticks the
  // monitor's recovery_waits so the watchdog sees the wait as progress.
  // Public because the executors' worker loops serve the delay for the
  // amnesiac (thrown) path before respawning the coroutine. A cancel
  // during the wait still throws CancelledSignal — a watchdog-cancelled
  // recovery reads as kHung, not as a clean restart.
  void recovery_wait(ProcId p, std::uint32_t units) {
    for (std::uint32_t u = 0; u < units; ++u) {
      monitor_->check_cancel(p);
      monitor_->note_recovery_wait(p);
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_unit_ns_));
    }
  }

 protected:
  RunMonitor* monitor() const { return monitor_; }

 private:
  // Injected delay: sleep unit by unit with a cancellation checkpoint per
  // unit, so a stalled worker still honours the watchdog promptly.
  void stall(ProcId p, std::uint32_t units) {
    for (std::uint32_t u = 0; u < units; ++u) {
      monitor_->check_cancel(p);
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall_unit_ns_));
    }
  }

  HwMemory* memory_;
  std::shared_ptr<const TossAssignment> tosses_;
  FaultInjector* injector_;
  RunMonitor* monitor_;
  std::uint32_t stall_unit_ns_;
};

// Watchdog armed over one run: polls the wall-clock deadline and the
// per-process progress counters, and flips the monitor's cancel flag when
// the run is out of budget or wedged. Construct after the start gate
// opens (t0 = the moment the clock starts); stop() after the workers
// join. Unarmed configs (both windows 0) spawn no thread.
class Watchdog {
 public:
  struct Config {
    std::uint64_t deadline_ms = 0;          // 0 = no deadline
    std::uint64_t progress_timeout_ms = 0;  // 0 = no stagnation check
    std::uint64_t poll_ms = 5;
    // ⌈M/N⌉ — logical processes per carrier thread, 1 for the 1:1
    // executor. Multiplies progress_timeout_ms, NOT deadline_ms: the
    // run-wide wall budget is a caller promise independent of how the
    // work is scheduled.
    std::uint64_t oversub_factor = 1;
  };

  Watchdog(RunMonitor* monitor, const Config& config, Clock::time_point t0)
      : monitor_(monitor), config_(config), t0_(t0) {
    if (config_.oversub_factor == 0) config_.oversub_factor = 1;
    if (config_.deadline_ms > 0 || config_.progress_timeout_ms > 0) {
      thread_ = std::thread([this] { loop(); });
    }
  }
  ~Watchdog() { stop(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Signal run completion and join the poll thread. Idempotent.
  void stop() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      run_finished_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    const auto poll = std::chrono::milliseconds(
        std::max<std::uint64_t>(1, config_.poll_ms));
    const std::chrono::milliseconds stagnation_window{
        config_.progress_timeout_ms * config_.oversub_factor};
    const int m = static_cast<int>(monitor_->progress.size());
    std::uint64_t last_sum = ~0ull;
    int last_finished = -1;
    Clock::time_point last_change = Clock::now();
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cv_.wait_for(lock, poll, [&] { return run_finished_; })) {
        return;
      }
      const Clock::time_point now = Clock::now();
      if (config_.deadline_ms > 0 &&
          now - t0_ >= std::chrono::milliseconds(config_.deadline_ms)) {
        monitor_->cancel.store(true, std::memory_order_relaxed);
        continue;  // keep waiting for run_finished
      }
      if (config_.progress_timeout_ms > 0) {
        // The change signature folds in restarts and recovery-delay units
        // so a recovering process is not declared hung mid-rejoin. (steps
        // can only grow, so summing the three cannot mask a stall.)
        std::uint64_t sum = 0;
        int finished = 0;
        for (const WorkerProgress& w : monitor_->progress) {
          sum += w.steps.load(std::memory_order_relaxed);
          sum += w.incarnations.load(std::memory_order_relaxed);
          sum += w.recovery_waits.load(std::memory_order_relaxed);
          finished += w.finished.load(std::memory_order_relaxed) ? 1 : 0;
        }
        if (sum != last_sum || finished != last_finished) {
          last_sum = sum;
          last_finished = finished;
          last_change = now;
        } else if (finished < m && now - last_change >= stagnation_window) {
          monitor_->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  RunMonitor* monitor_;
  Config config_;
  Clock::time_point t0_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool run_finished_ = false;
  std::thread thread_;
};

}  // namespace hw_internal
}  // namespace llsc

#endif  // LLSC_HW_RUN_SUPPORT_H_
