#include "hw/backoff.h"

#include <chrono>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <climits>
#include <ctime>
#endif

namespace llsc {

const char* to_string(BackoffPolicy policy) {
  switch (policy) {
    case BackoffPolicy::kFixed:
      return "fixed";
    case BackoffPolicy::kAdaptive:
      return "adaptive";
    case BackoffPolicy::kAdaptiveParking:
      return "adaptive_park";
  }
  return "unknown";
}

namespace {

// Upper bound on one park. Parking is a latency/CPU-burn optimization —
// the retry loops stay lock-free — so a missed wake (the documented
// ParkSpot race) only ever costs this much before the thread re-checks.
constexpr long kParkTimeoutNs = 1'000'000;  // 1 ms

#if defined(__linux__)

// futex(2)-backed parking: wait while *word == expected, woken by
// wake_all or the timeout. EAGAIN (word already changed), EINTR, and
// ETIMEDOUT are all fine — the caller re-checks in its retry loop.
class FutexWaiter final : public Waiter {
 public:
  void wait(std::atomic<std::uint32_t>& word,
            std::uint32_t expected) override {
    timespec timeout{};
    timeout.tv_sec = 0;
    timeout.tv_nsec = kParkTimeoutNs;
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAIT_PRIVATE, expected, &timeout, nullptr, 0);
  }

  void wake_all(std::atomic<std::uint32_t>& word) override {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
  }
};

using SystemWaiter = FutexWaiter;

#else

// Portable fallback: a short sleep stands in for the futex wait
// (std::atomic::wait has no timeout, which the Waiter contract requires);
// wake_all is then best-effort via notify_all for platforms whose
// libstdc++ implements atomic waiting with a futex table anyway.
class TimedSleepWaiter final : public Waiter {
 public:
  void wait(std::atomic<std::uint32_t>& word,
            std::uint32_t expected) override {
    if (word.load(std::memory_order_acquire) != expected) return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(kParkTimeoutNs));
  }

  void wake_all(std::atomic<std::uint32_t>& word) override {
    word.notify_all();
  }
};

using SystemWaiter = TimedSleepWaiter;

#endif

}  // namespace

Waiter& Waiter::system() {
  static SystemWaiter waiter;
  return waiter;
}

}  // namespace llsc
