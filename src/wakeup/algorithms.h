// Direct wakeup algorithms over raw LL/SC/VL/swap/move shared memory.
//
// These exhibit the whole complexity spectrum the paper frames:
//
//   tournament_wakeup       Θ(log n) per process — a combining tree of
//                           up-sets, matching the Ω(log n) lower bound up
//                           to the constant (the same technique that makes
//                           the Group-Update construction O(log n));
//   counter_wakeup          the naive LL/SC retry counter: lock-free, the
//                           adversary forces Θ(n) on the last finisher;
//   swap_mix_wakeup         a tournament variant whose announce and probe
//                           steps use swap and move, exercising all five
//                           operation types under the adversary;
//   randomized_tournament_wakeup
//                           coin tosses choose probe patterns and read
//                           orders; terminates with probability 1 — the
//                           randomized-lower-bound subject (E4);
//   flaky_wakeup(d)         with probability 1/d a process spins forever:
//                           terminates with probability c = (1-1/d)^n,
//                           exercising Lemma 3.1's "terminates with
//                           probability c" setting;
//   cheating_wakeup(k)      deliberately WRONG: returns 1 after k
//                           operations regardless. Used to demonstrate the
//                           Theorem 6.1 machinery catching a sub-log-n
//                           "solution" via an (S,A)-run witness;
//   random_mix_body(steps, regs)
//                           not a wakeup solution at all: every process
//                           performs `steps` toss-driven random operations
//                           (all five kinds) over `regs` registers and
//                           returns 0. Lemma 5.1/5.2 hold for arbitrary
//                           algorithms, and the property tests use this to
//                           exercise them far from the happy path.
#ifndef LLSC_WAKEUP_ALGORITHMS_H_
#define LLSC_WAKEUP_ALGORITHMS_H_

#include <cstdint>
#include <set>
#include <string>

#include "runtime/process.h"
#include "util/rng.h"

namespace llsc {

// Register payload used by the tree-based wakeups: the set of processes
// known to be up in some subtree.
struct UpSetVal {
  std::set<ProcId> ups;

  bool operator==(const UpSetVal&) const = default;
  std::string to_string() const {
    return "up{" + std::to_string(ups.size()) + "}";
  }
  std::size_t hash() const {
    std::size_t h = 0x9E3779B97F4A7C15ULL;
    for (const ProcId p : ups) h = mix64(h ^ static_cast<std::uint64_t>(p));
    return h;
  }
};

ProcBody tournament_wakeup();
ProcBody counter_wakeup();
ProcBody swap_mix_wakeup();
ProcBody randomized_tournament_wakeup();
// LL/SC retry counter with toss-driven backoff probes after each failed
// SC: run length genuinely varies with the toss assignment (unlike the
// randomized tournament, whose op count is fixed), so expected-complexity
// estimates average over distinct run shapes.
ProcBody backoff_counter_wakeup();
ProcBody flaky_wakeup(std::uint64_t denominator);
ProcBody cheating_wakeup(std::uint64_t ops);
ProcBody random_mix_body(int steps, RegId regs);
// Wakeup over read-modify-write memory — the problem's ORIGINAL setting
// (Fischer–Moran–Rudich–Taubenfeld [16], cited in the paper's §2): one RMW
// increment-and-observe per process solves wakeup. With RMW available the
// Ω(log n) bound evaporates to 1; correspondingly the Fig. 2 adversary
// refuses to schedule this algorithm (RMW is outside its operation set).
ProcBody rmw_wakeup();

}  // namespace llsc

#endif  // LLSC_WAKEUP_ALGORITHMS_H_
