// The wakeup problem (paper Section 1.1) and its run checker.
//
// Specification, for n processes:
//   (1) every process terminates in a finite number of its own steps,
//       returning 0 or 1;
//   (2) in every run in which all processes terminate, at least one
//       process returns 1;
//   (3) in every run in which one or more processes return 1, every
//       process takes at least one step before any process returns 1.
//
// Intuitively: whoever wakes up last must detect that everyone is up.
// check_wakeup_run() verifies (1)-(3) on a finished System, using the
// System's event clock (which ticks on coin tosses as well as shared
// steps, matching the paper's notion of "step").
#ifndef LLSC_WAKEUP_SPEC_H_
#define LLSC_WAKEUP_SPEC_H_

#include <string>
#include <vector>

#include "runtime/system.h"

namespace llsc {

struct WakeupCheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  int num_winners = 0;  // processes that returned 1

  std::string summary() const;
};

// Checks the wakeup conditions on a run that was driven to completion (or
// to a step cap — non-termination is reported as a violation of (1)).
WakeupCheckResult check_wakeup_run(const System& sys);

// Recoverable wakeup (crash-recovery extension, hw/fault.h): the base
// conditions plus (4) no process is left crashed — every crash the fault
// plan injected was recovered and the rejoined process ran to a 0/1
// return. num_restarts sums the injector's incarnation counters, so a
// checker can assert the crash→rejoin schedule actually exercised
// recovery. Conditions (2)/(3) are inherited unchanged: a rejoined
// process re-participates, and exactly-one-winner algorithms must still
// produce a winner (the dead incarnation's announce slots and LL
// reservations were invalidated, never adopted).
struct RecoverableWakeupCheckResult : WakeupCheckResult {
  std::uint64_t num_restarts = 0;
};

RecoverableWakeupCheckResult check_recoverable_wakeup_run(const System& sys);

}  // namespace llsc

#endif  // LLSC_WAKEUP_SPEC_H_
