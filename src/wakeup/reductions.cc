#include "wakeup/reductions.h"

#include "objects/arith.h"
#include "objects/basic.h"
#include "objects/bitwise.h"
#include "objects/containers.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "util/check.h"
#include "util/str.h"

namespace llsc {

namespace {

// Bit width for the k >= log n objects (fetch&increment, counter): enough
// bits that n distinct values fit.
unsigned log_bits(int n) {
  return static_cast<unsigned>(ceil_log2(static_cast<std::size_t>(n)) + 1);
}

// --- per-reduction wakeup recipes (each a coroutine over the UC) ---

SimTask fai_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // Braced-init temporaries must not appear inside co_await expressions
  // (GCC 12 double-destroys them; see runtime/sub_task.h) — every op below
  // is hoisted into a named local first.
  ObjOp op{"fetch&increment", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.as_u64() == static_cast<std::uint64_t>(n) - 1 ? 1 : 0);
}

SimTask fand_body(ProcCtx ctx, ProcId i, int n, UniversalConstruction* uc) {
  // v_i: all ones except bit i. Response with 0s in the first n bits except
  // bit i means everyone else already ANDed theirs.
  BigInt v = BigInt::ones(static_cast<std::size_t>(n));
  v.set_bit(static_cast<std::size_t>(i), false);
  ObjOp op{"fetch&and", Value::of_big(v)};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.as_big() == BigInt::pow2(static_cast<std::size_t>(i)) ? 1 : 0);
}

SimTask for_body(ProcCtx ctx, ProcId i, int n, UniversalConstruction* uc) {
  // Dual of fetch&and over an all-zero initial state: OR in bit i; the
  // last process sees every bit but possibly its own already set.
  const BigInt mine = BigInt::pow2(static_cast<std::size_t>(i));
  ObjOp op{"fetch&or", Value::of_big(mine)};
  const Value r = co_await uc->execute(ctx, std::move(op));
  BigInt expected = BigInt::ones(static_cast<std::size_t>(n));
  expected ^= mine;  // all first-n bits except bit i
  co_return Value::of_u64(r.as_big() == expected ? 1 : 0);
}

SimTask fxor_body(ProcCtx ctx, ProcId i, int n, UniversalConstruction* uc) {
  // XOR in bit i of an all-zero word (each process exactly once): the last
  // process sees every other bit already set — same shape as complement.
  const BigInt mine = BigInt::pow2(static_cast<std::size_t>(i));
  ObjOp op{"fetch&xor", Value::of_big(mine)};
  const Value r = co_await uc->execute(ctx, std::move(op));
  BigInt expected = BigInt::ones(static_cast<std::size_t>(n));
  expected ^= mine;
  co_return Value::of_u64(r.as_big() == expected ? 1 : 0);
}

SimTask fcompl_body(ProcCtx ctx, ProcId i, int n, UniversalConstruction* uc) {
  // Everyone flips their own bit of an all-zero word exactly once; the
  // last process sees every other bit already flipped to 1.
  ObjOp op{"fetch&complement", Value::of_u64(static_cast<std::uint64_t>(i))};
  const Value r = co_await uc->execute(ctx, std::move(op));
  BigInt expected = BigInt::ones(static_cast<std::size_t>(n));
  expected.set_bit(static_cast<std::size_t>(i), false);
  co_return Value::of_u64(r.as_big() == expected ? 1 : 0);
}

SimTask fmul_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // Response 2^(n-1) witnesses exactly n-1 earlier multiplications (see
  // the header comment on the deviation from the paper's "response is 0").
  ObjOp op{"fetch&multiply", Value::of_big(BigInt(2))};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.as_big() == BigInt::pow2(static_cast<std::size_t>(n) - 1) ? 1 : 0);
}

SimTask queue_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // Queue initially holds 1..n with n at the rear; the dequeuer of n is
  // the n-th dequeuer.
  ObjOp op{"dequeue", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.holds_u64() && r.as_u64() == static_cast<std::uint64_t>(n) ? 1 : 0);
}

SimTask stack_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // Stack initially holds n..1 bottom-to-top; popping the bottom item (n)
  // means n-1 pops happened first.
  ObjOp op{"pop", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.holds_u64() && r.as_u64() == static_cast<std::uint64_t>(n) ? 1 : 0);
}

SimTask pqueue_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // Priority queue initially holding keys 1..n: delete-min hands out keys
  // in ascending order, so the process receiving n is the n-th deleter.
  ObjOp op{"delete-min", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return Value::of_u64(
      r.holds_u64() && r.as_u64() == static_cast<std::uint64_t>(n) ? 1 : 0);
}

SimTask counter_body(ProcCtx ctx, int n, UniversalConstruction* uc) {
  // The theorem's item 4: increment (ack only), then read; the reader who
  // sees n knows everyone incremented. Two operations per process.
  ObjOp inc{"increment", {}};
  (void)co_await uc->execute(ctx, std::move(inc));
  ObjOp read{"read", {}};
  const Value r = co_await uc->execute(ctx, std::move(read));
  co_return Value::of_u64(
      r.as_u64() == static_cast<std::uint64_t>(n) ? 1 : 0);
}

// --- problem reductions (wakeup ⇄ TAS ⇄ leader) --------------------------

// Raw counter wakeup over the single register `reg`: LL/SC-increment once,
// then one read; return 1 iff the read saw at least n. Every process
// increments before it reads, so whichever read is LAST in real time sees
// all n increments — at least one process returns 1 on any crash-free
// completed run, and a 1 certifies that every process already took a step
// (wakeup condition (3)). Crash-free because an amnesiac re-incarnation
// increments again; the problem reductions are specified for crash-free
// runs, matching the fault plans the reduction tests drive them with.
SubTask<Value> counter_wakeup_sub(ProcCtx ctx, int n, RegId reg) {
  for (;;) {
    const Value v = co_await ctx.ll(reg);
    const std::uint64_t cur = v.holds_u64() ? v.as_u64() : 0;
    const ScResult r = co_await ctx.sc(reg, Value::of_u64(cur + 1));
    if (r.ok) break;
  }
  const Value fin = co_await ctx.read(reg);
  const bool awake =
      fin.holds_u64() && fin.as_u64() >= static_cast<std::uint64_t>(n);
  co_return Value::of_u64(awake ? 1 : 0);
}

SimTask tas_from_leader_run(ProcCtx ctx, TasOptions options,
                            std::vector<std::uint64_t>* glue) {
  // Won iff the elected id is mine: zero shared ops beyond the election.
  const Value leader = co_await leader_subtask(ctx, options);
  const bool won = leader.holds_u64() &&
                   leader.as_u64() == static_cast<std::uint64_t>(ctx.id());
  if (glue) (*glue)[static_cast<std::size_t>(ctx.id())] = 0;
  co_return Value::of_u64(won ? 1 : 0);
}

SimTask leader_from_tas_run(ProcCtx ctx, TasOptions options,
                            std::vector<std::uint64_t>* glue) {
  const TasLayout layout = TasLayout::make(ctx.num_processes(), options.base);
  const Value won = co_await tas_subtask(ctx, options);
  std::uint64_t g = 0;
  Value leader;
  if (won.holds_u64() && won.as_u64() == 1) {
    const Value me = Value::of_u64(static_cast<std::uint64_t>(ctx.id()));
    (void)co_await ctx.swap(layout.announce, me);
    ++g;
    leader = me;
  } else {
    // Non-nil by the TAS loser postcondition: one read elects.
    leader = co_await ctx.read(layout.claim);
    ++g;
  }
  if (glue) (*glue)[static_cast<std::size_t>(ctx.id())] = g;
  co_return leader;
}

SimTask tas_from_wakeup_run(ProcCtx ctx, RegId base,
                            std::vector<std::uint64_t>* glue) {
  const int n = ctx.num_processes();
  const Value me = Value::of_u64(static_cast<std::uint64_t>(ctx.id()));
  (void)co_await counter_wakeup_sub(ctx, n, base);
  // Glue: a constant claim handshake on the write-once register base + 1.
  // Only ever SC'd from nil, so the first success freezes the winner; a
  // fault-free pass takes at most 3 ops (LL nil, SC beaten, LL non-nil).
  // Seeing one's own id is the amnesiac-winner re-entry, as in tas.cc.
  const RegId claim = base + 1;
  std::uint64_t g = 0;
  std::uint64_t won = 0;
  for (;;) {
    const Value v = co_await ctx.ll(claim);
    ++g;
    if (!v.is_nil()) {
      won = (v == me) ? 1 : 0;
      break;
    }
    const ScResult r = co_await ctx.sc(claim, me);
    ++g;
    if (r.ok) {
      won = 1;
      break;
    }
  }
  if (glue) (*glue)[static_cast<std::size_t>(ctx.id())] = g;
  co_return Value::of_u64(won);
}

SimTask single_winner_wakeup_run(ProcCtx ctx, RegId base,
                                 std::vector<std::uint64_t>* glue) {
  const int n = ctx.num_processes();
  const Value awake = co_await counter_wakeup_sub(ctx, n, base);
  std::uint64_t result = 0;
  if (awake.holds_u64() && awake.as_u64() == 1) {
    // Wakeup winners (at least one exists) compete in a TAS sized for n;
    // any subset of its processes may enter an instance. The composition
    // still solves wakeup — a TAS winner saw the counter at n first — but
    // with EXACTLY one winner, and zero ops outside the two solvers.
    TasOptions tas;
    tas.base = base + 1;
    const Value won = co_await tas_subtask(ctx, tas);
    result = won.holds_u64() && won.as_u64() == 1 ? 1 : 0;
  }
  if (glue) (*glue)[static_cast<std::size_t>(ctx.id())] = 0;
  co_return Value::of_u64(result);
}

}  // namespace

const std::vector<ObjectReduction>& all_reductions() {
  static const std::vector<ObjectReduction> kAll = {
      {"fetch&increment", 1}, {"fetch&and", 1},  {"fetch&or", 1},
      {"fetch&xor", 1},       {"fetch&complement", 1},
      {"fetch&multiply", 1},  {"queue", 1},      {"stack", 1},
      {"priority-queue", 1},  {"read+increment", 2},
  };
  return kAll;
}

ObjectFactory reduction_object_factory(const std::string& name, int n) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  const auto bits = static_cast<std::size_t>(n);
  if (name == "fetch&increment") {
    return [b = log_bits(n)] {
      return std::make_unique<FetchAddObject>(b, 0);
    };
  }
  if (name == "fetch&and") {
    return [bits] {
      return std::make_unique<BitwiseObject>(bits, BigInt::ones(bits));
    };
  }
  if (name == "fetch&or" || name == "fetch&xor") {
    return [bits] { return std::make_unique<BitwiseObject>(bits, BigInt()); };
  }
  if (name == "fetch&complement") {
    return [bits] {
      return std::make_unique<FetchComplementObject>(bits, BigInt());
    };
  }
  if (name == "fetch&multiply") {
    return [bits] {
      return std::make_unique<FetchMultiplyObject>(bits, BigInt(1));
    };
  }
  if (name == "queue") {
    return [n] {
      std::vector<Value> items;
      for (int k = 1; k <= n; ++k) {
        items.push_back(Value::of_u64(static_cast<std::uint64_t>(k)));
      }
      return std::make_unique<QueueObject>(std::move(items));
    };
  }
  if (name == "stack") {
    return [n] {
      std::vector<Value> items;  // bottom first: n, n-1, ..., 1
      for (int k = n; k >= 1; --k) {
        items.push_back(Value::of_u64(static_cast<std::uint64_t>(k)));
      }
      return std::make_unique<StackObject>(std::move(items));
    };
  }
  if (name == "priority-queue") {
    return [n] {
      std::vector<std::uint64_t> keys;
      for (int k = 1; k <= n; ++k) {
        keys.push_back(static_cast<std::uint64_t>(k));
      }
      return std::make_unique<PriorityQueueObject>(std::move(keys));
    };
  }
  if (name == "read+increment") {
    return [b = log_bits(n)] { return std::make_unique<CounterObject>(b, 0); };
  }
  LLSC_EXPECTS(false, "unknown reduction: " + name);
  return nullptr;
}

ProcBody reduction_wakeup_body(const std::string& name,
                               UniversalConstruction& uc) {
  UniversalConstruction* ucp = &uc;
  if (name == "fetch&increment") {
    return [ucp](ProcCtx ctx, ProcId, int n) { return fai_body(ctx, n, ucp); };
  }
  if (name == "fetch&and") {
    return [ucp](ProcCtx ctx, ProcId i, int n) {
      return fand_body(ctx, i, n, ucp);
    };
  }
  if (name == "fetch&or") {
    return [ucp](ProcCtx ctx, ProcId i, int n) {
      return for_body(ctx, i, n, ucp);
    };
  }
  if (name == "fetch&xor") {
    return [ucp](ProcCtx ctx, ProcId i, int n) {
      return fxor_body(ctx, i, n, ucp);
    };
  }
  if (name == "fetch&complement") {
    return [ucp](ProcCtx ctx, ProcId i, int n) {
      return fcompl_body(ctx, i, n, ucp);
    };
  }
  if (name == "fetch&multiply") {
    return [ucp](ProcCtx ctx, ProcId, int n) {
      return fmul_body(ctx, n, ucp);
    };
  }
  if (name == "queue") {
    return [ucp](ProcCtx ctx, ProcId, int n) {
      return queue_body(ctx, n, ucp);
    };
  }
  if (name == "stack") {
    return [ucp](ProcCtx ctx, ProcId, int n) {
      return stack_body(ctx, n, ucp);
    };
  }
  if (name == "priority-queue") {
    return [ucp](ProcCtx ctx, ProcId, int n) {
      return pqueue_body(ctx, n, ucp);
    };
  }
  if (name == "read+increment") {
    return [ucp](ProcCtx ctx, ProcId, int n) {
      return counter_body(ctx, n, ucp);
    };
  }
  LLSC_EXPECTS(false, "unknown reduction: " + name);
  return nullptr;
}

const std::vector<ProblemReduction>& problem_reductions() {
  static const std::vector<ProblemReduction> kAll = {
      {"tas_from_leader", 0},
      {"leader_from_tas", 1},
      {"tas_from_wakeup", 4},
      {"single_winner_wakeup_from_tas", 0},
  };
  return kAll;
}

ProcBody problem_reduction_body(const std::string& name, RegId base,
                                std::vector<std::uint64_t>* glue_ops) {
  if (name == "tas_from_leader") {
    TasOptions options;
    options.base = base;
    return [options, glue_ops](ProcCtx ctx, ProcId, int) {
      return tas_from_leader_run(ctx, options, glue_ops);
    };
  }
  if (name == "leader_from_tas") {
    TasOptions options;
    options.base = base;
    return [options, glue_ops](ProcCtx ctx, ProcId, int) {
      return leader_from_tas_run(ctx, options, glue_ops);
    };
  }
  if (name == "tas_from_wakeup") {
    return [base, glue_ops](ProcCtx ctx, ProcId, int) {
      return tas_from_wakeup_run(ctx, base, glue_ops);
    };
  }
  if (name == "single_winner_wakeup_from_tas") {
    return [base, glue_ops](ProcCtx ctx, ProcId, int) {
      return single_winner_wakeup_run(ctx, base, glue_ops);
    };
  }
  LLSC_EXPECTS(false, "unknown problem reduction: " + name);
  return nullptr;
}

}  // namespace llsc
