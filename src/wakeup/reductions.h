// Theorem 6.2 object reductions.
//
// For each object type listed by the theorem there is a wakeup algorithm
// in which every process performs at most k operations on a single shared
// object of that type (k = 1 for items 1-3, k = 2 for read+increment).
// By Corollary 6.1, any linearizable n-process implementation of such a
// type over LL/SC/VL/swap/move memory therefore has worst-case expected
// shared-access time complexity at least (1/k)·log_4 n.
//
// Each reduction bundles: the correctly initialized sequential object (the
// theorem fixes the initial state — queue holding 1..n, fetch&and holding
// all ones, ...), the per-process wakeup recipe, and k. Running a
// reduction through an *oblivious* universal construction (src/universal)
// realizes the paper's punchline: no matter the type, the implemented
// operation costs Ω(log n) shared-memory steps, so constant-time
// implementations must exploit type semantics.
//
// One deviation from the paper's text, documented in EXPERIMENTS.md: for
// fetch&multiply the paper says "if O's response is 0, return 1", but with
// each of n processes multiplying the initial state 1 by 2 exactly once,
// no response is ever 0 (the last response is 2^(n-1); only the state
// afterwards overflows k = n bits to 0). We return 1 iff the response is
// 2^(n-1), which witnesses exactly n-1 prior operations — the inference
// the recipe needs.
#ifndef LLSC_WAKEUP_REDUCTIONS_H_
#define LLSC_WAKEUP_REDUCTIONS_H_

#include <string>
#include <vector>

#include "objects/object.h"
#include "runtime/process.h"
#include "universal/universal.h"

namespace llsc {

struct ObjectReduction {
  std::string name;     // "fetch&increment", "queue", ...
  int ops_per_process;  // the theorem's k
};

// The eight reductions of Theorem 6.2, plus two natural extensions the
// same argument covers (fetch&xor, behaving like fetch&complement, and a
// priority queue, behaving like queue/stack: the n-th removal is
// identifiable).
const std::vector<ObjectReduction>& all_reductions();

// Sequential object for reduction `name`, initialized as the theorem
// prescribes for n processes.
ObjectFactory reduction_object_factory(const std::string& name, int n);

// The wakeup algorithm for reduction `name`, performing its operations on
// the object implemented by `uc`. `uc` must outlive the System.
ProcBody reduction_wakeup_body(const std::string& name,
                               UniversalConstruction& uc);

// --- constant-op problem reductions: wakeup ⇄ TAS ⇄ leader election -----
//
// Each entry solves one problem given a solver for another, with a CLAIMED
// constant bound on the glue — the per-process shared ops spent outside
// the underlying solver — in fault-free runs (spurious SC failures can
// stretch a retry loop; crash-free completed runs under dense schedules
// respect the bound, which reductions_test.cc measures on both
// substrates). The chain, with the bound each direction transfers:
//
//   tas_from_leader   (glue 0)  leader ⇒ TAS: won iff the elected id is
//                               mine. Any leader-election lower bound
//                               (arXiv:2108.02802's Ω(log n)) transfers to
//                               TAS unchanged.
//   leader_from_tas   (glue 1)  TAS ⇒ leader: the TAS claim register is
//                               write-once and non-nil before any loser
//                               returns, so one swap (winner announce) or
//                               one read (loser) elects. TAS upper bounds
//                               (arXiv:1608.06033) transfer to leader
//                               election plus a constant.
//   tas_from_wakeup   (glue 4)  wakeup ⇒ TAS: run wakeup as the doorway,
//                               then a constant LL/SC claim handshake.
//                               The composed TAS costs the wakeup bound
//                               plus a constant — the source paper's
//                               Ω(log n) shape for the suite's new object.
//   single_winner_wakeup_from_tas (glue 0)
//                               TAS ⇒ wakeup refinement: wakeup winners
//                               run the TAS, so the composition still
//                               solves wakeup but with EXACTLY one winner;
//                               a sub-log-n TAS would beat Theorem 6.1
//                               here, which is the reduction-checked
//                               lower-bound argument E18 sweeps.
struct ProblemReduction {
  std::string name;
  int glue_ops_bound;  // claimed constant overhead (fault-free)
};

const std::vector<ProblemReduction>& problem_reductions();

// Body for problem reduction `name`; shared state occupies registers
// [base, base + a TAS layout + 1). tas_from_leader, tas_from_wakeup and
// single_winner_wakeup_from_tas return 1/0 (winner-scan compatible);
// leader_from_tas returns the elected leader's id (check_leader_run's
// subject). When `glue_ops` is non-null it must outlive the run and have
// size n; entry p receives the glue ops process p's LAST incarnation
// spent outside the underlying solver.
ProcBody problem_reduction_body(const std::string& name, RegId base = 0,
                                std::vector<std::uint64_t>* glue_ops =
                                    nullptr);

}  // namespace llsc

#endif  // LLSC_WAKEUP_REDUCTIONS_H_
