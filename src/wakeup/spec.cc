#include "wakeup/spec.h"

#include <algorithm>

namespace llsc {

std::string WakeupCheckResult::summary() const {
  return std::string(ok ? "OK" : "VIOLATED") + " (" +
         std::to_string(num_winners) + " winner(s), " +
         std::to_string(violations.size()) + " violation(s))";
}

WakeupCheckResult check_wakeup_run(const System& sys) {
  WakeupCheckResult res;
  const int n = sys.num_processes();
  const auto violation = [&res](std::string msg) {
    res.ok = false;
    res.violations.push_back(std::move(msg));
  };

  // (1) termination with a 0/1 result.
  bool all_done = true;
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (!proc.done()) {
      all_done = false;
      violation("p" + std::to_string(p) + " did not terminate");
      continue;
    }
    const Value& r = proc.result();
    if (!r.holds_u64() || r.as_u64() > 1) {
      violation("p" + std::to_string(p) + " returned " + r.to_string() +
                " (not 0/1)");
    }
  }

  // Earliest 1-return, by completion clock.
  std::uint64_t earliest_win = 0;
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (!proc.done() || !proc.result().holds_u64() ||
        proc.result().as_u64() != 1) {
      continue;
    }
    ++res.num_winners;
    const std::uint64_t t = sys.completion_event(p);
    if (earliest_win == 0 || t < earliest_win) earliest_win = t;
  }

  // (2) someone returns 1 whenever everyone terminated.
  if (all_done && res.num_winners == 0) {
    violation("all processes terminated but none returned 1");
  }

  // (3) every process stepped strictly before the first 1-return.
  if (res.num_winners > 0) {
    for (ProcId p = 0; p < n; ++p) {
      const std::uint64_t first = sys.first_event(p);
      // A return happens immediately after the returner's final step, so a
      // first step *at* the winning clock value (necessarily the winner's
      // own, since steps are serialized) precedes the return.
      if (first == 0 || first > earliest_win) {
        violation("p" + std::to_string(p) +
                  " had not taken a step before the first 1-return");
      }
    }
  }
  return res;
}

RecoverableWakeupCheckResult check_recoverable_wakeup_run(const System& sys) {
  RecoverableWakeupCheckResult res;
  static_cast<WakeupCheckResult&>(res) = check_wakeup_run(sys);
  const int n = sys.num_processes();
  for (ProcId p = 0; p < n; ++p) {
    if (sys.process(p).crashed()) {
      res.ok = false;
      res.violations.push_back("p" + std::to_string(p) +
                               " is still crashed (recovery never fired)");
    }
    res.num_restarts += sys.process(p).incarnation();
  }
  return res;
}

}  // namespace llsc
