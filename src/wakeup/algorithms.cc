#include "wakeup/algorithms.h"

#include "runtime/sub_task.h"
#include "util/check.h"

namespace llsc {

namespace {

// Tree geometry shared by the tournament-style algorithms: a heap-indexed
// complete binary tree (root = node 1) with `leaves(n)` leaves; process p
// owns leaf `leaves(n) + p`, registered at the node id itself.
std::uint64_t leaves(int n) {
  std::uint64_t m = 2;
  while (m < static_cast<std::uint64_t>(n)) m *= 2;
  return m;
}

const UpSetVal& as_upset(const Value& v) {
  static const UpSetVal kEmpty;
  if (v.is_nil()) return kEmpty;
  const UpSetVal* set = v.get_if<UpSetVal>();
  LLSC_CHECK(set != nullptr, "register does not hold an UpSetVal");
  return *set;
}

// Core combining-tree climb from p's leaf to the root: two merge attempts
// per node (LL; read both children; SC the merge), then a root read.
// Because the two subtrees under a node are disjoint, a node only needs
// the COUNT of up-processes in its subtree (leaf = 1, merge = sum): counts
// are monotone under successful writes exactly like the subtree up-sets,
// and the root count reaching n certifies that everyone announced.
// `randomized` adds toss-driven read orders and probe operations without
// changing the information flow. Returns 1 iff the root count equals n.
SubTask<Value> tree_wakeup_body(ProcCtx ctx, ProcId i, int n,
                                bool randomized) {
  const std::uint64_t m = leaves(n);
  const RegId leaf = m + static_cast<std::uint64_t>(i);

  co_await ctx.swap(leaf, Value::of_u64(1));

  const auto count_of = [](const Value& v) {
    return v.is_nil() ? 0 : v.as_u64();
  };
  for (std::uint64_t node = leaf / 2; node >= 1; node /= 2) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const Value cur = co_await ctx.ll(node);
      (void)cur;  // the merge is rebuilt from the children
      bool left_first = true;
      if (randomized) {
        // NOTE: co_await must never appear inside an if/while/switch
        // condition — GCC 12's coroutine codegen inserts spurious
        // suspensions there (see Process::resume); bind to a local first.
        const std::uint64_t coin = co_await ctx.toss(2);
        left_first = coin == 0;
      }
      const RegId first = left_first ? 2 * node : 2 * node + 1;
      const RegId second = left_first ? 2 * node + 1 : 2 * node;
      const Value a = co_await ctx.read(first);
      const Value b = co_await ctx.read(second);
      const Value merged = Value::of_u64(count_of(a) + count_of(b));
      co_await ctx.sc(node, merged);
      if (randomized) {
        const std::uint64_t probe_coin = co_await ctx.toss(4);
        if (probe_coin == 0) {
          // An information-free probe of a random tree register.
          const RegId probe = 1 + (co_await ctx.toss(2 * m - 1));
          (void)co_await ctx.validate(probe);
        }
      }
    }
  }

  const Value root = co_await ctx.read(1);
  const bool all_up = count_of(root) == static_cast<std::uint64_t>(n);
  co_return Value::of_u64(all_up ? 1 : 0);
}

// SimTask adapter for the tree climb.
SimTask run_tree_wakeup(ProcCtx ctx, ProcId i, int n, bool randomized) {
  co_return co_await tree_wakeup_body(ctx, i, n, randomized);
}

SimTask counter_body(ProcCtx ctx, ProcId, int n) {
  // LL/SC retry loop on a single counter register. Lock-free rather than
  // wait-free: under the Fig. 2 adversary the last finisher retries Θ(n)
  // times (one SC per register succeeds per round).
  for (;;) {
    const Value v = co_await ctx.ll(0);
    const std::uint64_t c = v.is_nil() ? 0 : v.as_u64();
    const ScResult r = co_await ctx.sc(0, Value::of_u64(c + 1));
    if (r.ok) {
      co_return Value::of_u64(c + 1 == static_cast<std::uint64_t>(n) ? 1 : 0);
    }
  }
}

SimTask swap_mix_body(ProcCtx ctx, ProcId i, int n) {
  // Announce with a swap into a staging register, move the announcement
  // into the tree leaf, then run the combining climb — all five operation
  // types appear in one correct wakeup algorithm.
  const std::uint64_t m = leaves(n);
  const RegId staging = 2 * m + static_cast<std::uint64_t>(i);
  const RegId leaf = m + static_cast<std::uint64_t>(i);

  UpSetVal mine;
  mine.ups.insert(i);
  co_await ctx.swap(staging, Value::of(std::move(mine)));
  co_await ctx.move(staging, leaf);

  for (std::uint64_t node = leaf / 2; node >= 1; node /= 2) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      (void)co_await ctx.ll(node);
      const Value a = co_await ctx.read(2 * node);
      const Value b = co_await ctx.read(2 * node + 1);
      UpSetVal merged = as_upset(a);
      const UpSetVal& other = as_upset(b);
      merged.ups.insert(other.ups.begin(), other.ups.end());
      co_await ctx.sc(node, Value::of(std::move(merged)));
    }
  }

  const Value root = co_await ctx.read(1);
  const bool all_up = as_upset(root).ups.size() == static_cast<std::size_t>(n);
  co_return Value::of_u64(all_up ? 1 : 0);
}

SimTask backoff_counter_body(ProcCtx ctx, ProcId, int n) {
  for (;;) {
    const Value v = co_await ctx.ll(0);
    const std::uint64_t c = v.is_nil() ? 0 : v.as_u64();
    const ScResult r = co_await ctx.sc(0, Value::of_u64(c + 1));
    if (r.ok) {
      co_return Value::of_u64(c + 1 == static_cast<std::uint64_t>(n) ? 1 : 0);
    }
    // Random backoff: 0-3 information-free probes before retrying.
    const std::uint64_t backoff = co_await ctx.toss(4);
    for (std::uint64_t b = 0; b < backoff; ++b) {
      (void)co_await ctx.validate(1);
    }
  }
}

SimTask flaky_body(ProcCtx ctx, ProcId i, int n, std::uint64_t denominator) {
  // co_await must not appear inside a condition (GCC 12 coroutine codegen
  // bug — see Process::resume); bind to a local first.
  const std::uint64_t spin_coin = co_await ctx.toss(denominator);
  if (spin_coin == 0) {
    for (;;) (void)co_await ctx.validate(0);  // never terminates
  }
  co_return co_await tree_wakeup_body(ctx, i, n, /*randomized=*/false);
}

SimTask cheating_body(ProcCtx ctx, std::uint64_t ops) {
  for (std::uint64_t j = 0; j < ops; ++j) (void)co_await ctx.validate(0);
  co_return Value::of_u64(1);  // wrong on purpose: claims everyone is up
}

SimTask rmw_wakeup_body(ProcCtx ctx, int n) {
  const Value old = co_await ctx.rmw(
      0, make_rmw("wakeup-inc", [](const Value& cur) {
        return Value::of_u64(cur.is_nil() ? 1 : cur.as_u64() + 1);
      }));
  const std::uint64_t before = old.is_nil() ? 0 : old.as_u64();
  co_return Value::of_u64(
      before == static_cast<std::uint64_t>(n) - 1 ? 1 : 0);
}

SimTask random_mix_task(ProcCtx ctx, ProcId i, int steps, RegId regs) {
  LLSC_EXPECTS(regs >= 2, "random mix needs at least two registers");
  for (int s = 0; s < steps; ++s) {
    const std::uint64_t kind = co_await ctx.toss(5);
    const RegId r = co_await ctx.toss(regs);
    const Value payload = Value::of_u64(
        static_cast<std::uint64_t>(i) * 1000003ULL +
        static_cast<std::uint64_t>(s));
    switch (kind) {
      case 0:
        (void)co_await ctx.ll(r);
        break;
      case 1:
        (void)co_await ctx.sc(r, payload);
        break;
      case 2:
        (void)co_await ctx.validate(r);
        break;
      case 3:
        (void)co_await ctx.swap(r, payload);
        break;
      case 4: {
        RegId dst = co_await ctx.toss(regs - 1);
        if (dst >= r) ++dst;  // self-moves are excluded from the model
        co_await ctx.move(r, dst);
        break;
      }
      default:
        LLSC_UNREACHABLE("toss(5) out of range");
    }
  }
  co_return Value::of_u64(0);
}

}  // namespace

ProcBody tournament_wakeup() {
  return [](ProcCtx ctx, ProcId i, int n) {
    return run_tree_wakeup(ctx, i, n, /*randomized=*/false);
  };
}

ProcBody counter_wakeup() {
  return [](ProcCtx ctx, ProcId i, int n) { return counter_body(ctx, i, n); };
}

ProcBody swap_mix_wakeup() {
  return [](ProcCtx ctx, ProcId i, int n) { return swap_mix_body(ctx, i, n); };
}

ProcBody randomized_tournament_wakeup() {
  return [](ProcCtx ctx, ProcId i, int n) {
    return run_tree_wakeup(ctx, i, n, /*randomized=*/true);
  };
}

ProcBody backoff_counter_wakeup() {
  return [](ProcCtx ctx, ProcId i, int n) {
    return backoff_counter_body(ctx, i, n);
  };
}

ProcBody flaky_wakeup(std::uint64_t denominator) {
  LLSC_EXPECTS(denominator >= 2, "denominator must be at least 2");
  return [denominator](ProcCtx ctx, ProcId i, int n) {
    return flaky_body(ctx, i, n, denominator);
  };
}

ProcBody cheating_wakeup(std::uint64_t ops) {
  return [ops](ProcCtx ctx, ProcId, int) { return cheating_body(ctx, ops); };
}

ProcBody rmw_wakeup() {
  return [](ProcCtx ctx, ProcId, int n) { return rmw_wakeup_body(ctx, n); };
}

ProcBody random_mix_body(int steps, RegId regs) {
  return [steps, regs](ProcCtx ctx, ProcId i, int) {
    return random_mix_task(ctx, i, steps, regs);
  };
}

}  // namespace llsc
