// Deterministic pseudo-random number generation.
//
// Everything in this library that is "random" — sampled toss assignments,
// random schedulers, property-test inputs — draws from Rng seeded
// explicitly, so every experiment and test is replayable from its seed.
// The generator is xoshiro256**, seeded through splitmix64.
#ifndef LLSC_UTIL_RNG_H_
#define LLSC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace llsc {

// splitmix64 step: good for seeding and for stateless hashing of (seed, i)
// pairs (used by lazily-materialized toss assignments).
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless mix of a 64-bit value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t x);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();
  // Uniform in [0, bound). Precondition: bound > 0. Uses rejection sampling,
  // so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);
  bool next_bool() { return next_u64() & 1; }
  // Uniform double in [0, 1).
  double next_double();

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (for per-process streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace llsc

#endif  // LLSC_UTIL_RNG_H_
