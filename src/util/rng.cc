#include "util/rng.h"

#include "util/check.h"

namespace llsc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  LLSC_EXPECTS(bound > 0, "Rng::next_below requires bound > 0");
  // Rejection sampling over the largest multiple of `bound`.
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % bound;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  LLSC_EXPECTS(lo <= hi, "Rng::next_in requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next_u64();
  return lo + next_below(span + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace llsc
