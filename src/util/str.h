// Small string helpers shared by traces, benches and examples.
#ifndef LLSC_UTIL_STR_H_
#define LLSC_UTIL_STR_H_

#include <cstddef>
#include <string>
#include <vector>

namespace llsc {

// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

// ceil(log2(n)) for n >= 1; 0 for n <= 1.
std::size_t ceil_log2(std::size_t n);

// floor(log2(n)) for n >= 1. Precondition: n >= 1.
std::size_t floor_log2(std::size_t n);

// ceil(log4(n)) for n >= 1; 0 for n <= 1. This is the paper's bound
// "log_4 n" rounded up to a step count.
std::size_t ceil_log4(std::size_t n);

// log base 4 as a double (the exact bound in Theorem 6.1).
double log4(double n);

}  // namespace llsc

#endif  // LLSC_UTIL_STR_H_
