#include "util/str.h"

#include <cmath>

namespace llsc {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::size_t ceil_log2(std::size_t n) {
  if (n <= 1) return 0;
  std::size_t bits = 0;
  std::size_t v = n - 1;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

std::size_t floor_log2(std::size_t n) {
  std::size_t bits = 0;
  while (n > 1) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

std::size_t ceil_log4(std::size_t n) {
  return (ceil_log2(n) + 1) / 2;
}

double log4(double n) { return std::log2(n) / 2.0; }

}  // namespace llsc
