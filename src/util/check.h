// Contract-checking helpers used throughout the library.
//
// These follow the Core Guidelines "Expects/Ensures" spirit: preconditions
// and invariants are checked unconditionally (the simulator is a correctness
// tool; a silent contract violation would invalidate every experiment built
// on top of it) and abort with a source location and message.
#ifndef LLSC_UTIL_CHECK_H_
#define LLSC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace llsc {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::fprintf(stderr, "%s failed: %s at %s:%d%s%s\n", kind, expr, file, line,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace llsc

// Precondition check. Usage: LLSC_EXPECTS(n > 0) or
// LLSC_EXPECTS(n > 0, "n-process system needs n >= 1").
#define LLSC_EXPECTS(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::llsc::contract_failure("precondition", #cond, __FILE__,       \
                               __LINE__, ::std::string(__VA_ARGS__)); \
    }                                                                 \
  } while (false)

// Internal-invariant check.
#define LLSC_CHECK(cond, ...)                                         \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::llsc::contract_failure("invariant", #cond, __FILE__,          \
                               __LINE__, ::std::string(__VA_ARGS__)); \
    }                                                                 \
  } while (false)

// Unreachable-code marker.
#define LLSC_UNREACHABLE(msg)                                              \
  ::llsc::contract_failure("unreachable", msg, __FILE__, __LINE__, \
                           ::std::string())

#endif  // LLSC_UTIL_CHECK_H_
