#include "util/bigint.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

namespace {
constexpr std::size_t kLimbBits = 64;
}  // namespace

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::pow2(std::size_t bit) {
  BigInt r;
  r.limbs_.assign(bit / kLimbBits + 1, 0);
  r.limbs_.back() = std::uint64_t{1} << (bit % kLimbBits);
  return r;
}

BigInt BigInt::ones(std::size_t k) {
  BigInt r;
  if (k == 0) return r;
  r.limbs_.assign((k + kLimbBits - 1) / kLimbBits, ~std::uint64_t{0});
  const std::size_t rem = k % kLimbBits;
  if (rem != 0) r.limbs_.back() = (std::uint64_t{1} << rem) - 1;
  return r;
}

BigInt BigInt::from_hex(const std::string& hex) {
  std::size_t start = 0;
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    start = 2;
  }
  BigInt r;
  for (std::size_t i = start; i < hex.size(); ++i) {
    const char c = hex[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      LLSC_EXPECTS(false, "non-hex character in BigInt::from_hex");
    }
    r <<= 4;
    r |= BigInt(digit);
  }
  return r;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

void BigInt::set_bit(std::size_t i, bool v) {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) {
    if (!v) return;
    limbs_.resize(limb + 1, 0);
  }
  const std::uint64_t mask = std::uint64_t{1} << (i % kLimbBits);
  if (v) {
    limbs_[limb] |= mask;
  } else {
    limbs_[limb] &= ~mask;
    trim();
  }
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const std::uint64_t top = limbs_.back();
  const auto top_bits =
      kLimbBits - static_cast<std::size_t>(__builtin_clzll(top));
  return (limbs_.size() - 1) * kLimbBits + top_bits;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    unsigned __int128 sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> kLimbBits;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint64_t>(carry));
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  LLSC_EXPECTS(*this >= rhs, "BigInt subtraction would underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t sub =
        (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0);
    const std::uint64_t before = limbs_[i];
    const std::uint64_t mid = before - sub;
    const std::uint64_t after = mid - borrow;
    borrow = (before < sub) || (mid < borrow) ? 1 : 0;
    limbs_[i] = after;
  }
  LLSC_CHECK(borrow == 0);
  trim();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint64_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    unsigned __int128 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(limbs_[i]) * rhs.limbs_[j] +
          out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      unsigned __int128 cur = carry + out[k];
      out[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigInt& BigInt::operator&=(const BigInt& rhs) {
  if (limbs_.size() > rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size());
  for (std::size_t i = 0; i < limbs_.size(); ++i) limbs_[i] &= rhs.limbs_[i];
  trim();
  return *this;
}

BigInt& BigInt::operator|=(const BigInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < rhs.limbs_.size(); ++i) {
    limbs_[i] |= rhs.limbs_[i];
  }
  return *this;
}

BigInt& BigInt::operator^=(const BigInt& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < rhs.limbs_.size(); ++i) {
    limbs_[i] ^= rhs.limbs_[i];
  }
  trim();
  return *this;
}

BigInt& BigInt::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  std::vector<std::uint64_t> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint64_t> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = bit_shift == 0 ? limbs_[i + limb_shift]
                            : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out[i] |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigInt& BigInt::truncate(std::size_t k) {
  const std::size_t full = k / kLimbBits;
  const std::size_t rem = k % kLimbBits;
  if (limbs_.size() > full + (rem != 0 ? 1 : 0)) {
    limbs_.resize(full + (rem != 0 ? 1 : 0));
  }
  if (rem != 0 && limbs_.size() == full + 1) {
    limbs_.back() &= (std::uint64_t{1} << rem) - 1;
  }
  trim();
  return *this;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) {
    return limbs_.size() <=> rhs.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0x0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (std::size_t nib = 16; nib-- > 0;) {
      const unsigned d = (limbs_[i] >> (nib * 4)) & 0xF;
      if (out.empty() && d == 0) continue;
      out.push_back(kDigits[d]);
    }
  }
  return "0x" + out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  // Repeated division by 10^19 (largest power of ten in a u64).
  constexpr std::uint64_t kChunk = 10'000'000'000'000'000'000ULL;
  std::vector<std::uint64_t> limbs = limbs_;
  std::string out;
  while (!limbs.empty()) {
    unsigned __int128 rem = 0;
    for (std::size_t i = limbs.size(); i-- > 0;) {
      unsigned __int128 cur = (rem << kLimbBits) | limbs[i];
      limbs[i] = static_cast<std::uint64_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
    std::string chunk = std::to_string(static_cast<std::uint64_t>(rem));
    if (!limbs.empty()) {
      chunk.insert(chunk.begin(), 19 - chunk.size(), '0');
    }
    out.insert(0, chunk);
  }
  return out;
}

std::size_t BigInt::hash() const {
  // FNV-1a over the limbs.
  std::size_t h = 1469598103934665603ULL;
  for (const std::uint64_t limb : limbs_) {
    h ^= static_cast<std::size_t>(limb);
    h *= 1099511628211ULL;
  }
  return h;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

}  // namespace llsc
