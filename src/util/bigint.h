// Unbounded unsigned integer arithmetic.
//
// The paper's Theorem 6.2 needs k-bit objects with k >= n (fetch&and,
// fetch&or, fetch&complement, fetch&multiply); for experiments with
// n in the thousands these states do not fit machine words. BigInt is a
// small, self-contained unsigned bignum sufficient for those object types:
// add, subtract, multiply, truncation mod 2^k, bitwise ops, single-bit ops,
// comparison and hex formatting. It is a regular value type (copyable,
// movable, equality-comparable) per the Core Guidelines.
#ifndef LLSC_UTIL_BIGINT_H_
#define LLSC_UTIL_BIGINT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace llsc {

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // From a machine word.
  explicit BigInt(std::uint64_t v);

  // The integer 2^bit (a single set bit). `bit` may be arbitrarily large.
  static BigInt pow2(std::size_t bit);
  // The integer 2^k - 1 (k consecutive set bits), i.e. the all-ones k-bit word.
  static BigInt ones(std::size_t k);
  // Parse from a hexadecimal string ("0x" prefix optional). Returns zero for
  // an empty string. Precondition: all characters are hex digits.
  static BigInt from_hex(const std::string& hex);

  bool is_zero() const { return limbs_.empty(); }
  // Value of bit i (i may exceed bit_length(); such bits are 0).
  bool bit(std::size_t i) const;
  void set_bit(std::size_t i, bool v);
  // Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  // Low 64 bits.
  std::uint64_t low64() const { return limbs_.empty() ? 0 : limbs_[0]; }
  // True iff the value fits in 64 bits.
  bool fits64() const { return limbs_.size() <= 1; }

  BigInt& operator+=(const BigInt& rhs);
  // Precondition: *this >= rhs.
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator&=(const BigInt& rhs);
  BigInt& operator|=(const BigInt& rhs);
  BigInt& operator^=(const BigInt& rhs);
  BigInt& operator<<=(std::size_t bits);
  BigInt& operator>>=(std::size_t bits);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator&(BigInt a, const BigInt& b) { return a &= b; }
  friend BigInt operator|(BigInt a, const BigInt& b) { return a |= b; }
  friend BigInt operator^(BigInt a, const BigInt& b) { return a ^= b; }
  friend BigInt operator<<(BigInt a, std::size_t b) { return a <<= b; }
  friend BigInt operator>>(BigInt a, std::size_t b) { return a >>= b; }

  // Truncate to the low k bits (value mod 2^k).
  BigInt& truncate(std::size_t k);

  bool operator==(const BigInt& rhs) const { return limbs_ == rhs.limbs_; }
  std::strong_ordering operator<=>(const BigInt& rhs) const;

  // Lowercase hex with "0x" prefix ("0x0" for zero).
  std::string to_hex() const;
  // Decimal rendering (O(bits^2); fine at experiment scales).
  std::string to_dec() const;

  // Stable hash of the value.
  std::size_t hash() const;

 private:
  void trim();
  // Little-endian 64-bit limbs; no trailing zero limb (zero == empty).
  std::vector<std::uint64_t> limbs_;
};

}  // namespace llsc

#endif  // LLSC_UTIL_BIGINT_H_
