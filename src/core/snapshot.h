// Helpers shared by the (All,A)-run and (S,A)-run drivers: end-of-round
// snapshots and the per-process history hash that stands in for the paper's
// state(p, r).
//
// A simulated process is a deterministic coroutine: its state after round r
// is a pure function of the sequence of operation results and coin-toss
// outcomes delivered to it. Toss outcomes are themselves a pure function of
// (process, toss index) via the pre-committed assignment, so hashing the
// issued operations and their results (plus the toss count, recorded
// separately in ProcSnapshot) pins state(p, r) down exactly — equal hashes
// and toss counts imply equal states.
#ifndef LLSC_CORE_SNAPSHOT_H_
#define LLSC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "core/round_record.h"
#include "runtime/system.h"

namespace llsc {

// Running-hash update for one executed operation (issued op + its result).
std::size_t combine_op_into_history(std::size_t h, const OpRecord& rec);

// End-of-round snapshot of `sys` (every touched register, every process).
// `history_hashes` is the per-process running history hash maintained by
// the caller.
RoundSnapshot take_snapshot(const System& sys,
                            const std::vector<std::size_t>& history_hashes);

}  // namespace llsc

#endif  // LLSC_CORE_SNAPSHOT_H_
