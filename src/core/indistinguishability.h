// Empirical checker for the Indistinguishability Lemma (paper Lemma 5.2).
//
// Lemma 5.2: for every S, every process or register X, and every round r,
// if UP(X, r) ⊆ S then the (All,A)-run and the (S,A)-run are
// indistinguishable to X up to the end of round r:
//
//   processes:  state(p, r) and numtosses(p, r) agree. Our processes are
//   deterministic coroutines fed pre-committed toss outcomes, so the
//   history hash plus toss count recorded in ProcSnapshot pins the state
//   down (see core/snapshot.h).
//
//   registers:  val(R, r) agrees, and for every p with UP(p, r) ⊆ S,
//   p ∈ Pset(R, r) agrees.
//
// The checker walks both run logs round by round and reports every (X, r)
// pair the lemma covers, with a description of any violation. It is used
// by the property tests (the lemma must hold for every algorithm and every
// S) and by the E7 bench.
#ifndef LLSC_CORE_INDISTINGUISHABILITY_H_
#define LLSC_CORE_INDISTINGUISHABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/proc_set.h"
#include "core/round_record.h"
#include "core/up_tracker.h"

namespace llsc {

struct IndistReport {
  bool ok = true;
  // Human-readable description of each violation found.
  std::vector<std::string> violations;
  // Number of (process, round) / (register, round) pairs the lemma covers
  // and that were checked.
  std::uint64_t process_checks = 0;
  std::uint64_t register_checks = 0;

  std::string summary() const;
};

// Checks Lemma 5.2 over all rounds both logs share. `all_log` and `s_log`
// must have been recorded with snapshots enabled.
IndistReport check_indistinguishability(const RunLog& all_log,
                                        const RunLog& s_log,
                                        const UpTracker& up,
                                        const ProcSet& s);

}  // namespace llsc

#endif  // LLSC_CORE_INDISTINGUISHABILITY_H_
