// UP-set bookkeeping (paper Section 5.3).
//
// For a run structured by the Fig. 2 adversary, UP(p, r) is the set of
// processes p could possibly know to be "up" (to have taken a step) by the
// end of round r, and UP(R, r) is the set inferable from register R's value
// at the end of round r. The update rules are conservative upper bounds on
// information flow through each of the five operations:
//
//   registers:  a successful SC installs the writer's knowledge; swaps
//   install the last swapper's; moves install the source register's
//   knowledge plus that of the (at most two, by Lemma 4.1) movers; an
//   untouched register keeps yesterday's set.
//
//   processes:  loads and successful SCs acquire the register's previous
//   set; an unsuccessful SC may observe the value written this round, so it
//   acquires the register's *new* set; the first swapper acquires what the
//   register held (through moves, if any); later swappers acquire the
//   previous swapper's set (they read what that swapper wrote); movers
//   learn nothing (move returns only an ack).
//
// Lemma 5.1: every UP set has size at most 4^r after r rounds — each rule
// unions at most four sets. The tracker records the per-round maximum so
// the lemma can be checked empirically (and its failure demonstrated when
// the secretive move schedule is ablated).
#ifndef LLSC_CORE_UP_TRACKER_H_
#define LLSC_CORE_UP_TRACKER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/proc_set.h"
#include "core/round_record.h"

namespace llsc {

class UpTracker {
 public:
  explicit UpTracker(int n);

  // Incorporate one more round (records must be fed in round order).
  void advance(const RoundRecord& rec);

  // Convenience: track a whole run log.
  static UpTracker over(const RunLog& log);

  int num_rounds() const { return static_cast<int>(proc_up_.size()) - 1; }

  // UP(p, r): 0 <= r <= num_rounds().
  const ProcSet& up_process(ProcId p, int r) const;
  // UP(R, r); registers never written have the empty set.
  const ProcSet& up_register(RegId reg, int r) const;

  // max over all processes and registers of |UP(X, r)|.
  std::size_t max_up_size(int r) const;
  // 4^r saturated to SIZE_MAX (the Lemma 5.1 bound).
  static std::size_t lemma51_bound(int r);
  // True iff max_up_size(r) <= min(4^r, n) for all r so far.
  bool lemma51_holds() const;

 private:
  const ProcSet& reg_at(const std::map<RegId, ProcSet>& regs, RegId r) const;

  int n_;
  ProcSet empty_;
  // proc_up_[r][p] = UP(p, r); reg_up_[r] maps touched registers only.
  std::vector<std::vector<ProcSet>> proc_up_;
  std::vector<std::map<RegId, ProcSet>> reg_up_;
};

}  // namespace llsc

#endif  // LLSC_CORE_UP_TRACKER_H_
