// Per-round records and snapshots of adversary-scheduled runs.
//
// The Fig. 2 adversary structures a run into rounds of five phases. The
// UP-set update rules (Section 5.3), the (S,A)-run construction (Fig. 3)
// and the indistinguishability checker (Lemma 5.2) all consume information
// about what happened in each round: the partition into operation groups,
// the secretive schedule used for the move group, every executed operation
// with its result, and end-of-round state snapshots.
#ifndef LLSC_CORE_ROUND_RECORD_H_
#define LLSC_CORE_ROUND_RECORD_H_

#include <cstdint>
#include <map>
#include <vector>

#include "memory/op.h"
#include "memory/value.h"
#include "sched/secretive_schedule.h"

namespace llsc {

// What one round of an adversary-scheduled run did.
struct RoundRecord {
  int round = 0;  // 1-based

  // The partition of live processes by the type of their next operation
  // (the paper's G_{1,r} .. G_{4,r}), each in the order scheduled.
  std::vector<ProcId> g_load;  // LL / validate
  std::vector<ProcId> g_move;
  std::vector<ProcId> g_swap;
  std::vector<ProcId> g_sc;

  // The move group's (S, f) and the schedule actually used for it
  // (sigma_r; a secretive complete schedule unless ablated).
  MoveSet move_set;
  std::vector<ProcId> sigma;

  // Every shared-memory operation executed this round, in execution order.
  std::vector<OpRecord> ops;

  // Processes that terminated during this round's Phase 1 (before taking a
  // shared-memory step this round).
  std::vector<ProcId> terminated_in_phase1;
};

// End-of-round snapshot of one process, as visible to the
// indistinguishability relation: number of coin tosses, a running hash of
// the process's personal history (ops issued, results received, toss
// outcomes consumed — for a deterministic coroutine this pins down
// state(p, r)), and termination status/result.
struct ProcSnapshot {
  std::uint64_t num_tosses = 0;
  std::uint64_t shared_ops = 0;
  std::size_t history_hash = 0;
  bool done = false;
  Value result;  // meaningful iff done
};

// End-of-round snapshot of one register: its value and Pset.
struct RegSnapshot {
  Value value;
  std::vector<ProcId> pset;  // ascending
};

// End-of-round snapshot of the whole configuration.
struct RoundSnapshot {
  std::vector<ProcSnapshot> procs;          // indexed by ProcId
  std::map<RegId, RegSnapshot> regs;        // touched registers only
};

// A complete adversary-structured run: its rounds and per-round snapshots.
// rounds[k] and snapshots[k] describe round k+1; snapshots[k] is the state
// at the END of that round. An extra snapshot at index -1 conceptually
// (round 0 = initial state) is stored as `initial`.
struct RunLog {
  int n = 0;
  std::vector<RoundRecord> rounds;
  RoundSnapshot initial;
  std::vector<RoundSnapshot> snapshots;
  bool all_terminated = false;

  // Convenience: snapshot at end of round r (r == 0 -> initial).
  const RoundSnapshot& at(int r) const {
    return r == 0 ? initial : snapshots[static_cast<std::size_t>(r - 1)];
  }
  int num_rounds() const { return static_cast<int>(rounds.size()); }
};

}  // namespace llsc

#endif  // LLSC_CORE_ROUND_RECORD_H_
