// Human-readable rendering of adversary-structured runs.
//
// A RunLog captures everything about an (All,A)- or (S,A)-run; these
// helpers turn rounds, UP tracking, and whole logs into text for examples,
// failure messages and debugging. Rendering is deliberately stable
// (deterministic ordering) so test expectations can match substrings.
#ifndef LLSC_CORE_TRACE_H_
#define LLSC_CORE_TRACE_H_

#include <string>

#include "core/round_record.h"
#include "core/up_tracker.h"

namespace llsc {

struct TraceOptions {
  // Cap rounds rendered (0 = all).
  int max_rounds = 0;
  // Include the per-round operation list.
  bool show_ops = true;
  // Include the move group's sigma_r.
  bool show_sigma = true;
  // Include end-of-round register values (requires snapshots).
  bool show_registers = false;
  // Cap registers rendered per round.
  int max_registers = 8;
};

// One round, e.g.:
//   round 3: load={p0,p2} move={p1} swap={} sc={p3}
//     sigma: p1
//     p0: LL(R1) -> (true, 5)
//     ...
std::string render_round(const RoundRecord& rec, const TraceOptions& options = {});

// The whole run (honouring options.max_rounds).
std::string render_run(const RunLog& log, const TraceOptions& options = {});

// UP-set growth table:
//   round | max|UP| | 4^r
std::string render_up_growth(const UpTracker& tracker);

// Side-by-side round summary of two runs (the (All,A)- and (S,A)-run),
// showing which processes stepped in each.
std::string render_run_comparison(const RunLog& all_log, const RunLog& s_log);

}  // namespace llsc

#endif  // LLSC_CORE_TRACE_H_
