// The (S,A)-run construction (paper Figure 3).
//
// Given an (All,A)-run produced by the Fig. 2 adversary, its UP tracking,
// and a set S of processes, the (S,A)-run is a run in which only processes
// of S take steps, built so that any process or register X with
// UP(X, r) ⊆ S cannot distinguish it from the (All,A)-run through round r
// (the Indistinguishability Lemma, 5.2).
//
// Round r schedules exactly S_r = { p : UP(p, r-1) ⊆ S } — the processes
// that have not witnessed anybody outside S during the first r-1 rounds.
// (Figure 3 writes UP(p, r); the appendix claims A.1/A.2 make clear the
// intended threshold is the knowledge *entering* round r, i.e. UP(p, r-1) —
// with the end-of-round-r set, a process would be denied the very round-r
// step after which it first learns of a process outside S, contradicting
// Claim A.1's assertion that its Phase-1 tosses still happen.)
// Within the round, phases mirror the adversary's, except the move group
// runs in the order sigma_r | S_{2,r} — the All-run's secretive schedule
// restricted to the movers present (Claim A.3 guarantees S_{2,r} ⊆ G_{2,r},
// and Lemma 4.2 that the restriction moves the same values).
//
// The same toss assignment A serves both runs, so the j-th toss of p gets
// the same outcome in both — the alignment Lemma 5.2 depends on.
#ifndef LLSC_CORE_S_RUN_H_
#define LLSC_CORE_S_RUN_H_

#include "core/proc_set.h"
#include "core/round_record.h"
#include "core/up_tracker.h"
#include "runtime/system.h"

namespace llsc {

struct SRunOptions {
  // Check Claims A.2/A.3 as the run is built (each scheduled process
  // performs the same operation as in the (All,A)-run; the S-run's move
  // group is contained in the All-run's). Contract-fails on violation.
  bool verify_claims = true;
  bool record_snapshots = true;
};

// Drives `sys` — a FRESH system running the same algorithm with the same
// toss assignment as the (All,A)-run — for exactly all_log.num_rounds()
// rounds of the Fig. 3 schedule. Returns the (S,A)-run's log.
RunLog run_s_run(System& sys, const RunLog& all_log, const UpTracker& up,
                 const ProcSet& s, const SRunOptions& options = {});

}  // namespace llsc

#endif  // LLSC_CORE_S_RUN_H_
