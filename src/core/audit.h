// Register-width auditing (paper Section 7, "Open problems").
//
// The O(log n) upper bound "makes impractical assumptions on the size of
// registers" — the Group-Update construction stores whole object states
// and announce sets in single registers. The paper's open problem asks
// what happens when registers are restricted to O(log n) bits. This
// auditor makes the distinction measurable: given a run's transcript, it
// reports the widest value any algorithm ever wrote to a register.
//
//   tournament wakeup     writes counts <= n       -> O(log n) bits
//   naive counter wakeup  writes counts <= n       -> O(log n) bits
//   Group-Update / consensus-based constructions
//                         write announce sets and object snapshots
//                                                  -> unbounded
//
// So our log-time *wakeup* algorithm lives within the practical register
// regime, while the log-time *universal construction* does not — exactly
// the gap Section 7 highlights.
#ifndef LLSC_CORE_AUDIT_H_
#define LLSC_CORE_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "memory/op.h"
#include "memory/storage_policy.h"

namespace llsc {

struct WidthAudit {
  // Widest value written to any register (bits); SIZE_MAX if any written
  // value was a structured payload with no a-priori encoding bound.
  std::size_t max_bits = 0;
  bool bounded = true;
  // Total number of writes inspected (successful SCs and swaps; moves copy
  // existing contents and add no new width).
  std::uint64_t writes_inspected = 0;
  // Rendering of the widest write, for reports.
  std::string widest_write;

  std::string summary() const;
};

// Audits every value written during the traced run by the paper's five
// operations (successful SC and swap install new values; moves copy
// existing ones). RMW-written values are not visible in OpRecords (the
// record carries the OLD value) and are out of the audit's scope — the
// Section 7 question is about the five-operation model anyway. The System
// must have been run with recording enabled.
WidthAudit audit_register_widths(const std::vector<OpRecord>& trace);

// Bridge from the storage seam's live counters (hw RegisterStorage or the
// simulator's SharedMemory, both of which count completed installs as they
// happen) into the S7 audit shape. No widest_write rendering — the
// counters do not retain the values themselves.
WidthAudit width_audit_from_stats(const RegisterWidthStats& stats);

}  // namespace llsc

#endif  // LLSC_CORE_AUDIT_H_
