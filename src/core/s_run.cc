#include "core/s_run.h"

#include <algorithm>
#include <unordered_set>

#include "core/snapshot.h"
#include "util/check.h"

namespace llsc {

namespace {

// The operation group `p` belonged to in the All-run's round record, or -1
// if p took no shared-memory step that round.
int all_run_group(const RoundRecord& rec, ProcId p) {
  const auto in = [p](const std::vector<ProcId>& v) {
    return std::find(v.begin(), v.end(), p) != v.end();
  };
  if (in(rec.g_load)) return static_cast<int>(OpGroup::kLoad);
  if (in(rec.g_move)) return static_cast<int>(OpGroup::kMove);
  if (in(rec.g_swap)) return static_cast<int>(OpGroup::kSwap);
  if (in(rec.g_sc)) return static_cast<int>(OpGroup::kStoreConditional);
  return -1;
}

}  // namespace

RunLog run_s_run(System& sys, const RunLog& all_log, const UpTracker& up,
                 const ProcSet& s, const SRunOptions& options) {
  const int n = sys.num_processes();
  LLSC_EXPECTS(n == all_log.n, "system size differs from the (All,A)-run");
  LLSC_EXPECTS(up.num_rounds() >= all_log.num_rounds(),
               "UP tracker does not cover the whole (All,A)-run");

  RunLog log;
  log.n = n;
  std::vector<std::size_t> hist(static_cast<std::size_t>(n), 0);
  if (options.record_snapshots) log.initial = take_snapshot(sys, hist);

  for (int round = 1; round <= all_log.num_rounds(); ++round) {
    const RoundRecord& all_rec =
        all_log.rounds[static_cast<std::size_t>(round - 1)];
    RoundRecord rec;
    rec.round = round;

    // S_r: processes whose knowledge entering round r stays within S.
    std::vector<ProcId> s_r;
    for (ProcId p = 0; p < n; ++p) {
      if (up.up_process(p, round - 1).subset_of(s)) s_r.push_back(p);
    }

    // Phase 1: tosses for S_r members, in id order.
    for (const ProcId p : s_r) {
      Process& proc = sys.process(p);
      if (proc.done()) continue;
      sys.advance_through_tosses(p);
      if (proc.done()) rec.terminated_in_phase1.push_back(p);
    }

    // Partition the live members of S_r.
    for (const ProcId p : s_r) {
      const Process& proc = sys.process(p);
      if (proc.done()) continue;
      LLSC_CHECK(proc.step_kind() == StepKind::kOp);
      const OpGroup group = op_group(proc.pending_op().kind);
      if (options.verify_claims) {
        // Claim A.2(3): a scheduled process performs the same kind of
        // operation as in the (All,A)-run's round r.
        LLSC_CHECK(all_run_group(all_rec, p) == static_cast<int>(group),
                   "Claim A.2 violated: operation group differs between "
                   "(All,A)-run and (S,A)-run");
      }
      switch (group) {
        case OpGroup::kLoad:
          rec.g_load.push_back(p);
          break;
        case OpGroup::kMove:
          rec.g_move.push_back(p);
          break;
        case OpGroup::kSwap:
          rec.g_swap.push_back(p);
          break;
        case OpGroup::kStoreConditional:
          rec.g_sc.push_back(p);
          break;
      }
    }

    const auto execute = [&](ProcId p) {
      const OpRecord op = sys.execute_pending_op(p);
      hist[static_cast<std::size_t>(p)] =
          combine_op_into_history(hist[static_cast<std::size_t>(p)], op);
      rec.ops.push_back(op);
    };

    // Phase 2: loads, id order.
    for (const ProcId p : rec.g_load) execute(p);

    // Phase 3: moves, in the order sigma_r | S_{2,r}.
    std::unordered_set<ProcId> move_members(rec.g_move.begin(),
                                            rec.g_move.end());
    if (options.verify_claims) {
      // Claim A.3: S_{2,r} ⊆ G_{2,r}, so restricting sigma_r is well
      // defined.
      const std::unordered_set<ProcId> all_movers(all_rec.g_move.begin(),
                                                  all_rec.g_move.end());
      for (const ProcId p : rec.g_move) {
        LLSC_CHECK(all_movers.contains(p),
                   "Claim A.3 violated: S-run mover absent from sigma_r");
      }
    }
    for (const ProcId p : rec.g_move) {
      const PendingOp& op = sys.process(p).pending_op();
      rec.move_set.push_back(MoveOp{.proc = p, .src = op.src, .dst = op.reg});
    }
    rec.sigma = restrict_schedule(all_rec.sigma, move_members);
    // Movers not present in sigma_r (possible only when verify_claims is
    // off and the claim fails) are appended so the run still progresses.
    for (const ProcId p : rec.g_move) {
      if (std::find(rec.sigma.begin(), rec.sigma.end(), p) ==
          rec.sigma.end()) {
        rec.sigma.push_back(p);
      }
    }
    for (const ProcId p : rec.sigma) execute(p);

    // Phase 4: swaps, id order.
    for (const ProcId p : rec.g_swap) execute(p);

    // Phase 5: SCs, id order.
    for (const ProcId p : rec.g_sc) execute(p);

    log.rounds.push_back(std::move(rec));
    if (options.record_snapshots) {
      log.snapshots.push_back(take_snapshot(sys, hist));
    }
  }

  log.all_terminated = sys.all_done();
  return log;
}

}  // namespace llsc
