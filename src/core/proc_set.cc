#include "core/proc_set.h"

#include "util/check.h"
#include "util/str.h"

namespace llsc {

ProcSet::ProcSet(int n) : n_(n), words_((static_cast<std::size_t>(n) + 63) / 64, 0) {
  LLSC_EXPECTS(n >= 0, "negative universe");
}

ProcSet ProcSet::singleton(int n, ProcId p) {
  ProcSet s(n);
  s.insert(p);
  return s;
}

ProcSet ProcSet::full(int n) {
  ProcSet s(n);
  for (auto& w : s.words_) w = ~std::uint64_t{0};
  const int rem = n % 64;
  if (rem != 0 && !s.words_.empty()) {
    s.words_.back() = (std::uint64_t{1} << rem) - 1;
  }
  return s;
}

ProcSet ProcSet::of(int n, std::initializer_list<ProcId> ids) {
  ProcSet s(n);
  for (const ProcId p : ids) s.insert(p);
  return s;
}

bool ProcSet::contains(ProcId p) const {
  if (p < 0 || p >= n_) return false;
  return (words_[static_cast<std::size_t>(p) / 64] >> (p % 64)) & 1;
}

void ProcSet::insert(ProcId p) {
  LLSC_EXPECTS(p >= 0 && p < n_, "process id outside the set universe");
  words_[static_cast<std::size_t>(p) / 64] |= std::uint64_t{1} << (p % 64);
}

void ProcSet::unite(const ProcSet& other) {
  LLSC_EXPECTS(n_ == other.n_, "ProcSet universes differ");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

bool ProcSet::subset_of(const ProcSet& other) const {
  LLSC_EXPECTS(n_ == other.n_, "ProcSet universes differ");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::size_t ProcSet::count() const {
  std::size_t c = 0;
  for (const auto w : words_) {
    c += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return c;
}

std::vector<ProcId> ProcSet::members() const {
  std::vector<ProcId> out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<ProcId>(i * 64 + static_cast<std::size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

std::string ProcSet::to_string() const {
  std::vector<std::string> parts;
  for (const ProcId p : members()) parts.push_back("p" + std::to_string(p));
  return "{" + join(parts, ",") + "}";
}

}  // namespace llsc
