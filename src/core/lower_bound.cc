#include "core/lower_bound.h"

#include <algorithm>
#include <optional>

#include "core/s_run.h"
#include "core/up_tracker.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace llsc {

std::string WakeupLowerBoundReport::summary() const {
  std::string s = "n=" + std::to_string(n) +
                  (terminated ? "" : " [DID NOT TERMINATE]") +
                  " winner=p" + std::to_string(winner) +
                  " ops=" + std::to_string(winner_ops) +
                  " log4(n)=" + std::to_string(log4_n) +
                  " bound " + (bound_met ? "met" : "VIOLATED");
  if (s_run_built) {
    s += " |S|=" + std::to_string(s_size) + " indist=" +
         (indist.ok ? "ok" : "violated");
    if (wakeup_violation_witnessed) s += " WAKEUP-VIOLATION-WITNESSED";
  }
  return s;
}

std::string ExpectedComplexityEstimate::summary() const {
  std::string s = "n=" + std::to_string(n) +
                  " samples=" + std::to_string(samples) +
                  " c=" + std::to_string(termination_rate) +
                  " E[winner ops]=" + std::to_string(mean_winner_ops) +
                  " E[t(R)]=" + std::to_string(mean_max_ops) +
                  " bound c*log4(n)=" + std::to_string(bound) +
                  (bound_met ? " met" : " VIOLATED");
  if (spec_violations > 0) {
    s += " SPEC-VIOLATIONS=" + std::to_string(spec_violations);
  }
  if (crashed_samples > 0) {
    s += " crashed=" + std::to_string(crashed_samples);
  }
  if (hung_samples > 0) {
    s += " hung=" + std::to_string(hung_samples);
  }
  return s;
}

namespace {

// Wakeup processes return Value::of_u64(1) to claim "everyone is up".
bool returned_one(const Process& p) {
  return p.done() && p.result().holds_u64() && p.result().as_u64() == 1;
}

}  // namespace

WakeupLowerBoundReport analyze_wakeup_run(
    const ProcBody& algo, int n,
    std::shared_ptr<const TossAssignment> tosses,
    const WakeupLowerBoundOptions& options) {
  return analyze_wakeup_run(BodyFactory([&algo] { return algo; }), n,
                            std::move(tosses), options);
}

WakeupLowerBoundReport analyze_wakeup_run(
    const BodyFactory& make_algo, int n,
    std::shared_ptr<const TossAssignment> tosses,
    const WakeupLowerBoundOptions& options) {
  WakeupLowerBoundReport report;
  report.n = n;
  report.log4_n = log4(static_cast<double>(n));

  const ProcBody algo = make_algo();
  System sys(n, algo, tosses);
  sys.set_recording(false);
  // Snapshots are only needed for the indistinguishability comparison, and
  // they dominate the cost at large n; run lean first and replay with
  // snapshots if the (S,A)-run is called for.
  AdversaryOptions lean = options.adversary;
  lean.record_snapshots = options.always_check_indistinguishability;
  RunLog lean_log = run_adversary(sys, lean);
  report.terminated = lean_log.all_terminated;
  report.rounds = lean_log.num_rounds();
  report.max_ops = sys.max_shared_ops();

  // The cheapest 1-returner gives the tightest instance of the theorem.
  for (ProcId p = 0; p < n; ++p) {
    if (returned_one(sys.process(p)) &&
        (report.winner == -1 ||
         sys.process(p).shared_ops() < report.winner_ops)) {
      report.winner = p;
      report.winner_ops = sys.process(p).shared_ops();
    }
  }
  if (report.winner == -1) return report;  // no 1-returner: spec violation

  // Theorem 6.1: the 1-returner must have performed >= log_4 n operations,
  // i.e. 4^winner_ops >= n.
  std::size_t pow = 1;
  for (std::uint64_t i = 0;
       i < report.winner_ops && pow < static_cast<std::size_t>(n); ++i) {
    pow *= 4;
  }
  report.bound_met = pow >= static_cast<std::size_t>(n);

  const bool need_s_run =
      !report.bound_met || options.always_check_indistinguishability;
  if (!need_s_run) return report;

  // Replay the (All,A)-run with snapshots on if the lean run skipped them
  // (same algorithm, same toss assignment: the run is identical).
  RunLog all_log = std::move(lean_log);
  if (!lean.record_snapshots) {
    const ProcBody replay_algo = make_algo();
    System replay(n, replay_algo, tosses);
    replay.set_recording(false);
    AdversaryOptions full = options.adversary;
    full.record_snapshots = true;
    all_log = run_adversary(replay, full);
  }

  // S = UP(winner, r) where r = the winner's operation count. A live
  // process takes exactly one shared-memory step per round under the
  // adversary, so the winner's last step was in round r.
  const UpTracker up = UpTracker::over(all_log);
  const int r = static_cast<int>(
      std::min<std::uint64_t>(report.winner_ops,
                              static_cast<std::uint64_t>(up.num_rounds())));
  const ProcSet s = up.up_process(report.winner, r);
  report.up_size = s.count();
  report.s_size = s.count();

  const ProcBody s_algo = make_algo();
  System s_sys(n, s_algo, tosses);
  s_sys.set_recording(false);
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);
  report.s_run_built = true;
  report.s_run_winner_returned_1 = returned_one(s_sys.process(report.winner));
  // If fewer than n processes ever took a step in the (S,A)-run but the
  // winner still returned 1, the wakeup specification is violated.
  report.wakeup_violation_witnessed =
      report.s_run_winner_returned_1 && s.count() < static_cast<std::size_t>(n);
  report.indist = check_indistinguishability(all_log, s_log, up, s);
  return report;
}

McSampleOutcome run_mc_sample(const ProcBody& algo, int n,
                              std::uint64_t toss_seed,
                              const AdversaryOptions& adversary,
                              const FaultPlan* fault,
                              StoragePolicy storage,
                              ReclaimPolicy reclaimer) {
  McSampleOutcome out;
  const auto tosses = std::make_shared<SeededTossAssignment>(toss_seed);
  System sys(n, algo, tosses);
  sys.set_recording(false);
  sys.memory().set_storage_policy(storage);
  sys.memory().set_reclaim_policy(reclaimer);
  // The injector lives on this stack frame; the System only borrows it.
  std::optional<FaultInjector> injector;
  if (fault != nullptr && fault->enabled()) {
    injector.emplace(*fault, n);
    sys.set_fault_injector(&*injector);
  }
  AdversaryOptions opts = adversary;
  opts.record_snapshots = false;
  const RunLog log = run_adversary(sys, opts);
  out.proc_ops.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    out.proc_ops.push_back(sys.process(p).shared_ops());
  }
  out.max_ops = sys.max_shared_ops();
  out.width = sys.memory().width_stats();
  out.reclaim = sys.memory().reclaim_stats();
  if (injector) out.decision_trace = injector->trace();
  if (!log.all_terminated) {
    out.status = sys.num_crashed() > 0 ? RunStatus::kCrashed
                                       : RunStatus::kHung;
    return out;
  }
  out.terminated = true;
  std::uint64_t winner_ops = ~std::uint64_t{0};
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (proc.done() && proc.result().holds_u64() &&
        proc.result().as_u64() == 1) {
      winner_ops = std::min(winner_ops, proc.shared_ops());
    }
  }
  if (winner_ops != ~std::uint64_t{0}) {
    out.has_winner = true;
    out.winner_ops = winner_ops;
    out.status = RunStatus::kClean;
  } else {
    // Terminated with no 1-returner: a wakeup-spec violation.
    out.status = RunStatus::kSpecViolation;
  }
  return out;
}

ExpectedComplexityEstimate estimate_expected_complexity(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    const AdversaryOptions& adversary, const FaultPlan* fault,
    StoragePolicy storage, ReclaimPolicy reclaimer) {
  LLSC_EXPECTS(samples >= 1, "need at least one sample");
  ExpectedComplexityEstimate est;
  est.n = n;
  est.samples = samples;
  est.min_winner_ops = ~std::uint64_t{0};

  const bool inject = fault != nullptr && fault->enabled();
  Rng rng(seed);
  int terminated = 0;
  int winner_samples = 0;
  double sum_winner = 0.0;
  double sum_max = 0.0;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t toss_seed = rng.next_u64();
    // Each sample draws an independent fault schedule, re-seeded from its
    // toss seed so the parallel driver (any shard order) derives the same.
    FaultPlan sample_plan;
    if (inject) sample_plan = derive_sample_plan(*fault, toss_seed);
    const McSampleOutcome sample = run_mc_sample(
        algo, n, toss_seed, adversary, inject ? &sample_plan : nullptr,
        storage, reclaimer);
    if (!sample.terminated) {
      if (sample.status == RunStatus::kCrashed) {
        ++est.crashed_samples;
      } else {
        ++est.hung_samples;
      }
      continue;
    }
    ++terminated;
    sum_max += static_cast<double>(sample.max_ops);
    if (!sample.has_winner) {
      // Count it; folding it in as winner_ops = 0 would silently drag
      // min_winner_ops to 0 and flip bound_met.
      ++est.spec_violations;
      continue;
    }
    ++winner_samples;
    sum_winner += static_cast<double>(sample.winner_ops);
    est.min_winner_ops = std::min(est.min_winner_ops, sample.winner_ops);
  }
  est.termination_rate =
      static_cast<double>(terminated) / static_cast<double>(samples);
  if (winner_samples > 0) est.mean_winner_ops = sum_winner / winner_samples;
  if (terminated > 0) est.mean_max_ops = sum_max / terminated;
  est.bound = est.termination_rate * log4(static_cast<double>(n));
  // Theorem 6.1's proof shows every terminating adversary run makes the
  // 1-returner perform >= log_4 n operations; the sharpest empirical check
  // is therefore on the minimum across samples (which also implies the
  // expected-complexity bound c * log_4 n of Lemma 3.1). With no winner
  // sample the check is vacuous (spec_violations carries the bad news).
  est.bound_met =
      winner_samples == 0 ||
      static_cast<double>(est.min_winner_ops) + 1e-9 >=
          log4(static_cast<double>(n));
  // Don't leak the ~0 accumulator sentinel into printed/JSON rows when no
  // sample produced a winner.
  if (est.min_winner_ops == ~std::uint64_t{0}) est.min_winner_ops = 0;
  return est;
}

}  // namespace llsc
