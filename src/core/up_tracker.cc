#include "core/up_tracker.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

UpTracker::UpTracker(int n) : n_(n), empty_(n) {
  // Round 0: UP(p, 0) = {p}, UP(R, 0) = {} for every register.
  std::vector<ProcSet> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) procs.push_back(ProcSet::singleton(n, p));
  proc_up_.push_back(std::move(procs));
  reg_up_.emplace_back();
}

UpTracker UpTracker::over(const RunLog& log) {
  UpTracker tracker(log.n);
  for (const RoundRecord& rec : log.rounds) tracker.advance(rec);
  return tracker;
}

const ProcSet& UpTracker::reg_at(const std::map<RegId, ProcSet>& regs,
                                 RegId r) const {
  const auto it = regs.find(r);
  return it == regs.end() ? empty_ : it->second;
}

void UpTracker::advance(const RoundRecord& rec) {
  const std::vector<ProcSet>& prev_proc = proc_up_.back();
  const std::map<RegId, ProcSet>& prev_reg = reg_up_.back();

  // Classify this round's operations per register.
  struct RegEvents {
    ProcId successful_sc = -1;
    std::vector<ProcId> swappers;  // in execution order
    bool moved_into = false;
  };
  std::map<RegId, RegEvents> events;
  for (const OpRecord& op : rec.ops) {
    switch (op.op.kind) {
      case OpKind::kSC:
        if (op.result.flag) {
          LLSC_CHECK(events[op.op.reg].successful_sc == -1,
                     "at most one SC per register can succeed per round");
          events[op.op.reg].successful_sc = op.proc;
        }
        break;
      case OpKind::kSwap:
        events[op.op.reg].swappers.push_back(op.proc);
        break;
      case OpKind::kMove:
        events[op.op.reg].moved_into = true;
        break;
      case OpKind::kLL:
      case OpKind::kValidate:
        break;
      case OpKind::kRmw:
        LLSC_UNREACHABLE("the adversary never schedules RMW steps");
    }
  }

  // The move analysis of sigma_r with respect to (G_{2,r}, f_r).
  const MoveAnalysis moves(rec.move_set, rec.sigma);

  // UP-of-source ∪ UPs-of-movers for a register some move targeted.
  const auto move_influx = [&](RegId r) {
    ProcSet s = reg_at(prev_reg, moves.source(r));
    for (const ProcId q : moves.movers(r)) {
      s.unite(prev_proc[static_cast<std::size_t>(q)]);
    }
    return s;
  };

  // --- register update rules ---
  std::map<RegId, ProcSet> new_reg = prev_reg;
  for (const auto& [r, ev] : events) {
    if (ev.successful_sc != -1) {
      // Rule 1: the successful SC's writer determines the value.
      new_reg[r] = prev_proc[static_cast<std::size_t>(ev.successful_sc)];
    } else if (!ev.swappers.empty()) {
      // Rule 2: the last swapper determines the value.
      new_reg[r] =
          prev_proc[static_cast<std::size_t>(ev.swappers.back())];
    } else if (ev.moved_into) {
      // Rule 3: the moved-in source value, enabled by the movers.
      new_reg[r] = move_influx(r);
    }
    // Rule 4 (no change) is the default: new_reg already copied prev_reg.
  }

  // --- process update rules ---
  std::vector<ProcSet> new_proc = prev_proc;
  for (const OpRecord& op : rec.ops) {
    ProcSet& up = new_proc[static_cast<std::size_t>(op.proc)];
    const RegId r = op.op.reg;
    switch (op.op.kind) {
      case OpKind::kLL:
      case OpKind::kValidate:
        // Rule 1: loads in Phase 2 observe end-of-round-(r-1) values.
        up.unite(reg_at(prev_reg, r));
        break;
      case OpKind::kMove:
        // Rule 2: move returns only an ack; no information gained.
        break;
      case OpKind::kSwap: {
        const auto& swappers = events.at(r).swappers;
        if (swappers.front() == op.proc) {
          if (!events.at(r).moved_into) {
            // Rule 3: the first swapper reads the end-of-(r-1) value.
            up.unite(reg_at(prev_reg, r));
          } else {
            // Rule 4: the first swapper reads what the moves brought in.
            up.unite(move_influx(r));
          }
        } else {
          // Rule 5: a later swapper reads what the previous swapper wrote.
          const auto it =
              std::find(swappers.begin(), swappers.end(), op.proc);
          LLSC_CHECK(it != swappers.end() && it != swappers.begin());
          up.unite(prev_proc[static_cast<std::size_t>(*(it - 1))]);
        }
        break;
      }
      case OpKind::kSC:
        if (op.result.flag) {
          // Rule 6: a successful SC returns the end-of-(r-1) value.
          up.unite(reg_at(prev_reg, r));
        } else {
          // Rule 7: an unsuccessful SC may observe this round's new value.
          up.unite(reg_at(new_reg, r));
        }
        break;
      case OpKind::kRmw:
        LLSC_UNREACHABLE("the adversary never schedules RMW steps");
    }
  }
  // Rule 8 (no operation -> unchanged) is the default via the copy.

  proc_up_.push_back(std::move(new_proc));
  reg_up_.push_back(std::move(new_reg));
}

const ProcSet& UpTracker::up_process(ProcId p, int r) const {
  LLSC_EXPECTS(r >= 0 && r <= num_rounds(), "round out of range");
  LLSC_EXPECTS(p >= 0 && p < n_, "process out of range");
  return proc_up_[static_cast<std::size_t>(r)][static_cast<std::size_t>(p)];
}

const ProcSet& UpTracker::up_register(RegId reg, int r) const {
  LLSC_EXPECTS(r >= 0 && r <= num_rounds(), "round out of range");
  return reg_at(reg_up_[static_cast<std::size_t>(r)], reg);
}

std::size_t UpTracker::max_up_size(int r) const {
  LLSC_EXPECTS(r >= 0 && r <= num_rounds(), "round out of range");
  std::size_t best = 0;
  for (const ProcSet& s : proc_up_[static_cast<std::size_t>(r)]) {
    best = std::max(best, s.count());
  }
  for (const auto& [_, s] : reg_up_[static_cast<std::size_t>(r)]) {
    best = std::max(best, s.count());
  }
  return best;
}

std::size_t UpTracker::lemma51_bound(int r) {
  std::size_t bound = 1;
  for (int i = 0; i < r; ++i) {
    if (bound > (~std::size_t{0}) / 4) return ~std::size_t{0};
    bound *= 4;
  }
  return bound;
}

bool UpTracker::lemma51_holds() const {
  for (int r = 0; r <= num_rounds(); ++r) {
    if (max_up_size(r) > lemma51_bound(r)) return false;
  }
  return true;
}

}  // namespace llsc
