// Theorem 6.1 / Lemma 3.1 drivers: the lower-bound experiments.
//
// analyze_wakeup_run() replays the proof of Theorem 6.1 on a concrete
// wakeup algorithm: run the Fig. 2 adversary, find the process that returns
// 1, count its shared-memory operations r, and compare with log_4 n. When
// the algorithm is "too fast" (r < log_4 n — only possible if it is
// incorrect), the driver carries the proof to its contradiction: it takes
// S = UP(winner, r) (of size <= 4^r < n by Lemma 5.1), builds the
// (S,A)-run, and witnesses the winner returning 1 in a run where processes
// outside S never took a step — a violation of the wakeup specification.
//
// estimate_expected_complexity() is the Lemma 3.1 Monte-Carlo harness for
// randomized algorithms: sample i.i.d. toss assignments, run the adversary
// under each, and average — estimating the termination probability c and
// the expected shared-access complexity, to compare against c·log_4 n.
#ifndef LLSC_CORE_LOWER_BOUND_H_
#define LLSC_CORE_LOWER_BOUND_H_

#include <cstdint>
#include <memory>
#include <string>

#include <vector>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/proc_set.h"
#include "hw/fault.h"
#include "memory/reclaim_policy.h"
#include "memory/storage_policy.h"
#include "runtime/system.h"

namespace llsc {

struct WakeupLowerBoundOptions {
  AdversaryOptions adversary;
  // Also build the (S,A)-run and run the Lemma 5.2 checker even when the
  // bound is met (slower; used by tests).
  bool always_check_indistinguishability = false;
};

struct WakeupLowerBoundReport {
  int n = 0;
  bool terminated = false;
  int rounds = 0;

  // The 1-returner with the fewest shared-memory operations (the proof
  // applies to any 1-returner; the cheapest gives the tightest check).
  ProcId winner = -1;
  std::uint64_t winner_ops = 0;  // the proof's r
  // max over processes of shared ops — the paper's t(R).
  std::uint64_t max_ops = 0;

  double log4_n = 0.0;
  // Theorem 6.1 holds for this run iff 4^winner_ops >= n.
  bool bound_met = false;

  // Lemma 5.1 data for S = UP(winner, winner_ops).
  std::size_t up_size = 0;

  // Filled when the (S,A)-run was built (always, for a too-fast winner).
  bool s_run_built = false;
  std::size_t s_size = 0;
  // The winner returned 1 in the (S,A)-run as well: when s_size < n this
  // witnesses a wakeup violation (processes outside S never took a step).
  bool s_run_winner_returned_1 = false;
  bool wakeup_violation_witnessed = false;
  IndistReport indist;

  std::string summary() const;
};

// Produces a fresh ProcBody (plus whatever state it captures) for one run.
// The analysis may execute up to three runs — the lean (All,A)-run, a
// snapshot replay of it, and the (S,A)-run — and each must start from
// pristine algorithm state, so stateful scenarios (e.g. a body capturing a
// universal construction) must come through a factory that rebuilds them.
using BodyFactory = std::function<ProcBody()>;

// Runs the full Theorem 6.1 analysis for n processes under toss assignment
// `tosses` (defaults to all-zeros, i.e. a deterministic run).
WakeupLowerBoundReport analyze_wakeup_run(
    const BodyFactory& make_algo, int n,
    std::shared_ptr<const TossAssignment> tosses = nullptr,
    const WakeupLowerBoundOptions& options = {});

// Convenience overload for STATELESS bodies (every wakeup algorithm in
// wakeup/algorithms.h): the same ProcBody is reused for every run.
WakeupLowerBoundReport analyze_wakeup_run(
    const ProcBody& algo, int n,
    std::shared_ptr<const TossAssignment> tosses = nullptr,
    const WakeupLowerBoundOptions& options = {});

struct ExpectedComplexityEstimate {
  int n = 0;
  int samples = 0;
  // Fraction of sampled assignments whose adversary run terminated — the
  // empirical termination probability c.
  double termination_rate = 0.0;
  // Terminated samples in which NO process returned 1 — the run finished
  // but nobody claimed "everyone is up", violating the wakeup spec. Such
  // samples are excluded from the winner-ops statistics below (they have
  // no winner to count) and surfaced here instead of being silently
  // folded in as winner_ops = 0, which used to drag min_winner_ops to 0
  // and flip bound_met with no trace.
  int spec_violations = 0;
  // Non-terminated samples, by cause (hw/fault.h taxonomy): at least one
  // injected crash-stop vs hitting the adversary round cap with no crash.
  // Both kinds count against termination_rate; without a fault plan
  // crashed_samples is always 0.
  int crashed_samples = 0;
  int hung_samples = 0;
  // Mean over terminating samples WITH a winner of the winner's op count;
  // mean over all terminating samples of t(R).
  double mean_winner_ops = 0.0;
  double mean_max_ops = 0.0;
  // Worst (minimum) winner op count across samples with a winner; 0 when
  // no sample produced a winner (never the ~0 accumulator sentinel).
  std::uint64_t min_winner_ops = 0;
  // The Theorem 6.1 randomized bound: c * log_4 n.
  double bound = 0.0;
  bool bound_met = false;  // min over winners >= log_4 n (vacuous if none)

  std::string summary() const;
};

// Monte-Carlo estimate over `samples` seeded toss assignments. `algo` is
// instantiated into a fresh System per sample, so it must be stateless
// across Systems (true of everything in wakeup/algorithms.h); a body
// capturing a universal construction needs a fresh construction per
// sample and cannot be passed here directly.
ExpectedComplexityEstimate estimate_expected_complexity(
    const ProcBody& algo, int n, int samples, std::uint64_t seed,
    const AdversaryOptions& adversary = {},
    const FaultPlan* fault = nullptr,
    StoragePolicy storage = default_storage_policy(),
    ReclaimPolicy reclaimer = default_reclaim_policy());

// One Lemma 3.1 sample: build a System over SeededTossAssignment(toss_seed),
// optionally install a fault injector (`fault` is used as-is — sweeping
// callers derive per-sample plans with derive_sample_plan), run the Fig. 2
// adversary, and classify the outcome. Shared by the serial estimator, the
// parallel hw/mc_driver (their folds must stay bit-for-bit identical) and
// the fault_replay tool (which needs the same classification the original
// failing sample got).
struct McSampleOutcome {
  RunStatus status = RunStatus::kClean;
  bool terminated = false;
  bool has_winner = false;
  std::uint64_t winner_ops = 0;
  std::uint64_t max_ops = 0;
  std::vector<std::uint64_t> proc_ops;  // per-process t(p) at halt
  // Width/overflow accounting under the sample's register-storage policy
  // (memory/storage_policy.h) — the simulator twin of HwRunResult::width,
  // counted at the same completed-install points so deterministic
  // workloads produce identical totals on both substrates.
  RegisterWidthStats width;
  // Node-reclamation accounting under the sample's reclaim policy — the
  // simulator twin of HwRunResult::reclaim. Only the deterministic fields
  // (policy, nodes_allocated, nodes_retired) are populated; the rest are
  // hw-timing artifacts with no simulator analogue.
  ReclaimStats reclaim;
  // Decisions an adversarial FaultStrategy recorded during this sample
  // (empty on the inline oblivious path). Embedding this trace into the
  // sample's plan makes the adaptive schedule replayable anywhere.
  DecisionTrace decision_trace;
};

McSampleOutcome run_mc_sample(const ProcBody& algo, int n,
                              std::uint64_t toss_seed,
                              const AdversaryOptions& adversary,
                              const FaultPlan* fault = nullptr,
                              StoragePolicy storage =
                                  default_storage_policy(),
                              ReclaimPolicy reclaimer =
                                  default_reclaim_policy());

}  // namespace llsc

#endif  // LLSC_CORE_LOWER_BOUND_H_
