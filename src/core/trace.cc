#include "core/trace.h"

#include <algorithm>

#include "util/str.h"

namespace llsc {

namespace {

std::string procs_list(const std::vector<ProcId>& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (const ProcId p : ids) parts.push_back("p" + std::to_string(p));
  return "{" + join(parts, ",") + "}";
}

std::string ops_of_round(const RoundRecord& rec) {
  std::vector<ProcId> steppers;
  for (const OpRecord& op : rec.ops) steppers.push_back(op.proc);
  std::sort(steppers.begin(), steppers.end());
  return procs_list(steppers);
}

}  // namespace

std::string render_round(const RoundRecord& rec,
                         const TraceOptions& options) {
  std::string out = "round " + std::to_string(rec.round) +
                    ": load=" + procs_list(rec.g_load) +
                    " move=" + procs_list(rec.g_move) +
                    " swap=" + procs_list(rec.g_swap) +
                    " sc=" + procs_list(rec.g_sc);
  if (!rec.terminated_in_phase1.empty()) {
    out += " terminated=" + procs_list(rec.terminated_in_phase1);
  }
  out += "\n";
  if (options.show_sigma && !rec.sigma.empty()) {
    std::vector<std::string> parts;
    for (const ProcId p : rec.sigma) parts.push_back("p" + std::to_string(p));
    out += "  sigma: " + join(parts, " ") + "\n";
  }
  if (options.show_ops) {
    for (const OpRecord& op : rec.ops) {
      out += "  " + op.to_string() + "\n";
    }
  }
  return out;
}

std::string render_run(const RunLog& log, const TraceOptions& options) {
  std::string out = "run: n=" + std::to_string(log.n) + ", " +
                    std::to_string(log.num_rounds()) + " rounds, " +
                    (log.all_terminated ? "terminated" : "NOT terminated") +
                    "\n";
  const int limit = options.max_rounds > 0
                        ? std::min(options.max_rounds, log.num_rounds())
                        : log.num_rounds();
  for (int r = 0; r < limit; ++r) {
    out += render_round(log.rounds[static_cast<std::size_t>(r)], options);
    if (options.show_registers &&
        static_cast<std::size_t>(r) < log.snapshots.size()) {
      const RoundSnapshot& snap = log.snapshots[static_cast<std::size_t>(r)];
      int shown = 0;
      for (const auto& [reg, rs] : snap.regs) {
        if (shown++ >= options.max_registers) {
          out += "    ...\n";
          break;
        }
        out += "    R" + std::to_string(reg) + " = " + rs.value.to_string() +
               "\n";
      }
    }
  }
  if (limit < log.num_rounds()) {
    out += "... (" + std::to_string(log.num_rounds() - limit) +
           " more rounds)\n";
  }
  return out;
}

std::string render_up_growth(const UpTracker& tracker) {
  std::string out = "round | max|UP(X,r)| | bound 4^r\n";
  for (int r = 0; r <= tracker.num_rounds(); ++r) {
    const std::size_t bound = UpTracker::lemma51_bound(r);
    out += std::to_string(r) + " | " +
           std::to_string(tracker.max_up_size(r)) + " | " +
           (bound == ~std::size_t{0} ? std::string("inf")
                                     : std::to_string(bound)) +
           "\n";
  }
  return out;
}

std::string render_run_comparison(const RunLog& all_log,
                                  const RunLog& s_log) {
  std::string out = "round | steppers in (All,A)-run | steppers in (S,A)-run\n";
  const int rounds = std::max(all_log.num_rounds(), s_log.num_rounds());
  for (int r = 0; r < rounds; ++r) {
    const std::string all =
        r < all_log.num_rounds()
            ? ops_of_round(all_log.rounds[static_cast<std::size_t>(r)])
            : "-";
    const std::string sub =
        r < s_log.num_rounds()
            ? ops_of_round(s_log.rounds[static_cast<std::size_t>(r)])
            : "-";
    out += std::to_string(r + 1) + " | " + all + " | " + sub + "\n";
  }
  return out;
}

}  // namespace llsc
