// Compact sets of process ids.
//
// The UP-set bookkeeping of Section 5.3 maintains one set per process and
// one per touched register, every round. ProcSet is a fixed-universe
// bitset ([0, n)) with the operations that bookkeeping needs: insert,
// union, subset test, cardinality — all O(n/64).
#ifndef LLSC_CORE_PROC_SET_H_
#define LLSC_CORE_PROC_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "memory/op.h"

namespace llsc {

class ProcSet {
 public:
  ProcSet() = default;
  // Empty set over the universe [0, n).
  explicit ProcSet(int n);
  // Singleton {p} over [0, n).
  static ProcSet singleton(int n, ProcId p);
  // The full universe [0, n).
  static ProcSet full(int n);
  // From an explicit list.
  static ProcSet of(int n, std::initializer_list<ProcId> ids);

  int universe() const { return n_; }
  bool contains(ProcId p) const;
  void insert(ProcId p);
  void unite(const ProcSet& other);
  bool subset_of(const ProcSet& other) const;
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  // All members, ascending.
  std::vector<ProcId> members() const;

  bool operator==(const ProcSet&) const = default;

  std::string to_string() const;

 private:
  int n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace llsc

#endif  // LLSC_CORE_PROC_SET_H_
