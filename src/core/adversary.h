// The paper's adversary scheduler (Figure 2).
//
// Runs proceed in rounds of five phases:
//   1. every live process performs local coin tosses until it terminates or
//      its next step is a shared-memory operation; live processes are then
//      partitioned by the type of that operation;
//   2. the LL/validate group steps, in id order;
//   3. the move group steps, in the order of a secretive complete schedule
//      sigma_r (Section 4) over its pending moves;
//   4. the swap group steps, in id order;
//   5. the SC group steps, in id order.
//
// Because loads all precede stores within a round, every load in round r
// observes end-of-round-(r-1) values; because moves and swaps precede SCs
// and clear Psets, at most one SC per register succeeds per round. These
// are the structural facts the UP-set update rules rely on.
//
// The scheduler produces a RunLog: per-round records (partition, sigma_r,
// executed ops) and end-of-round snapshots, which feed the UP tracker, the
// (S,A)-run construction and the indistinguishability checker.
#ifndef LLSC_CORE_ADVERSARY_H_
#define LLSC_CORE_ADVERSARY_H_

#include <cstdint>

#include "core/round_record.h"
#include "runtime/system.h"

namespace llsc {

struct AdversaryOptions {
  // Cap on rounds, so non-terminating algorithms yield a diagnosable log.
  int max_rounds = 1 << 20;
  // Ablation switch (E5 bench): when false, the move group is scheduled in
  // id order instead of a secretive complete schedule, which lets move
  // chains leak information and breaks the |UP| <= 4^r bound.
  bool secretive_moves = true;
  // Disable end-of-round snapshots to save memory in heavy benches
  // (round records are always kept).
  bool record_snapshots = true;
};

// Runs `sys` to completion (or the round cap) under the Fig. 2 adversary
// and returns the full log.
RunLog run_adversary(System& sys, const AdversaryOptions& options = {});

}  // namespace llsc

#endif  // LLSC_CORE_ADVERSARY_H_
