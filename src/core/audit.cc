#include "core/audit.h"

namespace llsc {

std::string WidthAudit::summary() const {
  if (!bounded) {
    return "UNBOUNDED (structured payload written: " + widest_write + ")";
  }
  return std::to_string(max_bits) + " bits (widest: " + widest_write + ")";
}

WidthAudit audit_register_widths(const std::vector<OpRecord>& trace) {
  WidthAudit audit;
  for (const OpRecord& rec : trace) {
    const bool writes_arg =
        rec.op.kind == OpKind::kSwap ||
        (rec.op.kind == OpKind::kSC && rec.result.flag);
    if (!writes_arg) continue;
    ++audit.writes_inspected;
    const std::size_t bits = rec.op.arg.encoded_bits();
    if (bits == ~std::size_t{0}) {
      audit.bounded = false;
      audit.max_bits = ~std::size_t{0};
      audit.widest_write = rec.op.to_string();
      // Keep scanning only for the count; the verdict cannot change back.
      continue;
    }
    if (audit.bounded && bits > audit.max_bits) {
      audit.max_bits = bits;
      audit.widest_write = rec.op.to_string();
    }
  }
  return audit;
}

WidthAudit width_audit_from_stats(const RegisterWidthStats& stats) {
  WidthAudit audit;
  audit.writes_inspected = stats.writes_inspected;
  audit.max_bits = stats.max_bits;
  audit.bounded = stats.bounded();
  audit.widest_write =
      "<" + std::to_string(stats.writes_inspected) + " installs under " +
      to_string(stats.policy) + " storage>";
  return audit;
}

}  // namespace llsc
