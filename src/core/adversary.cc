#include "core/adversary.h"

#include <algorithm>

#include "core/snapshot.h"
#include "util/check.h"
#include "util/rng.h"

namespace llsc {

std::size_t combine_op_into_history(std::size_t h, const OpRecord& rec) {
  h = mix64(h ^ static_cast<std::size_t>(rec.op.kind));
  h = mix64(h ^ rec.op.reg);
  h = mix64(h ^ rec.op.src);
  h = mix64(h ^ rec.op.arg.hash());
  h = mix64(h ^ (rec.result.flag ? 0x51u : 0xA3u));
  h = mix64(h ^ rec.result.value.hash());
  return h;
}

RoundSnapshot take_snapshot(const System& sys,
                            const std::vector<std::size_t>& history_hashes) {
  RoundSnapshot snap;
  const int n = sys.num_processes();
  snap.procs.resize(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    ProcSnapshot& ps = snap.procs[static_cast<std::size_t>(p)];
    ps.num_tosses = proc.num_tosses();
    ps.shared_ops = proc.shared_ops();
    ps.history_hash = history_hashes[static_cast<std::size_t>(p)];
    ps.done = proc.done();
    if (ps.done) ps.result = proc.result();
  }
  for (const RegId r : sys.memory().touched_registers()) {
    RegSnapshot rs;
    rs.value = sys.memory().peek_value(r);
    const auto& pset = sys.memory().peek_pset(r);
    rs.pset.assign(pset.begin(), pset.end());
    snap.regs.emplace(r, std::move(rs));
  }
  return snap;
}

RunLog run_adversary(System& sys, const AdversaryOptions& options) {
  const int n = sys.num_processes();
  RunLog log;
  log.n = n;
  std::vector<std::size_t> hist(static_cast<std::size_t>(n), 0);
  if (options.record_snapshots) log.initial = take_snapshot(sys, hist);

  for (int round = 1; round <= options.max_rounds; ++round) {
    // all_halted, not all_done: with injected crash-stops (hw/fault.h)
    // the remaining rounds would otherwise be empty spins to max_rounds.
    if (sys.all_halted()) break;

    RoundRecord rec;
    rec.round = round;

    // Phase 1: local coin tosses until termination or a pending op. A
    // process whose crash point is reached halts here, before its op is
    // partitioned (crashes happen only at op boundaries). A crashed
    // process whose RecoverySpec still owes it a restart rejoins at the
    // top of the round — the earliest op boundary after its crash, which
    // is also where the hw workers respawn it.
    for (ProcId p = 0; p < n; ++p) {
      Process& proc = sys.process(p);
      if (proc.crashed() && !sys.maybe_recover(p)) continue;
      if (proc.halted()) continue;
      const bool was_live = true;
      sys.advance_through_tosses(p);
      if (was_live && proc.done()) rec.terminated_in_phase1.push_back(p);
      if (!proc.done()) sys.maybe_crash(p);
    }

    // Partition live processes by the group of their next operation.
    for (ProcId p = 0; p < n; ++p) {
      const Process& proc = sys.process(p);
      if (proc.halted()) continue;
      LLSC_CHECK(proc.step_kind() == StepKind::kOp,
                 "phase 1 must leave a pending shared-memory op");
      switch (op_group(proc.pending_op().kind)) {
        case OpGroup::kLoad:
          rec.g_load.push_back(p);
          break;
        case OpGroup::kMove:
          rec.g_move.push_back(p);
          break;
        case OpGroup::kSwap:
          rec.g_swap.push_back(p);
          break;
        case OpGroup::kStoreConditional:
          rec.g_sc.push_back(p);
          break;
      }
    }

    const auto execute = [&](ProcId p) {
      const OpRecord op = sys.execute_pending_op(p);
      hist[static_cast<std::size_t>(p)] =
          combine_op_into_history(hist[static_cast<std::size_t>(p)], op);
      rec.ops.push_back(op);
    };

    // Phase 2: loads, in id order.
    for (const ProcId p : rec.g_load) execute(p);

    // Phase 3: moves, in secretive-complete-schedule order.
    for (const ProcId p : rec.g_move) {
      const PendingOp& op = sys.process(p).pending_op();
      rec.move_set.push_back(MoveOp{.proc = p, .src = op.src, .dst = op.reg});
    }
    rec.sigma = options.secretive_moves
                    ? secretive_complete_schedule(rec.move_set)
                    : rec.g_move;  // ablation: id order
    for (const ProcId p : rec.sigma) execute(p);

    // Phase 4: swaps, in id order.
    for (const ProcId p : rec.g_swap) execute(p);

    // Phase 5: SCs, in id order.
    for (const ProcId p : rec.g_sc) execute(p);

    log.rounds.push_back(std::move(rec));
    if (options.record_snapshots) {
      log.snapshots.push_back(take_snapshot(sys, hist));
    }
  }

  log.all_terminated = sys.all_done();
  return log;
}

}  // namespace llsc
