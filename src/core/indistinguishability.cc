#include "core/indistinguishability.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

std::string IndistReport::summary() const {
  return std::string(ok ? "OK" : "VIOLATED") + " (" +
         std::to_string(process_checks) + " process checks, " +
         std::to_string(register_checks) + " register checks, " +
         std::to_string(violations.size()) + " violations)";
}

namespace {

const RegSnapshot* find_reg(const RoundSnapshot& snap, RegId r) {
  const auto it = snap.regs.find(r);
  return it == snap.regs.end() ? nullptr : &it->second;
}

// A register absent from a snapshot is untouched: nil value, empty Pset.
const RegSnapshot& reg_or_default(const RoundSnapshot& snap, RegId r) {
  static const RegSnapshot kDefault;
  const RegSnapshot* found = find_reg(snap, r);
  return found == nullptr ? kDefault : *found;
}

bool pset_contains(const RegSnapshot& reg, ProcId p) {
  return std::binary_search(reg.pset.begin(), reg.pset.end(), p);
}

}  // namespace

IndistReport check_indistinguishability(const RunLog& all_log,
                                        const RunLog& s_log,
                                        const UpTracker& up,
                                        const ProcSet& s) {
  LLSC_EXPECTS(all_log.n == s_log.n, "run logs describe different systems");
  LLSC_EXPECTS(!all_log.snapshots.empty() || all_log.rounds.empty(),
               "the (All,A)-run log has no snapshots");
  const int n = all_log.n;
  const int rounds = std::min(all_log.num_rounds(), s_log.num_rounds());

  IndistReport report;
  const auto violation = [&](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };

  for (int r = 0; r <= rounds; ++r) {
    const RoundSnapshot& all_snap = all_log.at(r);
    const RoundSnapshot& s_snap = s_log.at(r);

    // --- processes: (All,A)-run ≈_p^r (S,A)-run when UP(p, r) ⊆ S ---
    for (ProcId p = 0; p < n; ++p) {
      if (!up.up_process(p, r).subset_of(s)) continue;
      ++report.process_checks;
      const ProcSnapshot& a = all_snap.procs[static_cast<std::size_t>(p)];
      const ProcSnapshot& b = s_snap.procs[static_cast<std::size_t>(p)];
      if (a.num_tosses != b.num_tosses) {
        violation("round " + std::to_string(r) + ": numtosses(p" +
                  std::to_string(p) + ") differ: " +
                  std::to_string(a.num_tosses) + " vs " +
                  std::to_string(b.num_tosses));
      }
      if (a.history_hash != b.history_hash ||
          a.shared_ops != b.shared_ops || a.done != b.done ||
          (a.done && !(a.result == b.result))) {
        violation("round " + std::to_string(r) + ": state(p" +
                  std::to_string(p) + ") differs between runs");
      }
    }

    // --- registers: every register either run touched ---
    std::vector<RegId> regs;
    for (const auto& [id, _] : all_snap.regs) regs.push_back(id);
    for (const auto& [id, _] : s_snap.regs) {
      if (find_reg(all_snap, id) == nullptr) regs.push_back(id);
    }
    for (const RegId reg : regs) {
      if (!up.up_register(reg, r).subset_of(s)) continue;
      ++report.register_checks;
      const RegSnapshot& a = reg_or_default(all_snap, reg);
      const RegSnapshot& b = reg_or_default(s_snap, reg);
      if (!(a.value == b.value)) {
        violation("round " + std::to_string(r) + ": val(R" +
                  std::to_string(reg) + ") differs: " + a.value.to_string() +
                  " vs " + b.value.to_string());
      }
      for (ProcId p = 0; p < n; ++p) {
        if (!up.up_process(p, r).subset_of(s)) continue;
        if (pset_contains(a, p) != pset_contains(b, p)) {
          violation("round " + std::to_string(r) + ": Pset(R" +
                    std::to_string(reg) + ") membership of p" +
                    std::to_string(p) + " differs");
        }
      }
    }
  }
  return report;
}

}  // namespace llsc
