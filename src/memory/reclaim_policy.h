// Reclamation policies — the seam deciding when a replaced boxed node may
// be freed.
//
// The hw backend's BoxedStorage (and InlineStorage's demoted registers)
// publish immutable heap nodes through a single CAS word; a node replaced
// by a successful write can still be dereferenced by a reader that loaded
// the word just before the CAS, so freeing it is a policy decision with a
// real trade-off:
//
//   kEpoch  — three-epoch batch reclamation (the pre-seam behavior, byte
//             for byte). Near-zero per-operation cost, but a peer parked
//             or stalled *inside* an operation pins the global epoch and
//             every thread's garbage grows without bound for the duration.
//   kHazard — per-slot hazard pointers with an amortized retired-list
//             scan. Each protected load pays a publish + re-validate
//             round-trip, but unreclaimed nodes are bounded at
//             O(slots² · hazards-per-slot) no matter how long any peer
//             stalls or how often it crash-recovers.
//
// The enum values double as the reclaimer_id emitted in bench counters and
// validated by tools/bench_to_csv.py --check. The hw-side machinery
// (Reclaimer, EpochReclaimer, HazardPointerReclaimer) lives in
// hw/reclaim.h; this header carries only what both substrates share: the
// policy name, the LLSC_RECLAIMER process default, and the counters every
// run reports.
#ifndef LLSC_MEMORY_RECLAIM_POLICY_H_
#define LLSC_MEMORY_RECLAIM_POLICY_H_

#include <cstdint>
#include <string>

namespace llsc {

enum class ReclaimPolicy : int {
  kEpoch = 0,
  kHazard = 1,
};

std::string to_string(ReclaimPolicy policy);
ReclaimPolicy reclaim_policy_from_string(const std::string& name);

// Process-wide default, read once from the LLSC_RECLAIMER environment
// variable ("epoch" | "hazard"); kEpoch when unset. This is how the CI
// hazard matrix legs flip every test and bench to the other policy without
// touching call sites; anything that cares pins its policy explicitly.
ReclaimPolicy default_reclaim_policy();

// Reclamation counters of one run. On the hw substrate they aggregate the
// Reclaimer's per-slot counters plus the storage layer's net allocation
// count (read when quiescent); the simulator mirrors the deterministic
// subset — nodes_allocated / nodes_retired, counted at the same
// completed-install points as RegisterWidthStats — so sim/hw parity holds
// for deterministic workloads, while the timing-dependent fields
// (nodes_freed, scan_passes, stall spins, high-water) stay hw-only and
// read 0 on the simulator.
struct ReclaimStats {
  ReclaimPolicy policy = ReclaimPolicy::kEpoch;
  // Net nodes allocated by completed installs (a node allocated for a CAS
  // that lost its race is deleted and un-counted on the spot).
  std::uint64_t nodes_allocated = 0;
  std::uint64_t nodes_retired = 0;
  std::uint64_t nodes_freed = 0;
  // Current global epoch (kEpoch only; 0 under kHazard).
  std::uint64_t global_epoch = 0;
  // Retired-list scans performed (epoch advance attempts / hazard sweeps).
  std::uint64_t scan_passes = 0;
  // kHazard publish→re-validate retries summed over all protected loads,
  // and the worst single protected load — the reclamation-stall tail E19
  // reports. Both 0 under kEpoch (an epoch entry never retries).
  std::uint64_t protect_retries = 0;
  std::uint64_t max_stall_spins = 0;
  // Peak unreclaimed retired nodes, summed over slots (each slot tracks
  // the high-water of its own retired list). This is the memory-growth
  // metric: bounded under kHazard regardless of stalled peers, unbounded
  // under kEpoch while any peer pins the epoch.
  std::uint64_t node_high_water = 0;
};

}  // namespace llsc

#endif  // LLSC_MEMORY_RECLAIM_POLICY_H_
