// Shared-memory operation descriptors and trace records.
//
// The paper's model supports exactly five shared-memory operations: LL, SC,
// validate, swap, and move. A PendingOp describes the operation a suspended
// process is *about to* perform — this is what the Fig. 2 adversary inspects
// to partition processes into the LL/validate, move, swap and SC groups.
// An OpRecord additionally carries the result, for run transcripts and for
// the UP-set update rules, which need to know (for example) which SCs in a
// round succeeded and in what order swaps were applied.
#ifndef LLSC_MEMORY_OP_H_
#define LLSC_MEMORY_OP_H_

#include <cstdint>
#include <string>

#include "memory/rmw.h"
#include "memory/value.h"

namespace llsc {

// Process index in [0, n).
using ProcId = int;
// Register index; registers are unbounded in number.
using RegId = std::uint64_t;

enum class OpKind : std::uint8_t {
  kLL,
  kSC,
  kValidate,
  kSwap,
  kMove,
  // The optional strong operation of Section 7 (NOT one of the paper's
  // five; the Fig. 2 adversary refuses to schedule it — see op_group()).
  kRmw,
};

const char* op_kind_name(OpKind kind);

// The four scheduling groups of the adversary's round (paper Fig. 2).
// LL and validate share a group; the other kinds each get their own.
// kRmw has no group: the lower bound (and hence the adversary) covers
// only LL/SC/VL/swap/move, so op_group() rejects RMW steps.
enum class OpGroup : std::uint8_t {
  kLoad = 0,   // LL or validate
  kMove = 1,
  kSwap = 2,
  kStoreConditional = 3,
};

OpGroup op_group(OpKind kind);
const char* op_group_name(OpGroup group);

// A shared-memory operation a process is about to perform.
struct PendingOp {
  OpKind kind = OpKind::kLL;
  RegId reg = 0;       // target register (destination register for move)
  RegId src = 0;       // source register (move only)
  Value arg;           // value to store (SC and swap only)
  std::shared_ptr<const RmwFunction> rmw;  // transformation (RMW only)

  std::string to_string() const;
};

// The response of a shared-memory operation.
struct OpResult {
  // SC: success flag; validate: link-still-valid flag; others: unused (true).
  bool flag = true;
  // LL/validate/swap: the value read; SC: the previous value (on success) or
  // the current value (on failure); move: nil (move returns only an ack).
  Value value;

  std::string to_string() const;
};

// One executed shared-memory step, for transcripts.
struct OpRecord {
  ProcId proc = -1;
  PendingOp op;
  OpResult result;
  // Sequence number of the step within the run (0-based, shared-memory
  // steps only; coin tosses are not shared-memory steps).
  std::uint64_t step_index = 0;

  std::string to_string() const;
};

}  // namespace llsc

#endif  // LLSC_MEMORY_OP_H_
