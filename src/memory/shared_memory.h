// The paper's shared memory (Section 3).
//
// An infinite array of registers R_0, R_1, ...; the state of each register
// is (value, Pset). The five supported operations behave exactly as the
// paper defines them:
//
//   LL(R) by p        : Pset(R) += {p}; returns value(R).
//   SC(R, v) by p     : if p in Pset(R): value(R) = v, Pset(R) = {},
//                       returns (true, previous value);
//                       else returns (false, current value).
//   validate(R) by p  : returns (p in Pset(R), value(R)); no state change.
//   swap(R, v) by p   : value(R) = v, Pset(R) = {}; returns previous value.
//   move(Rs, Rd) by p : value(Rd) = value(Rs), Pset(Rd) = {}; Rs unchanged;
//                       returns ack.
//
// Note the strengthened responses: SC and validate return the register value
// in addition to the boolean — the paper proves the lower bound even against
// these stronger operations, and a plain read is validate's value component.
//
// Registers are materialized lazily, so the "infinite" register array costs
// memory only for registers actually touched.
#ifndef LLSC_MEMORY_SHARED_MEMORY_H_
#define LLSC_MEMORY_SHARED_MEMORY_H_

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "memory/op.h"
#include "memory/reclaim_policy.h"
#include "memory/storage_policy.h"
#include "memory/value.h"

namespace llsc {

// State of one shared register.
struct Register {
  Value value;
  // Processes whose link is live (a subsequent SC by them would succeed).
  // Ordered for deterministic iteration in traces and state hashes.
  std::set<ProcId> pset;

  std::string to_string() const;
};

// Per-kind operation counters for throughput accounting.
struct MemoryOpCounts {
  std::array<std::uint64_t, 6> by_kind{};

  std::uint64_t total() const;
  std::uint64_t& operator[](OpKind kind) {
    return by_kind[static_cast<std::size_t>(kind)];
  }
  std::uint64_t operator[](OpKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
};

class SharedMemory {
 public:
  SharedMemory() = default;

  // The five operations. `p` is the invoking process.
  Value ll(ProcId p, RegId r);
  OpResult sc(ProcId p, RegId r, Value v);
  OpResult validate(ProcId p, RegId r) const;
  Value swap(ProcId p, RegId r, Value v);
  void move(ProcId p, RegId src, RegId dst);
  // RMW(r, f): value(r) <- f(value(r)), Pset(r) <- {}; returns the OLD
  // value. The Section 7 strong operation; see memory/rmw.h.
  Value rmw(ProcId p, RegId r, const RmwFunction& f);

  // Execute a PendingOp on behalf of `p` and return its result. This is the
  // single entry point schedulers use, so counting and tracing are uniform.
  OpResult apply(ProcId p, const PendingOp& op);

  // Crash-recovery support (hw/fault.h): remove p from every register's
  // Pset, so a restarted incarnation cannot adopt a reservation its dead
  // predecessor took. Mirrors HwMemory::invalidate_links bit for bit: a
  // dropped link makes exactly the SC/VLs fail that would fail on hw.
  void invalidate_links(ProcId p);

  // Observation (not shared-memory operations; used by checkers/tests only).
  const Value& peek_value(RegId r) const;
  bool peek_pset_contains(RegId r, ProcId p) const;
  std::size_t peek_pset_size(RegId r) const;
  // The full Pset (ascending). Returns an empty set for untouched registers.
  const std::set<ProcId>& peek_pset(RegId r) const;
  // Registers that have been touched (lazily materialized) so far.
  std::vector<RegId> touched_registers() const;

  const MemoryOpCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = MemoryOpCounts{}; }

  // Register-storage policy (memory/storage_policy.h). The simulator always
  // stores full Values — the policy changes only the *accounting* (width /
  // overflow / per-register demotion counters, mirroring the hw backend's
  // RegisterStorage bit for bit on deterministic workloads) and, under
  // kInlineStrict, makes an unencodable completed write throw
  // RegisterOverflowError before mutating anything. Set it before running;
  // it defaults to LLSC_STORAGE_POLICY like the hw side.
  void set_storage_policy(StoragePolicy policy) { storage_ = policy; }
  StoragePolicy storage_policy() const { return storage_; }
  RegisterWidthStats width_stats() const;

  // Node-reclamation policy (memory/reclaim_policy.h). Like the storage
  // policy, the simulator changes only the *accounting*: nodes_allocated /
  // nodes_retired count the node-path installs the hw backend's
  // RegisterStorage would allocate and retire on the same deterministic
  // workload (boxed: every install; inline: only demoted registers), so
  // the two substrates' deterministic counters agree. Timing-dependent
  // fields (nodes_freed, scan_passes, stall spins, high water) have no
  // simulator analogue and stay zero.
  void set_reclaim_policy(ReclaimPolicy policy) { reclaim_policy_ = policy; }
  ReclaimPolicy reclaim_policy() const { return reclaim_policy_; }
  ReclaimStats reclaim_stats() const;

  // Labeled logical-object ranges (e.g. a universal construction's
  // announce array vs its state register). When set, width_stats()
  // attributes each demoted register to its group in
  // boxed_fallback_by_group; when empty (the default) the breakdown stays
  // empty and existing consumers see the lumped counter only.
  void set_register_groups(std::vector<RegisterGroup> groups) {
    groups_ = std::move(groups);
  }

  // Structural hash of the full memory state (values + Psets), used by the
  // bounded model checker to detect revisited configurations.
  std::size_t state_hash() const;

 private:
  Register& reg(RegId r);
  const Register* find(RegId r) const;
  // Width accounting at a *completed* install (SC success, swap, move,
  // rmw) — the same points the hw backend counts at, so the totals agree
  // across substrates for deterministic workloads.
  void note_write(RegId r, const Value& v);
  // Throws RegisterOverflowError under kInlineStrict for unencodable `v`;
  // called before the mutation, after the operation is known to complete.
  void check_overflow(RegId r, const Value& v) const;

  std::unordered_map<RegId, Register> regs_;
  MemoryOpCounts counts_;
  StoragePolicy storage_ = default_storage_policy();
  RegisterWidthStats width_;
  ReclaimPolicy reclaim_policy_ = default_reclaim_policy();
  ReclaimStats reclaim_;
  // Registers an overflow demoted to boxing (kInline; sticky, like hw).
  std::set<RegId> demoted_;
  std::vector<RegisterGroup> groups_;
};

}  // namespace llsc

#endif  // LLSC_MEMORY_SHARED_MEMORY_H_
