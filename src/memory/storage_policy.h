// Register-storage policies — the seam contrasting Section 7's bounded
// register regime with the unbounded registers the O(log n) upper bound
// assumes.
//
// The paper's model gives every register "an unbounded size"; S7's width
// audit (core/audit.h) showed the count-based wakeup algorithms actually
// fit in ⌈log₂ n⌉+1 bits while the universal constructions do not. This
// header names the storage policies both substrates (hw's RegisterStorage
// and the simulator's SharedMemory) can run under, plus the 64-bit tagged
// word codec the inline policy uses and the width/overflow counters every
// run reports:
//
//   kBoxed        — every write installs a heap node holding an arbitrary
//                   Value (today's behavior, byte-for-byte preserved).
//   kInline       — a register is one 64-bit atomic word while its values
//                   fit; the first unencodable write demotes that register
//                   (and only it) to boxing, permanently.
//   kInlineStrict — as kInline, but an unencodable write faults the run
//                   with RegisterOverflowError instead of falling back.
//
// Inline word layout (bit 0 is the discriminator; Node pointers are
// 8-byte aligned so bit 0 = 0 always means "pointer"):
//
//   bit      0      : 1  (inline marker)
//   bits  [47:1]    : payload — 0 for nil, v+1 for a u64 v (so any
//                     encodable word is nonzero and v ≤ 2^47 − 2 fits)
//   bits [63:48]    : 16-bit version tag in [1, 65535], wrapping
//                     0xFFFF → 1 (never 0, so an inline word never
//                     collides with the "no link" sentinel 0)
//
// The enum values double as the policy_id emitted in bench counters and
// validated by tools/bench_to_csv.py --check.
#ifndef LLSC_MEMORY_STORAGE_POLICY_H_
#define LLSC_MEMORY_STORAGE_POLICY_H_

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "memory/op.h"
#include "memory/value.h"

namespace llsc {

enum class StoragePolicy : int {
  kBoxed = 0,
  kInline = 1,
  kInlineStrict = 2,
};

std::string to_string(StoragePolicy policy);
StoragePolicy storage_policy_from_string(const std::string& name);

// Process-wide default, read once from the LLSC_STORAGE_POLICY environment
// variable ("boxed" | "inline" | "inline-strict"); kBoxed when unset. This
// is how the CI inline matrix leg flips every test and bench to another
// policy without touching call sites; anything that cares pins its policy
// explicitly.
StoragePolicy default_storage_policy();

// Thrown by kInlineStrict when a completed write's value cannot be encoded
// in the 64-bit register word.
class RegisterOverflowError : public std::runtime_error {
 public:
  explicit RegisterOverflowError(const std::string& what)
      : std::runtime_error(what) {}
};

// --- the inline 64-bit word codec ---------------------------------------

inline constexpr std::size_t kInlineTagBits = 16;
inline constexpr std::size_t kInlinePayloadBits = 47;
// Largest u64 an inline word can hold (payload stores v+1 in 47 bits).
inline constexpr std::uint64_t kInlineMaxU64 =
    (std::uint64_t{1} << kInlinePayloadBits) - 2;
// Distinct live tags; a wrong inline SC success needs exactly a multiple
// of this many intervening writes (with an equal payload) between the LL
// and the SC — the ABA bound documented in docs/hw_backend.md.
inline constexpr std::uint64_t kInlineTagPeriod =
    (std::uint64_t{1} << kInlineTagBits) - 1;

// nil and u64 values up to kInlineMaxU64 fit; everything else (BigInt,
// strings, structured payloads) must be boxed.
bool value_fits_inline(const Value& v);

std::uint64_t inline_tag(std::uint64_t word);
std::uint64_t next_inline_tag(std::uint64_t tag);
// Precondition: value_fits_inline(v) and tag in [1, kInlineTagPeriod].
std::uint64_t encode_inline(const Value& v, std::uint64_t tag);
Value decode_inline(std::uint64_t word);

// A labeled half-open register-id range [lo, hi) identifying one logical
// object inside a construction's register span — e.g. CombiningUniversal's
// announce array vs its single state pointer. Supplied to a substrate
// (RegisterStorage::set_register_groups / SharedMemory::set_register_groups)
// so RegisterWidthStats can attribute demote-on-overflow events per
// logical object instead of lumping them into one counter.
struct RegisterGroup {
  std::string label;
  RegId lo = 0;
  RegId hi = 0;  // exclusive

  bool contains(RegId r) const { return r >= lo && r < hi; }
};

// Label under which demoted registers outside every supplied group are
// reported in the per-group breakdown.
inline constexpr const char* kUngroupedLabel = "other";

// Width/overflow counters, the hw-side twin of S7's WidthAudit (see
// core/audit.h: width_audit_from_stats). Counted only at *completed*
// install points (SC success, swap, move, rmw) — never per CAS retry — so
// the totals agree between the simulator and the hw backend for any
// deterministic workload.
struct RegisterWidthStats {
  StoragePolicy policy = StoragePolicy::kBoxed;
  std::uint64_t writes_inspected = 0;
  // Widest value written, in bits; ~std::size_t{0} once a structured
  // (unbounded) payload was written. 0 when nothing was written.
  std::size_t max_bits = 0;
  // Completed writes whose value does not fit in an inline word. Always 0
  // under kBoxed (there is nothing to overflow).
  std::uint64_t overflow_events = 0;
  std::uint64_t inline_installs = 0;
  std::uint64_t boxed_installs = 0;
  // Registers demoted to per-register boxing by an overflow (kInline only).
  std::uint64_t boxed_fallback_registers = 0;
  // Breakdown of boxed_fallback_registers by logical object, keyed by
  // RegisterGroup label (kUngroupedLabel for registers outside every
  // supplied group). Populated only when register groups were installed on
  // the substrate; empty otherwise, keeping existing artifact schemas
  // byte-stable. Values always sum to boxed_fallback_registers when
  // non-empty.
  std::map<std::string, std::uint64_t> boxed_fallback_by_group;

  bool bounded() const { return max_bits != ~std::size_t{0}; }
};

// Shared attribution helper for both substrates: distributes `demoted`
// register ids over `groups`, writing the per-label counts into
// `stats.boxed_fallback_by_group` (no-op when `groups` is empty).
void attribute_boxed_fallbacks(const std::vector<RegisterGroup>& groups,
                               const std::vector<RegId>& demoted,
                               RegisterWidthStats& stats);

}  // namespace llsc

#endif  // LLSC_MEMORY_STORAGE_POLICY_H_
