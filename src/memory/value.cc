#include "memory/value.h"

namespace llsc {

namespace {

// Boxes giving the built-in scalar payloads equality, printing and hashing.
struct U64Box {
  std::uint64_t v;
  bool operator==(const U64Box&) const = default;
  std::string to_string() const { return std::to_string(v); }
  std::size_t hash() const { return mix64(v); }
  std::size_t encoded_bits() const {
    return v == 0 ? 1 : 64 - static_cast<std::size_t>(__builtin_clzll(v));
  }
};

struct BigBox {
  BigInt v;
  bool operator==(const BigBox&) const = default;
  std::string to_string() const { return v.to_hex(); }
  std::size_t hash() const { return v.hash(); }
  std::size_t encoded_bits() const {
    return v.is_zero() ? 1 : v.bit_length();
  }
};

struct StrBox {
  std::string v;
  bool operator==(const StrBox&) const = default;
  std::string to_string() const { return "\"" + v + "\""; }
  std::size_t hash() const { return std::hash<std::string>{}(v); }
  std::size_t encoded_bits() const { return 8 * v.size(); }
};

}  // namespace

Value Value::of_u64(std::uint64_t v) { return Value::of(U64Box{v}); }
Value Value::of_big(BigInt v) { return Value::of(BigBox{std::move(v)}); }
Value Value::of_string(std::string v) {
  return Value::of(StrBox{std::move(v)});
}

std::uint64_t Value::as_u64() const {
  const auto* box = get_if<U64Box>();
  LLSC_EXPECTS(box != nullptr, "Value does not hold a u64");
  return box->v;
}

const BigInt& Value::as_big() const {
  const auto* box = get_if<BigBox>();
  LLSC_EXPECTS(box != nullptr, "Value does not hold a BigInt");
  return box->v;
}

const std::string& Value::as_string() const {
  const auto* box = get_if<StrBox>();
  LLSC_EXPECTS(box != nullptr, "Value does not hold a string");
  return box->v;
}

bool Value::holds_u64() const { return get_if<U64Box>() != nullptr; }
bool Value::holds_big() const { return get_if<BigBox>() != nullptr; }

bool Value::operator==(const Value& rhs) const {
  if (payload_ == rhs.payload_) return true;  // covers nil == nil and aliases
  if (payload_ == nullptr || rhs.payload_ == nullptr) return false;
  if (payload_->type() != rhs.payload_->type()) return false;
  return payload_->equals_same_type(*rhs.payload_);
}

std::string Value::to_string() const {
  return payload_ == nullptr ? "nil" : payload_->to_string();
}

std::size_t Value::hash() const {
  return payload_ == nullptr ? 0 : payload_->hash();
}

std::size_t Value::encoded_bits() const {
  return payload_ == nullptr ? 0 : payload_->encoded_bits();
}

}  // namespace llsc
