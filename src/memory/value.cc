#include "memory/value.h"

namespace llsc {

namespace {

// Boxes giving the built-in non-scalar payloads equality, printing and
// hashing. u64 payloads are stored inline in the Value handle itself (see
// value.h) and need no box.
struct BigBox {
  BigInt v;
  bool operator==(const BigBox&) const = default;
  std::string to_string() const { return v.to_hex(); }
  std::size_t hash() const { return v.hash(); }
  std::size_t encoded_bits() const {
    return v.is_zero() ? 1 : v.bit_length();
  }
};

struct StrBox {
  std::string v;
  bool operator==(const StrBox&) const = default;
  std::string to_string() const { return "\"" + v + "\""; }
  std::size_t hash() const { return std::hash<std::string>{}(v); }
  std::size_t encoded_bits() const { return 8 * v.size(); }
};

}  // namespace

Value Value::of_big(BigInt v) { return Value::of(BigBox{std::move(v)}); }
Value Value::of_string(std::string v) {
  return Value::of(StrBox{std::move(v)});
}

const BigInt& Value::as_big() const {
  const auto* box = get_if<BigBox>();
  LLSC_EXPECTS(box != nullptr, "Value does not hold a BigInt");
  return box->v;
}

const std::string& Value::as_string() const {
  const auto* box = get_if<StrBox>();
  LLSC_EXPECTS(box != nullptr, "Value does not hold a string");
  return box->v;
}

bool Value::holds_big() const { return get_if<BigBox>() != nullptr; }

bool Value::operator==(const Value& rhs) const {
  if (holds_u64_ || rhs.holds_u64_) {
    // A u64 equals only another u64 with the same bits — in particular it
    // is never equal to a BigInt holding the same number, as before.
    return holds_u64_ == rhs.holds_u64_ && u64_ == rhs.u64_;
  }
  if (payload_ == rhs.payload_) return true;  // covers nil == nil and aliases
  if (payload_ == nullptr || rhs.payload_ == nullptr) return false;
  if (payload_->type() != rhs.payload_->type()) return false;
  return payload_->equals_same_type(*rhs.payload_);
}

std::string Value::to_string() const {
  if (holds_u64_) return std::to_string(u64_);
  return payload_ == nullptr ? "nil" : payload_->to_string();
}

std::size_t Value::hash() const {
  if (holds_u64_) return mix64(u64_);
  return payload_ == nullptr ? 0 : payload_->hash();
}

std::size_t Value::encoded_bits() const {
  if (holds_u64_) {
    return u64_ == 0 ? 1
                     : 64 - static_cast<std::size_t>(__builtin_clzll(u64_));
  }
  return payload_ == nullptr ? 0 : payload_->encoded_bits();
}

}  // namespace llsc
