// The RMW(R, f) operation (paper Section 7, "Open problems").
//
// "Consider the RMW(R,f) operation which takes any computable function f
//  as an argument, changes the state of shared register R from its current
//  value v to f(v), and returns v. If shared-memory supports such an
//  operation and has registers of unbounded size, it is easy to see that
//  every object has a wait-free implementation of unit worst-case
//  shared-access time complexity."
//
// We implement exactly that operation as an OPTIONAL sixth memory
// operation so the library can demonstrate the boundary of the lower
// bound: the Fig. 2 adversary refuses to schedule RMW steps (the paper's
// Theorem 6.1 is about LL/SC/VL/swap/move only — with RMW it is false),
// while generic schedulers run them fine, and src/direct builds the
// unit-time universal construction on top.
//
// An RmwFunction must be a pure function of the register value, so runs
// replay deterministically.
#ifndef LLSC_MEMORY_RMW_H_
#define LLSC_MEMORY_RMW_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "memory/value.h"

namespace llsc {

// Type-erased f for RMW(R, f): maps the current register value to the new
// one; the operation's response is the OLD value (so any extra information
// the transformation computes must be encoded into the new value).
class RmwFunction {
 public:
  virtual ~RmwFunction() = default;
  virtual Value apply(const Value& current) const = 0;
  virtual std::string name() const = 0;
};

// Convenience adaptor over a lambda.
class LambdaRmw final : public RmwFunction {
 public:
  LambdaRmw(std::string name, std::function<Value(const Value&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  Value apply(const Value& current) const override { return fn_(current); }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<Value(const Value&)> fn_;
};

inline std::shared_ptr<const RmwFunction> make_rmw(
    std::string name, std::function<Value(const Value&)> fn) {
  return std::make_shared<LambdaRmw>(std::move(name), std::move(fn));
}

}  // namespace llsc

#endif  // LLSC_MEMORY_RMW_H_
