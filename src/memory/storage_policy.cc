#include "memory/storage_policy.h"

#include <cstdlib>

#include "util/check.h"

namespace llsc {

std::string to_string(StoragePolicy policy) {
  switch (policy) {
    case StoragePolicy::kBoxed:
      return "boxed";
    case StoragePolicy::kInline:
      return "inline";
    case StoragePolicy::kInlineStrict:
      return "inline-strict";
  }
  LLSC_UNREACHABLE("bad StoragePolicy");
}

StoragePolicy storage_policy_from_string(const std::string& name) {
  if (name == "boxed") return StoragePolicy::kBoxed;
  if (name == "inline") return StoragePolicy::kInline;
  if (name == "inline-strict" || name == "inline_strict") {
    return StoragePolicy::kInlineStrict;
  }
  LLSC_CHECK(false, "unknown storage policy (want boxed | inline | "
                    "inline-strict): " + name);
  return StoragePolicy::kBoxed;
}

StoragePolicy default_storage_policy() {
  static const StoragePolicy policy = [] {
    const char* env = std::getenv("LLSC_STORAGE_POLICY");
    return env == nullptr ? StoragePolicy::kBoxed
                          : storage_policy_from_string(env);
  }();
  return policy;
}

bool value_fits_inline(const Value& v) {
  return v.is_nil() || (v.holds_u64() && v.as_u64() <= kInlineMaxU64);
}

std::uint64_t inline_tag(std::uint64_t word) {
  return word >> (64 - kInlineTagBits);
}

std::uint64_t next_inline_tag(std::uint64_t tag) {
  return tag >= kInlineTagPeriod ? 1 : tag + 1;
}

std::uint64_t encode_inline(const Value& v, std::uint64_t tag) {
  LLSC_EXPECTS(tag >= 1 && tag <= kInlineTagPeriod, "inline tag out of range");
  LLSC_EXPECTS(value_fits_inline(v), "value does not fit in an inline word");
  const std::uint64_t payload = v.is_nil() ? 0 : v.as_u64() + 1;
  return (tag << (64 - kInlineTagBits)) | (payload << 1) | 1;
}

Value decode_inline(std::uint64_t word) {
  LLSC_EXPECTS((word & 1) != 0, "not an inline word");
  const std::uint64_t payload =
      (word >> 1) & ((std::uint64_t{1} << kInlinePayloadBits) - 1);
  return payload == 0 ? Value{} : Value::of_u64(payload - 1);
}

void attribute_boxed_fallbacks(const std::vector<RegisterGroup>& groups,
                               const std::vector<RegId>& demoted,
                               RegisterWidthStats& stats) {
  if (groups.empty()) return;
  // Every supplied label appears in the breakdown (zero counts included)
  // so a test asserting "toggle: 0 demotions" reads a present key, not an
  // absent one.
  for (const RegisterGroup& g : groups) stats.boxed_fallback_by_group[g.label];
  for (const RegId r : demoted) {
    const RegisterGroup* owner = nullptr;
    for (const RegisterGroup& g : groups) {
      if (g.contains(r)) {
        owner = &g;
        break;
      }
    }
    ++stats.boxed_fallback_by_group[owner ? owner->label : kUngroupedLabel];
  }
}

}  // namespace llsc
