// Register values of unbounded size.
//
// The paper's model gives every shared register "an unbounded size": a
// register may hold a process id, an n-bit integer, or (in the Group-Update
// universal construction) the entire state of the implemented object plus
// bookkeeping. Value is an immutable, cheaply copyable, type-erased handle
// over any equality-comparable, printable payload. Copying a Value never
// copies the payload (shared immutable ownership), so moving whole object
// states between registers is O(1) — matching the model, where a move or
// swap of an arbitrarily large word is a single operation.
#ifndef LLSC_MEMORY_VALUE_H_
#define LLSC_MEMORY_VALUE_H_

#include <concepts>
#include <cstdint>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>

#include "util/bigint.h"
#include "util/check.h"
#include "util/rng.h"

namespace llsc {

namespace internal {

// Abstract payload. Payloads are immutable once wrapped in a Value.
class ValuePayload {
 public:
  virtual ~ValuePayload() = default;
  // `other` is guaranteed to have the same dynamic type.
  virtual bool equals_same_type(const ValuePayload& other) const = 0;
  virtual std::string to_string() const = 0;
  virtual std::size_t hash() const = 0;
  virtual const std::type_info& type() const = 0;
  // Bits needed to encode this value in a real register, or SIZE_MAX when
  // the payload is a structured object with no a-priori bound (the paper's
  // "unbounded size" registers). Used by the Section 7 width auditor.
  virtual std::size_t encoded_bits() const = 0;
};

template <typename T>
concept HasMemberEncodedBits = requires(const T& t) {
  { t.encoded_bits() } -> std::convertible_to<std::size_t>;
};

template <typename T>
concept HasMemberToString = requires(const T& t) {
  { t.to_string() } -> std::convertible_to<std::string>;
};

template <typename T>
concept HasMemberHash = requires(const T& t) {
  { t.hash() } -> std::convertible_to<std::size_t>;
};

template <typename T>
class TypedPayload final : public ValuePayload {
 public:
  explicit TypedPayload(T v) : v_(std::move(v)) {}
  const T& get() const { return v_; }

  bool equals_same_type(const ValuePayload& other) const override {
    return v_ == static_cast<const TypedPayload<T>&>(other).v_;
  }
  std::string to_string() const override {
    if constexpr (HasMemberToString<T>) {
      return v_.to_string();
    } else {
      return std::string("<") + typeid(T).name() + ">";
    }
  }
  std::size_t hash() const override {
    if constexpr (HasMemberHash<T>) {
      return v_.hash();
    } else if constexpr (HasMemberToString<T>) {
      return std::hash<std::string>{}(v_.to_string());
    } else {
      return 0;
    }
  }
  std::size_t encoded_bits() const override {
    if constexpr (HasMemberEncodedBits<T>) {
      return v_.encoded_bits();
    } else {
      return ~std::size_t{0};  // structured payload: unbounded
    }
  }
  const std::type_info& type() const override { return typeid(T); }

 private:
  T v_;
};

}  // namespace internal

// Immutable register value. Default-constructed Value is "nil", the
// distinguished initial content of every register.
//
// u64 payloads are stored inline in the handle rather than behind a
// shared_ptr: the hw backend's inline storage policy promises zero
// allocations on its hot path, and a heap box for every counter bump
// would break that promise one layer up. Observable semantics (printing,
// hashing, equality — a u64 is still never equal to a BigInt) are
// unchanged.
class Value {
 public:
  Value() = default;

  static Value of_u64(std::uint64_t v) {
    Value out;
    out.u64_ = v;
    out.holds_u64_ = true;
    return out;
  }
  static Value of_big(BigInt v);
  static Value of_string(std::string v);

  // Wrap any payload type T with operator== (and ideally to_string()/hash()
  // members, used for tracing and state hashing).
  template <typename T>
    requires std::equality_comparable<T>
  static Value of(T payload) {
    Value v;
    v.payload_ =
        std::make_shared<internal::TypedPayload<T>>(std::move(payload));
    return v;
  }

  bool is_nil() const { return payload_ == nullptr && !holds_u64_; }

  // Typed access; returns nullptr if the value is nil or holds another type
  // (u64 payloads are inline, not boxed — use as_u64/holds_u64 for those).
  template <typename T>
  const T* get_if() const {
    if (payload_ == nullptr || payload_->type() != typeid(T)) return nullptr;
    return &static_cast<const internal::TypedPayload<T>&>(*payload_).get();
  }

  // Convenience accessors with precondition checks.
  std::uint64_t as_u64() const {
    LLSC_EXPECTS(holds_u64_, "Value does not hold a u64");
    return u64_;
  }
  const BigInt& as_big() const;
  const std::string& as_string() const;
  bool holds_u64() const { return holds_u64_; }
  bool holds_big() const;

  // Structural equality: same payload type and equal payloads. nil == nil.
  bool operator==(const Value& rhs) const;
  bool operator!=(const Value& rhs) const = default;

  std::string to_string() const;
  std::size_t hash() const;

  // Bits needed to store this value in a register: 0 for nil, the bit
  // length for integers, 8 per byte for strings, SIZE_MAX for structured
  // payloads without a HasMemberEncodedBits hook. See core/audit.h.
  std::size_t encoded_bits() const;

 private:
  std::shared_ptr<const internal::ValuePayload> payload_;
  // Inline u64 payload; meaningful only when holds_u64_ (payload_ is then
  // null — a Value holds exactly one of {nothing, a u64, a boxed payload}).
  std::uint64_t u64_ = 0;
  bool holds_u64_ = false;
};

}  // namespace llsc

#endif  // LLSC_MEMORY_VALUE_H_
