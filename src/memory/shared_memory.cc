#include "memory/shared_memory.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/str.h"

namespace llsc {

std::string Register::to_string() const {
  std::vector<std::string> ps;
  ps.reserve(pset.size());
  for (const ProcId p : pset) ps.push_back("p" + std::to_string(p));
  return "(" + value.to_string() + ", {" + join(ps, ",") + "})";
}

std::uint64_t MemoryOpCounts::total() const {
  std::uint64_t sum = 0;
  for (const auto c : by_kind) sum += c;
  return sum;
}

Value SharedMemory::ll(ProcId p, RegId r) {
  ++counts_[OpKind::kLL];
  Register& R = reg(r);
  R.pset.insert(p);
  return R.value;
}

OpResult SharedMemory::sc(ProcId p, RegId r, Value v) {
  ++counts_[OpKind::kSC];
  Register& R = reg(r);
  if (R.pset.contains(p)) {
    // The overflow check comes after the link check, matching the hw
    // backend: a failed SC never faults, whatever its argument.
    check_overflow(r, v);
    note_write(r, v);
    Value prev = R.value;
    R.value = std::move(v);
    R.pset.clear();
    return OpResult{.flag = true, .value = std::move(prev)};
  }
  return OpResult{.flag = false, .value = R.value};
}

OpResult SharedMemory::validate(ProcId p, RegId r) const {
  // validate never mutates register state, hence the const qualifier; the
  // op counter is mutable bookkeeping.
  const_cast<MemoryOpCounts&>(counts_)[OpKind::kValidate]++;
  const Register* R = find(r);
  if (R == nullptr) return OpResult{.flag = false, .value = Value{}};
  return OpResult{.flag = R->pset.contains(p), .value = R->value};
}

Value SharedMemory::swap(ProcId p, RegId r, Value v) {
  (void)p;  // swap's effect does not depend on the invoker
  ++counts_[OpKind::kSwap];
  check_overflow(r, v);
  note_write(r, v);
  Register& R = reg(r);
  Value prev = R.value;
  R.value = std::move(v);
  R.pset.clear();
  return prev;
}

void SharedMemory::move(ProcId p, RegId src, RegId dst) {
  (void)p;
  ++counts_[OpKind::kMove];
  // Read the source before materializing the destination: reg(dst) may
  // rehash the map and invalidate references.
  Value v = src == dst ? reg(src).value : (find(src) ? find(src)->value
                                                     : Value{});
  check_overflow(dst, v);
  note_write(dst, v);
  Register& D = reg(dst);
  D.value = std::move(v);
  D.pset.clear();
}

Value SharedMemory::rmw(ProcId p, RegId r, const RmwFunction& f) {
  (void)p;
  ++counts_[OpKind::kRmw];
  Register& R = reg(r);
  Value next = f.apply(R.value);
  check_overflow(r, next);
  note_write(r, next);
  Value prev = std::move(R.value);
  R.value = std::move(next);
  R.pset.clear();
  return prev;
}

OpResult SharedMemory::apply(ProcId p, const PendingOp& op) {
  switch (op.kind) {
    case OpKind::kLL:
      return OpResult{.flag = true, .value = ll(p, op.reg)};
    case OpKind::kSC:
      return sc(p, op.reg, op.arg);
    case OpKind::kValidate:
      return validate(p, op.reg);
    case OpKind::kSwap:
      return OpResult{.flag = true, .value = swap(p, op.reg, op.arg)};
    case OpKind::kMove:
      move(p, op.src, op.reg);
      return OpResult{.flag = true, .value = Value{}};
    case OpKind::kRmw:
      LLSC_EXPECTS(op.rmw != nullptr, "RMW op without a function");
      return OpResult{.flag = true, .value = rmw(p, op.reg, *op.rmw)};
  }
  LLSC_UNREACHABLE("bad OpKind");
}

void SharedMemory::invalidate_links(ProcId p) {
  for (auto& [r, R] : regs_) R.pset.erase(p);
}

const Value& SharedMemory::peek_value(RegId r) const {
  static const Value kNil;
  const Register* R = find(r);
  return R == nullptr ? kNil : R->value;
}

bool SharedMemory::peek_pset_contains(RegId r, ProcId p) const {
  const Register* R = find(r);
  return R != nullptr && R->pset.contains(p);
}

std::size_t SharedMemory::peek_pset_size(RegId r) const {
  const Register* R = find(r);
  return R == nullptr ? 0 : R->pset.size();
}

const std::set<ProcId>& SharedMemory::peek_pset(RegId r) const {
  static const std::set<ProcId> kEmpty;
  const Register* R = find(r);
  return R == nullptr ? kEmpty : R->pset;
}

std::vector<RegId> SharedMemory::touched_registers() const {
  std::vector<RegId> out;
  out.reserve(regs_.size());
  for (const auto& [id, _] : regs_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SharedMemory::state_hash() const {
  // Order-independent combination over registers (the map iteration order is
  // unspecified): XOR of per-register hashes, each mixed with the id.
  std::size_t acc = 0;
  for (const auto& [id, R] : regs_) {
    std::size_t h = mix64(id);
    h = mix64(h ^ R.value.hash());
    for (const ProcId p : R.pset) {
      h = mix64(h ^ static_cast<std::size_t>(p) ^ 0x9E3779B97F4A7C15ULL);
    }
    acc ^= h;
  }
  return acc;
}

void SharedMemory::note_write(RegId r, const Value& v) {
  ++width_.writes_inspected;
  const std::size_t bits = v.encoded_bits();
  if (bits > width_.max_bits) width_.max_bits = bits;
  if (storage_ == StoragePolicy::kBoxed) {
    ++width_.boxed_installs;
    // Boxed hw installs a fresh node and retires the predecessor (the
    // very first install retires the register's initial node, which was
    // never charged to allocation) — so both counters advance together.
    ++reclaim_.nodes_allocated;
    ++reclaim_.nodes_retired;
    return;
  }
  const bool was_demoted = demoted_.contains(r);
  const bool fits = value_fits_inline(v);
  if (!fits) {
    // Only reachable under kInline — check_overflow threw for strict.
    ++width_.overflow_events;
    demoted_.insert(r);
  }
  if (fits && !was_demoted) {
    ++width_.inline_installs;
  } else {
    ++width_.boxed_installs;
    // A node-path install allocates; it retires a node only when the
    // register already held one (demoted before this install). The first
    // demoting install replaces an inline word — nothing to retire.
    ++reclaim_.nodes_allocated;
    if (was_demoted) ++reclaim_.nodes_retired;
  }
}

void SharedMemory::check_overflow(RegId r, const Value& v) const {
  if (storage_ == StoragePolicy::kInlineStrict && !value_fits_inline(v)) {
    throw RegisterOverflowError(
        "register " + std::to_string(r) + ": value " + v.to_string() +
        " does not fit in a 64-bit inline register word (strict policy)");
  }
}

ReclaimStats SharedMemory::reclaim_stats() const {
  ReclaimStats s = reclaim_;
  s.policy = reclaim_policy_;
  return s;
}

RegisterWidthStats SharedMemory::width_stats() const {
  RegisterWidthStats s = width_;
  s.policy = storage_;
  s.boxed_fallback_registers = demoted_.size();
  attribute_boxed_fallbacks(
      groups_, std::vector<RegId>(demoted_.begin(), demoted_.end()), s);
  return s;
}

Register& SharedMemory::reg(RegId r) { return regs_[r]; }

const Register* SharedMemory::find(RegId r) const {
  const auto it = regs_.find(r);
  return it == regs_.end() ? nullptr : &it->second;
}

}  // namespace llsc
