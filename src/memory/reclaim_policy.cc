#include "memory/reclaim_policy.h"

#include <cstdlib>

#include "util/check.h"

namespace llsc {

std::string to_string(ReclaimPolicy policy) {
  switch (policy) {
    case ReclaimPolicy::kEpoch:
      return "epoch";
    case ReclaimPolicy::kHazard:
      return "hazard";
  }
  LLSC_UNREACHABLE("bad ReclaimPolicy");
}

ReclaimPolicy reclaim_policy_from_string(const std::string& name) {
  if (name == "epoch") return ReclaimPolicy::kEpoch;
  if (name == "hazard") return ReclaimPolicy::kHazard;
  LLSC_CHECK(false,
             "unknown reclaim policy (want epoch | hazard): " + name);
  return ReclaimPolicy::kEpoch;
}

ReclaimPolicy default_reclaim_policy() {
  static const ReclaimPolicy policy = [] {
    const char* env = std::getenv("LLSC_RECLAIMER");
    return env == nullptr ? ReclaimPolicy::kEpoch
                          : reclaim_policy_from_string(env);
  }();
  return policy;
}

}  // namespace llsc
