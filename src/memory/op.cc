#include "memory/op.h"

#include "util/check.h"

namespace llsc {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kLL:
      return "LL";
    case OpKind::kSC:
      return "SC";
    case OpKind::kValidate:
      return "VL";
    case OpKind::kSwap:
      return "SWAP";
    case OpKind::kMove:
      return "MOVE";
    case OpKind::kRmw:
      return "RMW";
  }
  LLSC_UNREACHABLE("bad OpKind");
}

OpGroup op_group(OpKind kind) {
  switch (kind) {
    case OpKind::kLL:
    case OpKind::kValidate:
      return OpGroup::kLoad;
    case OpKind::kMove:
      return OpGroup::kMove;
    case OpKind::kSwap:
      return OpGroup::kSwap;
    case OpKind::kSC:
      return OpGroup::kStoreConditional;
    case OpKind::kRmw:
      LLSC_EXPECTS(false,
                   "RMW is outside the lower bound's operation set; the "
                   "Fig. 2 adversary schedules only LL/SC/VL/swap/move");
      break;
  }
  LLSC_UNREACHABLE("bad OpKind");
}

const char* op_group_name(OpGroup group) {
  switch (group) {
    case OpGroup::kLoad:
      return "load";
    case OpGroup::kMove:
      return "move";
    case OpGroup::kSwap:
      return "swap";
    case OpGroup::kStoreConditional:
      return "sc";
  }
  LLSC_UNREACHABLE("bad OpGroup");
}

std::string PendingOp::to_string() const {
  switch (kind) {
    case OpKind::kLL:
      return std::string("LL(R") + std::to_string(reg) + ")";
    case OpKind::kValidate:
      return std::string("VL(R") + std::to_string(reg) + ")";
    case OpKind::kSC:
      return std::string("SC(R") + std::to_string(reg) + ", " +
             arg.to_string() + ")";
    case OpKind::kSwap:
      return std::string("SWAP(R") + std::to_string(reg) + ", " +
             arg.to_string() + ")";
    case OpKind::kMove:
      return std::string("MOVE(R") + std::to_string(src) + " -> R" +
             std::to_string(reg) + ")";
    case OpKind::kRmw:
      return std::string("RMW(R") + std::to_string(reg) + ", " +
             (rmw ? rmw->name() : "?") + ")";
  }
  LLSC_UNREACHABLE("bad OpKind");
}

std::string OpResult::to_string() const {
  return std::string("(") + (flag ? "true" : "false") + ", " +
         value.to_string() + ")";
}

std::string OpRecord::to_string() const {
  return "p" + std::to_string(proc) + ": " + op.to_string() + " -> " +
         result.to_string();
}

}  // namespace llsc
