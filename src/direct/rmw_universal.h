// Unit-time universal construction over RMW memory (paper Section 7).
//
// "If shared-memory supports [RMW(R,f)] and has registers of unbounded
//  size, it is easy to see that every object has a wait-free
//  implementation of unit worst-case shared-access time complexity."
//
// The easy construction, made concrete: one register holds an immutable
// snapshot of the implemented object; an operation is ONE RMW whose f
// clones the snapshot and applies the operation. RMW returns the OLD
// value, so the caller replays its operation on the returned snapshot
// locally to recover the response — local computation is free in the
// shared-access cost model.
//
// This is the boundary of the paper's lower bound: the same oblivious
// interface, the same types, but a stronger primitive — and the Ω(log n)
// bound evaporates to exactly 1. (Correspondingly, the Fig. 2 adversary
// refuses to schedule RMW steps; see memory/op.h.)
#ifndef LLSC_DIRECT_RMW_UNIVERSAL_H_
#define LLSC_DIRECT_RMW_UNIVERSAL_H_

#include <memory>

#include "universal/universal.h"

namespace llsc {

class RmwUniversalUC final : public UniversalConstruction {
 public:
  // Implements factory()'s type at register `base`.
  RmwUniversalUC(int n, ObjectFactory factory, RegId base = 0);

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override { return 1; }
  std::string name() const override { return "rmw-universal"; }

 private:
  int n_;
  ObjectFactory factory_;
  RegId base_;
};

}  // namespace llsc

#endif  // LLSC_DIRECT_RMW_UNIVERSAL_H_
