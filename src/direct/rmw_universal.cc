#include "direct/rmw_universal.h"

#include "util/check.h"

namespace llsc {

namespace {

// Register payload: an immutable snapshot of the implemented object.
struct Snapshot {
  std::shared_ptr<const SequentialObject> object;

  bool operator==(const Snapshot& rhs) const {
    if (object == rhs.object) return true;
    if (object == nullptr || rhs.object == nullptr) return false;
    return object->state_fingerprint() == rhs.object->state_fingerprint();
  }
  std::string to_string() const {
    return object ? object->state_fingerprint() : "?";
  }
  std::size_t hash() const {
    return object
               ? std::hash<std::string>{}(object->state_fingerprint())
               : 0;
  }
};

}  // namespace

RmwUniversalUC::RmwUniversalUC(int n, ObjectFactory factory, RegId base)
    : n_(n), factory_(std::move(factory)), base_(base) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  LLSC_EXPECTS(factory_ != nullptr, "need an object factory");
}

SubTask<Value> RmwUniversalUC::execute(ProcCtx ctx, ObjOp op) {
  LLSC_EXPECTS(ctx.id() >= 0 && ctx.id() < n_,
               "caller outside this construction");
  // f: decode the snapshot (nil = initial state), clone, apply, re-encode.
  // `op` and the factory are captured by value: f must stay a pure
  // function of the register value.
  const ObjectFactory& factory = factory_;
  auto f = make_rmw(
      "apply:" + op.to_string(),
      [op, factory](const Value& current) {
        const Snapshot* snap = current.get_if<Snapshot>();
        std::unique_ptr<SequentialObject> next =
            snap && snap->object ? snap->object->clone() : factory();
        (void)next->apply(op);
        return Value::of(Snapshot{
            std::shared_ptr<const SequentialObject>(std::move(next))});
      });
  const Value old = co_await ctx.rmw(base_, std::move(f));

  // Recover the response by replaying the operation locally on the old
  // snapshot (local steps are free in the shared-access cost model).
  const Snapshot* snap = old.get_if<Snapshot>();
  std::unique_ptr<SequentialObject> replay =
      snap && snap->object ? snap->object->clone() : factory_();
  co_return replay->apply(op);
}

}  // namespace llsc
