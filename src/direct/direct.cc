#include "direct/direct.h"

#include "util/check.h"

namespace llsc {

SubTask<Value> DirectRegister::execute(ProcCtx ctx, ObjOp op) {
  if (op.name == "read") {
    const Value v = co_await ctx.read(reg_);
    co_return v;
  }
  if (op.name == "write") {
    (void)co_await ctx.swap(reg_, op.arg);
    co_return Value{};
  }
  LLSC_EXPECTS(false, "direct register supports read/write only: " + op.name);
  co_return Value{};
}

SubTask<Value> DirectSwapObject::execute(ProcCtx ctx, ObjOp op) {
  if (op.name == "swap") {
    const Value prev = co_await ctx.swap(reg_, op.arg);
    co_return prev;
  }
  if (op.name == "read") {
    const Value v = co_await ctx.read(reg_);
    co_return v;
  }
  LLSC_EXPECTS(false, "direct swap supports swap/read only: " + op.name);
  co_return Value{};
}

SubTask<Value> DirectConsensus::execute(ProcCtx ctx, ObjOp op) {
  LLSC_EXPECTS(op.name == "propose",
               "direct consensus supports propose only: " + op.name);
  // LL: if already decided, that's the answer (the LL linearizes the
  // propose). Otherwise try to decide with an SC; whether it succeeds or
  // not, afterwards the register is decided forever (only deciding SCs are
  // issued and every SC follows an LL of nil), so one read suffices.
  const Value cur = co_await ctx.ll(reg_);
  if (!cur.is_nil()) co_return cur;
  const ScResult sc = co_await ctx.sc(reg_, op.arg);
  if (sc.ok) co_return op.arg;
  const Value decided = co_await ctx.read(reg_);
  LLSC_CHECK(!decided.is_nil(),
             "consensus register empty after a failed deciding SC");
  co_return decided;
}

SubTask<Value> DirectFetchAdd::execute(ProcCtx ctx, ObjOp op) {
  std::uint64_t delta = 0;
  if (op.name == "fetch&increment") {
    delta = 1;
  } else if (op.name == "fetch&add") {
    delta = op.arg.as_u64();
  } else if (op.name == "read") {
    const Value v = co_await ctx.read(reg_);
    co_return v.is_nil() ? Value::of_u64(initial_) : v;
  } else {
    LLSC_EXPECTS(false, "direct fetch&add does not support: " + op.name);
  }
  // The classic lock-free retry loop; no helping, so an interfering
  // successful SC restarts the attempt. The paper's related work ([5],
  // [14], [28]) implies no wait-free constant-time fetch&add from LL/SC
  // exists — this loop is what type-exploiting code CAN do.
  for (;;) {
    const Value cur = co_await ctx.ll(reg_);
    const std::uint64_t old = cur.is_nil() ? initial_ : cur.as_u64();
    const ScResult sc = co_await ctx.sc(reg_, Value::of_u64(old + delta));
    if (sc.ok) co_return Value::of_u64(old);
  }
}

}  // namespace llsc
