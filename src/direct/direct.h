// Type-exploiting ("non-oblivious") implementations over LL/SC memory.
//
// The paper's closing observation: constant-time LL/SC implementations of
// some types exist, but they "must necessarily exploit the semantics of
// the type of object being implemented — such implementations cannot be
// obtained from any oblivious universal construction." This module holds
// the exploiting side of that comparison:
//
//   DirectRegister   read/write register — read is one validate, write is
//                    one swap: wait-free, worst case 1 shared op;
//   DirectSwapObject fetch&store — the memory's swap IS the operation:
//                    wait-free, worst case 1;
//   DirectConsensus  one-shot consensus from LL/SC — LL, maybe SC, read:
//                    wait-free, worst case 3;
//   DirectFetchAdd   fetch&add via the classic LL/SC retry loop —
//                    LOCK-FREE only: the Fig. 2 adversary forces the last
//                    finisher to Θ(n) operations, matching the
//                    impossibility results the paper cites ([5],[14],[28]:
//                    no constant-time fetch&add from LL/SC).
//
// All expose the UniversalConstruction interface so benches can compare
// them op-for-op against the oblivious constructions, but each supports
// only its own type's operations (that is the point).
#ifndef LLSC_DIRECT_DIRECT_H_
#define LLSC_DIRECT_DIRECT_H_

#include <string>

#include "universal/universal.h"

namespace llsc {

// Wait-free read/write register: read = validate, write = swap.
class DirectRegister final : public UniversalConstruction {
 public:
  explicit DirectRegister(RegId reg = 0) : reg_(reg) {}

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override { return 1; }
  std::string name() const override { return "direct-register"; }

 private:
  RegId reg_;
};

// Wait-free fetch&store: the hardware swap is the implemented operation.
// Operations: "swap" (arg = new value), "read".
class DirectSwapObject final : public UniversalConstruction {
 public:
  explicit DirectSwapObject(RegId reg = 0) : reg_(reg) {}

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override { return 1; }
  std::string name() const override { return "direct-swap"; }

 private:
  RegId reg_;
};

// Wait-free one-shot consensus: propose(v) decides the first value written.
class DirectConsensus final : public UniversalConstruction {
 public:
  explicit DirectConsensus(RegId reg = 0) : reg_(reg) {}

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override { return 3; }
  std::string name() const override { return "direct-consensus"; }

 private:
  RegId reg_;
};

// Lock-free fetch&add via LL/SC retry. worst_case_shared_ops() reports the
// per-ATTEMPT cost (2); total cost under contention is unbounded in
// general and Θ(n) under the round-based adversary.
class DirectFetchAdd final : public UniversalConstruction {
 public:
  explicit DirectFetchAdd(RegId reg = 0, std::uint64_t initial = 0)
      : reg_(reg), initial_(initial) {}

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override { return 2; }
  std::string name() const override { return "direct-fetch&add"; }

 private:
  RegId reg_;
  std::uint64_t initial_;
};

}  // namespace llsc

#endif  // LLSC_DIRECT_DIRECT_H_
