#include "explore/explore.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

std::string ExploreStats::summary() const {
  return std::to_string(runs) + " runs, " + std::to_string(violations) +
         " violations" + (exhausted ? "" : " (run cap hit)");
}

namespace {

// A forced context switch: at global step index `step`, run process `to`
// (which keeps running until the next preemption or its termination).
struct Preemption {
  std::uint64_t step;
  ProcId to;
};

// Executes one run under the schedule "sequential in id order, modified by
// `preemptions` (sorted by step)". Records which processes were live at
// every step so the caller can enumerate further preemptions.
struct RunTrace {
  // live_masks[t]: bitmask of live processes just before step t.
  std::vector<std::uint32_t> live_masks;
  // scheduled[t]: the process that took step t.
  std::vector<ProcId> scheduled;
  bool completed = false;
};

RunTrace execute_schedule(System& sys, const std::vector<Preemption>& preempts,
                          std::uint64_t max_steps) {
  RunTrace trace;
  const int n = sys.num_processes();
  LLSC_EXPECTS(n <= 32, "exploration supports up to 32 processes");
  std::size_t next_preempt = 0;
  ProcId current = 0;
  for (std::uint64_t t = 0; t < max_steps; ++t) {
    if (sys.all_done()) {
      trace.completed = true;
      break;
    }
    std::uint32_t live = 0;
    for (ProcId p = 0; p < n; ++p) {
      if (!sys.process(p).done()) live |= 1u << p;
    }
    if (next_preempt < preempts.size() && preempts[next_preempt].step == t) {
      current = preempts[next_preempt].to;
      ++next_preempt;
    }
    // If the current process terminated (or a stale preemption pointed at
    // a finished process), fall to the lowest live id.
    if (current >= n || sys.process(current).done()) {
      current = 0;
      while (sys.process(current).done()) ++current;
    }
    trace.live_masks.push_back(live);
    trace.scheduled.push_back(current);
    sys.step(current);
  }
  if (!trace.completed) trace.completed = sys.all_done();
  return trace;
}

class Explorer {
 public:
  Explorer(const RunFactory& factory, const ExploreOptions& options)
      : factory_(factory), options_(options) {}

  ExploreStats run() {
    dfs({}, options_.max_preemptions, 0);
    return stats_;
  }

 private:
  static std::string schedule_string(const std::vector<Preemption>& ps) {
    std::string s = "[";
    for (const Preemption& p : ps) {
      s += "@" + std::to_string(p.step) + "->p" + std::to_string(p.to) + " ";
    }
    s += "]";
    return s;
  }

  void dfs(const std::vector<Preemption>& preempts, int budget,
           std::uint64_t first_new_step) {
    if (stats_.runs >= options_.max_runs) {
      stats_.exhausted = false;
      return;
    }
    ++stats_.runs;
    std::unique_ptr<RunInstance> inst = factory_();
    const RunTrace trace = execute_schedule(inst->system(), preempts,
                                            options_.max_steps_per_run);
    std::string violation = inst->check();
    if (!trace.completed && violation.empty()) {
      violation = "run did not complete within the step budget";
    }
    if (!violation.empty()) {
      ++stats_.violations;
      if (stats_.examples.size() < 10) {
        stats_.examples.push_back(violation + " under schedule " +
                                  schedule_string(preempts));
      }
    }
    if (budget == 0) return;

    // Branch: insert one more preemption at any step at or after the last
    // existing one (enumerating sorted preemption sets exactly once), to
    // any live process other than the one the baseline scheduled.
    for (std::uint64_t t = first_new_step; t < trace.scheduled.size(); ++t) {
      const std::uint32_t live = trace.live_masks[t];
      for (ProcId q = 0; q < 32; ++q) {
        if ((live & (1u << q)) == 0 || q == trace.scheduled[t]) continue;
        if (stats_.runs >= options_.max_runs) {
          stats_.exhausted = false;
          return;
        }
        std::vector<Preemption> next = preempts;
        next.push_back({t, q});
        dfs(next, budget - 1, t + 1);
      }
    }
  }

  const RunFactory& factory_;
  const ExploreOptions& options_;
  ExploreStats stats_;
};

}  // namespace

ExploreStats explore_bounded_preemption(const RunFactory& factory,
                                        const ExploreOptions& options) {
  LLSC_EXPECTS(factory != nullptr, "need a run factory");
  return Explorer(factory, options).run();
}

}  // namespace llsc
