// Bounded exhaustive schedule exploration (model checking in the small).
//
// Correctness claims like "the Group-Update construction is linearizable"
// or "tournament wakeup satisfies the wakeup spec" are quantified over all
// schedules; single-schedule tests under-approximate them badly. Since
// coroutine frames cannot be snapshotted, we use replay-based exploration
// with bounded preemptions (the CHESS strategy): the baseline schedule
// runs each process to completion in id order, and exploration inserts up
// to `max_preemptions` context switches at arbitrary step indices, to
// arbitrary live processes. Every run is executed from scratch, checked by
// a caller-supplied predicate, and mined for further preemption points.
// With a preemption budget of k this covers all schedules at Hamming
// distance <= k from sequential — empirically where almost all
// linearizability bugs live.
#ifndef LLSC_EXPLORE_EXPLORE_H_
#define LLSC_EXPLORE_EXPLORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/system.h"

namespace llsc {

// One run's worth of state: the System plus whatever must stay alive with
// it (universal construction instances, recorders, ...). check() is called
// after the run completes and returns a violation description, or "" if
// the run is fine.
class RunInstance {
 public:
  virtual ~RunInstance() = default;
  virtual System& system() = 0;
  virtual std::string check() = 0;
};

using RunFactory = std::function<std::unique_ptr<RunInstance>()>;

// Convenience RunInstance over a plain System + checker function.
class SimpleRunInstance final : public RunInstance {
 public:
  SimpleRunInstance(std::unique_ptr<System> sys,
                    std::function<std::string(System&)> checker)
      : sys_(std::move(sys)), checker_(std::move(checker)) {}
  System& system() override { return *sys_; }
  std::string check() override { return checker_(*sys_); }

 private:
  std::unique_ptr<System> sys_;
  std::function<std::string(System&)> checker_;
};

struct ExploreOptions {
  int max_preemptions = 2;
  std::uint64_t max_runs = 200000;
  std::uint64_t max_steps_per_run = 1 << 20;
};

struct ExploreStats {
  std::uint64_t runs = 0;
  std::uint64_t violations = 0;
  // First few violation descriptions, annotated with their schedules.
  std::vector<std::string> examples;
  // False if max_runs stopped the enumeration early.
  bool exhausted = true;

  std::string summary() const;
};

// Explores schedules of systems produced by `factory`.
ExploreStats explore_bounded_preemption(const RunFactory& factory,
                                        const ExploreOptions& options = {});

}  // namespace llsc

#endif  // LLSC_EXPLORE_EXPLORE_H_
