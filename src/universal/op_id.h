// Register payload types shared by the universal constructions.
//
// Both constructions announce operations tagged with an OpId = (process,
// per-process sequence number), propagate sets of announced operations
// through registers, and keep the implemented object's state plus every
// response in a "root" register. Registers being unbounded (the paper's
// model), a whole map of operations or an entire object snapshot is a
// single register value.
#ifndef LLSC_UNIVERSAL_OP_ID_H_
#define LLSC_UNIVERSAL_OP_ID_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "memory/op.h"
#include "memory/value.h"
#include "objects/object.h"
#include "util/rng.h"

namespace llsc {

// Identity of one operation instance.
struct OpId {
  ProcId proc = -1;
  std::uint64_t seq = 0;

  auto operator<=>(const OpId&) const = default;
  std::string to_string() const {
    return "p" + std::to_string(proc) + "#" + std::to_string(seq);
  }
  std::size_t hash() const {
    return mix64(static_cast<std::uint64_t>(proc) * 0x9E3779B97F4A7C15ULL ^
                 seq);
  }
};

// Value stored in announce/tree registers: the set of operations announced
// from some region (a process, or a subtree), keyed by id. Sets only grow
// over successful writes — the monotonicity both constructions rely on.
struct AnnounceSet {
  std::map<OpId, ObjOp> ops;

  bool operator==(const AnnounceSet&) const = default;

  // Union (the merge performed while climbing the tree).
  void merge(const AnnounceSet& other) {
    ops.insert(other.ops.begin(), other.ops.end());
  }

  std::string to_string() const {
    return "{" + std::to_string(ops.size()) + " ops}";
  }
  std::size_t hash() const {
    std::size_t h = 0;
    for (const auto& [id, op] : ops) h = mix64(h ^ id.hash() ^ op.hash());
    return h;
  }
};

// Value stored in the root register: an immutable snapshot of the
// implemented object plus the response of every operation applied so far.
// The snapshot is shared (never mutated in place): appliers clone, apply
// the new batch, and publish a fresh RootState.
struct RootState {
  std::shared_ptr<const SequentialObject> object;
  std::map<OpId, Value> responses;

  bool operator==(const RootState& rhs) const {
    if (responses != rhs.responses) return false;
    if (object == rhs.object) return true;
    if (object == nullptr || rhs.object == nullptr) return false;
    return object->state_fingerprint() == rhs.object->state_fingerprint();
  }

  std::string to_string() const {
    return "root{" + (object ? object->state_fingerprint() : "?") + ", " +
           std::to_string(responses.size()) + " resp}";
  }
  std::size_t hash() const {
    std::size_t h = object ? std::hash<std::string>{}(
                                 object->state_fingerprint())
                           : 0;
    for (const auto& [id, v] : responses) h = mix64(h ^ id.hash() ^ v.hash());
    return h;
  }
};

// Applies every operation of `announced` absent from `root.responses` to a
// clone of the object, in ascending OpId order (the deterministic
// linearization order appliers agree on), returning the new root state.
RootState apply_pending(const RootState& root, const AnnounceSet& announced);

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_OP_ID_H_
