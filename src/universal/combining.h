// Flat-combining / P-Sim batching universal construction.
//
// The Fatourou–Kallimanis P-Sim scheme adapted to the paper's five
// operations (LL/SC/VL/swap/move — no fetch&add, which the Fig. 2
// adversary refuses to schedule):
//
//   * announce slots — one single-writer register per process holding its
//     latest announced operation tagged with an OpId sequence number
//     (a swap; P-Sim's cache-padded announce array);
//   * toggle bit-vector — ⌈n/46⌉ registers of ≤46 toggle bits each
//     (46 = the inline storage codec's 47-bit payload minus the sign of
//     the +1 bias, so a toggle word ALWAYS fits a 64-bit inline register
//     word — see memory/storage_policy.h). After announcing, a process
//     flips its bit with an LL/SC retry loop (P-Sim uses an atomic Add;
//     the loop is the five-op equivalent and is lock-free: each failed
//     SC is caused by another process's completed flip);
//   * combine — a process LLs the state register, snapshots the toggle
//     words, and for every process whose current toggle differs from the
//     toggle recorded in the state reads that announce slot and collects
//     the announced-but-unapplied operations (confirmed by sequence
//     number, so a stale toggle read can never double-apply); it applies
//     the whole batch to a private copy of the object state drawn from
//     its recycled, cache-padded state pool and SC-installs the new
//     state + per-process return values in ONE shot. Losers adopt the
//     winner's published results.
//
// Progress: lock-free, and wait-free in the one-outstanding-op-per-
// process regime — the classic two-attempt argument holds because the
// toggle snapshot is taken after the LL: if a process's SC fails twice
// after its announce+flip completed, the second winner's LL (and hence
// its toggle snapshot) followed the first winner's install, so it saw
// the flip and applied the op. Under injected spurious SC loss
// (hw/fault.h) the construction retries until its operation's response
// is published: a lost SC only delays a batch; the sequence numbers in
// the announce slots make re-application detectable, so an announced op
// is never dropped and never applied twice.
//
// Register widths (the E15 width audit, memory/storage_policy.h): the
// state and announce registers hold structured payloads, so under the
// inline policy their first write deliberately exercises demote-on-
// overflow and they run boxed; the toggle words always stay inline.
// CombiningUniversal::register_groups() labels the three logical
// objects so RegisterWidthStats can attribute the demotions.
#ifndef LLSC_UNIVERSAL_COMBINING_H_
#define LLSC_UNIVERSAL_COMBINING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "memory/storage_policy.h"
#include "universal/op_id.h"
#include "universal/universal.h"

namespace llsc {

// Toggle bits packed per register word. 46 (not 64) so a toggle word is
// always < 2^46 ≤ kInlineMaxU64 and never overflows an inline register.
inline constexpr int kToggleBitsPerWord = 46;

// One operation in an announce slot: the latest op of one process, with
// its per-process sequence number (monotone from 1).
struct CombineCell {
  OpId id;
  ObjOp op;

  bool operator==(const CombineCell& rhs) const = default;
  std::string to_string() const {
    return id.to_string() + ":" + op.to_string();
  }
  std::size_t hash() const { return mix64(id.hash() ^ op.hash()); }
};

// The combined state one SC installs: object snapshot, per-process
// last-applied sequence numbers + responses, and the toggle values the
// applied announcements carried (process q is pending iff its current
// toggle bit differs from applied_toggles). Cache-line aligned because
// instances live in the per-process recycled pools.
struct alignas(64) CombinedState {
  std::shared_ptr<const SequentialObject> object;
  std::vector<std::uint64_t> applied_seq;    // per process; 0 = none yet
  std::vector<Value> responses;              // response of applied_seq[q]
  std::vector<std::uint64_t> applied_toggles;  // ⌈n/46⌉ words

  bool operator==(const CombinedState& rhs) const;
  std::string to_string() const;
  std::size_t hash() const;
};

// Register payload: shared immutable ownership of a pooled CombinedState.
// The pool recycles a slot only once its use_count drops back to 1 (the
// pool's own reference), so a state is never mutated while any register,
// trace, or reader still holds it.
struct CombinedStateRef {
  std::shared_ptr<const CombinedState> state;

  bool operator==(const CombinedStateRef& rhs) const {
    return state == rhs.state ||
           (state != nullptr && rhs.state != nullptr &&
            *state == *rhs.state);
  }
  std::string to_string() const {
    return state == nullptr ? "combined{null}" : state->to_string();
  }
  std::size_t hash() const { return state == nullptr ? 0 : state->hash(); }
};

// Batch accounting for the E15 bench: mean batch size = ops_applied /
// installs. Counters are bumped only after a SUCCESSFUL state install.
struct CombiningStats {
  std::uint64_t installs = 0;     // successful state SCs
  std::uint64_t ops_applied = 0;  // operations across those installs
  std::uint64_t adopted = 0;      // ops whose response came from a helper

  double mean_batch_size() const {
    return installs == 0 ? 0.0
                         : static_cast<double>(ops_applied) /
                               static_cast<double>(installs);
  }
};

struct CombiningOptions {
  // 0 = retry until this process's operation is applied (the real
  // construction: lock-free under injected faults). k > 0 = exactly k
  // combine attempts and no early exit — with scan_all this makes the
  // per-operation shared-op count schedule-INDEPENDENT (the fixed_*
  // contract of hw/fault_scenarios.h), at the price of possibly
  // returning nil when the op was not applied in time.
  int max_attempts = 0;
  // Read every announce slot each attempt instead of only the slots the
  // toggle diff selects. Implied coverage of the seq-number apply rule;
  // required for fixed-shape mode.
  bool scan_all = false;
};

class CombiningUniversal final : public UniversalConstruction {
 public:
  // Uses registers [base, base + register_span()):
  //   base                     — the combined-state register;
  //   base + 1 + w             — toggle word w, w in [0, toggle_words());
  //   base + 1 + toggle_words() + p — process p's announce slot.
  CombiningUniversal(int n, ObjectFactory factory, RegId base = 0,
                     CombiningOptions options = {});

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  // Fault-free bound for the one-outstanding-op-per-process regime (the
  // E2 shape): announce (1) + toggle flip (≤ 2·46: each failed flip is
  // caused by another process on the same word completing its one flip)
  // + at most two full combine attempts of 1 + ⌈n/46⌉ + n + 1 ops each
  // + the adopting LL (1). Like DirectFetchAdd, the general multi-op
  // worst case is unbounded (lock-free, not wait-free).
  std::uint64_t worst_case_shared_ops() const override;
  std::string name() const override { return "combining"; }

  RegId register_span() const {
    return 1 + static_cast<RegId>(toggle_words()) + static_cast<RegId>(n_);
  }
  int toggle_words() const {
    return (n_ + kToggleBitsPerWord - 1) / kToggleBitsPerWord;
  }
  // Logical register groups for the per-object width breakdown
  // (memory/storage_policy.h RegisterGroup): state / toggle / announce.
  std::vector<RegisterGroup> register_groups() const;

  CombiningStats stats() const {
    return CombiningStats{
        .installs = installs_.load(std::memory_order_relaxed),
        .ops_applied = ops_applied_.load(std::memory_order_relaxed),
        .adopted = adopted_.load(std::memory_order_relaxed)};
  }

 private:
  RegId state_reg() const { return base_; }
  RegId toggle_reg(int word) const {
    return base_ + 1 + static_cast<RegId>(word);
  }
  RegId announce_reg(ProcId p) const {
    return base_ + 1 + static_cast<RegId>(toggle_words()) +
           static_cast<RegId>(p);
  }

  // Per-process recycled pool of cache-padded CombinedState slots. Only
  // the owning process acquires from its pool, so the only concurrency is
  // the use_count()==1 test: a slot's count can rise above 1 only through
  // a reference the owner itself published, and once every published
  // reference is gone no other thread can resurrect one — a stale read
  // of 1 is therefore impossible, and a stale read of >1 only delays
  // reuse.
  struct Pool {
    std::vector<std::shared_ptr<CombinedState>> slots;
  };
  std::shared_ptr<CombinedState> acquire_slot(ProcId p);

  const CombinedState* as_state(const Value& v) const;
  CombinedState initial_state() const;

  int n_;
  ObjectFactory factory_;
  RegId base_;
  CombiningOptions options_;
  std::vector<std::uint64_t> next_seq_;  // per process, owner-written
  std::vector<Pool> pools_;              // per process, owner-only
  // Shared batch counters: processes run on distinct threads on hw.
  std::atomic<std::uint64_t> installs_{0};
  std::atomic<std::uint64_t> ops_applied_{0};
  std::atomic<std::uint64_t> adopted_{0};
};

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_COMBINING_H_
