// Universal constructions (paper Sections 1.1 and 6).
//
// A universal construction turns the sequential specification of any type T
// into a wait-free linearizable n-process shared object of type T. It is
// *oblivious* when it never exploits T's semantics — both constructions
// here are: they treat operations as opaque (name, argument) pairs and
// apply them through SequentialObject::apply.
//
// The paper's headline results, in terms of this interface:
//   * lower bound — any object obtained from ANY oblivious universal
//     construction over LL/SC/VL/swap/move memory costs some process
//     Ω(log n) shared-memory operations per implemented operation;
//   * tightness — GroupUpdateUC (universal/group_update.h) achieves
//     O(log n) worst-case when register size is unrestricted;
//   * baseline — SingleRegisterUC (universal/single_register.h) is the
//     classic O(n) helping construction the paper's open-problems section
//     cites as the best practical bound.
#ifndef LLSC_UNIVERSAL_UNIVERSAL_H_
#define LLSC_UNIVERSAL_UNIVERSAL_H_

#include <string>

#include "objects/object.h"
#include "runtime/process.h"
#include "runtime/sub_task.h"

namespace llsc {

class UniversalConstruction {
 public:
  virtual ~UniversalConstruction() = default;

  // Executes one operation on the implemented object on behalf of the
  // calling process (ctx.id()). Wait-free: completes in a bounded number
  // of the caller's own shared-memory steps regardless of other processes.
  virtual SubTask<Value> execute(ProcCtx ctx, ObjOp op) = 0;

  // Worst-case number of shared-memory operations execute() performs
  // (the construction's shared-access time complexity).
  virtual std::uint64_t worst_case_shared_ops() const = 0;

  virtual std::string name() const = 0;
};

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_UNIVERSAL_H_
