// Universal constructions (paper Sections 1.1 and 6).
//
// A universal construction turns the sequential specification of any type T
// into a wait-free linearizable n-process shared object of type T. It is
// *oblivious* when it never exploits T's semantics — both constructions
// here are: they treat operations as opaque (name, argument) pairs and
// apply them through SequentialObject::apply.
//
// The paper's headline results, in terms of this interface:
//   * lower bound — any object obtained from ANY oblivious universal
//     construction over LL/SC/VL/swap/move memory costs some process
//     Ω(log n) shared-memory operations per implemented operation;
//   * tightness — GroupUpdateUC (universal/group_update.h) achieves
//     O(log n) worst-case when register size is unrestricted;
//   * baseline — SingleRegisterUC (universal/single_register.h) is the
//     classic O(n) helping construction the paper's open-problems section
//     cites as the best practical bound;
//   * beyond the bound — CombiningUniversal (universal/combining.h) trades
//     the per-process guarantee for batch throughput: one winner installs
//     every pending operation with a single SC, so system throughput
//     scales with batch size (lock-free, not wait-free).
//
// make_universal(name, ...) is the registry benches and workloads use to
// pick a construction by name without linking against each header.
#ifndef LLSC_UNIVERSAL_UNIVERSAL_H_
#define LLSC_UNIVERSAL_UNIVERSAL_H_

#include <memory>
#include <string>
#include <vector>

#include "memory/storage_policy.h"
#include "objects/object.h"
#include "runtime/process.h"
#include "runtime/sub_task.h"

namespace llsc {

class UniversalConstruction {
 public:
  virtual ~UniversalConstruction() = default;

  // Executes one operation on the implemented object on behalf of the
  // calling process (ctx.id()). Wait-free for the tree/register
  // constructions; CombiningUniversal is lock-free (see its header).
  virtual SubTask<Value> execute(ProcCtx ctx, ObjOp op) = 0;

  // Worst-case number of shared-memory operations execute() performs
  // (the construction's shared-access time complexity). Lock-free
  // constructions report their fault-free one-outstanding-op bound and
  // say so in their header.
  virtual std::uint64_t worst_case_shared_ops() const = 0;

  virtual std::string name() const = 0;

  // Labeled register ranges for the per-logical-object width breakdown
  // (memory/storage_policy.h). Default: no grouping — the substrate keeps
  // the single lumped boxed_fallback_registers counter.
  virtual std::vector<RegisterGroup> register_groups() const { return {}; }
};

// Registry of constructions buildable by name: "group-update",
// "single-register", "consensus-based", "combining" (the names each
// construction's name() reports). DirectFetchAdd lives outside the
// registry — it is type-specific, not universal (src/direct). Aborts via
// LLSC_CHECK on an unknown name.
std::unique_ptr<UniversalConstruction> make_universal(
    const std::string& name, int n, ObjectFactory factory, RegId base = 0);

// The registry's names, in a stable documentation order.
const std::vector<std::string>& universal_construction_names();

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_UNIVERSAL_H_
