// Herlihy-style consensus-based universal construction — the O(n)
// comparator from the related work.
//
// The paper cites Jayanti–Tan–Toueg [25]: oblivious universal
// constructions built from consensus objects (rather than LL/SC) have
// shared-access time complexity Ω(n). This is the classic matching upper
// bound (Herlihy [17,18]): operations are agreed into a single totally-
// ordered log, one consensus decision per log cell, with round-robin
// helping for wait-freedom.
//
//   * announce[i] — single-writer register holding process i's latest
//     announced operation;
//   * cell k — a one-shot consensus object (realized inline from LL/SC:
//     LL, deciding SC, read) choosing the k-th operation of the log;
//   * a process advances cell by cell from its cached position; at cell k
//     it first offers the announced-but-undecided operation of process
//     (k mod n) ("helping"), otherwise its own. Once announced, an
//     operation is decided within at most 2n cells, so the construction
//     is wait-free with Θ(n) worst-case shared ops per operation;
//   * responses are recovered locally by replaying the decided log prefix
//     against the sequential specification (local steps are free in the
//     shared-access cost model); duplicate proposals of an already-decided
//     operation are filtered by OpId during replay.
//
// Together with GroupUpdateUC (O(log n)) and SingleRegisterUC (O(n),
// LL/SC helping) this completes the construction spectrum the E10 bench
// compares against the Ω(log n) lower bound.
#ifndef LLSC_UNIVERSAL_CONSENSUS_BASED_H_
#define LLSC_UNIVERSAL_CONSENSUS_BASED_H_

#include <cstdint>
#include <set>
#include <vector>

#include "universal/op_id.h"
#include "universal/universal.h"

namespace llsc {

class ConsensusBasedUC final : public UniversalConstruction {
 public:
  // Registers used: base + i            — announce register of process i;
  //                 base + n + k        — consensus cell k (k unbounded).
  ConsensusBasedUC(int n, ObjectFactory factory, RegId base = 0);

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  // Helping guarantees a decision within 2n cells of the announcement;
  // each cell costs at most 4 shared ops (announce read + LL + SC + read),
  // plus the announce swap.
  std::uint64_t worst_case_shared_ops() const override {
    return 1 + 8 * static_cast<std::uint64_t>(n_) + 4;
  }
  std::string name() const override { return "consensus-based"; }

 private:
  RegId announce_reg(ProcId p) const {
    return base_ + static_cast<RegId>(p);
  }
  RegId cell_reg(std::uint64_t k) const {
    return base_ + static_cast<RegId>(n_) + k;
  }

  int n_;
  ObjectFactory factory_;
  RegId base_;
  std::vector<std::uint64_t> next_seq_;
  // Per-process cache of the decided log and replay state; entries are
  // only touched by their owning process (single-threaded simulation).
  struct LocalView {
    std::vector<std::pair<OpId, ObjOp>> log;  // decided ops, in cell order
    std::set<OpId> decided_ids;               // ids appearing in `log`
    std::uint64_t next_cell = 0;              // first cell not in `log`
  };
  std::vector<LocalView> views_;
};

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_CONSENSUS_BASED_H_
