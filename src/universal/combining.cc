#include "universal/combining.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace llsc {

namespace {

std::uint64_t toggle_word_value(const Value& v) {
  if (v.is_nil()) return 0;
  LLSC_CHECK(v.holds_u64(), "toggle register holds a non-u64");
  const std::uint64_t word = v.as_u64();
  LLSC_CHECK(word <= kInlineMaxU64, "toggle word exceeds the inline budget");
  return word;
}

}  // namespace

bool CombinedState::operator==(const CombinedState& rhs) const {
  if (applied_seq != rhs.applied_seq || responses != rhs.responses ||
      applied_toggles != rhs.applied_toggles) {
    return false;
  }
  if (object == rhs.object) return true;
  if (object == nullptr || rhs.object == nullptr) return false;
  return object->state_fingerprint() == rhs.object->state_fingerprint();
}

std::string CombinedState::to_string() const {
  std::uint64_t applied = 0;
  for (const std::uint64_t s : applied_seq) applied += s;
  return "combined{" + (object ? object->state_fingerprint() : "?") + ", " +
         std::to_string(applied) + " applied}";
}

std::size_t CombinedState::hash() const {
  std::size_t h =
      object ? std::hash<std::string>{}(object->state_fingerprint()) : 0;
  for (const std::uint64_t s : applied_seq) h = mix64(h ^ s);
  for (const Value& v : responses) h = mix64(h ^ v.hash());
  for (const std::uint64_t w : applied_toggles) h = mix64(h ^ w);
  return h;
}

CombiningUniversal::CombiningUniversal(int n, ObjectFactory factory,
                                       RegId base, CombiningOptions options)
    : n_(n),
      factory_(std::move(factory)),
      base_(base),
      options_(options) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  LLSC_EXPECTS(factory_ != nullptr, "need an object factory");
  LLSC_EXPECTS(options_.max_attempts >= 0, "negative attempt bound");
  next_seq_.assign(static_cast<std::size_t>(n), 0);
  pools_.resize(static_cast<std::size_t>(n));
}

std::vector<RegisterGroup> CombiningUniversal::register_groups() const {
  const RegId toggles = toggle_reg(0);
  const RegId announces = announce_reg(0);
  return {
      RegisterGroup{.label = "state", .lo = state_reg(), .hi = toggles},
      RegisterGroup{.label = "toggle", .lo = toggles, .hi = announces},
      RegisterGroup{.label = "announce",
                    .lo = announces,
                    .hi = base_ + register_span()},
  };
}

std::uint64_t CombiningUniversal::worst_case_shared_ops() const {
  // One outstanding op per process (the E2 shape): announce (1) + toggle
  // flip (each of the ≤ min(n,46)−1 same-word contenders fails my SC at
  // most once, 2 ops per try) + two full combine attempts of
  // LL + ⌈n/46⌉ toggle reads + ≤ n announce reads + SC each + the
  // adopting LL. Like DirectFetchAdd, the multi-outstanding-op worst case
  // is unbounded (lock-free).
  const std::uint64_t n = static_cast<std::uint64_t>(n_);
  const std::uint64_t w = static_cast<std::uint64_t>(toggle_words());
  const std::uint64_t flip =
      2 * std::min(n, static_cast<std::uint64_t>(kToggleBitsPerWord));
  return 1 + flip + 2 * (n + w + 2) + 1;
}

CombinedState CombiningUniversal::initial_state() const {
  CombinedState st;
  st.object = factory_();
  st.applied_seq.assign(static_cast<std::size_t>(n_), 0);
  st.responses.assign(static_cast<std::size_t>(n_), Value{});
  st.applied_toggles.assign(static_cast<std::size_t>(toggle_words()), 0);
  return st;
}

const CombinedState* CombiningUniversal::as_state(const Value& v) const {
  if (v.is_nil()) return nullptr;
  const CombinedStateRef* ref = v.get_if<CombinedStateRef>();
  LLSC_CHECK(ref != nullptr && ref->state != nullptr,
             "state register holds a non-CombinedStateRef");
  return ref->state.get();
}

std::shared_ptr<CombinedState> CombiningUniversal::acquire_slot(ProcId p) {
  Pool& pool = pools_[static_cast<std::size_t>(p)];
  for (std::shared_ptr<CombinedState>& slot : pool.slots) {
    // use_count()==1 means the pool holds the only reference: the state
    // was either never installed or every register/reader reference has
    // been dropped, so the owner may mutate it in place.
    if (slot.use_count() == 1) return slot;
  }
  // Plain new (not make_shared): CombinedState is over-aligned to a cache
  // line and aligned operator new guarantees the padding.
  std::shared_ptr<CombinedState> fresh(new CombinedState());
  pool.slots.push_back(fresh);
  return fresh;
}

SubTask<Value> CombiningUniversal::execute(ProcCtx ctx, ObjOp op) {
  const ProcId p = ctx.id();
  LLSC_EXPECTS(p >= 0 && p < n_, "caller outside this construction");
  const std::size_t sp = static_cast<std::size_t>(p);
  const int W = toggle_words();
  const int my_word = p / kToggleBitsPerWord;
  const std::uint64_t my_bit = std::uint64_t{1}
                               << (p % kToggleBitsPerWord);

  // 1. Announce (single writer: one swap). Sequence numbers start at 1 so
  // applied_seq == 0 always means "nothing applied yet".
  const std::uint64_t seq = ++next_seq_[sp];
  {
    // Hoisted: braced temporaries may not appear in co_await expressions
    // (GCC 12 workaround; see runtime/sub_task.h).
    Value cell = Value::of(CombineCell{.id = {.proc = p, .seq = seq},
                                       .op = std::move(op)});
    co_await ctx.swap(announce_reg(p), std::move(cell));
  }

  // 2. Flip my toggle bit. Strict mode retries until the SC lands (each
  // failure is another process completing its own flip on this word, or
  // an injected fault); fixed mode spends exactly one best-effort LL+SC —
  // scan_all compensates, pending detection never depends on the flip.
  for (;;) {
    const Value cur = co_await ctx.ll(toggle_reg(my_word));
    Value flipped = Value::of_u64(toggle_word_value(cur) ^ my_bit);
    const ScResult flip = co_await ctx.sc(toggle_reg(my_word),
                                          std::move(flipped));
    if (flip.ok || options_.max_attempts > 0) break;
  }

  // 3. Combine until my response is published (strict), or for exactly
  // max_attempts full passes (fixed shape).
  for (int attempt = 0;
       options_.max_attempts == 0 || attempt < options_.max_attempts;
       ++attempt) {
    const Value cur = co_await ctx.ll(state_reg());
    const CombinedState* st = as_state(cur);
    if (options_.max_attempts == 0 && st != nullptr &&
        st->applied_seq[sp] >= seq) {
      // A helper already installed my operation; adopt its response.
      adopted_.fetch_add(1, std::memory_order_relaxed);
      co_return st->responses[sp];
    }

    // Snapshot the toggle words (AFTER the LL: the two-attempt helping
    // argument needs any later successful installer to have seen my flip).
    std::vector<std::uint64_t> snapshot(static_cast<std::size_t>(W));
    for (int w = 0; w < W; ++w) {
      const Value t = co_await ctx.read(toggle_reg(w));
      snapshot[static_cast<std::size_t>(w)] = toggle_word_value(t);
    }

    // Collect the pending announcements: processes whose toggle differs
    // from the value the installed state recorded (or every process under
    // scan_all), confirmed by sequence number so a stale toggle can never
    // double-apply. My own announce is read unconditionally: an amnesiac
    // restart (hw/fault.h recovery) re-announces and re-flips, and the
    // even number of flips across the crash can cancel out — leaving the
    // toggle-diff predicate blind to my own pending op. Helpers can stay
    // blind to it (a restarted op merely loses the two-install helping
    // guarantee and completes through my own install, still lock-free);
    // my own combine must not be, or a successful install would violate
    // the every-installer-applies-its-own-op invariant below.
    std::vector<std::pair<ProcId, CombineCell>> batch;
    for (ProcId q = 0; q < n_; ++q) {
      const std::size_t sq = static_cast<std::size_t>(q);
      if (!options_.scan_all && q != p) {
        const std::size_t w = sq / kToggleBitsPerWord;
        const std::uint64_t bit = std::uint64_t{1}
                                  << (sq % kToggleBitsPerWord);
        const std::uint64_t installed =
            st == nullptr ? 0 : st->applied_toggles[w];
        if (((snapshot[w] ^ installed) & bit) == 0) continue;
      }
      const Value a = co_await ctx.read(announce_reg(q));
      if (a.is_nil()) continue;
      const CombineCell* cell = a.get_if<CombineCell>();
      LLSC_CHECK(cell != nullptr, "announce register holds a non-CombineCell");
      const std::uint64_t applied = st == nullptr ? 0 : st->applied_seq[sq];
      if (cell->id.seq > applied) batch.emplace_back(q, *cell);
    }

    // Apply the batch to a private copy from the recycled pool, in
    // ascending process order (the deterministic linearization order all
    // combiners agree on), and try to install state + responses in one SC.
    std::shared_ptr<CombinedState> next = acquire_slot(p);
    if (st != nullptr) {
      *next = *st;
    } else {
      *next = initial_state();
    }
    std::unique_ptr<SequentialObject> obj = next->object->clone();
    for (auto& [q, cell] : batch) {
      const std::size_t sq = static_cast<std::size_t>(q);
      next->responses[sq] = obj->apply(cell.op);
      next->applied_seq[sq] = cell.id.seq;
    }
    next->object = std::move(obj);
    next->applied_toggles = snapshot;

    const bool mine_in_batch = next->applied_seq[sp] >= seq;
    Value mine = mine_in_batch ? next->responses[sp] : Value{};
    Value install = Value::of(
        CombinedStateRef{.state = std::shared_ptr<const CombinedState>(next)});
    const ScResult sc = co_await ctx.sc(state_reg(), std::move(install));
    if (sc.ok) {
      installs_.fetch_add(1, std::memory_order_relaxed);
      ops_applied_.fetch_add(batch.size(), std::memory_order_relaxed);
      if (options_.max_attempts == 0) {
        LLSC_CHECK(mine_in_batch,
                   "combining: my announced op missing from my own batch");
        co_return mine;
      }
    }
  }

  // Fixed shape only: one final read. The op may not have been applied
  // within the attempt budget — callers of fixed mode (the differential
  // sweep) accept nil for "not yet applied".
  const Value final_val = co_await ctx.read(state_reg());
  const CombinedState* final_st = as_state(final_val);
  if (final_st != nullptr && final_st->applied_seq[sp] >= seq) {
    co_return final_st->responses[sp];
  }
  co_return Value{};
}

}  // namespace llsc
