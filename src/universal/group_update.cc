#include "universal/group_update.h"

#include "util/check.h"

namespace llsc {

RootState apply_pending(const RootState& root, const AnnounceSet& announced) {
  RootState next = root;
  std::unique_ptr<SequentialObject> working;
  for (const auto& [id, op] : announced.ops) {
    if (next.responses.contains(id)) continue;
    if (working == nullptr) working = next.object->clone();
    next.responses.emplace(id, working->apply(op));
  }
  if (working != nullptr) {
    next.object = std::shared_ptr<const SequentialObject>(std::move(working));
  }
  return next;
}

namespace {

// Decode a register value as an AnnounceSet (nil = empty).
const AnnounceSet& as_announce(const Value& v) {
  static const AnnounceSet kEmpty;
  if (v.is_nil()) return kEmpty;
  const AnnounceSet* set = v.get_if<AnnounceSet>();
  LLSC_CHECK(set != nullptr, "register does not hold an AnnounceSet");
  return *set;
}

}  // namespace

GroupUpdateUC::GroupUpdateUC(int n, ObjectFactory factory, RegId base,
                             std::size_t prune_interval)
    : n_(n),
      factory_(std::move(factory)),
      base_(base),
      prune_interval_(prune_interval) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  LLSC_EXPECTS(factory_ != nullptr, "need an object factory");
  leaves_ = 2;
  height_ = 1;
  while (leaves_ < static_cast<std::uint64_t>(n)) {
    leaves_ *= 2;
    ++height_;
  }
  next_seq_.assign(static_cast<std::size_t>(n), 0);
  announced_.assign(static_cast<std::size_t>(n), AnnounceSet{});
}

RootState GroupUpdateUC::initial_root() const {
  return RootState{.object = factory_(), .responses = {}};
}

std::uint64_t GroupUpdateUC::worst_case_shared_ops() const {
  // leaf swap + per-level two attempts of (LL + 2 child reads + SC) +
  // final response validate (+ one root read when pruning is enabled).
  return 1 + 8 * height_ + 1 + (prune_interval_ > 0 ? 1 : 0);
}

SubTask<Value> GroupUpdateUC::execute(ProcCtx ctx, ObjOp op) {
  const ProcId p = ctx.id();
  LLSC_EXPECTS(p >= 0 && p < n_, "caller outside this construction");

  AnnounceSet& mine = announced_[static_cast<std::size_t>(p)];

  // 0. Optional pruning for long-lived use: drop already-applied
  //    operations from the announce set (one root read).
  if (prune_interval_ > 0 && mine.ops.size() >= prune_interval_) {
    const Value root_val = co_await ctx.read(reg_of(1));
    if (const RootState* root = root_val.get_if<RootState>()) {
      std::erase_if(mine.ops, [root](const auto& entry) {
        return root->responses.contains(entry.first);
      });
    }
  }

  // 1. Announce: publish the new operation in the caller's leaf (single
  //    writer, so one unconditional swap suffices).
  const OpId id{.proc = p, .seq = next_seq_[static_cast<std::size_t>(p)]++};
  mine.ops.emplace(id, std::move(op));
  co_await ctx.swap(reg_of(leaf_of(p)), Value::of(mine));

  // 2. Climb: refresh each ancestor with two merge attempts.
  for (std::uint64_t node = leaf_of(p) / 2; node >= 1; node /= 2) {
    const bool is_root = node == 1;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const Value cur = co_await ctx.ll(reg_of(node));
      // Reading the children AFTER the LL is what makes the second
      // attempt's failure imply our update is already merged.
      const Value left = co_await ctx.read(reg_of(2 * node));
      const Value right = co_await ctx.read(reg_of(2 * node + 1));
      AnnounceSet merged = as_announce(left);
      merged.merge(as_announce(right));
      if (is_root) {
        const RootState* cur_root =
            cur.is_nil() ? nullptr : cur.get_if<RootState>();
        RootState next =
            apply_pending(cur_root ? *cur_root : initial_root(), merged);
        co_await ctx.sc(reg_of(node), Value::of(std::move(next)));
      } else {
        co_await ctx.sc(reg_of(node), Value::of(std::move(merged)));
      }
    }
  }

  // 3. Fetch the response: after two root attempts the operation is
  //    guaranteed applied, so a single read suffices.
  const Value root_val = co_await ctx.read(reg_of(1));
  const RootState* root = root_val.get_if<RootState>();
  LLSC_CHECK(root != nullptr && root->responses.contains(id),
             "group-update: operation not applied after two root attempts");
  co_return root->responses.at(id);
}

}  // namespace llsc
