// Single-register helping universal construction — the O(n) baseline.
//
// The classic LL/SC helping scheme (Herlihy-style, in the unbounded-
// register setting): every process announces its operations in a
// single-writer announce register; to make progress, a process twice
// (1) LLs the root (object snapshot + responses), (2) reads all n announce
// registers, (3) applies every announced-but-unapplied operation in
// ascending OpId order, and (4) SCs the new snapshot. The two-attempt
// argument guarantees the caller's operation is applied even if both its
// SCs fail.
//
// Per-operation cost: 1 (announce swap) + 2·(1 + n + 1) (two attempts of
// LL + n reads + SC) + 1 (response validate) = 2n + 6 = Θ(n) shared
// operations — the O(n) upper bound the paper's open-problems section
// cites, and the baseline the E2 bench compares GroupUpdateUC against.
#ifndef LLSC_UNIVERSAL_SINGLE_REGISTER_H_
#define LLSC_UNIVERSAL_SINGLE_REGISTER_H_

#include <cstdint>
#include <vector>

#include "universal/op_id.h"
#include "universal/universal.h"

namespace llsc {

class SingleRegisterUC final : public UniversalConstruction {
 public:
  // Uses registers [base, base + register_span()): base is the root,
  // base + 1 + i is process i's announce register. The two-attempt
  // argument makes an unapplied operation after both attempts a
  // contract violation — unless `tolerate_unapplied` is set, in which
  // case execute() returns nil instead of failing loudly: under
  // injected spurious SC loss (hw/fault.h) both attempts can be forced
  // to fail with no helper succeeding either, and the cross-substrate
  // differential sweep needs the fixed op shape to survive that.
  SingleRegisterUC(int n, ObjectFactory factory, RegId base = 0,
                   bool tolerate_unapplied = false);

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override;
  std::string name() const override { return "single-register"; }

  RegId register_span() const { return static_cast<RegId>(n_) + 1; }

 private:
  RegId root_reg() const { return base_; }
  RegId announce_reg(ProcId p) const {
    return base_ + 1 + static_cast<RegId>(p);
  }
  RootState initial_root() const;

  int n_;
  ObjectFactory factory_;
  RegId base_;
  bool tolerate_unapplied_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<AnnounceSet> announced_;
};

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_SINGLE_REGISTER_H_
