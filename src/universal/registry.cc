// Name-keyed registry of the universal constructions, so benches and
// workloads (E2 tightness, the wakeup/fetch&inc harnesses, E15) select a
// contender by the string its name() reports instead of linking against
// each concrete header.
#include "universal/universal.h"

#include "universal/combining.h"
#include "universal/consensus_based.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"

namespace llsc {

std::unique_ptr<UniversalConstruction> make_universal(
    const std::string& name, int n, ObjectFactory factory, RegId base) {
  if (name == "group-update") {
    return std::make_unique<GroupUpdateUC>(n, std::move(factory), base);
  }
  if (name == "single-register") {
    return std::make_unique<SingleRegisterUC>(n, std::move(factory), base);
  }
  if (name == "consensus-based") {
    return std::make_unique<ConsensusBasedUC>(n, std::move(factory), base);
  }
  if (name == "combining") {
    return std::make_unique<CombiningUniversal>(n, std::move(factory), base);
  }
  LLSC_CHECK(false, "unknown universal construction (want " +
                        [] {
                          std::string all;
                          for (const std::string& s :
                               universal_construction_names()) {
                            if (!all.empty()) all += " | ";
                            all += s;
                          }
                          return all;
                        }() +
                        "): " + name);
  return nullptr;
}

const std::vector<std::string>& universal_construction_names() {
  static const std::vector<std::string> names = {
      "group-update", "single-register", "consensus-based", "combining"};
  return names;
}

}  // namespace llsc
