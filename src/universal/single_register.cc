#include "universal/single_register.h"

#include "util/check.h"

namespace llsc {

SingleRegisterUC::SingleRegisterUC(int n, ObjectFactory factory, RegId base,
                                   bool tolerate_unapplied)
    : n_(n),
      factory_(std::move(factory)),
      base_(base),
      tolerate_unapplied_(tolerate_unapplied) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  LLSC_EXPECTS(factory_ != nullptr, "need an object factory");
  next_seq_.assign(static_cast<std::size_t>(n), 0);
  announced_.assign(static_cast<std::size_t>(n), AnnounceSet{});
}

RootState SingleRegisterUC::initial_root() const {
  return RootState{.object = factory_(), .responses = {}};
}

std::uint64_t SingleRegisterUC::worst_case_shared_ops() const {
  return 1 + 2 * (1 + static_cast<std::uint64_t>(n_) + 1) + 1;
}

SubTask<Value> SingleRegisterUC::execute(ProcCtx ctx, ObjOp op) {
  const ProcId p = ctx.id();
  LLSC_EXPECTS(p >= 0 && p < n_, "caller outside this construction");

  // 1. Announce (single writer: one swap).
  const OpId id{.proc = p, .seq = next_seq_[static_cast<std::size_t>(p)]++};
  AnnounceSet& mine = announced_[static_cast<std::size_t>(p)];
  mine.ops.emplace(id, std::move(op));
  co_await ctx.swap(announce_reg(p), Value::of(mine));

  // 2. Two helping attempts.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Value cur = co_await ctx.ll(root_reg());
    AnnounceSet all;
    for (ProcId q = 0; q < n_; ++q) {
      const Value a = co_await ctx.read(announce_reg(q));
      if (a.is_nil()) continue;
      const AnnounceSet* set = a.get_if<AnnounceSet>();
      LLSC_CHECK(set != nullptr, "announce register holds a non-AnnounceSet");
      all.merge(*set);
    }
    const RootState* cur_root =
        cur.is_nil() ? nullptr : cur.get_if<RootState>();
    RootState next = apply_pending(cur_root ? *cur_root : initial_root(), all);
    co_await ctx.sc(root_reg(), Value::of(std::move(next)));
  }

  // 3. Fetch the response.
  const Value root_val = co_await ctx.read(root_reg());
  const RootState* root = root_val.get_if<RootState>();
  if (root != nullptr && root->responses.contains(id)) {
    co_return root->responses.at(id);
  }
  // Fault-free, an unapplied operation here contradicts the two-attempt
  // argument; under injected spurious SC loss it merely means both
  // attempts were forced to fail with no helper landing either.
  LLSC_CHECK(tolerate_unapplied_,
             "single-register: operation not applied after two attempts");
  co_return Value{};
}

}  // namespace llsc
