// Group-Update universal construction — O(log n) worst case.
//
// This is the construction the paper cites for tightness: "if the size of
// shared registers is not restricted, the universal construction of Afek,
// Dauber, and Touitou [1] (after two minor modifications) has O(log n)
// worst-case shared-access time complexity." We implement the
// unbounded-register form directly:
//
//   * a complete binary tree with (at least) n leaves; leaf i is owned by
//     process i and holds the AnnounceSet of i's operations (single
//     writer — published with one swap);
//   * every internal register holds the union of the announcements in its
//     subtree; a climbing process refreshes a node with TWO merge attempts
//     (LL node; read both children; SC the union). If both SCs fail, the
//     second failure's interfering SC must have read the children after
//     the climber updated its child, so the climber's operation is in the
//     node anyway — the classic "try twice" helping argument;
//   * the root holds the object snapshot plus every response; refreshing
//     the root applies all announced-but-unapplied operations in
//     ascending OpId order. After two root attempts the caller's op is
//     applied, and one validate fetches its response.
//
// Per-operation cost: 1 (leaf swap) + 8·(height) (two attempts of
// LL + 2 reads + SC per tree level, root included) + 1 (final validate)
// = Θ(log n) shared-memory operations, independent of contention.
//
// Long-lived use: a process's announce set grows with its operation
// count. With `prune_interval` = k > 0, a process whose set reaches k
// entries reads the root once (one extra shared op) and drops every
// already-applied operation before announcing the next one, keeping the
// set bounded by its in-flight work plus k. Pruning is safe because an
// operation leaves a leaf only after its response is recorded at the
// root, so no announced-but-unapplied operation ever disappears from the
// tree. (Root responses themselves are kept forever — exact long-lived
// semantics with garbage-collected responses needs the bounded-register
// techniques the paper's Section 7 discusses, which are out of scope.)
//
// Correctness rests on a per-operation inclusion argument: an operation
// stays in its leaf from announcement until it is applied (pruning removes
// only applied operations), so every merge computed after the announcement
// carries it upward, and root responses never disappear.
#ifndef LLSC_UNIVERSAL_GROUP_UPDATE_H_
#define LLSC_UNIVERSAL_GROUP_UPDATE_H_

#include <cstdint>
#include <vector>

#include "universal/op_id.h"
#include "universal/universal.h"

namespace llsc {

class GroupUpdateUC final : public UniversalConstruction {
 public:
  // Implements an object initialized to factory() for n processes, using
  // registers [base, base + register_span()) of the shared memory. The
  // System must be constructed so that the root register holds the initial
  // RootState; call initial_root_value() / root_register() or simply let
  // the first execute() bootstrap from nil (both constructions treat a nil
  // root as "initial state, no responses").
  GroupUpdateUC(int n, ObjectFactory factory, RegId base = 0,
                std::size_t prune_interval = 0);

  SubTask<Value> execute(ProcCtx ctx, ObjOp op) override;
  std::uint64_t worst_case_shared_ops() const override;
  std::string name() const override { return "group-update"; }

  // Number of consecutive register ids the construction uses.
  RegId register_span() const { return static_cast<RegId>(2 * leaves_); }

  // Current size of a process's announce set (observability for tests).
  std::size_t announced_ops(ProcId p) const {
    return announced_[static_cast<std::size_t>(p)].ops.size();
  }

 private:
  // Heap layout: node 1 is the root, node v's children are 2v and 2v+1;
  // leaves are nodes [leaves_, 2*leaves_). Process i owns leaf leaves_+i.
  RegId reg_of(std::uint64_t node) const { return base_ + node; }
  std::uint64_t leaf_of(ProcId p) const {
    return leaves_ + static_cast<std::uint64_t>(p);
  }

  // The object state a nil root register denotes.
  RootState initial_root() const;

  int n_;
  ObjectFactory factory_;
  RegId base_;
  std::size_t prune_interval_;
  std::uint64_t leaves_;  // power of two, >= max(2, n)
  std::uint64_t height_;  // number of internal levels on a leaf-root path
  // Per-process operation sequence numbers and announced-op accumulators
  // (each entry is touched only by its owning process).
  std::vector<std::uint64_t> next_seq_;
  std::vector<AnnounceSet> announced_;
};

}  // namespace llsc

#endif  // LLSC_UNIVERSAL_GROUP_UPDATE_H_
