#include "universal/consensus_based.h"

#include <set>

#include "util/check.h"

namespace llsc {

namespace {

// The value decided into a log cell (and announced in announce registers):
// one identified operation.
struct CellVal {
  OpId id;
  ObjOp op;

  bool operator==(const CellVal&) const = default;
  std::string to_string() const {
    return id.to_string() + ":" + op.to_string();
  }
  std::size_t hash() const { return mix64(id.hash() ^ op.hash()); }
};

}  // namespace

ConsensusBasedUC::ConsensusBasedUC(int n, ObjectFactory factory, RegId base)
    : n_(n), factory_(std::move(factory)), base_(base) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  LLSC_EXPECTS(factory_ != nullptr, "need an object factory");
  next_seq_.assign(static_cast<std::size_t>(n), 0);
  views_.resize(static_cast<std::size_t>(n));
}

SubTask<Value> ConsensusBasedUC::execute(ProcCtx ctx, ObjOp op) {
  const ProcId p = ctx.id();
  LLSC_EXPECTS(p >= 0 && p < n_, "caller outside this construction");
  LocalView& view = views_[static_cast<std::size_t>(p)];

  // 1. Announce (single-writer register; one swap).
  const OpId id{.proc = p, .seq = next_seq_[static_cast<std::size_t>(p)]++};
  {
    CellVal mine{.id = id, .op = op};
    co_await ctx.swap(announce_reg(p), Value::of(std::move(mine)));
  }

  // 2. Advance the log, cell by cell, until the operation is decided.
  for (;;) {
    const std::uint64_t k = view.next_cell;

    // Round-robin helping: offer the announced-but-undecided operation of
    // process (k mod n), else our own.
    const ProcId helpee = static_cast<ProcId>(k % static_cast<std::uint64_t>(n_));
    const Value announced = co_await ctx.read(announce_reg(helpee));
    CellVal proposal{.id = id, .op = op};
    if (const CellVal* a = announced.get_if<CellVal>()) {
      if (!(a->id == id) && !view.decided_ids.contains(a->id)) proposal = *a;
    }

    // One-shot consensus on cell k, inline from LL/SC: LL; if undecided,
    // a deciding SC; on failure read the winner.
    Value decided_val = co_await ctx.ll(cell_reg(k));
    if (decided_val.is_nil()) {
      Value proposal_val = Value::of(std::move(proposal));
      const ScResult sc = co_await ctx.sc(cell_reg(k), proposal_val);
      if (sc.ok) {
        decided_val = std::move(proposal_val);
      } else {
        const Value after = co_await ctx.read(cell_reg(k));
        decided_val = after;
      }
    }
    const CellVal* decided = decided_val.get_if<CellVal>();
    LLSC_CHECK(decided != nullptr && !decided_val.is_nil(),
               "log cell decided to a non-CellVal");

    view.log.emplace_back(decided->id, decided->op);
    view.decided_ids.insert(decided->id);
    view.next_cell = k + 1;
    if (decided->id == id) break;
  }

  // 3. Replay the decided prefix locally for the response. Stale helpers
  // may decide the same operation into two cells; only the first
  // occurrence of an id is applied.
  std::unique_ptr<SequentialObject> replay = factory_();
  std::set<OpId> applied;
  Value response;
  for (const auto& [did, dop] : view.log) {
    if (!applied.insert(did).second) continue;
    Value r = replay->apply(dop);
    if (did == id) {
      response = std::move(r);
      break;  // later cells cannot affect an already-computed response
    }
  }
  co_return response;
}

}  // namespace llsc
