// Schedulers: strategies that decide which process steps next.
//
// The paper's model gives the scheduler "the standard power": it sees the
// whole run so far but cannot influence or predict future coin tosses.
// Schedulers here have exactly that power — they observe the System (and
// therefore the executed history) and choose the next process; coin-toss
// outcomes come from the pre-committed TossAssignment inside the System.
//
// This header provides the benign schedulers used by examples, tests and
// the linearizability/model-checking harnesses. The paper's adversary
// (Fig. 2) and the (S,A)-run scheduler (Fig. 3) live in src/core.
#ifndef LLSC_SCHED_SCHEDULER_H_
#define LLSC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "runtime/system.h"
#include "util/rng.h"

namespace llsc {

// Outcome of driving a run.
struct RunOutcome {
  bool all_terminated = false;
  std::uint64_t steps_executed = 0;  // shared-memory steps + coin tosses

  // max over p of shared ops — the paper's t(R) of the produced run.
  std::uint64_t max_shared_ops = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Drive `sys` until every process terminates or `max_steps` steps (coin
  // tosses count as steps) have been executed. Wait-free algorithms must
  // terminate well before any sensible cap; the cap exists so that a buggy
  // algorithm yields a diagnosable outcome instead of a hang.
  virtual RunOutcome run(System& sys, std::uint64_t max_steps) = 0;
};

// Round-robin: p_0, p_1, ..., p_{n-1}, p_0, ... skipping terminated
// processes. The fully synchronous schedule.
class RoundRobinScheduler final : public Scheduler {
 public:
  RunOutcome run(System& sys, std::uint64_t max_steps) override;
};

// Uniformly random choice among live processes; seed-deterministic.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  RunOutcome run(System& sys, std::uint64_t max_steps) override;

 private:
  Rng rng_;
};

// Runs the processes one at a time to completion, in id order: the fully
// sequential schedule (maximum "solo" executions).
class SequentialScheduler final : public Scheduler {
 public:
  RunOutcome run(System& sys, std::uint64_t max_steps) override;
};

// Replays an explicit sequence of process ids; each entry executes one step
// of that process (skipped if the process has terminated). After the script
// is exhausted, falls back to round-robin so runs still complete.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<ProcId> script)
      : script_(std::move(script)) {}
  RunOutcome run(System& sys, std::uint64_t max_steps) override;

 private:
  std::vector<ProcId> script_;
};

}  // namespace llsc

#endif  // LLSC_SCHED_SCHEDULER_H_
