#include "sched/secretive_schedule.h"

#include <algorithm>

#include "util/check.h"

// Note on self-moves. The paper's inductive definition appends the mover on
// every move into R, and a move(R -> R) keeps R's source while appending a
// mover. Under that definition Lemma 4.1 would be false (three self-moves
// on one register leave three movers in *every* complete schedule), so the
// paper implicitly assumes src != dst; a self-move is a value no-op and
// gains an algorithm nothing. We make the assumption explicit: MoveSets
// with src == dst are rejected (and ProcCtx::move forbids them).

namespace llsc {

std::string MoveOp::to_string() const {
  return "p" + std::to_string(proc) + ": MOVE(R" + std::to_string(src) +
         " -> R" + std::to_string(dst) + ")";
}

namespace {

void validate_move_set(const MoveSet& moves) {
  std::unordered_set<ProcId> seen;
  for (const MoveOp& m : moves) {
    LLSC_EXPECTS(m.src != m.dst,
                 "self-moves are excluded from the model (see Section 4)");
    LLSC_EXPECTS(seen.insert(m.proc).second,
                 "a process may have at most one pending move");
  }
}

const MoveOp& move_of(const MoveSet& moves, ProcId p) {
  const auto it = std::find_if(moves.begin(), moves.end(),
                               [p](const MoveOp& m) { return m.proc == p; });
  LLSC_EXPECTS(it != moves.end(), "schedule names a process with no move");
  return *it;
}

}  // namespace

MoveAnalysis::MoveAnalysis(const MoveSet& moves,
                           const std::vector<ProcId>& schedule) {
  validate_move_set(moves);
  std::unordered_set<ProcId> scheduled;
  for (const ProcId p : schedule) {
    LLSC_EXPECTS(scheduled.insert(p).second,
                 "a schedule may contain each process at most once");
    const MoveOp& m = move_of(moves, p);
    // source(dst, sigma·p) = source(src, sigma);
    // movers(dst, sigma·p) = movers(src, sigma) · p.
    Entry src_entry{m.src, {}};
    if (const auto it = entries_.find(m.src); it != entries_.end()) {
      src_entry = it->second;
    }
    src_entry.movers.push_back(p);
    entries_[m.dst] = std::move(src_entry);
  }
}

RegId MoveAnalysis::source(RegId r) const {
  const auto it = entries_.find(r);
  return it == entries_.end() ? r : it->second.source;
}

std::vector<ProcId> MoveAnalysis::movers(RegId r) const {
  const auto it = entries_.find(r);
  return it == entries_.end() ? std::vector<ProcId>{} : it->second.movers;
}

std::vector<RegId> MoveAnalysis::touched() const {
  std::vector<RegId> out;
  out.reserve(entries_.size());
  for (const auto& [r, _] : entries_) out.push_back(r);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ProcId> secretive_complete_schedule(const MoveSet& moves) {
  validate_move_set(moves);

  // Index the pending moves by destination register.
  std::unordered_map<RegId, std::vector<ProcId>> by_dst;
  std::unordered_map<ProcId, const MoveOp*> by_proc;
  for (const MoveOp& m : moves) {
    by_dst[m.dst].push_back(m.proc);
    by_proc[m.proc] = &m;
  }
  for (auto& [_, procs] : by_dst) std::sort(procs.begin(), procs.end());

  std::vector<ProcId> sigma;
  sigma.reserve(moves.size());
  std::unordered_set<ProcId> remaining;
  for (const MoveOp& m : moves) remaining.insert(m.proc);
  // Registers closed in stage 1: they have exactly one mover and no
  // remaining incoming moves, so their contents are stable from now on.
  std::unordered_set<RegId> closed;

  // Stage 1 (Figure 1): repeatedly pick an unscheduled process p whose
  // source register is fresh (not yet moved into), then schedule every
  // remaining process whose destination is p's destination, p last.
  //
  // A process is eligible as the pick only while its source is fresh, and
  // freshness is only ever LOST (when a register closes), so a one-pass
  // worklist suffices: seed it with every process in id order; at pop
  // time, a process that was meanwhile scheduled or whose source closed is
  // simply skipped (the latter is exactly the stage-2 remainder). This
  // keeps the construction near-linear in |S| instead of quadratic.
  std::vector<ProcId> worklist;
  worklist.reserve(moves.size());
  for (const MoveOp& m : moves) worklist.push_back(m.proc);
  std::sort(worklist.begin(), worklist.end());
  for (const ProcId pick : worklist) {
    if (!remaining.contains(pick)) continue;          // already scheduled
    const MoveOp& m = *by_proc.at(pick);
    if (closed.contains(m.src)) continue;             // stage-2 material
    for (const ProcId q : by_dst.at(m.dst)) {
      if (q != pick && remaining.erase(q) > 0) sigma.push_back(q);
    }
    remaining.erase(pick);
    sigma.push_back(pick);
    closed.insert(m.dst);
  }

  // Stage 2: the source of every remaining move is a closed register (one
  // mover, stable); append the remainder in id order. Each such move leaves
  // its destination with exactly two movers.
  std::vector<ProcId> tail(remaining.begin(), remaining.end());
  std::sort(tail.begin(), tail.end());
  sigma.insert(sigma.end(), tail.begin(), tail.end());

  LLSC_CHECK(sigma.size() == moves.size());
  return sigma;
}

bool is_secretive_complete(const MoveSet& moves,
                           const std::vector<ProcId>& schedule) {
  if (schedule.size() != moves.size()) return false;
  std::unordered_set<ProcId> in_schedule(schedule.begin(), schedule.end());
  if (in_schedule.size() != schedule.size()) return false;
  for (const MoveOp& m : moves) {
    if (!in_schedule.contains(m.proc)) return false;
  }
  const MoveAnalysis analysis(moves, schedule);
  for (const RegId r : analysis.touched()) {
    if (analysis.movers(r).size() > 2) return false;
  }
  return true;
}

std::vector<ProcId> restrict_schedule(
    const std::vector<ProcId>& schedule,
    const std::unordered_set<ProcId>& subset) {
  std::vector<ProcId> out;
  out.reserve(schedule.size());
  for (const ProcId p : schedule) {
    if (subset.contains(p)) out.push_back(p);
  }
  return out;
}

bool restriction_preserves_source(const MoveSet& moves,
                                  const std::vector<ProcId>& schedule,
                                  const std::unordered_set<ProcId>& subset,
                                  RegId r) {
  const MoveAnalysis full(moves, schedule);
  for (const ProcId p : full.movers(r)) {
    LLSC_EXPECTS(subset.contains(p),
                 "Lemma 4.2 requires the subset to contain all movers of R");
  }
  // Restrict the move set to the subset as well: processes outside the
  // subset do not take steps in the restricted run.
  MoveSet sub_moves;
  for (const MoveOp& m : moves) {
    if (subset.contains(m.proc)) sub_moves.push_back(m);
  }
  const MoveAnalysis restricted(sub_moves,
                                restrict_schedule(schedule, subset));
  return full.source(r) == restricted.source(r);
}

}  // namespace llsc
