// Secretive complete schedules for move operations (paper Section 4).
//
// If every process with a pending move is scheduled naively (say, in id
// order), a chain move(R0->R1), move(R1->R2), ..., move(R_{n-1}->R_n) lets a
// later reader of R_n infer that *all* n processes took a step — far too
// much information for an indistinguishability argument. The paper shows
// (Lemma 4.1) that any set of pending moves can instead be ordered so that
// for every register R, at most TWO processes are "responsible" for the
// value that ends up in R (its movers), and (Lemma 4.2) that scheduling any
// superset of those movers alone moves the same source value into R.
//
// This file implements the paper's inductive source/movers definitions, the
// two-stage construction of Figure 1, and checkers for both lemmas (used by
// the property tests and the E6 bench).
#ifndef LLSC_SCHED_SECRETIVE_SCHEDULE_H_
#define LLSC_SCHED_SECRETIVE_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "memory/op.h"

namespace llsc {

// One pending move: process `proc` is about to perform move(src -> dst).
struct MoveOp {
  ProcId proc = -1;
  RegId src = 0;
  RegId dst = 0;

  bool operator==(const MoveOp&) const = default;
  std::string to_string() const;
};

// The paper's (S, f): the set S of processes with pending moves and the
// function f giving each one's operation. Each process appears at most once.
using MoveSet = std::vector<MoveOp>;

// source/movers of every register after applying a schedule (a sequence of
// process ids drawn from the MoveSet) — the inductive definitions of
// Section 4. Registers never moved into keep source == self, movers == λ.
class MoveAnalysis {
 public:
  // Computes the analysis of `schedule` with respect to `moves`.
  // Precondition: every id in `schedule` appears in `moves`, at most once.
  MoveAnalysis(const MoveSet& moves, const std::vector<ProcId>& schedule);

  // source(R, σ, (S,f)): which register's original value R now holds.
  RegId source(RegId r) const;
  // movers(R, σ, (S,f)): the processes responsible, in order.
  std::vector<ProcId> movers(RegId r) const;
  // All registers whose source differs from themselves or whose movers are
  // non-empty (i.e. registers some move targeted).
  std::vector<RegId> touched() const;

 private:
  struct Entry {
    RegId source;
    std::vector<ProcId> movers;
  };
  std::unordered_map<RegId, Entry> entries_;
};

// Constructs a secretive complete schedule for `moves` via the two-stage
// algorithm of Figure 1. The result contains every process of `moves`
// exactly once, and for every register the movers list has length <= 2
// (Lemma 4.1). Choices the paper leaves free are made deterministically
// (lowest-id first), so the output is reproducible.
std::vector<ProcId> secretive_complete_schedule(const MoveSet& moves);

// True iff `schedule` is complete w.r.t. `moves` (every process exactly
// once) and every register has at most two movers.
bool is_secretive_complete(const MoveSet& moves,
                           const std::vector<ProcId>& schedule);

// Lemma 4.2 check: for the given register, restricting `schedule` to
// `subset` (which must contain all of R's movers) preserves R's source.
bool restriction_preserves_source(const MoveSet& moves,
                                  const std::vector<ProcId>& schedule,
                                  const std::unordered_set<ProcId>& subset,
                                  RegId r);

// σ|A: the subsequence of `schedule` containing exactly the ids in `subset`.
std::vector<ProcId> restrict_schedule(const std::vector<ProcId>& schedule,
                                      const std::unordered_set<ProcId>& subset);

}  // namespace llsc

#endif  // LLSC_SCHED_SECRETIVE_SCHEDULE_H_
