#include "sched/scheduler.h"

#include "util/check.h"

namespace llsc {

namespace {

RunOutcome finish(const System& sys, std::uint64_t steps) {
  return RunOutcome{.all_terminated = sys.all_done(),
                    .steps_executed = steps,
                    .max_shared_ops = sys.max_shared_ops()};
}

}  // namespace

// Schedulers skip non-runnable() processes: a crash-stopped process takes
// no further steps (looping on done() alone would spin forever on a run
// with an injected crash), while a crashed process whose RecoverySpec owes
// it a restart still counts as schedulable — step() revives it first.
RunOutcome RoundRobinScheduler::run(System& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!sys.all_halted() && steps < max_steps) {
    for (ProcId p = 0; p < sys.num_processes() && steps < max_steps; ++p) {
      if (sys.runnable(p)) {
        sys.step(p);
        ++steps;
      }
    }
  }
  return finish(sys, steps);
}

RunOutcome RandomScheduler::run(System& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  std::vector<ProcId> live;
  while (steps < max_steps) {
    live.clear();
    for (ProcId p = 0; p < sys.num_processes(); ++p) {
      if (sys.runnable(p)) live.push_back(p);
    }
    if (live.empty()) break;
    const ProcId p = live[rng_.next_below(live.size())];
    sys.step(p);
    ++steps;
  }
  return finish(sys, steps);
}

RunOutcome SequentialScheduler::run(System& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    while (sys.runnable(p) && steps < max_steps) {
      sys.step(p);
      ++steps;
    }
  }
  return finish(sys, steps);
}

RunOutcome ScriptedScheduler::run(System& sys, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  for (const ProcId p : script_) {
    if (steps >= max_steps || sys.all_halted()) break;
    LLSC_EXPECTS(p >= 0 && p < sys.num_processes(),
                 "scripted process id out of range");
    if (sys.runnable(p)) {
      sys.step(p);
      ++steps;
    }
  }
  if (!sys.all_halted() && steps < max_steps) {
    RoundRobinScheduler fallback;
    RunOutcome tail = fallback.run(sys, max_steps - steps);
    tail.steps_executed += steps;
    return tail;
  }
  return finish(sys, steps);
}

}  // namespace llsc
