// System: n processes + shared memory + a toss assignment = one run.
//
// A System instance embodies one run of an algorithm: schedulers pick which
// process moves next, the System executes that step against the shared
// memory (or serves the coin toss from the assignment), counts it, and
// optionally records a transcript. Complexity accounting follows the
// paper's Section 3: t(p, R) is Process::shared_ops(), t(R) is
// max_shared_ops(), and expected complexities are averages of t(R) over
// sampled toss assignments (Lemma 3.1).
#ifndef LLSC_RUNTIME_SYSTEM_H_
#define LLSC_RUNTIME_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/fault.h"
#include "hw/platform.h"
#include "memory/shared_memory.h"
#include "runtime/process.h"
#include "runtime/toss.h"

namespace llsc {

// The simulator's Platform (hw/platform.h): steps are DEFERRED — a
// suspended process exposes its pending step and a scheduler decides when
// it executes — and when one executes it goes against the paper-exact
// SharedMemory, with tosses served from the run's pre-committed
// assignment. System owns one of these and registers it with every
// process, making the simulator and the hw backend two implementations of
// the same step interface.
class SimPlatform final : public Platform {
 public:
  SimPlatform(SharedMemory* memory, const TossAssignment* tosses)
      : memory_(memory), tosses_(tosses) {}

  bool synchronous() const override { return false; }
  // Out of line (system.cc): routes through the fault injector when one is
  // installed, so an injected fault schedule replays identically here and
  // on the hw backend.
  OpResult apply(ProcId p, const PendingOp& op) override;
  std::uint64_t toss(ProcId p, std::uint64_t j) override {
    return tosses_->outcome(p, j);
  }
  std::string name() const override { return "sim"; }

  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  SharedMemory* memory_;
  const TossAssignment* tosses_;
  FaultInjector* fault_ = nullptr;
};

class System {
 public:
  // Creates processes p_0..p_{n-1}, each running body(ctx, i, n).
  // The toss assignment defaults to all-zeros.
  System(int n, const ProcBody& body,
         std::shared_ptr<const TossAssignment> tosses = nullptr);

  int num_processes() const { return static_cast<int>(procs_.size()); }
  SharedMemory& memory() { return memory_; }
  const SharedMemory& memory() const { return memory_; }
  Process& process(ProcId p);
  const Process& process(ProcId p) const;

  // --- step execution (used by schedulers) ---

  // Perform one step of process p: a coin toss if one is pending, otherwise
  // the pending shared-memory operation. Starts the process if needed.
  // Precondition: p is not done.
  void step(ProcId p);

  // Phase-1 behaviour of the paper's adversary: run p's local coin tosses
  // until p terminates or its next step is a shared-memory operation.
  // (Starts p if it has not run yet.) Returns the number of tosses served.
  std::uint64_t advance_through_tosses(ProcId p);

  // Execute p's pending shared-memory operation and return the record.
  // Precondition: p's pending step is an operation and p has not crashed.
  OpRecord execute_pending_op(ProcId p);

  // --- fault injection (hw/fault.h) ---

  // Install a fault injector for this run (nullptr to remove). The caller
  // owns it and keeps it alive for the run; schedulers must consult
  // maybe_crash(p) before executing p's pending op. Adversarial placement
  // (hw/fault_adversary.h) rides through this same seam: the injector
  // consults its FaultStrategy inside apply(), so the simulator needs no
  // extra wiring to record or replay adaptive schedules.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return fault_; }
  // If the installed plan crash-stops p at its current op count, freeze p
  // now. Returns true when p is (now or already) crashed.
  bool maybe_crash(ProcId p);
  // If p is crashed and the plan's RecoverySpec allows it to rejoin,
  // recover it now: the injector consumes the crash (pure delay/cursor
  // accounting — hw sleeps the delay; here the adversary owns schedule
  // time) and p either resumes its suspended frame (amnesia=false) or
  // restarts its body from scratch with links invalidated (amnesia=true).
  // Returns true when p was recovered by this call.
  bool maybe_recover(ProcId p);
  // True when p can take a step now — not halted, or crashed with a
  // recovery still owed. Schedulers loop on this instead of !halted() so
  // a recoverable process is neither skipped forever nor spun on.
  bool runnable(ProcId p) const;

  // --- run state ---

  bool all_done() const;
  // True when no process will ever take another step: every process is
  // done, or crashed with no recovery owed. A crashed process the fault
  // plan will revive does NOT halt the run.
  bool all_halted() const;
  // Number of processes that have terminated.
  int num_done() const;
  // Number of crash-stopped processes.
  int num_crashed() const;
  // max over p of t(p, run-so-far) — the paper's t(R).
  std::uint64_t max_shared_ops() const;
  // Total shared-memory steps executed so far.
  std::uint64_t total_shared_ops() const { return next_step_index_; }

  // --- event clock (local + shared steps) ---

  // Monotone clock ticking on every executed step (coin tosses included).
  std::uint64_t event_clock() const { return event_clock_; }
  // Clock value just after p's first step, or 0 if p has not stepped.
  std::uint64_t first_event(ProcId p) const;
  // Clock value at which p terminated, or 0 if p is still live. A process
  // that terminates without taking any step gets the current clock value,
  // floored to 1 so that "has terminated" is distinguishable.
  std::uint64_t completion_event(ProcId p) const;

  // --- transcript ---

  // Transcripts are on by default; heavy benches can disable them.
  void set_recording(bool on) { recording_ = on; }
  const std::vector<OpRecord>& trace() const { return trace_; }

 private:
  SharedMemory memory_;
  std::vector<std::unique_ptr<Process>> procs_;
  // Kept so maybe_recover can rebuild an amnesiac process's coroutine; the
  // new frame reads ProcCtx::incarnation() to skip one-time construction.
  ProcBody body_;
  std::shared_ptr<const TossAssignment> tosses_;
  // Declared after memory_ and tosses_ (it points into both).
  SimPlatform platform_;
  FaultInjector* fault_ = nullptr;
  // Marks completion/first-step clocks for p after it executed a step.
  void note_step(ProcId p);

  std::vector<OpRecord> trace_;
  std::uint64_t next_step_index_ = 0;
  std::uint64_t event_clock_ = 0;
  std::vector<std::uint64_t> first_event_;
  std::vector<std::uint64_t> completion_event_;
  bool recording_ = true;
};

}  // namespace llsc

#endif  // LLSC_RUNTIME_SYSTEM_H_
