#include "runtime/system.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

OpResult SimPlatform::apply(ProcId p, const PendingOp& op) {
  if (fault_ == nullptr) return memory_->apply(p, op);
  return fault_->apply(
      p, op, [&](const PendingOp& o) { return memory_->apply(p, o); },
      [](std::uint32_t) {
        // Deferred platform: a stall is schedule time, not wall time — the
        // decision is counted (FaultStats) and the adversary/scheduler
        // already owns when this process moves next.
      });
}

System::System(int n, const ProcBody& body,
               std::shared_ptr<const TossAssignment> tosses)
    : body_(body),
      tosses_(tosses ? std::move(tosses)
                     : std::make_shared<ZeroTossAssignment>()),
      platform_(&memory_, tosses_.get()) {
  LLSC_EXPECTS(n >= 1, "a system needs at least one process");
  first_event_.assign(static_cast<std::size_t>(n), 0);
  completion_event_.assign(static_cast<std::size_t>(n), 0);
  procs_.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) {
    auto proc = std::make_unique<Process>(i, n);
    proc->set_platform(&platform_);
    proc->attach(body(ProcCtx(proc.get()), i, n));
    procs_.push_back(std::move(proc));
  }
}

Process& System::process(ProcId p) {
  LLSC_EXPECTS(p >= 0 && p < num_processes(), "process id out of range");
  return *procs_[static_cast<std::size_t>(p)];
}

const Process& System::process(ProcId p) const {
  LLSC_EXPECTS(p >= 0 && p < num_processes(), "process id out of range");
  return *procs_[static_cast<std::size_t>(p)];
}

void System::step(ProcId p) {
  Process& proc = process(p);
  if (proc.crashed()) {
    LLSC_EXPECTS(maybe_recover(p), "cannot step a crashed process");
    // An amnesiac restart leaves kNotStarted and falls into the start
    // branch below; a resumed frame continues at its suspension point.
  }
  LLSC_EXPECTS(!proc.halted(), "cannot step a halted process");
  if (proc.step_kind() == StepKind::kNotStarted) {
    proc.start();
    if (proc.done()) note_step(p);  // terminated without any step
    return;  // running to the first suspension point is local computation
  }
  if (proc.step_kind() == StepKind::kToss) {
    proc.deliver_toss(platform_.toss(p, proc.num_tosses()));
    ++event_clock_;
    note_step(p);
    return;
  }
  if (maybe_crash(p)) return;  // crash-stop instead of the pending op
  execute_pending_op(p);
}

std::uint64_t System::advance_through_tosses(ProcId p) {
  Process& proc = process(p);
  if (proc.step_kind() == StepKind::kNotStarted) proc.start();
  std::uint64_t served = 0;
  while (proc.step_kind() == StepKind::kToss) {
    proc.deliver_toss(platform_.toss(p, proc.num_tosses()));
    ++event_clock_;
    ++served;
  }
  note_step(p);
  return served;
}

OpRecord System::execute_pending_op(ProcId p) {
  Process& proc = process(p);
  LLSC_EXPECTS(!proc.crashed(), "cannot execute an op of a crashed process");
  LLSC_EXPECTS(proc.step_kind() == StepKind::kOp,
               "execute_pending_op() requires a pending operation");
  OpRecord rec;
  rec.proc = p;
  rec.op = proc.pending_op();
  rec.result = platform_.apply(p, rec.op);
  rec.step_index = next_step_index_++;
  proc.deliver_op_result(rec.result);
  ++event_clock_;
  note_step(p);
  if (recording_) trace_.push_back(rec);
  return rec;
}

void System::set_fault_injector(FaultInjector* injector) {
  LLSC_EXPECTS(injector == nullptr ||
                   injector->num_processes() >= num_processes(),
               "fault injector sized for fewer processes than the system");
  fault_ = injector;
  platform_.set_fault_injector(injector);
}

bool System::maybe_crash(ProcId p) {
  Process& proc = process(p);
  if (proc.crashed()) return true;
  if (fault_ == nullptr || proc.done()) return false;
  if (!fault_->crash_pending(p, proc.shared_ops())) return false;
  proc.mark_crashed();
  fault_->note_crash(p);
  return true;
}

bool System::maybe_recover(ProcId p) {
  Process& proc = process(p);
  if (!proc.crashed() || fault_ == nullptr) return false;
  RecoverySpec spec;
  if (!fault_->recovery_spec(p, &spec)) return false;
  // Pure accounting: the delay is charged to FaultStats::recovery_units;
  // on the deferred platform the adversary owns schedule time, so the
  // rejoin takes effect at whatever point the scheduler called us.
  fault_->note_recovery(p);
  if (spec.amnesia) {
    memory_.invalidate_links(p);
    proc.restart(body_);
  } else {
    proc.mark_recovered();
  }
  return true;
}

bool System::runnable(ProcId p) const {
  const Process& proc = process(p);
  if (!proc.halted()) return true;
  return proc.crashed() && fault_ != nullptr && fault_->recovery_pending(p);
}

bool System::all_done() const {
  return std::all_of(procs_.begin(), procs_.end(),
                     [](const auto& p) { return p->done(); });
}

bool System::all_halted() const {
  for (ProcId p = 0; p < num_processes(); ++p) {
    if (runnable(p)) return false;
  }
  return true;
}

int System::num_done() const {
  return static_cast<int>(
      std::count_if(procs_.begin(), procs_.end(),
                    [](const auto& p) { return p->done(); }));
}

int System::num_crashed() const {
  return static_cast<int>(
      std::count_if(procs_.begin(), procs_.end(),
                    [](const auto& p) { return p->crashed(); }));
}

void System::note_step(ProcId p) {
  const std::size_t i = static_cast<std::size_t>(p);
  const Process& proc = *procs_[i];
  if (first_event_[i] == 0 &&
      (proc.shared_ops() > 0 || proc.num_tosses() > 0)) {
    first_event_[i] = event_clock_ == 0 ? 1 : event_clock_;
  }
  if (completion_event_[i] == 0 && proc.done()) {
    completion_event_[i] = event_clock_ == 0 ? 1 : event_clock_;
  }
}

std::uint64_t System::first_event(ProcId p) const {
  return first_event_[static_cast<std::size_t>(p)];
}

std::uint64_t System::completion_event(ProcId p) const {
  return completion_event_[static_cast<std::size_t>(p)];
}

std::uint64_t System::max_shared_ops() const {
  std::uint64_t best = 0;
  for (const auto& p : procs_) best = std::max(best, p->shared_ops());
  return best;
}

}  // namespace llsc
