#include "runtime/toss.h"

#include "util/rng.h"

namespace llsc {

std::uint64_t SeededTossAssignment::outcome(ProcId p,
                                            std::uint64_t j) const {
  // Stateless hash of (seed, p, j): replayable and order-independent.
  return mix64(seed_ ^ mix64(static_cast<std::uint64_t>(p) * 0x100000001B3ULL ^
                             mix64(j)));
}

void TableTossAssignment::set(ProcId p, std::uint64_t j,
                              std::uint64_t outcome) {
  table_[{p, j}] = outcome;
}

std::uint64_t TableTossAssignment::outcome(ProcId p, std::uint64_t j) const {
  const auto it = table_.find({p, j});
  return it == table_.end() ? fallback_ : it->second;
}

}  // namespace llsc
