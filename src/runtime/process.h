// Process control blocks and the awaitable interface algorithms use.
//
// A simulated process alternates local steps (coin tosses) and shared-memory
// steps, per the paper's model. Between steps it is suspended, and its
// control block reports what it wants to do next:
//
//   kNotStarted — created, has not executed any local computation yet
//   kToss       — next step is a local coin toss
//   kOp         — next step is a shared-memory operation (pending_op())
//   kDone       — terminated, result() is available
//
// Algorithm code receives a ProcCtx and writes straight-line logic:
//
//   SimTask body(ProcCtx ctx) {
//     Value v = co_await ctx.ll(0);
//     ScResult r = co_await ctx.sc(0, Value::of_u64(1));
//     std::uint64_t coin = co_await ctx.toss(2);
//     co_return Value::of_u64(r.ok && coin ? 1 : 0);
//   }
#ifndef LLSC_RUNTIME_PROCESS_H_
#define LLSC_RUNTIME_PROCESS_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "memory/op.h"
#include "memory/value.h"
#include "runtime/sim_task.h"

namespace llsc {

class Platform;
class Process;

enum class StepKind : std::uint8_t {
  kNotStarted,
  kToss,
  kOp,
  kDone,
  // Suspended at a cooperative yield point on an oversubscribed
  // synchronous platform (hw/oversub_executor.h): the last op's result is
  // already latched in the process block and resume_yielded() continues
  // the body. Never observed on the simulator or a 1:1 hw run.
  kYielded,
};

const char* step_kind_name(StepKind kind);

// Result of an SC as surfaced to algorithm code.
struct ScResult {
  bool ok = false;
  // Previous value on success; current value on failure (the paper's
  // strengthened SC response).
  Value value;
};

// Result of a validate as surfaced to algorithm code.
struct VlResult {
  bool ok = false;  // true iff the caller's link is still live
  Value value;      // the register's current value
};

namespace internal {
struct OpAwaitableBase;
struct LlAwaitable;
struct ScAwaitable;
struct VlAwaitable;
struct ReadAwaitable;
struct SwapAwaitable;
struct MoveAwaitable;
struct RmwAwaitable;
struct TossAwaitable;
struct YieldAwaitable;
}  // namespace internal

// Handle through which a coroutine body talks to its control block. Cheap
// to copy; valid as long as the owning Process lives.
class ProcCtx {
 public:
  explicit ProcCtx(Process* proc) : proc_(proc) {}

  ProcId id() const;
  int num_processes() const;
  // Restart count of the owning process: 0 for the original body, +1 per
  // amnesia recovery (hw/fault.h). Lets a shared-state builder guard
  // one-time construction against re-running when its body restarts.
  std::uint32_t incarnation() const;

  // --- awaitables (each is one step of the paper's model) ---

  // LL(r): links and returns the register value.
  internal::LlAwaitable ll(RegId r) const;
  // SC(r, v): conditional store; see ScResult.
  internal::ScAwaitable sc(RegId r, Value v) const;
  // validate(r): link-validity flag plus current value.
  internal::VlAwaitable validate(RegId r) const;
  // A plain read — validate's value component (the model has no separate
  // read operation; see paper Section 3). Returns Value.
  internal::ReadAwaitable read(RegId r) const;
  // swap(r, v): unconditional store returning the previous value.
  internal::SwapAwaitable swap(RegId r, Value v) const;
  // move(src, dst): copies value(src) into dst; returns only an ack.
  internal::MoveAwaitable move(RegId src, RegId dst) const;
  // RMW(r, f): the Section 7 strong operation — value(r) <- f(value(r)),
  // returns the old value. NOT schedulable by the Fig. 2 adversary.
  internal::RmwAwaitable rmw(RegId r,
                             std::shared_ptr<const RmwFunction> f) const;

  // Local coin toss. `range` > 0 yields a value in [0, range); range == 0
  // yields the raw 64-bit outcome. Either way this consumes exactly one
  // outcome of the toss assignment.
  internal::TossAwaitable toss(std::uint64_t range) const;

  // Cooperative yield point — NOT a step of the paper's model (no shared
  // op, no toss, no counter changes). On an oversubscribed platform the
  // coroutine gives its carrier thread back to the scheduler; everywhere
  // else (simulator, 1:1 hw) it is a no-op that never suspends. Lets
  // open-loop service bodies wait for an arrival time without pinning a
  // thread (hw/service.h).
  internal::YieldAwaitable yield() const;

 private:
  Process* proc_;
};

// Algorithm: builds the coroutine body for process `id` of `n`.
using ProcBody = std::function<SimTask(ProcCtx, ProcId, int)>;

// Control block of one simulated process. Owned by System; exposes the
// pending step to schedulers and carries step counters.
class Process {
 public:
  Process(ProcId id, int n) : id_(id), n_(n) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcId id() const { return id_; }
  int num_processes() const { return n_; }

  // The platform this process's steps execute on (hw/platform.h). A null
  // or deferred platform keeps the classic simulator behaviour: awaitables
  // suspend and a scheduler delivers results. A synchronous platform makes
  // every awaitable execute its step inline, so start() runs the whole
  // body to completion on the calling thread. Set before start().
  void set_platform(Platform* platform) { platform_ = platform; }
  Platform* platform() const { return platform_; }

  // Attach the coroutine (done once by the owning executor/System).
  void attach(SimTask task);

  StepKind step_kind() const { return kind_; }
  bool done() const { return kind_ == StepKind::kDone; }
  // Crash-stopped by fault injection (hw/fault.h): the process froze at an
  // op boundary and will take no further steps; result() stays unavailable
  // and its pending step must never be executed.
  bool crashed() const { return crashed_; }
  // done-or-crashed: this process will take no further steps. Schedulers
  // and the adversary loop on this, not done(), so a crashed process
  // cannot spin a schedule forever.
  bool halted() const { return done() || crashed_; }
  // Freeze the process permanently. Precondition: !done(). Idempotent.
  void mark_crashed();
  // Crash-recovery without amnesia: lift the crash flag and leave the
  // suspended frame exactly where it froze — the pending step executes
  // next, a pause rather than a rebirth. Precondition: crashed().
  void mark_recovered();
  // Crash-recovery WITH amnesia: drop the suspended coroutine frame (all
  // private state is lost), bump incarnation(), and attach a fresh body
  // built by `body` — which observes the NEW incarnation via
  // ProcCtx::incarnation(). Cumulative counters (shared_ops, num_tosses)
  // are preserved so the fault-decision and toss streams continue where
  // the dead incarnation left off. Also usable on an unwound hw process
  // (whose frame completed by exception), so no crashed() precondition.
  void restart(const ProcBody& body);
  // Amnesia restarts taken so far (0 = original incarnation).
  std::uint32_t incarnation() const { return incarnation_; }
  // Pending shared-memory operation. Precondition: step_kind() == kOp.
  const PendingOp& pending_op() const;
  // Range of the pending toss (0 = raw u64). Precondition: kind == kToss.
  std::uint64_t pending_toss_range() const;

  // Deliver the result of the pending op and resume to the next suspension
  // point. Precondition: step_kind() == kOp. Increments shared_ops().
  void deliver_op_result(OpResult result);
  // Deliver a raw toss outcome and resume. Precondition: kind == kToss.
  // Increments num_tosses().
  void deliver_toss(std::uint64_t raw_outcome);
  // Run the coroutine to its first suspension point.
  // Precondition: kind == kNotStarted.
  void start();
  // Continue a coroutine suspended at a cooperative yield point (the
  // oversubscribed scheduler's resume edge). Precondition: kind ==
  // kYielded. Runs until the next yield suspension or completion.
  void resume_yielded();

  // Return value of the coroutine. Precondition: done().
  const Value& result() const;

  // t(p, R): number of shared-memory steps taken so far.
  std::uint64_t shared_ops() const { return shared_ops_; }
  // numtosses(p): number of coin tosses taken so far.
  std::uint64_t num_tosses() const { return num_tosses_; }

  std::string to_string() const;

 private:
  friend class ProcCtx;
  friend struct internal::OpAwaitableBase;
  friend struct internal::TossAwaitable;
  friend struct internal::YieldAwaitable;

  // Called from awaitables: route one step through the platform. Returns
  // true when the coroutine must stay suspended (deferred platform — a
  // scheduler will deliver the result), false when the step already
  // executed and the coroutine should continue inline (synchronous
  // platform). `frame` is the (possibly nested) coroutine that suspended;
  // in the deferred case deliver/resume must resume exactly that frame.
  bool submit_op(PendingOp op, std::coroutine_handle<> frame);
  bool submit_toss(std::uint64_t range, std::coroutine_handle<> frame);
  // ctx.yield(): true = suspend as kYielded (oversubscribed platform),
  // false = continue inline (everywhere else).
  bool submit_yield(std::coroutine_handle<> frame);

  void set_pending_op(PendingOp op, std::coroutine_handle<> frame) {
    pending_op_ = std::move(op);
    kind_ = StepKind::kOp;
    resume_handle_ = frame;
  }
  void set_pending_toss(std::uint64_t range, std::coroutine_handle<> frame) {
    toss_range_ = range;
    kind_ = StepKind::kToss;
    resume_handle_ = frame;
  }
  OpResult take_op_result() { return std::move(op_result_); }
  std::uint64_t toss_result() const { return toss_result_; }

  void resume();

  ProcId id_;
  int n_;
  Platform* platform_ = nullptr;
  SimTask task_;
  StepKind kind_ = StepKind::kNotStarted;
  PendingOp pending_op_;
  std::uint64_t toss_range_ = 0;
  // Innermost suspended coroutine frame (the top-level task until a nested
  // SubTask suspends on a shared-memory or toss awaitable).
  std::coroutine_handle<> resume_handle_;
  OpResult op_result_;             // result slot read by the op awaitables
  std::uint64_t toss_result_ = 0;  // result slot read by the toss awaitable
  std::uint64_t shared_ops_ = 0;
  std::uint64_t num_tosses_ = 0;
  std::uint32_t incarnation_ = 0;
  bool crashed_ = false;
};

namespace internal {

// Base behaviour shared by the operation awaitables: submit the step to
// the process's platform. Deferred platform (simulator): suspend with a
// pending op and pick up the OpResult the scheduler delivered on resume.
// Synchronous platform (hw): the step executes inside await_suspend, which
// returns false so the coroutine continues without ever suspending.
struct OpAwaitableBase {
  Process* proc;
  PendingOp op;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> frame) {
    return proc->submit_op(std::move(op), frame);
  }

 protected:
  OpResult take() { return proc->take_op_result(); }
};

struct LlAwaitable : OpAwaitableBase {
  Value await_resume() { return std::move(take().value); }
};

struct ScAwaitable : OpAwaitableBase {
  ScResult await_resume() {
    OpResult r = take();
    return ScResult{.ok = r.flag, .value = std::move(r.value)};
  }
};

struct VlAwaitable : OpAwaitableBase {
  VlResult await_resume() {
    OpResult r = take();
    return VlResult{.ok = r.flag, .value = std::move(r.value)};
  }
};

struct ReadAwaitable : OpAwaitableBase {
  Value await_resume() { return std::move(take().value); }
};

struct SwapAwaitable : OpAwaitableBase {
  Value await_resume() { return std::move(take().value); }
};

struct MoveAwaitable : OpAwaitableBase {
  void await_resume() { (void)take(); }
};

struct RmwAwaitable : OpAwaitableBase {
  Value await_resume() { return std::move(take().value); }
};

struct TossAwaitable {
  Process* proc;
  std::uint64_t range;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> frame) {
    return proc->submit_toss(range, frame);
  }
  std::uint64_t await_resume() {
    const std::uint64_t raw = proc->toss_result();
    return range == 0 ? raw : raw % range;
  }
};

struct YieldAwaitable {
  Process* proc;

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> frame) {
    return proc->submit_yield(frame);
  }
  void await_resume() {}
};

}  // namespace internal

inline internal::LlAwaitable ProcCtx::ll(RegId r) const {
  return {{proc_, PendingOp{.kind = OpKind::kLL, .reg = r, .src = 0, .arg = {}, .rmw = {}}}};
}

inline internal::VlAwaitable ProcCtx::validate(RegId r) const {
  return {{proc_, PendingOp{.kind = OpKind::kValidate, .reg = r, .src = 0, .arg = {}, .rmw = {}}}};
}

inline internal::ReadAwaitable ProcCtx::read(RegId r) const {
  return {{proc_, PendingOp{.kind = OpKind::kValidate, .reg = r, .src = 0, .arg = {}, .rmw = {}}}};
}

inline internal::ScAwaitable ProcCtx::sc(RegId r, Value v) const {
  return {{proc_,
           PendingOp{.kind = OpKind::kSC, .reg = r, .src = 0, .arg = std::move(v), .rmw = {}}}};
}

inline internal::SwapAwaitable ProcCtx::swap(RegId r, Value v) const {
  return {{proc_,
           PendingOp{.kind = OpKind::kSwap, .reg = r, .src = 0, .arg = std::move(v), .rmw = {}}}};
}

inline internal::MoveAwaitable ProcCtx::move(RegId src, RegId dst) const {
  // Self-moves are value no-ops and are excluded from the model so that the
  // Section 4 secretive-schedule machinery applies (see
  // sched/secretive_schedule.cc for the discussion).
  LLSC_EXPECTS(src != dst, "move(R, R) is excluded from the model");
  return {{proc_, PendingOp{.kind = OpKind::kMove, .reg = dst, .src = src, .arg = {}, .rmw = {}}}};
}

inline internal::RmwAwaitable ProcCtx::rmw(
    RegId r, std::shared_ptr<const RmwFunction> f) const {
  LLSC_EXPECTS(f != nullptr, "RMW requires a function");
  return {{proc_, PendingOp{.kind = OpKind::kRmw,
                            .reg = r,
                            .src = 0,
                            .arg = {},
                            .rmw = std::move(f)}}};
}

inline internal::TossAwaitable ProcCtx::toss(std::uint64_t range) const {
  return {proc_, range};
}

inline internal::YieldAwaitable ProcCtx::yield() const { return {proc_}; }

}  // namespace llsc

#endif  // LLSC_RUNTIME_PROCESS_H_
