#include "runtime/process.h"

#include "hw/platform.h"
#include "util/check.h"

namespace llsc {

const char* step_kind_name(StepKind kind) {
  switch (kind) {
    case StepKind::kNotStarted:
      return "not-started";
    case StepKind::kToss:
      return "toss";
    case StepKind::kOp:
      return "op";
    case StepKind::kDone:
      return "done";
    case StepKind::kYielded:
      return "yielded";
  }
  LLSC_UNREACHABLE("bad StepKind");
}

ProcId ProcCtx::id() const { return proc_->id(); }
int ProcCtx::num_processes() const { return proc_->num_processes(); }
std::uint32_t ProcCtx::incarnation() const { return proc_->incarnation(); }

void Process::attach(SimTask task) {
  LLSC_EXPECTS(!task_.valid(), "process already has a coroutine attached");
  LLSC_EXPECTS(task.valid(), "cannot attach an empty SimTask");
  task_ = std::move(task);
}

const PendingOp& Process::pending_op() const {
  LLSC_EXPECTS(kind_ == StepKind::kOp,
               "pending_op() requires a pending shared-memory step");
  return pending_op_;
}

std::uint64_t Process::pending_toss_range() const {
  LLSC_EXPECTS(kind_ == StepKind::kToss,
               "pending_toss_range() requires a pending toss");
  return toss_range_;
}

bool Process::submit_op(PendingOp op, std::coroutine_handle<> frame) {
  if (platform_ != nullptr && platform_->synchronous()) {
    // Synchronous platform (hw backend): the step happens now, on this
    // thread, and the coroutine usually continues without suspending. An
    // oversubscribed platform may ask the coroutine to give back its
    // carrier thread AFTER the op executed — the result is latched in
    // op_result_, the frame suspends as kYielded, and the awaitable's
    // await_resume reads the result when the scheduler resumes it.
    op_result_ = platform_->apply(id_, op);
    ++shared_ops_;
    if (platform_->yield_after_op(id_, op, op_result_)) {
      kind_ = StepKind::kYielded;
      resume_handle_ = frame;
      return true;
    }
    return false;
  }
  set_pending_op(std::move(op), frame);
  return true;
}

bool Process::submit_yield(std::coroutine_handle<> frame) {
  if (platform_ == nullptr || !platform_->yield_now(id_)) return false;
  kind_ = StepKind::kYielded;
  resume_handle_ = frame;
  return true;
}

bool Process::submit_toss(std::uint64_t range, std::coroutine_handle<> frame) {
  if (platform_ != nullptr && platform_->synchronous()) {
    toss_result_ = platform_->toss(id_, num_tosses_);
    ++num_tosses_;
    return false;
  }
  set_pending_toss(range, frame);
  return true;
}

void Process::deliver_op_result(OpResult result) {
  LLSC_EXPECTS(kind_ == StepKind::kOp,
               "deliver_op_result() requires a pending shared-memory step");
  op_result_ = std::move(result);
  ++shared_ops_;
  resume();
}

void Process::deliver_toss(std::uint64_t raw_outcome) {
  LLSC_EXPECTS(kind_ == StepKind::kToss,
               "deliver_toss() requires a pending toss");
  toss_result_ = raw_outcome;
  ++num_tosses_;
  resume();
}

void Process::start() {
  LLSC_EXPECTS(kind_ == StepKind::kNotStarted, "process already started");
  resume();
}

void Process::resume_yielded() {
  LLSC_EXPECTS(kind_ == StepKind::kYielded,
               "resume_yielded() requires a cooperatively yielded process");
  resume();
}

void Process::mark_crashed() {
  LLSC_EXPECTS(kind_ != StepKind::kDone,
               "cannot crash a terminated process");
  crashed_ = true;
}

void Process::mark_recovered() {
  LLSC_EXPECTS(crashed_, "mark_recovered() requires a crashed process");
  crashed_ = false;
}

void Process::restart(const ProcBody& body) {
  // Bump the incarnation BEFORE building the new body: builders read
  // ProcCtx::incarnation() at invocation time to guard one-time shared
  // construction against re-running.
  ++incarnation_;
  crashed_ = false;
  kind_ = StepKind::kNotStarted;
  resume_handle_ = {};
  op_result_ = OpResult{};
  toss_range_ = 0;
  // Destroying the old SimTask tears down the suspended (or exception-
  // unwound) frame stack; shared_ops_/num_tosses_ survive so the new
  // incarnation's fault and toss streams continue the cumulative count.
  SimTask task = body(ProcCtx(this), id_, n_);
  LLSC_EXPECTS(task.valid(), "restart body built an empty SimTask");
  task_ = std::move(task);
}

const Value& Process::result() const {
  LLSC_EXPECTS(kind_ == StepKind::kDone,
               "result() requires a terminated process");
  return task_.handle().promise().result;
}

void Process::resume() {
  LLSC_CHECK(task_.valid(), "process has no coroutine");
  // Resume the innermost suspended frame (the top-level task initially; a
  // nested SubTask if one suspended last). The stack will either set a new
  // pending step via an awaitable's await_suspend, or run to completion.
  kind_ = StepKind::kDone;  // default if no awaitable re-arms the block
  std::coroutine_handle<> frame =
      resume_handle_ ? resume_handle_
                     : std::coroutine_handle<>(task_.handle());
  frame.resume();
  const auto top = task_.handle();
  if (top.done() && top.promise().exception) {
    std::rethrow_exception(top.promise().exception);
  }
  // A coroutine stack must either complete or arm its next pending step.
  // The one known way to violate this is a GCC 12 codegen bug: a co_await
  // inside an if/while/switch *condition* gets a spurious extra suspension
  // that returns control here with nothing armed. Fail loudly rather than
  // silently treating the process as terminated — the fix is to bind the
  // awaited value to a named local before testing it.
  LLSC_CHECK(top.done() || kind_ != StepKind::kDone,
             "coroutine suspended without arming a pending step "
             "(co_await inside a condition? see process.cc)");
}

std::string Process::to_string() const {
  std::string s = "p" + std::to_string(id_) + "[" + step_kind_name(kind_);
  if (crashed_) s += " CRASHED";
  if (kind_ == StepKind::kOp) s += " " + pending_op_.to_string();
  s += ", ops=" + std::to_string(shared_ops_) +
       ", tosses=" + std::to_string(num_tosses_) + "]";
  return s;
}

}  // namespace llsc
