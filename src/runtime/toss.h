// Toss assignments (paper Section 5.2).
//
// A toss assignment is a function A : processes × N -> COIN-RANGE fixing, in
// advance, the outcome of every coin toss each process could ever perform.
// Fixing outcomes ahead of the run is exactly the paper's formalism — the
// scheduler "cannot influence or predict the outcomes of future coin tosses"
// but the (All,A)-run and (S,A)-run constructions must replay the *same*
// outcomes, indexed per process, in both runs. COIN-RANGE is modelled as the
// 64-bit integers (an arbitrary set, per the paper); algorithms reduce the
// raw outcome into whatever range they need via ProcCtx::toss(range).
#ifndef LLSC_RUNTIME_TOSS_H_
#define LLSC_RUNTIME_TOSS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "memory/op.h"

namespace llsc {

class TossAssignment {
 public:
  virtual ~TossAssignment() = default;
  // Outcome of the j-th toss (0-based) by process p. Must be a pure
  // function of (p, j) so runs replay identically.
  virtual std::uint64_t outcome(ProcId p, std::uint64_t j) const = 0;
};

// All outcomes zero — the canonical assignment for deterministic algorithms.
class ZeroTossAssignment final : public TossAssignment {
 public:
  std::uint64_t outcome(ProcId, std::uint64_t) const override { return 0; }
};

// Outcomes derived statelessly from a seed: an i.i.d.-uniform assignment,
// the sampling unit of the Lemma 3.1 Monte-Carlo estimator.
class SeededTossAssignment final : public TossAssignment {
 public:
  explicit SeededTossAssignment(std::uint64_t seed) : seed_(seed) {}
  std::uint64_t outcome(ProcId p, std::uint64_t j) const override;

 private:
  std::uint64_t seed_;
};

// Explicit table, for tests that pin particular outcomes; unlisted tosses
// fall back to a default value.
class TableTossAssignment final : public TossAssignment {
 public:
  explicit TableTossAssignment(std::uint64_t fallback = 0)
      : fallback_(fallback) {}
  void set(ProcId p, std::uint64_t j, std::uint64_t outcome);
  std::uint64_t outcome(ProcId p, std::uint64_t j) const override;

 private:
  std::map<std::pair<ProcId, std::uint64_t>, std::uint64_t> table_;
  std::uint64_t fallback_;
};

}  // namespace llsc

#endif  // LLSC_RUNTIME_TOSS_H_
