// Nested coroutines for library code (universal constructions, helpers).
//
// A process body (SimTask) can call library coroutines that themselves
// perform shared-memory steps:
//
//   SubTask<Value> UC::execute(ProcCtx ctx, ObjOp op) {
//     Value v = co_await ctx.ll(reg_);
//     ...
//     co_return response;
//   }
//
//   SimTask body(ProcCtx ctx, ProcId i, int n) {
//     ObjOp op{"fetch&increment", {}};   // named local: see warning below
//     Value r = co_await uc.execute(ctx, std::move(op));
//     co_return ...;
//   }
//
// Mechanics: co_awaiting a SubTask starts it via symmetric transfer; when
// the SubTask completes, control transfers back to the awaiting coroutine.
// While the SubTask is suspended on a shared-memory awaitable, the whole
// stack is suspended, and the Process control block remembers the
// *innermost* frame so the scheduler's deliver/resume reaches it (see
// Process::resume_handle_).
//
// TOOLCHAIN WARNING (GCC 12.x). Two coroutine codegen bugs constrain the
// style of every coroutine in this codebase:
//   1. `co_await` must never appear inside an if/while/switch *condition*
//      — GCC emits a spurious extra suspension there (caught at runtime by
//      an invariant in Process::resume). Bind the awaited value to a named
//      local, then test the local.
//   2. A braced-init temporary (e.g. `ObjOp{"dequeue", {}}`) must never
//      appear anywhere inside a `co_await` full-expression — GCC destroys
//      it twice (PR 104031 family), double-releasing any owned resources.
//      Construct the value in a named local and pass/move the local.
// Function-call temporaries (`Value::of_u64(3)`, `ctx.ll(r)`) are safe.
#ifndef LLSC_RUNTIME_SUB_TASK_H_
#define LLSC_RUNTIME_SUB_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>

namespace llsc {

template <typename T>
class SubTask {
 public:
  struct promise_type {
    T value{};
    std::exception_ptr exception;
    std::coroutine_handle<> continuation;

    SubTask get_return_object() {
      return SubTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Resume whoever co_awaited us; if nobody did (detached misuse),
        // fall back to a no-op.
        return h.promise().continuation ? h.promise().continuation
                                        : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SubTask() = default;
  explicit SubTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  SubTask(SubTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SubTask& operator=(SubTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~SubTask() { destroy(); }

  // Awaiter: start the child; deliver its value (or exception) on resume.
  struct Awaiter {
    std::coroutine_handle<promise_type> child;

    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
      child.promise().continuation = parent;
      return child;  // symmetric transfer into the child
    }
    T await_resume() {
      if (child.promise().exception) {
        std::rethrow_exception(child.promise().exception);
      }
      return std::move(child.promise().value);
    }
  };

  Awaiter operator co_await() && { return Awaiter{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace llsc

#endif  // LLSC_RUNTIME_SUB_TASK_H_
