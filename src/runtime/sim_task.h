// Coroutine type for simulated processes.
//
// A process body is a C++20 coroutine returning SimTask. Each shared-memory
// operation and each coin toss is a co_await that suspends the coroutine;
// while suspended, the process's control block (runtime/process.h) exposes
// the *pending* step so a scheduler can inspect it — the Fig. 2 adversary
// partitions processes by the type of their next shared-memory operation
// before deciding who runs when, which is exactly this inspection.
//
// The coroutine starts suspended (the scheduler decides when the first local
// computation happens) and finishes suspended (the frame stays alive until
// the owning Process is destroyed, so the return value can be read).
#ifndef LLSC_RUNTIME_SIM_TASK_H_
#define LLSC_RUNTIME_SIM_TASK_H_

#include <coroutine>
#include <exception>
#include <utility>

#include "memory/value.h"

namespace llsc {

class SimTask {
 public:
  struct promise_type {
    Value result;
    std::exception_ptr exception;

    SimTask get_return_object() {
      return SimTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(Value v) { result = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SimTask() = default;
  explicit SimTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  SimTask(const SimTask&) = delete;
  SimTask& operator=(const SimTask&) = delete;
  SimTask(SimTask&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  SimTask& operator=(SimTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  ~SimTask() { destroy(); }

  std::coroutine_handle<promise_type> handle() const { return handle_; }
  bool valid() const { return handle_ != nullptr; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace llsc

#endif  // LLSC_RUNTIME_SIM_TASK_H_
