// Linearizability checking (Wing & Gold style search).
//
// A history is linearizable with respect to a sequential specification if
// there is a total order of its operations that (a) extends the real-time
// precedence order (op A before op B whenever A responded before B was
// invoked), (b) keeps each process's operations in program order, and
// (c) is legal: replaying the order through the specification reproduces
// every recorded response.
//
// The checker runs a DFS over "next operation" choices. Per-process
// program order means only each process's earliest unchosen operation is a
// candidate, and a candidate is admissible iff its invocation precedes the
// response of every other unchosen operation. Visited configurations
// (per-process progress + object state fingerprint) are memoized.
#ifndef LLSC_LIN_CHECKER_H_
#define LLSC_LIN_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lin/history.h"
#include "objects/object.h"

namespace llsc {

struct LinResult {
  bool linearizable = false;
  // Indices into History::ops in witness order (filled when linearizable).
  std::vector<std::size_t> witness;
  std::uint64_t states_explored = 0;
  bool search_exhausted = true;  // false if the state cap was hit

  std::string summary() const;
};

// Checks `hist` against the type produced by `factory`. `max_states`
// bounds the memoized configurations explored (guards against pathological
// histories; search_exhausted reports whether the bound was hit).
LinResult check_linearizability(const History& hist,
                                const ObjectFactory& factory,
                                std::uint64_t max_states = 1 << 22);

}  // namespace llsc

#endif  // LLSC_LIN_CHECKER_H_
