#include "lin/history.h"

namespace llsc {

std::string HistOp::to_string() const {
  return "p" + std::to_string(proc) + " " + op.to_string() + " -> " +
         response.to_string() + " [" + std::to_string(inv_time) + "," +
         std::to_string(resp_time) + "]";
}

std::vector<std::size_t> History::by_process(ProcId p) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].proc == p) out.push_back(i);
  }
  return out;
}

std::string History::to_string() const {
  std::string s;
  for (const HistOp& op : ops) s += op.to_string() + "\n";
  return s;
}

SubTask<Value> HistoryRecorder::execute(ProcCtx ctx, ObjOp op) {
  const std::size_t slot = history_.ops.size();
  {
    HistOp rec;
    rec.proc = ctx.id();
    rec.op = op;
    rec.inv_time = ++clock_;
    history_.ops.push_back(std::move(rec));
  }
  Value response = co_await uc_->execute(ctx, std::move(op));
  HistOp& rec = history_.ops[slot];
  rec.response = response;
  rec.resp_time = ++clock_;
  co_return response;
}

}  // namespace llsc
