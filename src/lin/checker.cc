#include "lin/checker.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/check.h"

namespace llsc {

std::string LinResult::summary() const {
  return std::string(linearizable ? "linearizable" : "NOT linearizable") +
         " (" + std::to_string(states_explored) + " states" +
         (search_exhausted ? "" : ", cap hit") + ")";
}

namespace {

class Search {
 public:
  Search(const History& hist, const ObjectFactory& factory,
         std::uint64_t max_states)
      : hist_(hist), max_states_(max_states) {
    // Group operation indices by process, in invocation order (History
    // records invocations in clock order, so file order works).
    std::map<ProcId, std::vector<std::size_t>> lanes;
    for (std::size_t i = 0; i < hist.ops.size(); ++i) {
      lanes[hist.ops[i].proc].push_back(i);
    }
    for (auto& [_, lane] : lanes) lanes_.push_back(std::move(lane));
    progress_.assign(lanes_.size(), 0);
    object_ = factory();
  }

  LinResult run() {
    LinResult res;
    res.linearizable = dfs();
    res.states_explored = states_;
    res.search_exhausted = !cap_hit_;
    if (res.linearizable) res.witness = witness_;
    return res;
  }

 private:
  bool done() const {
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      if (progress_[l] < lanes_[l].size()) return false;
    }
    return true;
  }

  // Minimum response time among every lane's next unchosen op.
  std::uint64_t min_pending_resp() const {
    std::uint64_t best = ~std::uint64_t{0};
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      if (progress_[l] < lanes_[l].size()) {
        best = std::min(best, hist_.ops[lanes_[l][progress_[l]]].resp_time);
      }
    }
    return best;
  }

  std::string memo_key() const {
    std::string key;
    for (const std::size_t p : progress_) {
      key += std::to_string(p);
      key += ',';
    }
    key += '|';
    key += object_->state_fingerprint();
    return key;
  }

  bool dfs() {
    if (done()) return true;
    if (states_ >= max_states_) {
      cap_hit_ = true;
      return false;
    }
    const std::string key = memo_key();
    if (!visited_.insert(key).second) return false;
    ++states_;

    const std::uint64_t horizon = min_pending_resp();
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      if (progress_[l] >= lanes_[l].size()) continue;
      const std::size_t idx = lanes_[l][progress_[l]];
      const HistOp& cand = hist_.ops[idx];
      // Admissible iff nothing unchosen responded before cand was invoked.
      if (cand.inv_time > horizon) continue;
      // Legality: replay on a clone, compare the response.
      std::unique_ptr<SequentialObject> saved = object_->clone();
      const Value got = object_->apply(cand.op);
      if (got == cand.response) {
        ++progress_[l];
        witness_.push_back(idx);
        if (dfs()) return true;
        witness_.pop_back();
        --progress_[l];
      }
      object_ = std::move(saved);
    }
    return false;
  }

  const History& hist_;
  std::uint64_t max_states_;
  std::vector<std::vector<std::size_t>> lanes_;
  std::vector<std::size_t> progress_;
  std::unique_ptr<SequentialObject> object_;
  std::vector<std::size_t> witness_;
  std::unordered_set<std::string> visited_;
  std::uint64_t states_ = 0;
  bool cap_hit_ = false;
};

}  // namespace

LinResult check_linearizability(const History& hist,
                                const ObjectFactory& factory,
                                std::uint64_t max_states) {
  LLSC_EXPECTS(factory != nullptr, "need an object factory");
  for (const HistOp& op : hist.ops) {
    LLSC_EXPECTS(op.resp_time > op.inv_time,
                 "history contains an incomplete operation: " +
                     op.to_string());
  }
  return Search(hist, factory, max_states).run();
}

}  // namespace llsc
