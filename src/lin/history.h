// Concurrent operation histories.
//
// To validate that the universal constructions implement *linearizable*
// objects, we record each implemented operation's invocation and response
// against a logical clock, then search for a sequential witness
// (lin/checker.h). The recorder wraps a construction's execute(): the
// invocation timestamp is taken when the operation's coroutine first runs
// (inside the calling process's own step flow) and the response timestamp
// when it completes, so the recorded real-time order is exactly the
// simulated one.
#ifndef LLSC_LIN_HISTORY_H_
#define LLSC_LIN_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objects/object.h"
#include "universal/universal.h"

namespace llsc {

struct HistOp {
  ProcId proc = -1;
  ObjOp op;
  Value response;
  std::uint64_t inv_time = 0;
  std::uint64_t resp_time = 0;

  std::string to_string() const;
};

struct History {
  std::vector<HistOp> ops;

  // Operations of process p, in invocation order.
  std::vector<std::size_t> by_process(ProcId p) const;
  std::string to_string() const;
};

// Wraps a universal construction and records every operation routed
// through it. Must outlive the System whose processes use it.
class HistoryRecorder {
 public:
  explicit HistoryRecorder(UniversalConstruction& uc) : uc_(&uc) {}

  // Executes `op` through the wrapped construction, recording it.
  SubTask<Value> execute(ProcCtx ctx, ObjOp op);

  const History& history() const { return history_; }

 private:
  UniversalConstruction* uc_;
  History history_;
  std::uint64_t clock_ = 0;
};

}  // namespace llsc

#endif  // LLSC_LIN_HISTORY_H_
