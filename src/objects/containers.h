// Container object types of Theorem 6.2: queue and stack (initially
// holding n or more items for the wakeup reductions), plus a priority
// queue — not in the paper's list, but any container whose n-th removal
// is identifiable admits the same one-op reduction.
//
// Semantics:
//   queue:  enqueue(v) -> ack;  dequeue() -> oldest item, or nil if empty
//   stack:  push(v)    -> ack;  pop()     -> newest item, or nil if empty
//   pqueue: insert(k)  -> ack;  delete-min() -> smallest key, or nil
#ifndef LLSC_OBJECTS_CONTAINERS_H_
#define LLSC_OBJECTS_CONTAINERS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "objects/object.h"

namespace llsc {

class QueueObject final : public SequentialObject {
 public:
  QueueObject() = default;
  // Initial contents, front first.
  explicit QueueObject(std::vector<Value> initial);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "queue"; }

  std::size_t size() const { return items_.size(); }

 private:
  std::deque<Value> items_;
};

class StackObject final : public SequentialObject {
 public:
  StackObject() = default;
  // Initial contents, bottom first (the last element is the top).
  explicit StackObject(std::vector<Value> initial);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "stack"; }

  std::size_t size() const { return items_.size(); }

 private:
  std::vector<Value> items_;
};

// Min-priority queue over u64 keys.
class PriorityQueueObject final : public SequentialObject {
 public:
  PriorityQueueObject() = default;
  explicit PriorityQueueObject(std::vector<std::uint64_t> initial_keys);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "priority-queue"; }

  std::size_t size() const { return keys_.size(); }

 private:
  // Sorted multiset semantics via a sorted vector (objects are tiny).
  std::vector<std::uint64_t> keys_;
};

}  // namespace llsc

#endif  // LLSC_OBJECTS_CONTAINERS_H_
