#include "objects/basic.h"

#include "util/check.h"

namespace llsc {

Value RegisterObject::apply(const ObjOp& op) {
  if (op.name == "write") {
    state_ = op.arg;
    return Value{};
  }
  if (op.name == "read") return state_;
  LLSC_EXPECTS(false, "unknown operation on register: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> RegisterObject::clone() const {
  return std::make_unique<RegisterObject>(*this);
}

std::string RegisterObject::state_fingerprint() const {
  return "reg:" + state_.to_string();
}

CounterObject::CounterObject(unsigned bits, std::uint64_t initial)
    : mask_(bits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << bits) - 1),
      state_(initial & mask_) {
  LLSC_EXPECTS(bits >= 1 && bits <= 64, "CounterObject supports 1..64 bits");
}

Value CounterObject::apply(const ObjOp& op) {
  if (op.name == "increment") {
    state_ = (state_ + 1) & mask_;
    return Value{};  // increment returns just an acknowledgement
  }
  if (op.name == "read") return Value::of_u64(state_);
  LLSC_EXPECTS(false, "unknown operation on counter: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> CounterObject::clone() const {
  return std::make_unique<CounterObject>(*this);
}

std::string CounterObject::state_fingerprint() const {
  return "ctr:" + std::to_string(state_);
}

Value CasObject::apply(const ObjOp& op) {
  if (op.name == "cas") {
    const CasArgs* args = op.arg.get_if<CasArgs>();
    LLSC_EXPECTS(args != nullptr, "cas requires a CasArgs argument");
    Value old = state_;
    if (state_ == args->expected) state_ = args->desired;
    return old;
  }
  if (op.name == "read") return state_;
  LLSC_EXPECTS(false, "unknown operation on cas object: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> CasObject::clone() const {
  return std::make_unique<CasObject>(*this);
}

std::string CasObject::state_fingerprint() const {
  return "cas:" + state_.to_string();
}

Value ConsensusObject::apply(const ObjOp& op) {
  if (op.name == "propose") {
    if (!decided_) {
      decided_ = true;
      decision_ = op.arg;
    }
    return decision_;
  }
  LLSC_EXPECTS(false, "unknown operation on consensus object: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> ConsensusObject::clone() const {
  return std::make_unique<ConsensusObject>(*this);
}

std::string ConsensusObject::state_fingerprint() const {
  return decided_ ? "cons:" + decision_.to_string() : "cons:undecided";
}

}  // namespace llsc
