#include "objects/object.h"

#include "util/rng.h"

namespace llsc {

std::size_t ObjOp::hash() const {
  const std::size_t h = std::hash<std::string>{}(name);
  return mix64(h ^ arg.hash());
}

}  // namespace llsc
