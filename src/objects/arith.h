// Arithmetic object types of Theorem 6.2: k-bit fetch&increment /
// fetch&add, and k-bit fetch&multiply.
//
// Semantics (paper Section 6): with state s (a k-bit integer),
//   fetch&increment()   : s <- (s+1) mod 2^k,   returns old s
//   fetch&add(v)        : s <- (s+v) mod 2^k,   returns old s
//   fetch&multiply(v)   : s <- (s*v) mod 2^k,   returns old s
//
// fetch&increment needs only k >= log n for the wakeup reduction, so its
// state is a machine word (k <= 64 enforced); fetch&multiply needs k >= n
// bits, so its state is a BigInt.
#ifndef LLSC_OBJECTS_ARITH_H_
#define LLSC_OBJECTS_ARITH_H_

#include <cstdint>

#include "objects/object.h"
#include "util/bigint.h"

namespace llsc {

// k-bit fetch&increment / fetch&add object (k <= 64).
class FetchAddObject final : public SequentialObject {
 public:
  explicit FetchAddObject(unsigned bits, std::uint64_t initial = 0);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "fetch&add"; }

  std::uint64_t state() const { return state_; }

 private:
  unsigned bits_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

// k-bit fetch&multiply object (arbitrary k; BigInt state).
class FetchMultiplyObject final : public SequentialObject {
 public:
  explicit FetchMultiplyObject(std::size_t bits, BigInt initial = BigInt(1));

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "fetch&multiply"; }

  const BigInt& state() const { return state_; }

 private:
  std::size_t bits_;
  BigInt state_;
};

}  // namespace llsc

#endif  // LLSC_OBJECTS_ARITH_H_
