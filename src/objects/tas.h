// Randomized one-shot test-and-set over LL/SC/VL/swap memory.
//
// The protocol follows the shape of Giakkoupis–Helmi–Higham–Woelfel's
// space-optimal randomized TAS (arXiv:1608.06033): a chain of randomized
// splitters acts as the fast sift-down path — each splitter admits at most
// one process, and a coin decides whether a process that loses a splitter
// keeps sifting down the chain or drops out — and a RatRace-style binary
// tournament (Alistarh et al.) is the fallback for every process the chain
// rejects. Both paths feed one claim register, which is what makes safety
// DETERMINISTIC: the claim register is write-once (only LL/SC writes it,
// and every candidate gives up as soon as it reads a foreign claim), so at
// most one process ever returns "won" no matter how the schedule, the coin
// tosses, or injected spurious SC failures fall. Randomization buys only
// speed, never safety — the property the adversarial legs lean on.
//
// Postconditions the rest of the suite builds on (see check_tas_run):
//   * at most one process returns 1, in every run, completed or not;
//   * a process returns 0 only after the claim register is non-nil, so by
//     the time any loser returns, the winner's identity is published and
//     frozen ("losers see loser" — and leader election is one read away,
//     objects/leader.h);
//   * the claim register recognizes its own writer: an amnesiac restarted
//     incarnation of the winner re-reads claim == self and returns 1
//     again instead of electing a second winner.
//
// Both bodies run unchanged on the simulator, the 1:1 HwExecutor, and the
// OversubscribedExecutor — they are written against the ProcCtx awaitable
// seam like every wakeup algorithm.
//
// randomized_tas_body() is the strict protocol above. fixed_shape_tas_body()
// is the differential-sweep variant in the style of the fixed_* fault
// scenarios: every process executes a schedule-INDEPENDENT number of shared
// ops (outcomes may differ, counts cannot), the claim SCs are nil-preserving
// so a "late" SC rewrites the winner instead of overwriting it, and a run in
// which every claim SC was forced to fail legitimately ends with no winner
// (the analogue of combining's fixed mode returning nil by contract).
#ifndef LLSC_OBJECTS_TAS_H_
#define LLSC_OBJECTS_TAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "memory/value.h"
#include "objects/object.h"
#include "runtime/process.h"
#include "runtime/sub_task.h"
#include "runtime/system.h"

namespace llsc {

struct TasOptions {
  RegId base = 0;  // first register of the instance's layout
};

// Register layout of one TAS instance for n processes, starting at `base`:
// claim, announce (used by objects/leader.h), K splitter pairs (X, door),
// then the m-1 internal nodes of the fallback tournament over m leaves.
struct TasLayout {
  RegId claim = 0;
  RegId announce = 0;
  int splitters = 0;   // K = ceil(log2 n) + 1
  RegId splitter0 = 0; // splitter j: X = splitter0 + 2j, door = X + 1
  int leaves = 0;      // m = smallest power of two >= n
  RegId node0 = 0;     // internal node t (1-based heap index): node0 + t - 1

  static TasLayout make(int n, RegId base);

  RegId splitter_x(int j) const { return splitter0 + 2 * j; }
  RegId splitter_door(int j) const { return splitter0 + 2 * j + 1; }
  RegId node(int t) const { return node0 + t - 1; }
  // Registers consumed by the instance (next free register is base + this).
  RegId registers_used() const;
};

// The strict protocol as a nestable subroutine: co_await from a composed
// body (wakeup/reductions.h uses this). Returns of_u64(1) for the unique
// winner, of_u64(0) for everyone else.
SubTask<Value> tas_subtask(ProcCtx ctx, TasOptions options);

// Fixed-shape protocol as a subroutine (objects/leader.h composes it).
SubTask<Value> fixed_tas_subtask(ProcCtx ctx, TasOptions options);

// The strict protocol as a run body: every process performs one tas() and
// returns its outcome — 1 iff it won — so the wakeup-style winner scans of
// the Monte-Carlo estimator and the executors apply unchanged.
ProcBody randomized_tas_body(TasOptions options = {});

// Fixed-shape differential variant: fixed_shape_tas_ops(n) shared ops per
// process under any schedule and any fault plan (short of a crash).
ProcBody fixed_shape_tas_body(TasOptions options = {});
std::uint64_t fixed_shape_tas_ops(int n);

// Shared ops the strict protocol can take in a fault-free run: K splitters
// at 4 ops, the full tournament path at 3 ops per level plus one re-read,
// the claim handshake, and the loser's wait for the claim to land. Used by
// the reduction overhead tests as the "underlying object's ops" budget.
std::uint64_t tas_fault_free_max_ops(int n);

// --- run checkers, in the style of wakeup/spec.h ------------------------
//
// Conditions, for a System whose processes ran a TAS body:
//   (1) every terminated process returned 0 or 1;
//   (2) at most one process returned 1 — in EVERY run, completed or not;
//   (3) if all processes terminated, exactly one returned 1 (strict bodies
//       never complete a loser before the claim register is non-nil; set
//       require_winner = false for fixed-shape runs under forced-failure
//       plans, where a winnerless completed run is the documented contract);
//   (4) the claim register agrees with the results: it holds the winner's
//       id if there is one, and a loser never returned while claim was nil
//       (checked via the final state: a completed run with a loser must
//       have a non-nil claim).
struct TasCheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  int num_winners = 0;
  ProcId winner = -1;

  std::string summary() const;
};

struct TasCheckOptions {
  TasOptions tas;
  // Condition (3): require exactly one winner when all processes
  // terminated. True for strict bodies (unconditionally, even under
  // spurious-failure plans); false for fixed-shape bodies under plans
  // that may force every claim SC to fail.
  bool require_winner = true;
};

TasCheckResult check_tas_run(const System& sys,
                             const TasCheckOptions& options = {});

// Recoverable extension (hw/fault.h): conditions (1)-(4) plus (5) no
// process is left crashed. num_restarts sums the incarnation counters so
// callers can assert the crash->rejoin schedule actually ran; the winner
// uniqueness of (2)/(3) must survive amnesiac restarts (the claim register
// is write-once and recognizes its own writer).
struct RecoverableTasCheckResult : TasCheckResult {
  std::uint64_t num_restarts = 0;
};

RecoverableTasCheckResult check_recoverable_tas_run(
    const System& sys, const TasCheckOptions& options = {});

// --- sequential specification -------------------------------------------
//
// One-shot test-and-set as a SequentialObject, for linearizability
// checking of the protocol's concurrent histories (tests/hw_lin_test.cc):
// "test&set" returns the OLD value — 0 to the first caller, 1 after.
class TasObject final : public SequentialObject {
 public:
  TasObject() = default;

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "test&set"; }

 private:
  bool set_ = false;
};

}  // namespace llsc

#endif  // LLSC_OBJECTS_TAS_H_
