#include "objects/arith.h"

#include "util/check.h"

namespace llsc {

FetchAddObject::FetchAddObject(unsigned bits, std::uint64_t initial)
    : bits_(bits),
      mask_(bits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << bits) - 1),
      state_(initial & mask_) {
  LLSC_EXPECTS(bits >= 1 && bits <= 64,
               "FetchAddObject supports 1..64 bits; use FetchMultiplyObject "
               "style BigInt types beyond that");
}

Value FetchAddObject::apply(const ObjOp& op) {
  const std::uint64_t old = state_;
  if (op.name == "fetch&increment") {
    state_ = (state_ + 1) & mask_;
  } else if (op.name == "fetch&add") {
    state_ = (state_ + op.arg.as_u64()) & mask_;
  } else if (op.name == "read") {
    // reading is allowed on any arithmetic object
  } else {
    LLSC_EXPECTS(false, "unknown operation on fetch&add object: " + op.name);
  }
  return Value::of_u64(old);
}

std::unique_ptr<SequentialObject> FetchAddObject::clone() const {
  return std::make_unique<FetchAddObject>(*this);
}

std::string FetchAddObject::state_fingerprint() const {
  return "f&a:" + std::to_string(state_);
}

FetchMultiplyObject::FetchMultiplyObject(std::size_t bits, BigInt initial)
    : bits_(bits), state_(std::move(initial)) {
  LLSC_EXPECTS(bits >= 1, "need at least one bit of state");
  state_.truncate(bits_);
}

Value FetchMultiplyObject::apply(const ObjOp& op) {
  BigInt old = state_;
  if (op.name == "fetch&multiply") {
    state_ *= op.arg.as_big();
    state_.truncate(bits_);
  } else if (op.name == "read") {
  } else {
    LLSC_EXPECTS(false,
                 "unknown operation on fetch&multiply object: " + op.name);
  }
  return Value::of_big(std::move(old));
}

std::unique_ptr<SequentialObject> FetchMultiplyObject::clone() const {
  return std::make_unique<FetchMultiplyObject>(*this);
}

std::string FetchMultiplyObject::state_fingerprint() const {
  return "f&m:" + state_.to_hex();
}

}  // namespace llsc
