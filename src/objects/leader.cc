#include "objects/leader.h"

#include <utility>

#include "util/check.h"

namespace llsc {

namespace {

// Winner: announce own id (one swap; an amnesiac re-run re-announces the
// same id). Loser: one read of the write-once claim register, non-nil by
// the TAS loser postcondition. Glue beyond the TAS: at most one shared op.
SubTask<Value> elect(ProcCtx ctx, TasOptions options) {
  const TasLayout layout = TasLayout::make(ctx.num_processes(), options.base);
  const Value won = co_await tas_subtask(ctx, options);
  if (won.holds_u64() && won.as_u64() == 1) {
    const Value me = Value::of_u64(static_cast<std::uint64_t>(ctx.id()));
    (void)co_await ctx.swap(layout.announce, me);
    co_return me;
  }
  const Value leader = co_await ctx.read(layout.claim);
  co_return leader;
}

SimTask leader_ids_run(ProcCtx ctx, TasOptions options) {
  Value leader = co_await elect(ctx, options);
  co_return leader;
}

SimTask leader_flag_run(ProcCtx ctx, TasOptions options) {
  const Value leader = co_await elect(ctx, options);
  const bool mine = leader.holds_u64() &&
                    leader.as_u64() == static_cast<std::uint64_t>(ctx.id());
  co_return Value::of_u64(mine ? 1 : 0);
}

SimTask fixed_leader_run(ProcCtx ctx, ProcId i, int n, TasOptions options) {
  const TasLayout layout = TasLayout::make(n, options.base);
  (void)co_await fixed_tas_subtask(ctx, options);
  // One extra read keeps the shape: a process that reads its own id out of
  // the claim register is the leader. Early readers may still see nil when
  // every claim SC was forced to fail — then nobody reports leadership,
  // the fixed-mode analogue of combining's nil-by-contract.
  const Value claim = co_await ctx.read(layout.claim);
  const bool mine = claim.holds_u64() &&
                    claim.as_u64() == static_cast<std::uint64_t>(i);
  co_return Value::of_u64(mine ? 1 : 0);
}

}  // namespace

SubTask<Value> leader_subtask(ProcCtx ctx, TasOptions options) {
  Value leader = co_await elect(ctx, options);
  co_return leader;
}

ProcBody leader_election_body(TasOptions options) {
  return [options](ProcCtx ctx, ProcId, int) {
    return leader_ids_run(ctx, options);
  };
}

ProcBody leader_winner_flag_body(TasOptions options) {
  return [options](ProcCtx ctx, ProcId, int) {
    return leader_flag_run(ctx, options);
  };
}

ProcBody fixed_shape_leader_body(TasOptions options) {
  return [options](ProcCtx ctx, ProcId i, int n) {
    return fixed_leader_run(ctx, i, n, options);
  };
}

std::uint64_t fixed_shape_leader_ops(int n) {
  return fixed_shape_tas_ops(n) + 1;
}

// ---------------------------------------------------------------------------
// Run checkers

namespace {

void violate(LeaderCheckResult* res, const std::string& what) {
  res->ok = false;
  res->violations.push_back(what);
}

void check_leader_conditions(const System& sys,
                             const LeaderCheckOptions& options,
                             LeaderCheckResult* res) {
  const int n = sys.num_processes();
  const TasLayout layout = TasLayout::make(n, options.tas.base);
  bool agreed = true;
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (!proc.done()) continue;
    ++res->num_reporters;
    const Value& r = proc.result();
    if (!r.holds_u64() || r.as_u64() >= static_cast<std::uint64_t>(n)) {
      violate(res, "(1) process " + std::to_string(p) +
                       " reported a non-id: " + r.to_string());
      agreed = false;
      continue;
    }
    const ProcId id = static_cast<ProcId>(r.as_u64());
    if (res->leader == -1) {
      res->leader = id;
    } else if (res->leader != id) {
      violate(res, "(2) process " + std::to_string(p) + " reported leader " +
                       std::to_string(id) + ", earlier reporters said " +
                       std::to_string(res->leader));
      agreed = false;
    }
  }
  if (agreed && res->leader != -1) {
    for (ProcId p = 0; p < n; ++p) {
      const Process& proc = sys.process(p);
      if (!proc.done()) continue;
      const bool says_self =
          proc.result().holds_u64() &&
          proc.result().as_u64() == static_cast<std::uint64_t>(p);
      if (says_self && p != res->leader) {
        violate(res, "(3) process " + std::to_string(p) +
                         " claims leadership but " +
                         std::to_string(res->leader) + " was elected");
      }
    }
  }
  if (res->leader != -1) {
    const Value& claim = sys.memory().peek_value(layout.claim);
    if (!claim.holds_u64() ||
        claim.as_u64() != static_cast<std::uint64_t>(res->leader)) {
      violate(res, "(4) claim register holds " + claim.to_string() +
                       ", reporters agreed on " + std::to_string(res->leader));
    }
    const Value& announce = sys.memory().peek_value(layout.announce);
    if (!announce.is_nil() &&
        (!announce.holds_u64() ||
         announce.as_u64() != static_cast<std::uint64_t>(res->leader))) {
      violate(res, "(4) announce register holds " + announce.to_string() +
                       ", reporters agreed on " + std::to_string(res->leader));
    }
  }
}

}  // namespace

std::string LeaderCheckResult::summary() const {
  if (ok) {
    return "leader ok: leader=" + std::to_string(leader) +
           " reporters=" + std::to_string(num_reporters);
  }
  std::string out = "leader VIOLATED:";
  for (const std::string& v : violations) out += " [" + v + "]";
  return out;
}

LeaderCheckResult check_leader_run(const System& sys,
                                   const LeaderCheckOptions& options) {
  LeaderCheckResult res;
  check_leader_conditions(sys, options, &res);
  return res;
}

RecoverableLeaderCheckResult check_recoverable_leader_run(
    const System& sys, const LeaderCheckOptions& options) {
  RecoverableLeaderCheckResult res;
  check_leader_conditions(sys, options, &res);
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    const Process& proc = sys.process(p);
    if (proc.crashed()) {
      res.ok = false;
      res.violations.push_back("(5) process " + std::to_string(p) +
                               " still crashed at end of run");
    }
    res.num_restarts += proc.incarnation();
  }
  return res;
}

}  // namespace llsc
