// Basic object types: read/write register, read+increment counter
// (Theorem 6.2 item 4), compare&swap, and consensus.
//
// Semantics:
//   register:   write(v) -> ack;  read() -> current value
//   counter:    increment() -> ack;  read() -> current value
//               (k-bit state, k <= 64; increments wrap mod 2^k)
//   cas:        cas({expected, desired}) -> old value (state changes iff
//               old == expected);  read() -> current value
//   consensus:  propose(v) -> the first value ever proposed
#ifndef LLSC_OBJECTS_BASIC_H_
#define LLSC_OBJECTS_BASIC_H_

#include <cstdint>

#include "objects/object.h"

namespace llsc {

class RegisterObject final : public SequentialObject {
 public:
  explicit RegisterObject(Value initial = Value{})
      : state_(std::move(initial)) {}

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "register"; }

 private:
  Value state_;
};

// k-bit counter supporting read and increment — the paper's item 4, whose
// wakeup reduction costs two operations per process (hence the
// (1/2)·log_4 n bound instead of log_4 n).
class CounterObject final : public SequentialObject {
 public:
  explicit CounterObject(unsigned bits, std::uint64_t initial = 0);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "counter"; }

 private:
  std::uint64_t mask_;
  std::uint64_t state_;
};

// Argument payload for compare&swap.
struct CasArgs {
  Value expected;
  Value desired;

  bool operator==(const CasArgs&) const = default;
  std::string to_string() const {
    return expected.to_string() + "->" + desired.to_string();
  }
  std::size_t hash() const {
    return mix64(expected.hash() ^ (desired.hash() << 1));
  }
};

class CasObject final : public SequentialObject {
 public:
  explicit CasObject(Value initial = Value{}) : state_(std::move(initial)) {}

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "compare&swap"; }

 private:
  Value state_;
};

class ConsensusObject final : public SequentialObject {
 public:
  ConsensusObject() = default;

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "consensus"; }

 private:
  bool decided_ = false;
  Value decision_;
};

}  // namespace llsc

#endif  // LLSC_OBJECTS_BASIC_H_
