#include "objects/containers.h"

#include <algorithm>

#include "util/check.h"

namespace llsc {

QueueObject::QueueObject(std::vector<Value> initial)
    : items_(initial.begin(), initial.end()) {}

Value QueueObject::apply(const ObjOp& op) {
  if (op.name == "enqueue") {
    items_.push_back(op.arg);
    return Value{};
  }
  if (op.name == "dequeue") {
    if (items_.empty()) return Value{};
    Value front = std::move(items_.front());
    items_.pop_front();
    return front;
  }
  LLSC_EXPECTS(false, "unknown operation on queue: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> QueueObject::clone() const {
  return std::make_unique<QueueObject>(*this);
}

std::string QueueObject::state_fingerprint() const {
  std::string s = "q:";
  for (const Value& v : items_) s += v.to_string() + "|";
  return s;
}

StackObject::StackObject(std::vector<Value> initial)
    : items_(std::move(initial)) {}

Value StackObject::apply(const ObjOp& op) {
  if (op.name == "push") {
    items_.push_back(op.arg);
    return Value{};
  }
  if (op.name == "pop") {
    if (items_.empty()) return Value{};
    Value top = std::move(items_.back());
    items_.pop_back();
    return top;
  }
  LLSC_EXPECTS(false, "unknown operation on stack: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> StackObject::clone() const {
  return std::make_unique<StackObject>(*this);
}

std::string StackObject::state_fingerprint() const {
  std::string s = "s:";
  for (const Value& v : items_) s += v.to_string() + "|";
  return s;
}

PriorityQueueObject::PriorityQueueObject(
    std::vector<std::uint64_t> initial_keys)
    : keys_(std::move(initial_keys)) {
  std::sort(keys_.begin(), keys_.end());
}

Value PriorityQueueObject::apply(const ObjOp& op) {
  if (op.name == "insert") {
    const std::uint64_t k = op.arg.as_u64();
    keys_.insert(std::upper_bound(keys_.begin(), keys_.end(), k), k);
    return Value{};
  }
  if (op.name == "delete-min") {
    if (keys_.empty()) return Value{};
    const std::uint64_t k = keys_.front();
    keys_.erase(keys_.begin());
    return Value::of_u64(k);
  }
  LLSC_EXPECTS(false, "unknown operation on priority queue: " + op.name);
  return Value{};
}

std::unique_ptr<SequentialObject> PriorityQueueObject::clone() const {
  return std::make_unique<PriorityQueueObject>(*this);
}

std::string PriorityQueueObject::state_fingerprint() const {
  std::string s = "pq:";
  for (const std::uint64_t k : keys_) s += std::to_string(k) + "|";
  return s;
}

}  // namespace llsc
