#include "objects/tas.h"

#include <utility>

#include "util/check.h"
#include "util/str.h"

namespace llsc {

namespace {

// Smallest power of two >= n (tournament leaf count).
int pow2_leaves(int n) {
  int m = 1;
  while (m < n) m *= 2;
  return m;
}

int tree_depth(int leaves) {
  int d = 0;
  for (int m = leaves; m > 1; m /= 2) ++d;
  return d;
}

constexpr int kFixedClaimAttempts = 2;

}  // namespace

TasLayout TasLayout::make(int n, RegId base) {
  LLSC_EXPECTS(n >= 1, "need at least one process");
  TasLayout layout;
  layout.claim = base;
  layout.announce = base + 1;
  layout.splitters = static_cast<int>(ceil_log2(static_cast<std::size_t>(n))) + 1;
  layout.splitter0 = base + 2;
  layout.leaves = pow2_leaves(n);
  layout.node0 = layout.splitter0 + 2 * layout.splitters;
  return layout;
}

RegId TasLayout::registers_used() const {
  // claim + announce + K (X, door) pairs + m-1 internal tournament nodes.
  return 2 + 2 * splitters + (leaves - 1);
}

namespace {

// The claim handshake shared by both candidate paths. The claim register
// is write-once: a candidate SCs its id only from nil, gives up on any
// foreign value, and recognizes its own (the amnesiac-restart re-entry).
// Loops only across spurious SC failures: in a fault-free run a failed SC
// means another SC succeeded, so the next LL observes a foreign claim.
SubTask<Value> claim_phase(ProcCtx ctx, RegId claim) {
  const Value me = Value::of_u64(static_cast<std::uint64_t>(ctx.id()));
  for (;;) {
    const Value v = co_await ctx.ll(claim);
    if (!v.is_nil()) {
      co_return Value::of_u64(v == me ? 1 : 0);
    }
    const ScResult r = co_await ctx.sc(claim, me);
    if (r.ok) co_return Value::of_u64(1);
  }
}

// A loser may return only once the winner's identity is published: spin on
// the claim register until it is non-nil. Bounded by the winner's few
// remaining steps under any schedule that keeps scheduling the winner; a
// winnerless partial run keeps the loser spinning, which the run taxonomy
// reports as kHung rather than as a silent spec violation.
SubTask<Value> await_claimed(ProcCtx ctx, RegId claim) {
  for (;;) {
    const Value v = co_await ctx.read(claim);
    if (!v.is_nil()) co_return Value::of_u64(0);
  }
}

SubTask<Value> strict_tas(ProcCtx ctx, TasLayout layout) {
  const ProcId i = ctx.id();
  const Value me = Value::of_u64(static_cast<std::uint64_t>(i));
  const Value closed = Value::of_u64(1);

  // Fast path: sift down the splitter chain. Each splitter admits at most
  // one process (write X; door still open; close door; X unchanged); a
  // coin decides whether a rejected process keeps sifting or drops to the
  // tournament, so the chain sheds contenders geometrically.
  bool fast_winner = false;
  for (int j = 0; j < layout.splitters; ++j) {
    (void)co_await ctx.swap(layout.splitter_x(j), me);
    const Value door = co_await ctx.read(layout.splitter_door(j));
    if (!door.is_nil()) {
      const std::uint64_t coin = co_await ctx.toss(2);
      if (coin == 0 && j + 1 < layout.splitters) continue;
      break;  // diverted to the tournament
    }
    (void)co_await ctx.swap(layout.splitter_door(j), closed);
    const Value x = co_await ctx.read(layout.splitter_x(j));
    if (x == me) {
      fast_winner = true;
      break;
    }
    const std::uint64_t coin = co_await ctx.toss(2);
    if (coin == 1) break;
  }

  bool candidate = fast_winner;
  if (!fast_winner) {
    // RatRace-style fallback: climb the tournament tree from this
    // process's leaf. The first process to SC an empty node owns it and
    // climbs on; everyone else stops. At least one process per entered
    // subtree reaches and owns the root, so a candidate always exists.
    bool alive = true;
    int node = (layout.leaves + i) / 2;
    while (alive && node >= 1) {
      const Value v = co_await ctx.ll(layout.node(node));
      if (v == me) {  // amnesiac re-entry: the dead incarnation owns it
        node /= 2;
        continue;
      }
      if (!v.is_nil()) {
        alive = false;
        break;
      }
      const ScResult r = co_await ctx.sc(layout.node(node), me);
      if (r.ok) {
        node /= 2;
        continue;
      }
      // Lost the SC: either a rival took the node (its value is now
      // foreign — stop) or the failure was spurious (still nil — retry).
      const Value now = co_await ctx.read(layout.node(node));
      if (!now.is_nil() && !(now == me)) alive = false;
    }
    candidate = alive;
  }

  if (candidate) {
    Value outcome = co_await claim_phase(ctx, layout.claim);
    co_return outcome;
  }
  Value outcome = co_await await_claimed(ctx, layout.claim);
  co_return outcome;
}

// Fixed-shape variant: identical op KINDS at identical per-process op
// indices on every substrate, so fault decisions keyed by (proc, op-index)
// land on the same operations everywhere. Claim (and tournament-node) SCs
// are nil-preserving — sc(r, observed.is_nil() ? me : observed) — so a
// straggler's successful SC rewrites the winner instead of replacing it,
// and "won" means "my SC succeeded while the register was nil", which at
// most one process can ever satisfy per register.
SubTask<Value> fixed_tas(ProcCtx ctx, TasLayout layout) {
  const ProcId i = ctx.id();
  const Value me = Value::of_u64(static_cast<std::uint64_t>(i));
  const Value closed = Value::of_u64(1);

  for (int j = 0; j < layout.splitters; ++j) {
    (void)co_await ctx.swap(layout.splitter_x(j), me);
    (void)co_await ctx.read(layout.splitter_door(j));
    (void)co_await ctx.swap(layout.splitter_door(j), closed);
    (void)co_await ctx.read(layout.splitter_x(j));
    (void)co_await ctx.toss(2);  // keep the toss stream shape of the chain
  }

  int node = (layout.leaves + i) / 2;
  while (node >= 1) {
    const Value v = co_await ctx.ll(layout.node(node));
    const Value arg = v.is_nil() ? me : v;
    (void)co_await ctx.sc(layout.node(node), arg);
    (void)co_await ctx.read(layout.node(node));
    node /= 2;
  }

  bool won = false;
  for (int a = 0; a < kFixedClaimAttempts; ++a) {
    const Value v = co_await ctx.ll(layout.claim);
    const Value arg = v.is_nil() ? me : v;
    const ScResult r = co_await ctx.sc(layout.claim, arg);
    if (r.ok && v.is_nil()) won = true;
  }
  (void)co_await ctx.read(layout.claim);
  co_return Value::of_u64(won ? 1 : 0);
}

// Top-level bodies are free coroutine functions taking everything by
// value; the ProcBody lambdas below are NOT coroutines (the registry
// idiom of wakeup/reductions.cc — captures never outlive a frame).
SimTask strict_tas_run(ProcCtx ctx, int n, TasOptions options) {
  TasLayout layout = TasLayout::make(n, options.base);
  Value outcome = co_await strict_tas(ctx, layout);
  co_return outcome;
}

SimTask fixed_tas_run(ProcCtx ctx, int n, TasOptions options) {
  TasLayout layout = TasLayout::make(n, options.base);
  Value outcome = co_await fixed_tas(ctx, layout);
  co_return outcome;
}

}  // namespace

SubTask<Value> tas_subtask(ProcCtx ctx, TasOptions options) {
  TasLayout layout = TasLayout::make(ctx.num_processes(), options.base);
  Value outcome = co_await strict_tas(ctx, layout);
  co_return outcome;
}

SubTask<Value> fixed_tas_subtask(ProcCtx ctx, TasOptions options) {
  TasLayout layout = TasLayout::make(ctx.num_processes(), options.base);
  Value outcome = co_await fixed_tas(ctx, layout);
  co_return outcome;
}

ProcBody randomized_tas_body(TasOptions options) {
  return [options](ProcCtx ctx, ProcId, int n) {
    return strict_tas_run(ctx, n, options);
  };
}

ProcBody fixed_shape_tas_body(TasOptions options) {
  return [options](ProcCtx ctx, ProcId, int n) {
    return fixed_tas_run(ctx, n, options);
  };
}

std::uint64_t fixed_shape_tas_ops(int n) {
  const TasLayout layout = TasLayout::make(n, 0);
  return 4u * static_cast<std::uint64_t>(layout.splitters) +
         3u * static_cast<std::uint64_t>(tree_depth(layout.leaves)) +
         2u * kFixedClaimAttempts + 1u;
}

std::uint64_t tas_fault_free_max_ops(int n) {
  const TasLayout layout = TasLayout::make(n, 0);
  // Splitter chain: 4 shared ops per splitter. Tournament: at most one
  // natural SC retry per level (LL, SC, re-read, LL, SC = 5) — a failed SC
  // in a fault-free run means a rival owns the node, which ends the climb,
  // so 5 bounds every level. Claim handshake: LL+SC, one natural failure,
  // LL again = 4. Loser wait: the claim is non-nil within the winner's
  // remaining 4 ops, so a dense schedule bounds the spin by a constant;
  // budget 8 reads.
  return 4u * static_cast<std::uint64_t>(layout.splitters) +
         5u * static_cast<std::uint64_t>(tree_depth(layout.leaves)) + 4u + 8u;
}

// ---------------------------------------------------------------------------
// Run checkers

namespace {

void violate(TasCheckResult* res, const std::string& what) {
  res->ok = false;
  res->violations.push_back(what);
}

void check_tas_conditions(const System& sys, const TasCheckOptions& options,
                          TasCheckResult* res) {
  const int n = sys.num_processes();
  const TasLayout layout = TasLayout::make(n, options.tas.base);
  bool all_done = true;
  int losers_done = 0;
  for (ProcId p = 0; p < n; ++p) {
    const Process& proc = sys.process(p);
    if (!proc.done()) {
      all_done = false;
      continue;
    }
    const Value& r = proc.result();
    if (!r.holds_u64() || r.as_u64() > 1) {
      violate(res, "(1) process " + std::to_string(p) +
                       " returned a non-boolean: " + r.to_string());
      continue;
    }
    if (r.as_u64() == 1) {
      ++res->num_winners;
      res->winner = p;
    } else {
      ++losers_done;
    }
  }
  if (res->num_winners > 1) {
    violate(res, "(2) " + std::to_string(res->num_winners) +
                     " processes returned 1 (test-and-set admits one)");
  }
  if (all_done && options.require_winner && res->num_winners != 1) {
    violate(res, "(3) all processes terminated with " +
                     std::to_string(res->num_winners) + " winners");
  }
  const Value& claim = sys.memory().peek_value(layout.claim);
  if (res->num_winners == 1) {
    if (!claim.holds_u64() ||
        claim.as_u64() != static_cast<std::uint64_t>(res->winner)) {
      violate(res, "(4) claim register holds " + claim.to_string() +
                       ", winner is " + std::to_string(res->winner));
    }
  }
  if (losers_done > 0 && claim.is_nil()) {
    violate(res,
            "(4) a loser returned while the claim register was still nil");
  }
}

}  // namespace

std::string TasCheckResult::summary() const {
  if (ok) {
    return "tas ok: winner=" + std::to_string(winner) +
           " num_winners=" + std::to_string(num_winners);
  }
  std::string out = "tas VIOLATED:";
  for (const std::string& v : violations) out += " [" + v + "]";
  return out;
}

TasCheckResult check_tas_run(const System& sys,
                             const TasCheckOptions& options) {
  TasCheckResult res;
  check_tas_conditions(sys, options, &res);
  return res;
}

RecoverableTasCheckResult check_recoverable_tas_run(
    const System& sys, const TasCheckOptions& options) {
  RecoverableTasCheckResult res;
  check_tas_conditions(sys, options, &res);
  for (ProcId p = 0; p < sys.num_processes(); ++p) {
    const Process& proc = sys.process(p);
    if (proc.crashed()) {
      res.ok = false;
      res.violations.push_back("(5) process " + std::to_string(p) +
                               " still crashed at end of run");
    }
    res.num_restarts += proc.incarnation();
  }
  return res;
}

// ---------------------------------------------------------------------------
// Sequential specification

Value TasObject::apply(const ObjOp& op) {
  LLSC_EXPECTS(op.name == "test&set", "TasObject: unknown op " + op.name);
  const bool old = set_;
  set_ = true;
  return Value::of_u64(old ? 1 : 0);
}

std::unique_ptr<SequentialObject> TasObject::clone() const {
  auto copy = std::make_unique<TasObject>();
  copy->set_ = set_;
  return copy;
}

std::string TasObject::state_fingerprint() const {
  return set_ ? "tas:1" : "tas:0";
}

}  // namespace llsc
