// One-shot leader election built on the randomized test-and-set.
//
// The reduction is one shared op per process beyond the TAS (the
// constant-op direction of wakeup ⇄ TAS ⇄ leader, wakeup/reductions.h):
// the TAS claim register is write-once and non-nil before any loser
// returns (objects/tas.h postconditions), so the claim register IS the
// election — the winner returns its own id after swapping it into the
// announce register, and a loser learns the leader with a single read of
// the claim. Agreement is deterministic: every process reports the one
// frozen claim value.
//
// Amnesia (Alistarh–Gelashvili–Nadiradze's leader-election setting under
// the repo's crash+recover fault model, arXiv:2108.02802): a restarted
// incarnation of the winner re-runs the body, reads claim == self inside
// the TAS, wins again, and re-announces the same id — the write-once claim
// means an amnesiac restart can never elect a second leader, which
// check_leader_run verifies and tests/recovery_test.cc exercises.
#ifndef LLSC_OBJECTS_LEADER_H_
#define LLSC_OBJECTS_LEADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objects/tas.h"
#include "runtime/process.h"
#include "runtime/sub_task.h"
#include "runtime/system.h"

namespace llsc {

// Nestable subroutine: elects and returns the leader's id (a u64 in
// [0, n)). co_await from composed bodies (wakeup/reductions.h).
SubTask<Value> leader_subtask(ProcCtx ctx, TasOptions options);

// Run body returning the elected leader's id from every process —
// check_leader_run's subject.
ProcBody leader_election_body(TasOptions options = {});

// Run body returning 1 iff the caller was elected, 0 otherwise, so the
// wakeup-style winner scans (Monte-Carlo estimator, executors, E18)
// apply unchanged.
ProcBody leader_winner_flag_body(TasOptions options = {});

// Fixed-shape differential variant over fixed_shape_tas_body: exactly
// fixed_shape_leader_ops(n) shared ops per process under any schedule and
// fault plan (short of a crash), returning the winner flag. A run whose
// claim SCs were all forced to fail completes with no leader elected —
// every process returns 0 — mirroring the fixed TAS contract.
ProcBody fixed_shape_leader_body(TasOptions options = {});
std::uint64_t fixed_shape_leader_ops(int n);

// --- run checkers, in the style of wakeup/spec.h ------------------------
//
// For a System whose processes ran leader_election_body:
//   (1) every terminated process returned a u64 id in [0, n);
//   (2) agreement: all terminated processes returned the same id;
//   (3) self-consistency: if the elected process terminated, it returned
//       its own id, and no other process returned its own id;
//   (4) the claim register holds the elected id, and the announce
//       register, once written, agrees with it.
struct LeaderCheckResult {
  bool ok = true;
  std::vector<std::string> violations;
  ProcId leader = -1;   // the agreed id, -1 when no process terminated
  int num_reporters = 0;  // terminated processes

  std::string summary() const;
};

struct LeaderCheckOptions {
  TasOptions tas;
};

LeaderCheckResult check_leader_run(const System& sys,
                                   const LeaderCheckOptions& options = {});

// Recoverable extension: (1)-(4) plus (5) no process left crashed —
// agreement must hold across amnesiac restarts (the write-once claim
// register survives the crash; only private state is lost).
struct RecoverableLeaderCheckResult : LeaderCheckResult {
  std::uint64_t num_restarts = 0;
};

RecoverableLeaderCheckResult check_recoverable_leader_run(
    const System& sys, const LeaderCheckOptions& options = {});

}  // namespace llsc

#endif  // LLSC_OBJECTS_LEADER_H_
