// Sequential object specifications.
//
// A universal construction is *instantiated* with the sequential
// specification of a type T to produce a wait-free linearizable shared
// object of type T (paper, abstract). SequentialObject is that
// specification: a state machine mapping an operation to a response while
// mutating the state. The same specifications serve three masters:
//
//   * the universal constructions (src/universal) apply batches of
//     announced operations to a cloned state held in a register;
//   * the Theorem 6.2 reductions (src/wakeup) run wakeup through objects
//     implemented from these types;
//   * the linearizability checker (src/lin) searches for a sequential
//     witness of a concurrent history against the specification.
//
// Operations are (name, argument) pairs with value semantics, so they can
// be stored inside shared-memory registers by the constructions.
#ifndef LLSC_OBJECTS_OBJECT_H_
#define LLSC_OBJECTS_OBJECT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "memory/value.h"

namespace llsc {

// One operation invocation on an implemented object.
struct ObjOp {
  std::string name;  // e.g. "fetch&increment", "enqueue"
  Value arg;         // nil when the operation takes no argument

  bool operator==(const ObjOp& rhs) const {
    return name == rhs.name && arg == rhs.arg;
  }
  std::string to_string() const {
    return arg.is_nil() ? name : name + "(" + arg.to_string() + ")";
  }
  std::size_t hash() const;
};

// A sequential type specification: deterministic state machine.
class SequentialObject {
 public:
  virtual ~SequentialObject() = default;

  // Applies `op` to the current state and returns the response.
  // Unknown operation names are contract violations.
  virtual Value apply(const ObjOp& op) = 0;

  // Deep copy of the current state.
  virtual std::unique_ptr<SequentialObject> clone() const = 0;

  // Canonical rendering of the current state; equal fingerprints imply
  // equal states (used for linearizability memoization and tracing).
  virtual std::string state_fingerprint() const = 0;

  virtual std::string type_name() const = 0;
};

// Factory producing a freshly initialized object of some type.
using ObjectFactory =
    std::function<std::unique_ptr<SequentialObject>()>;

}  // namespace llsc

#endif  // LLSC_OBJECTS_OBJECT_H_
