// Bitwise object types of Theorem 6.2: k-bit fetch&and, fetch&or and
// fetch&complement (k >= n for the wakeup reductions, so states are
// BigInts).
//
// Semantics (paper Section 6), with state s a k-bit word:
//   fetch&and(v)        : s <- s AND v,            returns old s
//   fetch&or(v)         : s <- s OR v,             returns old s
//   fetch&xor(v)        : s <- s XOR v,            returns old s
//                         (not in the paper's list, but it admits the same
//                         one-op wakeup reduction as fetch&complement)
//   fetch&complement(i) : flips bit i of s (1-based in the paper; 0-based
//                         here), returns old s
#ifndef LLSC_OBJECTS_BITWISE_H_
#define LLSC_OBJECTS_BITWISE_H_

#include "objects/object.h"
#include "util/bigint.h"

namespace llsc {

// k-bit object supporting fetch&and, fetch&or and fetch&xor.
class BitwiseObject final : public SequentialObject {
 public:
  BitwiseObject(std::size_t bits, BigInt initial);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "fetch&and/or"; }

  const BigInt& state() const { return state_; }

 private:
  std::size_t bits_;
  BigInt state_;
};

// k-bit object supporting fetch&complement(i).
class FetchComplementObject final : public SequentialObject {
 public:
  FetchComplementObject(std::size_t bits, BigInt initial);

  Value apply(const ObjOp& op) override;
  std::unique_ptr<SequentialObject> clone() const override;
  std::string state_fingerprint() const override;
  std::string type_name() const override { return "fetch&complement"; }

  const BigInt& state() const { return state_; }

 private:
  std::size_t bits_;
  BigInt state_;
};

}  // namespace llsc

#endif  // LLSC_OBJECTS_BITWISE_H_
