#include "objects/bitwise.h"

#include "util/check.h"

namespace llsc {

BitwiseObject::BitwiseObject(std::size_t bits, BigInt initial)
    : bits_(bits), state_(std::move(initial)) {
  LLSC_EXPECTS(bits >= 1, "need at least one bit of state");
  state_.truncate(bits_);
}

Value BitwiseObject::apply(const ObjOp& op) {
  BigInt old = state_;
  if (op.name == "fetch&and") {
    state_ &= op.arg.as_big();
  } else if (op.name == "fetch&or") {
    state_ |= op.arg.as_big();
    state_.truncate(bits_);
  } else if (op.name == "fetch&xor") {
    state_ ^= op.arg.as_big();
    state_.truncate(bits_);
  } else if (op.name == "read") {
  } else {
    LLSC_EXPECTS(false, "unknown operation on bitwise object: " + op.name);
  }
  return Value::of_big(std::move(old));
}

std::unique_ptr<SequentialObject> BitwiseObject::clone() const {
  return std::make_unique<BitwiseObject>(*this);
}

std::string BitwiseObject::state_fingerprint() const {
  return "bw:" + state_.to_hex();
}

FetchComplementObject::FetchComplementObject(std::size_t bits, BigInt initial)
    : bits_(bits), state_(std::move(initial)) {
  LLSC_EXPECTS(bits >= 1, "need at least one bit of state");
  state_.truncate(bits_);
}

Value FetchComplementObject::apply(const ObjOp& op) {
  BigInt old = state_;
  if (op.name == "fetch&complement") {
    const std::uint64_t i = op.arg.as_u64();
    LLSC_EXPECTS(i < bits_, "fetch&complement bit index out of range");
    state_.set_bit(i, !state_.bit(i));
  } else if (op.name == "read") {
  } else {
    LLSC_EXPECTS(false,
                 "unknown operation on fetch&complement object: " + op.name);
  }
  return Value::of_big(std::move(old));
}

std::unique_ptr<SequentialObject> FetchComplementObject::clone() const {
  return std::make_unique<FetchComplementObject>(*this);
}

std::string FetchComplementObject::state_fingerprint() const {
  return "fc:" + state_.to_hex();
}

}  // namespace llsc
