#!/usr/bin/env python3
"""Convert google-benchmark console output into CSV.

Usage:
    ./build/bench/bench_wakeup_lower_bound | tools/bench_to_csv.py > e1.csv
    tools/bench_to_csv.py < bench_output.txt > all.csv

Parses benchmark rows of the form

    llsc::BM_Tournament/64   3.87 ms   3.75 ms   7  log4_n=3 n=64 winner_ops=50

into one CSV row per benchmark with columns: name, arg, time_ns, cpu_ns,
iterations, plus one column per user counter (the union across rows).
"""
import csv
import re
import sys

ROW = re.compile(
    r"^(?P<name>[\w:<>,]+(?:/\S+)?)\s+(?P<time>[\d.e+-]+) (?P<tunit>\w+)"
    r"\s+(?P<cpu>[\d.e+-]+) (?P<cunit>\w+)\s+(?P<iters>\d+)(?P<rest>.*)$")
COUNTER = re.compile(r"(\w+)=([\d.e+kMG-]+)")
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}


def parse_number(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def main():
    rows = []
    counters = []
    for line in sys.stdin:
        m = ROW.match(line.strip())
        if not m:
            continue
        name = m.group("name")
        base, _, arg = name.partition("/")
        row = {
            "name": base,
            "arg": arg,
            "time_ns": float(m.group("time")) * UNIT_NS[m.group("tunit")],
            "cpu_ns": float(m.group("cpu")) * UNIT_NS[m.group("cunit")],
            "iterations": int(m.group("iters")),
        }
        for key, value in COUNTER.findall(m.group("rest")):
            row[key] = parse_number(value)
            if key not in counters:
                counters.append(key)
        rows.append(row)
    fields = ["name", "arg", "time_ns", "cpu_ns", "iterations"] + counters
    writer = csv.DictWriter(sys.stdout, fieldnames=fields)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)


if __name__ == "__main__":
    main()
