#!/usr/bin/env python3
"""Convert google-benchmark output (console or JSON) into CSV.

Usage:
    ./build/bench/bench_wakeup_lower_bound | tools/bench_to_csv.py > e1.csv
    ./build/bench/bench_hw_throughput --benchmark_format=json \
        | tools/bench_to_csv.py > e10.csv
    tools/bench_to_csv.py --check < bench_output.json   # validate only

The input format is auto-detected: JSON when the stream starts with '{'
(the --benchmark_format=json shape: {"context": ..., "benchmarks": [...]}),
console rows otherwise:

    llsc::BM_Tournament/64   3.87 ms   3.75 ms   7  log4_n=3 n=64 ...

Output: one CSV row per benchmark with columns name, arg, threads,
time_ns, cpu_ns, iterations, plus one column per user counter (union
across rows, in first-seen order). `threads` is taken from the
`n_threads` counter the hw benchmarks report (bench/bench_hw_throughput.cc)
and left empty for single-threaded benchmarks; latency percentile
counters (latency_p50_ns / latency_p99_ns) flow through like any other
counter.

--check: validate instead of convert. Exits 1 with a diagnostic on
malformed input (unparseable JSON, missing/empty "benchmarks", rows
missing required fields, or non-finite measurements) and 0 with a one-line
summary when the input is sound. BM_HwBackoff_* rows (the E11 backoff
policy comparison) must additionally carry n_threads, policy_id,
oversubscribed, hw_ops_per_sec, cas_failure_rate, and parks counters with
a known policy_id and a failure rate in [0, 1]. BM_E12_* rows (the
fault-injection graceful-degradation sweep) must carry sc_fail_rate in
[0, 1] plus the non-negative clean / spec_violations / crashed / hung
taxonomy counts. BM_E13_* rows (the adversarial-placement comparison)
must carry n_threads, strategy_id (0 oblivious / 1 adaptive / 2 burst),
fault_budget, injected_sc_failures (<= fault_budget when the budget is
capped), and retry_amplification >= 1. BM_E14_* rows (the register-
storage-policy comparison) must carry n_threads, policy_id (0 boxed /
1 inline / 2 inline-strict), hw_ops_per_sec, and a non-negative
overflow_events count. BM_E15_* rows (the flat-combining universal-
construction comparison) must carry n_threads, policy_id, and a
non-negative uc_ops_per_sec; BM_E15_Combining* rows must additionally
carry a non-negative batches count; a row with batches >= 1 must also
carry mean_batch_size >= 1, while a zero-batch row (every op adopted, or
crash-stop before the first winner install) must OMIT mean_batch_size —
reporting a mean over zero batches is the div-by-zero shape this check
rejects. BM_E16_* rows (the open-loop service-mode sweep,
bench/bench_service_mode.cc) must carry the pool fingerprint (n_threads,
m_procs, oversub_factor, with m_procs = n_threads * oversub_factor), the
offered/served accounting (arrival_rate_hz > 0, served_ops <=
offered_ops, non-negative throughput_ops_per_sec), and monotone latency
percentiles latency_p50_ns <= p90 <= p99 <= p999. BM_E17_* rows (the
crash-storm availability sweep, same bench binary) must carry the storm
fingerprint (recover in {0, 1}, storm >= 0, crashes / recoveries /
in_flight_at_crash with recoveries <= crashes and in_flight_at_crash <=
crashes), the availability accounting (availability in [0, 1] and equal
to served/offered, mttr_ms >= 0, zero when nothing recovered), the
served <= offered bound, and the same monotone latency percentiles.
BM_E18_* rows (the TAS/leader expected-steps sweep,
bench/bench_tas_leader.cc) must carry the object fingerprint (object_id
0 tas / 1 leader, substrate_id 0 sim / 1 hw / 2 oversub, n >= 1,
samples > 0, log2_n >= 0) and the winner-ops accounting with
min_winner_ops <= mean_winner_ops <= mean_max_ops and spec_violations
== 0 — a row reporting a lost winner is the acceptance failure this
check exists to catch. BM_E19_* rows (the reclamation-policy comparison,
bench/bench_reclamation.cc) must carry the reclaimer fingerprint
(reclaimer_id 0 epoch / 1 hazard, policy_id, n_threads, stalled_peer in
{0, 1}), a non-negative hw_ops_per_sec, and the node accounting with
nodes_reclaimed <= nodes_retired (freeing more than was retired is the
double-free shape this check rejects) and node_high_water > 0 on
boxed-policy rows that retired anything — a zero high water with nodes
retired means the peak tracker is broken. Use it in CI to fail fast on
truncated benchmark artifacts.
"""
import argparse
import csv
import json
import math
import re
import sys

ROW = re.compile(
    r"^(?P<name>[\w:<>,]+(?:/\S+)?)\s+(?P<time>[\d.e+-]+) (?P<tunit>\w+)"
    r"\s+(?P<cpu>[\d.e+-]+) (?P<cunit>\w+)\s+(?P<iters>\d+)(?P<rest>.*)$")
COUNTER = re.compile(r"(\w+)=([\d.e+kMG-]+)")
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
SUFFIX = {"k": 1e3, "M": 1e6, "G": 1e9}

BASE_FIELDS = ["name", "arg", "threads", "time_ns", "cpu_ns", "iterations"]
REQUIRED_JSON_FIELDS = ["name", "real_time", "cpu_time", "iterations"]

# The E11 backoff-policy comparison rows (BM_HwBackoff_* in
# bench/bench_hw_throughput.cc) must carry the full policy fingerprint,
# or the fixed-vs-adaptive sweep cannot be reconstructed from the CSV.
BACKOFF_ROW_PREFIX = "BM_HwBackoff"
BACKOFF_REQUIRED = [
    "n_threads", "policy_id", "oversubscribed", "hw_ops_per_sec",
    "cas_failure_rate", "parks",
]
BACKOFF_POLICY_IDS = {0.0, 1.0, 2.0}  # fixed, adaptive, adaptive_park

# The E12 graceful-degradation rows (BM_E12_* in
# bench/bench_fault_injection.cc) must carry the injected-failure rate and
# the full run taxonomy, or the degradation curve cannot be reconstructed
# and silent sample loss (clean+crashed+hung+violations != samples) would
# go unnoticed.
E12_ROW_PREFIX = "BM_E12"
E12_REQUIRED = [
    "sc_fail_rate", "clean", "spec_violations", "crashed", "hung",
]

# The E13 adversarial-placement rows (BM_E13_* in
# bench/bench_fault_injection.cc) compare fault strategies at equal
# budget; their fingerprint is the strategy plus the budget accounting.
E13_ROW_PREFIX = "BM_E13"
E13_REQUIRED = [
    "n_threads", "strategy_id", "fault_budget", "injected_sc_failures",
    "retry_amplification",
]
E13_STRATEGY_IDS = {0.0, 1.0, 2.0}  # oblivious, adaptive, burst

# The E14 register-storage-policy rows (BM_E14_* in
# bench/bench_hw_throughput.cc) compare inline tagged words against boxed
# nodes; their fingerprint is the policy plus the overflow accounting, or
# the inline-vs-boxed contrast cannot be reconstructed from the CSV.
E14_ROW_PREFIX = "BM_E14"
E14_REQUIRED = [
    "n_threads", "policy_id", "hw_ops_per_sec", "overflow_events",
]
E14_POLICY_IDS = {0.0, 1.0, 2.0}  # boxed, inline, inline-strict

# The E15 flat-combining rows (BM_E15_* in bench/bench_hw_throughput.cc)
# compare the combining universal construction against the single-register
# helping baseline and raw LL/SC fetch&add. Every row carries the thread
# count, storage policy, and throughput; the combining legs additionally
# carry the batching fingerprint — without it the batching thesis (ops/sec
# beats the baseline BECAUSE installs retire multiple ops) cannot be
# reconstructed from the CSV.
E15_ROW_PREFIX = "BM_E15"
E15_COMBINING_PREFIX = "BM_E15_Combining"
E15_REQUIRED = ["n_threads", "policy_id", "uc_ops_per_sec"]
E15_COMBINING_REQUIRED = ["batches"]
E15_POLICY_IDS = {0.0, 1.0, 2.0}  # boxed, inline, inline-strict

# The E16 service-mode rows (BM_E16_* in bench/bench_service_mode.cc)
# report the open-loop experiment: M = oversub_factor * N logical
# processes on N carrier threads under Poisson arrivals. The fingerprint
# is the pool shape plus the offered/served accounting plus the latency
# quartet; the percentiles must be monotone or the histogram is corrupt.
E16_ROW_PREFIX = "BM_E16"
E16_REQUIRED = [
    "n_threads", "m_procs", "oversub_factor", "arrival_rate_hz",
    "offered_ops", "served_ops", "throughput_ops_per_sec",
    "latency_p50_ns", "latency_p90_ns", "latency_p99_ns",
    "latency_p999_ns",
]
E16_PERCENTILES = [
    "latency_p50_ns", "latency_p90_ns", "latency_p99_ns",
    "latency_p999_ns",
]

# The E17 crash-storm rows (BM_E17_* in bench/bench_service_mode.cc)
# report availability under injected crash-stops with and without
# recovery. The fingerprint is the storm shape plus the crash/recovery
# accounting; the invariants (served <= offered, recoveries <= crashes,
# in_flight_at_crash <= crashes, availability == served/offered) are what
# keeps the availability claim honest — a benchmark that counted a
# crashed-mid-request client as served would fail here.
E17_ROW_PREFIX = "BM_E17"
E17_REQUIRED = [
    "n_threads", "m_procs", "recover", "storm", "arrival_rate_hz",
    "offered_ops", "served_ops", "throughput_ops_per_sec", "availability",
    "mttr_ms", "crashes", "recoveries", "in_flight_at_crash",
    "latency_p50_ns", "latency_p90_ns", "latency_p99_ns",
    "latency_p999_ns",
]

# The E18 TAS/leader expected-steps rows (BM_E18_* in
# bench/bench_tas_leader.cc) report winner vs max shared-op costs against
# log2(n) on all three substrates. The fingerprint is the object/substrate
# pair plus the ops accounting; spec_violations must be zero — the
# exactly-one-winner postcondition is deterministic, so a row admitting a
# lost winner is a correctness failure, not a measurement artifact.
E18_ROW_PREFIX = "BM_E18"
E18_REQUIRED = [
    "n", "object_id", "substrate_id", "samples", "mean_winner_ops",
    "mean_max_ops", "min_winner_ops", "log2_n", "spec_violations",
]
E18_OBJECT_IDS = {0.0, 1.0}  # tas, leader
E18_SUBSTRATE_IDS = {0.0, 1.0, 2.0}  # sim, hw, oversub

# The E19 reclamation-policy rows (BM_E19_* in bench/bench_reclamation.cc)
# compare three-epoch batches against hazard pointers on the storage
# hammer, with and without a stalled peer. The fingerprint is the
# reclaimer plus the node accounting; nodes_reclaimed <= nodes_retired is
# the no-double-free invariant, and boxed rows that retired nodes must
# report a positive peak backlog or the high-water tracker is broken.
E19_ROW_PREFIX = "BM_E19"
E19_REQUIRED = [
    "n_threads", "reclaimer_id", "policy_id", "hw_ops_per_sec",
    "nodes_retired", "nodes_reclaimed", "node_high_water",
    "max_stall_spins", "scan_passes", "stalled_peer",
]
E19_RECLAIMER_IDS = {0.0, 1.0}  # epoch, hazard
E19_BOXED_POLICY_ID = 0.0


class MalformedInput(Exception):
    pass


def parse_number(text):
    if text and text[-1] in SUFFIX:
        return float(text[:-1]) * SUFFIX[text[-1]]
    return float(text)


def split_name(full_name):
    base, _, arg = full_name.partition("/")
    return base, arg


def parse_console(stream):
    rows = []
    for line in stream:
        m = ROW.match(line.strip())
        if not m:
            continue
        base, arg = split_name(m.group("name"))
        row = {
            "name": base,
            "arg": arg,
            "time_ns": float(m.group("time")) * UNIT_NS[m.group("tunit")],
            "cpu_ns": float(m.group("cpu")) * UNIT_NS[m.group("cunit")],
            "iterations": int(m.group("iters")),
        }
        for key, value in COUNTER.findall(m.group("rest")):
            row[key] = parse_number(value)
        rows.append(row)
    return rows


def parse_json(text):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise MalformedInput(f"not valid JSON: {e}")
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        raise MalformedInput('missing top-level "benchmarks" array')
    benches = doc["benchmarks"]
    if not isinstance(benches, list) or not benches:
        raise MalformedInput('"benchmarks" is empty or not an array')
    rows = []
    for i, b in enumerate(benches):
        if not isinstance(b, dict):
            raise MalformedInput(f"benchmarks[{i}] is not an object")
        # Aggregate rows (mean/median/stddev) ride along like regular runs.
        missing = [f for f in REQUIRED_JSON_FIELDS if f not in b]
        if missing:
            raise MalformedInput(
                f"benchmarks[{i}] missing field(s): {', '.join(missing)}")
        unit = b.get("time_unit", "ns")
        if unit not in UNIT_NS:
            raise MalformedInput(
                f"benchmarks[{i}] has unknown time_unit {unit!r}")
        base, arg = split_name(str(b["name"]))
        row = {
            "name": base,
            "arg": arg,
            "time_ns": float(b["real_time"]) * UNIT_NS[unit],
            "cpu_ns": float(b["cpu_time"]) * UNIT_NS[unit],
            "iterations": int(b["iterations"]),
        }
        reserved = set(REQUIRED_JSON_FIELDS) | {
            "run_name", "run_type", "repetitions", "repetition_index",
            "threads", "time_unit", "family_index",
            "per_family_instance_index", "aggregate_name", "aggregate_unit",
            "label", "error_occurred", "error_message",
        }
        for key, value in b.items():
            if key in reserved or not isinstance(value, (int, float)):
                continue
            row[key] = float(value)
        rows.append(row)
    return rows


def validate(rows):
    if not rows:
        raise MalformedInput("no benchmark rows found")
    for row in rows:
        for key, value in row.items():
            if isinstance(value, float) and not math.isfinite(value):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"non-finite value for {key}")
        if row["iterations"] <= 0:
            raise MalformedInput(
                f"benchmark {row['name']}/{row['arg']}: "
                f"non-positive iteration count")
        if row["time_ns"] < 0 or row["cpu_ns"] < 0:
            raise MalformedInput(
                f"benchmark {row['name']}/{row['arg']}: negative time")
        if row["name"].startswith(BACKOFF_ROW_PREFIX):
            missing = [f for f in BACKOFF_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: backoff "
                    f"comparison row missing field(s): {', '.join(missing)}")
            if row["policy_id"] not in BACKOFF_POLICY_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"policy_id {row['policy_id']}")
            if row["cas_failure_rate"] < 0 or row["cas_failure_rate"] > 1:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"cas_failure_rate outside [0, 1]")
        if row["name"].startswith(E12_ROW_PREFIX):
            missing = [f for f in E12_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: fault-injection "
                    f"row missing field(s): {', '.join(missing)}")
            if row["sc_fail_rate"] < 0 or row["sc_fail_rate"] > 1:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"sc_fail_rate outside [0, 1]")
            for field in ("clean", "spec_violations", "crashed", "hung"):
                if row[field] < 0:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: "
                        f"negative taxonomy count {field}")
        if row["name"].startswith(E13_ROW_PREFIX):
            missing = [f for f in E13_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: adversarial-"
                    f"placement row missing field(s): {', '.join(missing)}")
            if row["strategy_id"] not in E13_STRATEGY_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"strategy_id {row['strategy_id']}")
            if row["fault_budget"] < 0 or row["injected_sc_failures"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"fault-budget accounting")
            if (row["fault_budget"] > 0
                    and row["injected_sc_failures"] > row["fault_budget"]):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: injected more "
                    f"failures than the fault budget allows")
            if row["retry_amplification"] < 1:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"retry_amplification below 1")
        if row["name"].startswith(E14_ROW_PREFIX):
            missing = [f for f in E14_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: storage-policy "
                    f"row missing field(s): {', '.join(missing)}")
            if row["policy_id"] not in E14_POLICY_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"policy_id {row['policy_id']}")
            if row["hw_ops_per_sec"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"hw_ops_per_sec")
            if row["overflow_events"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"overflow_events")
        if row["name"].startswith(E15_ROW_PREFIX):
            missing = [f for f in E15_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: combining "
                    f"comparison row missing field(s): {', '.join(missing)}")
            if row["policy_id"] not in E15_POLICY_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"policy_id {row['policy_id']}")
            if row["uc_ops_per_sec"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"uc_ops_per_sec")
            if row["name"].startswith(E15_COMBINING_PREFIX):
                missing = [
                    f for f in E15_COMBINING_REQUIRED if f not in row]
                if missing:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: combining "
                        f"row missing batching field(s): "
                        f"{', '.join(missing)}")
                if row["batches"] < 0:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: negative "
                        f"batches count")
                if row["batches"] == 0:
                    # Zero-batch runs (every op adopted, or crash-stop
                    # before the first winner install) have no meaningful
                    # mean; the bench omits the counter, and a present
                    # value would be the div-by-zero artifact.
                    if "mean_batch_size" in row:
                        raise MalformedInput(
                            f"benchmark {row['name']}/{row['arg']}: "
                            f"mean_batch_size reported over zero batches")
                else:
                    if "mean_batch_size" not in row:
                        raise MalformedInput(
                            f"benchmark {row['name']}/{row['arg']}: "
                            f"combining row with batches installed is "
                            f"missing mean_batch_size")
                    if row["mean_batch_size"] < 1:
                        raise MalformedInput(
                            f"benchmark {row['name']}/{row['arg']}: "
                            f"mean_batch_size below 1")
        if row["name"].startswith(E16_ROW_PREFIX):
            missing = [f for f in E16_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: service-mode "
                    f"row missing field(s): {', '.join(missing)}")
            if row["arrival_rate_hz"] <= 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"non-positive arrival_rate_hz")
            if (row["n_threads"] < 1 or row["oversub_factor"] < 1
                    or row["m_procs"] != row["n_threads"]
                    * row["oversub_factor"]):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: pool shape "
                    f"m_procs != n_threads * oversub_factor")
            if row["served_ops"] < 0 or row["offered_ops"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"offered/served accounting")
            if row["served_ops"] > row["offered_ops"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: served more "
                    f"ops than were offered")
            if row["throughput_ops_per_sec"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"throughput_ops_per_sec")
            for lo, hi in zip(E16_PERCENTILES, E16_PERCENTILES[1:]):
                if row[lo] > row[hi]:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: latency "
                        f"percentiles not monotone ({lo} > {hi})")
        if row["name"].startswith(E17_ROW_PREFIX):
            missing = [f for f in E17_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: crash-storm "
                    f"row missing field(s): {', '.join(missing)}")
            if row["recover"] not in (0.0, 1.0):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: recover flag "
                    f"must be 0 or 1")
            if row["storm"] < 0 or row["storm"] > row["m_procs"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: storm size "
                    f"outside [0, m_procs]")
            if row["served_ops"] < 0 or row["offered_ops"] <= 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: bad "
                    f"offered/served accounting")
            if row["served_ops"] > row["offered_ops"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: served more "
                    f"ops than were offered")
            if row["recoveries"] > row["crashes"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: more "
                    f"recoveries than crashes")
            if row["in_flight_at_crash"] > row["crashes"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"in_flight_at_crash exceeds crashes")
            if row["availability"] < 0 or row["availability"] > 1:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: availability "
                    f"outside [0, 1]")
            expected = row["served_ops"] / row["offered_ops"]
            if abs(row["availability"] - expected) > 1e-3:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: availability "
                    f"!= served/offered")
            if row["mttr_ms"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"mttr_ms")
            if row["recoveries"] == 0 and row["mttr_ms"] != 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: mttr_ms "
                    f"reported with zero recoveries")
            for lo, hi in zip(E16_PERCENTILES, E16_PERCENTILES[1:]):
                if row[lo] > row[hi]:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: latency "
                        f"percentiles not monotone ({lo} > {hi})")
        if row["name"].startswith(E18_ROW_PREFIX):
            missing = [f for f in E18_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: expected-steps "
                    f"row missing field(s): {', '.join(missing)}")
            if row["object_id"] not in E18_OBJECT_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"object_id {row['object_id']}")
            if row["substrate_id"] not in E18_SUBSTRATE_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"substrate_id {row['substrate_id']}")
            if row["n"] < 1 or row["samples"] <= 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: bad sweep "
                    f"shape (n < 1 or samples <= 0)")
            if row["log2_n"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"log2_n")
            if not (0 <= row["min_winner_ops"] <= row["mean_winner_ops"]
                    <= row["mean_max_ops"]):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: winner-ops "
                    f"accounting not ordered (min <= mean <= max)")
            if row["spec_violations"] != 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: "
                    f"{row['spec_violations']:.0f} sample(s) lost the "
                    f"unique winner")
        if row["name"].startswith(E19_ROW_PREFIX):
            missing = [f for f in E19_REQUIRED if f not in row]
            if missing:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: reclamation "
                    f"row missing field(s): {', '.join(missing)}")
            if row["reclaimer_id"] not in E19_RECLAIMER_IDS:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: unknown "
                    f"reclaimer_id {row['reclaimer_id']}")
            if row["stalled_peer"] not in (0.0, 1.0):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: stalled_peer "
                    f"flag must be 0 or 1")
            if row["hw_ops_per_sec"] < 0:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: negative "
                    f"hw_ops_per_sec")
            for field in ("nodes_retired", "nodes_reclaimed",
                          "node_high_water", "max_stall_spins",
                          "scan_passes"):
                if row[field] < 0:
                    raise MalformedInput(
                        f"benchmark {row['name']}/{row['arg']}: negative "
                        f"{field}")
            if row["nodes_reclaimed"] > row["nodes_retired"]:
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: reclaimed "
                    f"more nodes than were retired")
            if (row["policy_id"] == E19_BOXED_POLICY_ID
                    and row["nodes_retired"] > 0
                    and row["node_high_water"] <= 0):
                raise MalformedInput(
                    f"benchmark {row['name']}/{row['arg']}: boxed row "
                    f"retired nodes but reports zero node_high_water")


def write_csv(rows, out):
    counters = []
    for row in rows:
        # The hw benchmarks report their process/thread count as a counter;
        # surface it as a first-class column.
        if "n_threads" in row:
            row["threads"] = int(row.pop("n_threads"))
        for key in row:
            if key not in BASE_FIELDS and key not in counters:
                counters.append(key)
    writer = csv.DictWriter(out, fieldnames=BASE_FIELDS + counters)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)


def main():
    ap = argparse.ArgumentParser(
        description="google-benchmark output (console or JSON) -> CSV")
    ap.add_argument("--check", action="store_true",
                    help="validate the input instead of converting; exit 1 "
                         "on malformed benchmark output")
    args = ap.parse_args()

    text = sys.stdin.read()
    try:
        stripped = text.lstrip()
        if stripped.startswith("{"):
            rows = parse_json(text)
        else:
            if args.check and not stripped:
                raise MalformedInput("empty input")
            rows = parse_console(text.splitlines())
        validate(rows)
    except MalformedInput as e:
        if args.check:
            print(f"bench_to_csv: malformed benchmark output: {e}",
                  file=sys.stderr)
            return 1
        raise SystemExit(f"bench_to_csv: {e}")

    if args.check:
        names = {row["name"] for row in rows}
        print(f"ok: {len(rows)} benchmark rows from {len(names)} benchmarks")
        return 0
    write_csv(rows, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
