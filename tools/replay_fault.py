#!/usr/bin/env python3
"""Replay failing Monte-Carlo fault artifacts through the fault_replay binary.

The Monte-Carlo drivers (hw/mc_driver, core/lower_bound) dump a
FaultArtifact JSON for every failing sample when an artifact directory is
configured. This wrapper feeds each artifact back through
`fault_replay --replay` and reports whether the recorded taxonomy and
per-process op counts reproduce bit-for-bit.

Usage:
    tools/replay_fault.py artifacts/fault_sample_3.json
    tools/replay_fault.py --platform both artifacts/*.json
    tools/replay_fault.py --binary ./build/examples/fault_replay artifacts/

Exit status: 0 when every artifact replays bit-for-bit, 1 on any mismatch
or replay failure, 2 on usage/environment errors (missing binary,
unreadable artifact). Artifacts with an unregistered scenario ("custom")
are reported and skipped — they document a failure but carry no body to
rebuild (see docs/fault_injection.md).

--strategy filters by the plan's placement strategy ("oblivious" matches
plans that omit the optional key; "adaptive"/"burst" match the recorded
adversarial plans, which replay through their embedded decision trace).
"""
import argparse
import json
import os
import subprocess
import sys

DEFAULT_BINARY = os.path.join("build", "examples", "fault_replay")

# Keys every artifact must carry to be replayable (FaultArtifact schema —
# see docs/fault_injection.md).
REQUIRED_KEYS = ["scenario", "n", "toss_seed", "status", "proc_ops", "plan"]


def collect_artifacts(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, f) for f in sorted(os.listdir(path))
                if f.endswith(".json"))
        else:
            files.append(path)
    return files


def check_artifact(path):
    """Light schema validation; the binary re-parses authoritatively.

    Raises ValueError with the offending key and the expected shape, so a
    malformed or truncated artifact fails with a readable message instead
    of a KeyError/TypeError deeper in the replay loop. Pre-recovery
    artifacts (crash entries without the optional "recovery" object) pass
    untouched — their schema is a strict subset.
    """
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError("artifact root: expected a JSON object, got "
                         f"{type(doc).__name__}")
    missing = [k for k in REQUIRED_KEYS if k not in doc]
    if missing:
        raise ValueError(f"missing key(s): {', '.join(missing)}")
    for key, want in (("scenario", str), ("status", str), ("n", int)):
        if not isinstance(doc[key], want):
            raise ValueError(f"field '{key}': expected {want.__name__}, "
                             f"got {type(doc[key]).__name__}")
    if not isinstance(doc["proc_ops"], list):
        raise ValueError("field 'proc_ops': expected an array, got "
                         f"{type(doc['proc_ops']).__name__}")
    if not isinstance(doc["plan"], dict):
        raise ValueError("field 'plan': expected an object, got "
                         f"{type(doc['plan']).__name__}")
    crashes = doc["plan"].get("crashes", [])
    if not isinstance(crashes, list):
        raise ValueError("field 'plan.crashes': expected an array, got "
                         f"{type(crashes).__name__}")
    for i, crash in enumerate(crashes):
        if not isinstance(crash, dict):
            raise ValueError(f"field 'plan.crashes[{i}]': expected an "
                             f"object, got {type(crash).__name__}")
        recovery = crash.get("recovery")
        if recovery is None:
            continue  # pre-recovery schema: crash-stop is final
        if not isinstance(recovery, dict):
            raise ValueError(
                f"field 'plan.crashes[{i}].recovery': expected an object, "
                f"got {type(recovery).__name__}")
        for key in ("delay_units", "max_restarts"):
            if key not in recovery:
                raise ValueError(
                    f"field 'plan.crashes[{i}].recovery': missing "
                    f"'{key}' (expected an unsigned integer)")
            if not isinstance(recovery[key], int) or recovery[key] < 0:
                raise ValueError(
                    f"field 'plan.crashes[{i}].recovery.{key}': expected "
                    f"an unsigned integer, got {recovery[key]!r}")
    return doc


def main():
    ap = argparse.ArgumentParser(
        description="replay fault artifacts via fault_replay --replay")
    ap.add_argument("artifacts", nargs="+",
                    help="artifact JSON files or directories of them")
    ap.add_argument("--binary", default=DEFAULT_BINARY,
                    help=f"fault_replay binary (default: {DEFAULT_BINARY})")
    ap.add_argument("--platform", default="sim",
                    choices=["sim", "hw", "both"],
                    help="substrate(s) to replay on (default: sim)")
    ap.add_argument("--timeout-ms", type=int, default=120000,
                    help="watchdog budget per replay (default: 120000)")
    ap.add_argument("--strategy", default="any",
                    choices=["any", "oblivious", "adaptive", "burst"],
                    help="only replay artifacts whose plan uses this "
                         "placement strategy (default: any)")
    args = ap.parse_args()

    if not (os.path.isfile(args.binary) and os.access(args.binary, os.X_OK)):
        print(f"replay_fault: binary not found or not executable: "
              f"{args.binary} (build the repo first)", file=sys.stderr)
        return 2

    files = collect_artifacts(args.artifacts)
    if not files:
        print("replay_fault: no artifact files found", file=sys.stderr)
        return 2

    failures = 0
    skipped = 0
    for path in files:
        try:
            doc = check_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"replay_fault: {path}: unreadable artifact: {e}",
                  file=sys.stderr)
            return 2
        if doc["scenario"] == "custom":
            print(f"SKIP  {path}: scenario 'custom' has no registered body")
            skipped += 1
            continue
        # Oblivious plans predate the optional "strategy" key and omit it.
        plan = doc["plan"] if isinstance(doc["plan"], dict) else {}
        strategy = plan.get("strategy", "oblivious")
        if args.strategy != "any" and strategy != args.strategy:
            print(f"SKIP  {path}: strategy '{strategy}' filtered out")
            skipped += 1
            continue
        cmd = [args.binary, "--replay", path, "--platform", args.platform,
               "--timeout_ms", str(args.timeout_ms)]
        # Non-boxed artifacts carry the storage policy and width counters
        # of the failing sample (optional keys; boxed artifacts omit them).
        width = ""
        if "storage_policy" in doc:
            width = (f", storage={doc['storage_policy']}"
                     f", overflow_events={doc.get('overflow_events', 0)}"
                     f", max_bits={doc.get('max_bits', 0)}"
                     f", boxed_fallback_registers="
                     f"{doc.get('boxed_fallback_registers', 0)}")
        # Non-default reclaimers likewise carry their id and node-accounting
        # counters (optional keys; default-epoch artifacts omit them so
        # their JSON stays byte-stable).
        if "reclaimer" in doc:
            width += (f", reclaimer={doc['reclaimer']}"
                      f", nodes_retired={doc.get('nodes_retired', 0)}"
                      f", nodes_reclaimed={doc.get('nodes_reclaimed', 0)}")
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            print(f"OK    {path}: replay matches "
                  f"(status={doc['status']}, n={doc['n']}{width})")
        else:
            failures += 1
            print(f"FAIL  {path}: replay diverged (exit {proc.returncode})")
            for line in (proc.stdout + proc.stderr).splitlines():
                print(f"      {line}")

    replayed = len(files) - skipped
    print(f"replay_fault: {replayed - failures}/{replayed} artifacts "
          f"reproduced bit-for-bit"
          + (f", {skipped} skipped" if skipped else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
