#!/usr/bin/env python3
"""Regression tests for the repo's Python tooling (stdlib unittest only).

Covers the contracts CI depends on:
  * bench_to_csv.py --check — accepts sound benchmark JSON, rejects
    malformed input and rows missing the per-experiment schema fields
    (E10/E11 backoff fingerprint, E12 taxonomy, E13 adversarial-placement
    accounting, E14 storage-policy fingerprint, E15 combining batching
    fingerprint including the zero-batch mean-omitted contract, E16
    service-mode pool shape / offered-served accounting / monotone
    latency percentiles, E18 TAS/leader expected-steps fingerprint with
    the ordered winner-ops accounting and the zero-spec-violations gate,
    E19 reclamation fingerprint with the reclaimed <= retired invariant
    and the boxed-row positive-high-water gate) with a nonzero exit;
  * bench_to_csv.py conversion — emits the expected CSV columns;
  * replay_fault.py — exit codes for missing binaries/keys, the
    custom-scenario and --strategy skip paths, and pass/fail propagation
    from the fault_replay binary (stubbed; the real binary's behavior is
    covered by examples/fault_replay --selftest in ctest/CI).

Run directly (tools/test_tools.py) or via ctest (tools_test).
"""
import json
import os
import stat
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
BENCH_TO_CSV = os.path.join(TOOLS_DIR, "bench_to_csv.py")
REPLAY_FAULT = os.path.join(TOOLS_DIR, "replay_fault.py")


def bench_row(name, **counters):
    row = {
        "name": name,
        "real_time": 100.0,
        "cpu_time": 90.0,
        "iterations": 10,
        "time_unit": "ns",
    }
    row.update(counters)
    return row


def bench_doc(*rows):
    return json.dumps({"context": {}, "benchmarks": list(rows)})


def run_bench_to_csv(stdin_text, *args):
    return subprocess.run(
        [sys.executable, BENCH_TO_CSV, *args],
        input=stdin_text, capture_output=True, text=True)


def run_replay_fault(*args):
    return subprocess.run(
        [sys.executable, REPLAY_FAULT, *args],
        capture_output=True, text=True)


E13_GOOD = dict(n_threads=4, strategy_id=1, fault_budget=128,
                injected_sc_failures=128, retry_amplification=1.5)

E14_GOOD = dict(n_threads=4, policy_id=1, hw_ops_per_sec=2.5e6,
                overflow_events=0)

E15_GOOD = dict(n_threads=8, policy_id=0, uc_ops_per_sec=5.4e5)

E15_COMBINING_GOOD = dict(E15_GOOD, mean_batch_size=3.3, batches=619)
E16_GOOD = dict(n_threads=2, m_procs=32, oversub_factor=16,
                arrival_rate_hz=100000.0, offered_ops=256, served_ops=256,
                throughput_ops_per_sec=9.1e4, latency_p50_ns=4.2e3,
                latency_p90_ns=1.8e4, latency_p99_ns=2.1e5,
                latency_p999_ns=1.3e6)
E17_GOOD = dict(n_threads=2, m_procs=16, recover=1, storm=4,
                arrival_rate_hz=20000.0, offered_ops=128, served_ops=128,
                throughput_ops_per_sec=1.0e4, availability=1.0,
                mttr_ms=0.6, crashes=4, recoveries=4, in_flight_at_crash=4,
                latency_p50_ns=7.5e5, latency_p90_ns=6.5e6,
                latency_p99_ns=7.7e6, latency_p999_ns=7.9e6)
E18_GOOD = dict(n=16, object_id=0, substrate_id=0, samples=16,
                mean_winner_ops=6.0, mean_max_ops=17.3, min_winner_ops=6,
                log2_n=4.0, spec_violations=0)
E19_GOOD = dict(n_threads=2, reclaimer_id=1, policy_id=0,
                hw_ops_per_sec=9.5e6, nodes_retired=4000,
                nodes_reclaimed=3906, node_high_water=128,
                max_stall_spins=3, scan_passes=61, stalled_peer=0)


class BenchToCsvCheckTest(unittest.TestCase):
    def test_valid_generic_row_passes(self):
        doc = bench_doc(bench_row("BM_Tournament/64", log4_n=3))
        proc = run_bench_to_csv(doc, "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("ok:", proc.stdout)

    def test_malformed_json_rejected(self):
        proc = run_bench_to_csv('{"benchmarks": [truncated', "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("malformed", proc.stderr)

    def test_empty_input_rejected(self):
        proc = run_bench_to_csv("", "--check")
        self.assertEqual(proc.returncode, 1)

    def test_missing_required_field_rejected(self):
        row = bench_row("BM_X/1")
        del row["iterations"]
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing field", proc.stderr)

    def test_backoff_row_missing_policy_rejected(self):
        row = bench_row("BM_HwBackoff_Fixed/8", n_threads=8,
                        oversubscribed=1, hw_ops_per_sec=1e6,
                        cas_failure_rate=0.25, parks=0)  # no policy_id
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("policy_id", proc.stderr)

    def test_e12_row_missing_taxonomy_rejected(self):
        row = bench_row("BM_E12_Degradation/4", sc_fail_rate=0.5,
                        clean=10, spec_violations=0, crashed=0)  # no hung
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("hung", proc.stderr)

    def test_e13_row_passes(self):
        row = bench_row("BM_E13_AdaptiveVsOblivious_Adaptive/4/256/128",
                        **E13_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e13_row_missing_budget_rejected(self):
        counters = dict(E13_GOOD)
        del counters["fault_budget"]
        row = bench_row("BM_E13_AdaptiveVsOblivious_Adaptive/4", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("fault_budget", proc.stderr)

    def test_e13_unknown_strategy_rejected(self):
        row = bench_row("BM_E13_X/4", **dict(E13_GOOD, strategy_id=7))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("strategy_id", proc.stderr)

    def test_e13_overspent_budget_rejected(self):
        row = bench_row("BM_E13_X/4",
                        **dict(E13_GOOD, injected_sc_failures=129))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("budget", proc.stderr)

    def test_e13_amplification_below_one_rejected(self):
        row = bench_row("BM_E13_X/4",
                        **dict(E13_GOOD, retry_amplification=0.5))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("retry_amplification", proc.stderr)

    def test_e14_row_passes(self):
        row = bench_row("BM_E14_StorageHammer_Inline/4", **E14_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e14_row_missing_policy_rejected(self):
        counters = dict(E14_GOOD)
        del counters["policy_id"]
        row = bench_row("BM_E14_StorageHammer_Inline/4", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("policy_id", proc.stderr)

    def test_e14_unknown_policy_rejected(self):
        row = bench_row("BM_E14_X/4", **dict(E14_GOOD, policy_id=9))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("policy_id", proc.stderr)

    def test_e14_negative_overflow_rejected(self):
        row = bench_row("BM_E14_X/4", **dict(E14_GOOD, overflow_events=-1))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("overflow_events", proc.stderr)

    def test_e15_baseline_row_passes(self):
        # Non-combining contenders carry no batching fingerprint.
        row = bench_row("BM_E15_SingleRegister_Boxed/8/256", **E15_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e15_combining_row_passes(self):
        row = bench_row("BM_E15_Combining_Boxed/8/256", **E15_COMBINING_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e15_row_missing_throughput_rejected(self):
        counters = dict(E15_GOOD)
        del counters["uc_ops_per_sec"]
        row = bench_row("BM_E15_DirectFetchAdd_Boxed/8/256", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("uc_ops_per_sec", proc.stderr)

    def test_e15_unknown_policy_rejected(self):
        row = bench_row("BM_E15_Combining_Inline/8/256",
                        **dict(E15_COMBINING_GOOD, policy_id=9))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("policy_id", proc.stderr)

    def test_e15_combining_row_missing_batching_rejected(self):
        # Without mean_batch_size the batching thesis cannot be audited.
        row = bench_row("BM_E15_Combining_Boxed/8/256",
                        **dict(E15_GOOD, batches=619))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mean_batch_size", proc.stderr)

    def test_e15_combining_batch_below_one_rejected(self):
        row = bench_row("BM_E15_Combining_Boxed/8/256",
                        **dict(E15_COMBINING_GOOD, mean_batch_size=0.5))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mean_batch_size", proc.stderr)

    def test_e15_combining_mean_over_zero_batches_rejected(self):
        # batches == 0 with mean_batch_size still present is the
        # div-by-zero artifact the zero-batch contract exists to catch.
        row = bench_row("BM_E15_Combining_Boxed/8/256",
                        **dict(E15_COMBINING_GOOD, batches=0))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("batch", proc.stderr)

    def test_e15_combining_zero_batches_without_mean_passes(self):
        # A run where every op was adopted installs no batches; the bench
        # omits mean_batch_size and the row is valid.
        counters = dict(E15_COMBINING_GOOD, batches=0)
        del counters["mean_batch_size"]
        row = bench_row("BM_E15_Combining_Boxed/8/256", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e16_row_passes(self):
        row = bench_row("BM_E16_FetchInc/16/100000", **E16_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e16_row_missing_percentile_rejected(self):
        counters = dict(E16_GOOD)
        del counters["latency_p999_ns"]
        row = bench_row("BM_E16_Wakeup/16/100000", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("latency_p999_ns", proc.stderr)

    def test_e16_non_monotone_percentiles_rejected(self):
        row = bench_row("BM_E16_FetchInc/16/100000",
                        **dict(E16_GOOD, latency_p50_ns=9e6))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("monotone", proc.stderr)

    def test_e16_served_above_offered_rejected(self):
        row = bench_row("BM_E16_Combining/16/100000",
                        **dict(E16_GOOD, served_ops=512))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("served", proc.stderr)

    def test_e16_pool_shape_mismatch_rejected(self):
        row = bench_row("BM_E16_FetchInc/16/100000",
                        **dict(E16_GOOD, m_procs=31))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("pool shape", proc.stderr)

    def test_e17_row_passes(self):
        row = bench_row("BM_E17_CrashStorm_FetchInc/1/4", **E17_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e17_crash_stop_row_passes(self):
        row = bench_row("BM_E17_CrashStorm_Combining/0/12",
                        **dict(E17_GOOD, recover=0, storm=12, crashes=12,
                               recoveries=0, in_flight_at_crash=12,
                               served_ops=80, availability=0.625,
                               mttr_ms=0.0))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e17_row_missing_availability_rejected(self):
        counters = dict(E17_GOOD)
        del counters["availability"]
        row = bench_row("BM_E17_CrashStorm_FetchInc/1/4", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("availability", proc.stderr)

    def test_e17_availability_mismatch_rejected(self):
        # availability must equal served/offered: a row claiming full
        # availability while dropping ops is the dishonest-accounting
        # shape the check exists to catch.
        row = bench_row("BM_E17_CrashStorm_FetchInc/0/4",
                        **dict(E17_GOOD, recover=0, recoveries=0,
                               mttr_ms=0.0, served_ops=112,
                               availability=1.0))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("availability", proc.stderr)

    def test_e17_more_recoveries_than_crashes_rejected(self):
        row = bench_row("BM_E17_CrashStorm_FetchInc/1/4",
                        **dict(E17_GOOD, recoveries=5))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("recoveries", proc.stderr)

    def test_e17_in_flight_above_crashes_rejected(self):
        row = bench_row("BM_E17_CrashStorm_FetchInc/1/4",
                        **dict(E17_GOOD, in_flight_at_crash=5))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("in_flight_at_crash", proc.stderr)

    def test_e17_mttr_without_recoveries_rejected(self):
        row = bench_row("BM_E17_CrashStorm_FetchInc/0/4",
                        **dict(E17_GOOD, recover=0, recoveries=0,
                               served_ops=112, availability=0.875))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("mttr_ms", proc.stderr)

    def test_e18_row_passes(self):
        row = bench_row("BM_E18_Tas_Sim/16", **E18_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e18_row_missing_accounting_rejected(self):
        counters = dict(E18_GOOD)
        del counters["min_winner_ops"]
        row = bench_row("BM_E18_Leader_Hw/4", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("min_winner_ops", proc.stderr)

    def test_e18_unknown_object_rejected(self):
        row = bench_row("BM_E18_Tas_Sim/16", **dict(E18_GOOD, object_id=7))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("object_id", proc.stderr)

    def test_e18_unknown_substrate_rejected(self):
        row = bench_row("BM_E18_Tas_Sim/16",
                        **dict(E18_GOOD, substrate_id=3))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("substrate_id", proc.stderr)

    def test_e18_unordered_ops_rejected(self):
        # mean above max: the accounting must be min <= mean <= max.
        row = bench_row("BM_E18_Leader_Oversub/32",
                        **dict(E18_GOOD, substrate_id=2, object_id=1,
                               mean_winner_ops=20.0))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("not ordered", proc.stderr)

    def test_e18_lost_winner_rejected(self):
        row = bench_row("BM_E18_Tas_Hw/8",
                        **dict(E18_GOOD, substrate_id=1, spec_violations=1))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("winner", proc.stderr)

    def test_e19_row_passes(self):
        row = bench_row("BM_E19_Hammer_Hazard/2/2000", **E19_GOOD)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_e19_row_missing_accounting_rejected(self):
        counters = dict(E19_GOOD)
        del counters["node_high_water"]
        row = bench_row("BM_E19_Hammer_Epoch/1/2000", **counters)
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("node_high_water", proc.stderr)

    def test_e19_unknown_reclaimer_rejected(self):
        row = bench_row("BM_E19_Hammer_Epoch/1/2000",
                        **dict(E19_GOOD, reclaimer_id=5))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("reclaimer_id", proc.stderr)

    def test_e19_reclaimed_above_retired_rejected(self):
        # The no-double-free invariant: freeing more than was retired.
        row = bench_row("BM_E19_Oversub_Hazard/2/50",
                        **dict(E19_GOOD, nodes_retired=100,
                               nodes_reclaimed=101))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("more nodes than were retired", proc.stderr)

    def test_e19_boxed_zero_high_water_rejected(self):
        # A boxed run that retired nodes must have seen a positive peak.
        row = bench_row("BM_E19_Hammer_Epoch_StalledPeer/2/2000",
                        **dict(E19_GOOD, reclaimer_id=0, stalled_peer=1,
                               node_high_water=0))
        proc = run_bench_to_csv(bench_doc(row), "--check")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("zero node_high_water", proc.stderr)


class BenchToCsvConvertTest(unittest.TestCase):
    def test_csv_has_expected_columns(self):
        doc = bench_doc(
            bench_row("BM_E13_AdaptiveVsOblivious_Adaptive/4/256/128",
                      **E13_GOOD))
        proc = run_bench_to_csv(doc)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        lines = proc.stdout.strip().splitlines()
        self.assertEqual(len(lines), 2)
        header = lines[0].split(",")
        for col in ("name", "arg", "threads", "time_ns", "cpu_ns",
                    "iterations", "strategy_id", "fault_budget",
                    "injected_sc_failures", "retry_amplification"):
            self.assertIn(col, header)
        values = dict(zip(header, lines[1].split(",")))
        self.assertEqual(values["name"], "BM_E13_AdaptiveVsOblivious_Adaptive")
        self.assertEqual(values["arg"], "4/256/128")
        self.assertEqual(values["threads"], "4")  # n_threads surfaced


def artifact(scenario="fixed_ll_sc", plan=None, **overrides):
    doc = {
        "scenario": scenario,
        "n": 4,
        "toss_seed": 42,
        "max_rounds": 4096,
        "status": "clean",
        "proc_ops": [16, 16, 16, 16],
        "plan": plan if plan is not None else {"seed": 7},
    }
    doc.update(overrides)
    return doc


class ReplayFaultTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_artifact(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def write_stub_binary(self, exit_code):
        path = os.path.join(self.tmp.name, "fault_replay_stub")
        with open(path, "w", encoding="utf-8") as f:
            f.write(f"#!/bin/sh\nexit {exit_code}\n")
        os.chmod(path, os.stat(path).st_mode | stat.S_IXUSR)
        return path

    def test_missing_binary_is_usage_error(self):
        art = self.write_artifact("a.json", artifact())
        proc = run_replay_fault("--binary", "/nonexistent/fault_replay", art)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("binary not found", proc.stderr)

    def test_artifact_missing_keys_is_usage_error(self):
        doc = artifact()
        del doc["proc_ops"]
        art = self.write_artifact("a.json", doc)
        proc = run_replay_fault("--binary", self.write_stub_binary(0), art)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("missing key", proc.stderr)

    def test_custom_scenario_is_skipped(self):
        art = self.write_artifact("a.json", artifact(scenario="custom"))
        proc = run_replay_fault("--binary", self.write_stub_binary(1), art)
        # The failing stub is never invoked: the artifact is skipped.
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SKIP", proc.stdout)

    def test_strategy_filter_skips_other_plans(self):
        oblivious = self.write_artifact("obl.json", artifact())
        adaptive = self.write_artifact(
            "ada.json",
            artifact(plan={"seed": 7, "strategy": "adaptive",
                           "fault_budget": 6}))
        stub = self.write_stub_binary(0)
        proc = run_replay_fault("--binary", stub, "--strategy", "adaptive",
                                oblivious, adaptive)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("SKIP", proc.stdout)
        self.assertIn("filtered out", proc.stdout)
        self.assertIn("1/1 artifacts reproduced", proc.stdout)
        # Plans without the optional "strategy" key are oblivious.
        proc = run_replay_fault("--binary", stub, "--strategy", "oblivious",
                                oblivious, adaptive)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("1/1 artifacts reproduced", proc.stdout)

    def test_stub_success_reports_ok(self):
        art = self.write_artifact("a.json", artifact())
        proc = run_replay_fault("--binary", self.write_stub_binary(0), art)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)
        self.assertIn("1/1 artifacts reproduced", proc.stdout)

    def test_stub_failure_propagates(self):
        art = self.write_artifact("a.json", artifact())
        proc = run_replay_fault("--binary", self.write_stub_binary(1), art)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("FAIL", proc.stdout)

    def test_non_object_artifact_fails_readably(self):
        path = os.path.join(self.tmp.name, "list.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("[1, 2, 3]")
        proc = run_replay_fault("--binary", self.write_stub_binary(0), path)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("expected a JSON object", proc.stderr)

    def test_wrong_field_type_names_the_field(self):
        art = self.write_artifact("a.json", artifact(n="four"))
        proc = run_replay_fault("--binary", self.write_stub_binary(0), art)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("'n'", proc.stderr)

    def test_malformed_recovery_names_the_field(self):
        # A truncated recovery object must fail with the missing field,
        # not a KeyError traceback.
        bad = artifact(plan={"seed": 7, "crashes": [
            {"proc": 1, "after_ops": 3, "recovery": {"max_restarts": 1}}]})
        art = self.write_artifact("a.json", bad)
        proc = run_replay_fault("--binary", self.write_stub_binary(0), art)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("delay_units", proc.stderr)

    def test_pre_recovery_and_recovery_artifacts_replay(self):
        # Crash entries without the optional "recovery" object (old
        # schema) and with a complete one must both reach the binary.
        old = artifact(plan={"seed": 7, "crashes": [
            {"proc": 1, "after_ops": 3}]})
        new = artifact(plan={"seed": 7, "crashes": [
            {"proc": 1, "after_ops": 3,
             "recovery": {"delay_units": 8, "max_restarts": 1,
                          "amnesia": True}}]})
        stub = self.write_stub_binary(0)
        proc = run_replay_fault("--binary", stub,
                                self.write_artifact("old.json", old),
                                self.write_artifact("new.json", new))
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("2/2 artifacts reproduced", proc.stdout)


if __name__ == "__main__":
    unittest.main()
