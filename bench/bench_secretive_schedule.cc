// E6 — Lemmas 4.1/4.2 at scale. Construction cost of secretive complete
// schedules over random move sets, with mover-count statistics.
//
// Expected shape: construction time is near-linear in |S|; `movers_max`
// is exactly <= 2 at every size (Lemma 4.1); the id-order baseline's
// `movers_max` grows with the chain length.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "sched/secretive_schedule.h"
#include "util/check.h"
#include "util/rng.h"

namespace llsc {
namespace {

MoveSet random_moves(Rng& rng, int k, RegId pool) {
  MoveSet moves;
  for (ProcId p = 0; p < k; ++p) {
    const RegId src = rng.next_below(pool);
    RegId dst = rng.next_below(pool - 1);
    if (dst >= src) ++dst;
    moves.push_back({p, src, dst});
  }
  return moves;
}

MoveSet chain_moves(int k) {
  MoveSet moves;
  for (ProcId p = 0; p < k; ++p) {
    moves.push_back({p, static_cast<RegId>(p), static_cast<RegId>(p) + 1});
  }
  return moves;
}

void report_movers(benchmark::State& state, const MoveSet& moves,
                   const std::vector<ProcId>& sigma) {
  const MoveAnalysis analysis(moves, sigma);
  std::size_t max_movers = 0;
  double total = 0;
  std::size_t touched = 0;
  for (const RegId r : analysis.touched()) {
    const std::size_t m = analysis.movers(r).size();
    max_movers = std::max(max_movers, m);
    total += static_cast<double>(m);
    ++touched;
  }
  state.counters["movers_max"] = static_cast<double>(max_movers);
  state.counters["movers_mean"] = touched ? total / touched : 0.0;
  state.counters["registers_touched"] = static_cast<double>(touched);
}

void BM_ConstructRandom(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(42);
  const MoveSet moves = random_moves(rng, k, std::max<RegId>(4, k / 4));
  std::vector<ProcId> sigma;
  for (auto _ : state) {
    sigma = secretive_complete_schedule(moves);
    benchmark::DoNotOptimize(sigma);
  }
  LLSC_CHECK(is_secretive_complete(moves, sigma), "Lemma 4.1 violated");
  state.counters["moves"] = k;
  report_movers(state, moves, sigma);
  state.SetComplexityN(k);
}

void BM_ConstructChain(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const MoveSet moves = chain_moves(k);
  std::vector<ProcId> sigma;
  for (auto _ : state) {
    sigma = secretive_complete_schedule(moves);
    benchmark::DoNotOptimize(sigma);
  }
  LLSC_CHECK(is_secretive_complete(moves, sigma), "Lemma 4.1 violated");
  state.counters["moves"] = k;
  report_movers(state, moves, sigma);
}

void BM_NaiveIdOrderChain(benchmark::State& state) {
  // Baseline: the id-order schedule on the same chain — movers_max = k.
  const int k = static_cast<int>(state.range(0));
  const MoveSet moves = chain_moves(k);
  std::vector<ProcId> naive;
  for (ProcId p = 0; p < k; ++p) naive.push_back(p);
  for (auto _ : state) {
    const MoveAnalysis analysis(moves, naive);
    benchmark::DoNotOptimize(analysis.source(static_cast<RegId>(k)));
  }
  state.counters["moves"] = k;
  report_movers(state, moves, naive);
}

void BM_RestrictionCheck(benchmark::State& state) {
  // Lemma 4.2 verification cost: restrict to each register's movers and
  // compare sources.
  const int k = static_cast<int>(state.range(0));
  Rng rng(7);
  const MoveSet moves = random_moves(rng, k, std::max<RegId>(4, k / 4));
  const auto sigma = secretive_complete_schedule(moves);
  const MoveAnalysis analysis(moves, sigma);
  const auto touched = analysis.touched();
  bool all_ok = true;
  for (auto _ : state) {
    for (const RegId r : touched) {
      std::unordered_set<ProcId> subset;
      for (const ProcId p : analysis.movers(r)) subset.insert(p);
      all_ok &= restriction_preserves_source(moves, sigma, subset, r);
    }
    benchmark::DoNotOptimize(all_ok);
  }
  LLSC_CHECK(all_ok, "Lemma 4.2 violated");
  state.counters["moves"] = k;
  state.counters["registers_checked"] = static_cast<double>(touched.size());
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_ConstructRandom)
    ->RangeMultiplier(4)
    ->Range(16, 65536)
    ->Complexity();
BENCHMARK(llsc::BM_ConstructChain)->RangeMultiplier(4)->Range(16, 65536);
BENCHMARK(llsc::BM_NaiveIdOrderChain)->RangeMultiplier(4)->Range(16, 4096);
BENCHMARK(llsc::BM_RestrictionCheck)->RangeMultiplier(4)->Range(16, 1024);
