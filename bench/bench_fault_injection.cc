// E12 — graceful degradation under injected faults (hw/fault.h).
//
// Two questions, one sweep each:
//
//   BM_E12_RetryLoop_ScFail: how does raw LL/SC throughput on the hw
//   backend degrade as the spurious-SC-failure rate rises? The workload
//   is a lock-free fetch&increment retry loop, which tolerates spurious
//   failures by design: every forced failure costs one retry, so
//   hw_ops_per_sec falls smoothly and retry_amplification (shared ops per
//   successful increment, /2 for the LL+SC pair) rises with the rate,
//   while exactness holds — each process still completes exactly its
//   quota of successful increments.
//
//   The wait-free universal constructions (E10) are deliberately NOT run
//   under injection: their two-attempt helping lemma ("my second SC
//   failing implies someone merged my announce") is a theorem about
//   failure-free LL/SC, and a spurious failure voids it — they detect the
//   broken contract and abort rather than return wrong responses. The
//   retry loop is the honest graceful-degradation workload.
//
//   BM_E12_Wakeup_ScFail / BM_E12_Wakeup_CrashStorm: what fraction of
//   Lemma 3.1 Monte-Carlo samples stay clean vs degrade to
//   spec-violation / crashed / hung as faults ramp? This exercises the
//   full taxonomy the mc_driver now aggregates instead of deadlocking.
//
// Rates are passed as permille (range args are integers); the
// `sc_fail_rate` counter reports the real rate. Failing wakeup samples
// dump replay artifacts only when LLSC_E12_ARTIFACT_DIR is set (CI keeps
// it unset; the bench is about rates, not dumps).
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "hw/fault.h"
#include "hw/hw_executor.h"
#include "hw/mc_driver.h"
#include "memory/value.h"
#include "util/check.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void report_taxonomy(benchmark::State& state, int clean, int spec,
                     int crashed, int hung) {
  state.counters["clean"] = clean;
  state.counters["spec_violations"] = spec;
  state.counters["crashed"] = crashed;
  state.counters["hung"] = hung;
}

// Lock-free fetch&increment: retry LL/SC on one shared register until
// `ops` increments stick. Spurious SC failures cost retries, not
// correctness.
ProcBody retry_increment_body(int ops) {
  return [ops](ProcCtx ctx, ProcId, int) -> SimTask {
    std::uint64_t done = 0;
    while (done < static_cast<std::uint64_t>(ops)) {
      const Value cur = co_await ctx.ll(0);
      const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
      const ScResult r = co_await ctx.sc(0, Value::of_u64(base + 1));
      if (r.ok) ++done;
    }
    co_return Value::of_u64(done);
  };
}

void BM_E12_RetryLoop_ScFail(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const double rate = static_cast<double>(state.range(2)) / 1000.0;
  FaultPlan plan;
  plan.seed = 0xE12;
  plan.sc_fail_rate = rate;
  HwRunOptions options;
  options.fault = rate > 0.0 ? &plan : nullptr;
  HwExecutor exec(options);
  const ProcBody body = retry_increment_body(ops);
  const std::uint64_t quota =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(ops);
  HwRunResult r;
  for (auto _ : state) {
    r = exec.run(n, body);
    LLSC_CHECK(r.status == RunStatus::kClean,
               "retry loop must complete under spurious failures");
    for (const Value& v : r.results) {
      // Injected failures never eat a successful increment.
      LLSC_CHECK(v.as_u64() == static_cast<std::uint64_t>(ops),
                 "a process lost increments under injection");
    }
  }
  state.counters["n_threads"] = n;
  state.counters["sc_fail_rate"] = rate;
  state.counters["hw_ops_per_sec"] =
      r.wall_seconds > 0 ? static_cast<double>(quota) / r.wall_seconds : 0.0;
  // Shared ops per successful increment, normalized by the LL+SC pair:
  // 1.0 = no retries; grows with both contention and the injected rate.
  state.counters["retry_amplification"] =
      static_cast<double>(r.total_shared_ops) /
      (2.0 * static_cast<double>(quota));
  state.counters["injected_sc_failures"] =
      static_cast<double>(r.fault.injected_sc_failures);
  report_taxonomy(state, 1, 0, 0, 0);
}
BENCHMARK(BM_E12_RetryLoop_ScFail)
    ->Args({4, 256, 0})
    ->Args({4, 256, 50})
    ->Args({4, 256, 200})
    ->Args({4, 256, 500})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void run_wakeup_sweep(benchmark::State& state, int n, int samples,
                      const FaultPlan& plan, double reported_rate) {
  McRunOptions options;
  options.adversary.max_rounds = 1 << 10;
  options.fault = plan.enabled() ? &plan : nullptr;
  options.scenario = "randomized_tournament";
  if (const char* dir = std::getenv("LLSC_E12_ARTIFACT_DIR")) {
    options.artifact_dir = dir;
  }
  ParallelMcResult result;
  for (auto _ : state) {
    result = estimate_expected_complexity_parallel(
        randomized_tournament_wakeup(), n, samples, /*seed=*/0xE12, options);
  }
  const ExpectedComplexityEstimate& est = result.estimate;
  state.counters["n"] = n;
  state.counters["sc_fail_rate"] = reported_rate;
  state.counters["termination_rate"] = est.termination_rate;
  state.counters["mean_winner_ops"] = est.mean_winner_ops;
  const int clean = est.samples - est.spec_violations - est.crashed_samples -
                    est.hung_samples;
  report_taxonomy(state, clean, est.spec_violations, est.crashed_samples,
                  est.hung_samples);
  state.counters["artifacts_written"] =
      static_cast<double>(result.artifacts.size());
}

void BM_E12_Wakeup_ScFail(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int samples = static_cast<int>(state.range(1));
  const double rate = static_cast<double>(state.range(2)) / 1000.0;
  FaultPlan plan;
  plan.seed = 0xE12;
  plan.sc_fail_rate = rate;
  run_wakeup_sweep(state, n, samples, plan, rate);
}
BENCHMARK(BM_E12_Wakeup_ScFail)
    ->Args({16, 64, 0})
    ->Args({16, 64, 50})
    ->Args({16, 64, 200})
    ->Args({16, 64, 500})
    ->Unit(benchmark::kMillisecond);

// Crash-storm point: the first quarter of the processes crash early, so
// the root count can never reach n — every sample must land in `crashed`,
// none may wedge the driver.
void BM_E12_Wakeup_CrashStorm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int samples = static_cast<int>(state.range(1));
  FaultPlan plan;
  plan.seed = 0xE12;
  for (ProcId p = 0; p < n / 4; ++p) {
    plan.crashes.push_back(CrashSpec{.proc = p, .after_ops = 2});
  }
  run_wakeup_sweep(state, n, samples, plan, 0.0);
}
BENCHMARK(BM_E12_Wakeup_CrashStorm)
    ->Args({16, 32})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// E13 — adversarial vs oblivious fault placement at equal budget.
//
// All strategies get the same retry-loop workload, seed and fault budget;
// they differ only in *where* the budget lands. The oblivious strategy
// sprays hash-decided failures uniformly across processes; the adaptive
// (Fig. 2-style) adversary concentrates its entire budget on the most
// knowledgeable process. The damage metric is worst-case, like the
// paper's t(R): retry_amplification = max over processes of shared ops
// per successful increment (1.0 = no retries). Concentrating B failures
// on one victim costs that victim ~B extra LL+SC pairs, while spraying B
// failures costs the worst process only ~B/n — so at equal budget the
// adaptive row must sit strictly above the oblivious one, which
// BM_E13_AdaptiveVsOblivious_Gain asserts (single-core hosts included:
// the effect needs no parallelism, only placement).

struct E13Run {
  double amp = 0.0;             // max_p shared_ops(p) / (2 * ops)
  std::uint64_t injected = 0;   // spurious SC failures actually placed
  double wall_seconds = 0.0;
};

E13Run run_e13(int n, int ops, const FaultPlan& plan) {
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, retry_increment_body(ops));
  LLSC_CHECK(r.status == RunStatus::kClean,
             "the E13 retry loop must complete under any placement");
  for (const Value& v : r.results) {
    LLSC_CHECK(v.as_u64() == static_cast<std::uint64_t>(ops),
               "a process lost increments under adversarial placement");
  }
  E13Run out;
  out.amp = static_cast<double>(r.max_shared_ops) /
            (2.0 * static_cast<double>(ops));
  out.injected = r.fault.injected_sc_failures;
  out.wall_seconds = r.wall_seconds;
  return out;
}

FaultPlan e13_plan(FaultStrategyKind strategy, std::uint64_t budget) {
  FaultPlan plan;
  plan.seed = 0xE13;
  plan.strategy = strategy;
  plan.fault_budget = budget;
  switch (strategy) {
    case FaultStrategyKind::kOblivious:
      // Budget-capped hash roll. The rate is deliberately moderate: high
      // enough that the expected hit count (~0.2/0.8 * 256 per process)
      // comfortably exhausts the cap, low enough that the cap is spent
      // across the whole run. A near-1.0 rate would front-load the whole
      // budget onto whichever thread the OS schedules first (on a
      // single-core host the startup is fully serialized), accidentally
      // reproducing the adaptive adversary's concentration.
      plan.sc_fail_rate = 0.2;
      break;
    case FaultStrategyKind::kBurst:
      plan.burst_len = 8;
      plan.burst_period = 16;
      break;
    case FaultStrategyKind::kAdaptive:
      break;
  }
  return plan;
}

void report_e13(benchmark::State& state, int n, const FaultPlan& plan,
                const E13Run& run) {
  state.counters["n_threads"] = n;
  state.counters["strategy_id"] = static_cast<double>(plan.strategy);
  state.counters["fault_budget"] = static_cast<double>(plan.fault_budget);
  state.counters["injected_sc_failures"] = static_cast<double>(run.injected);
  state.counters["retry_amplification"] = run.amp;
  report_taxonomy(state, 1, 0, 0, 0);
}

void run_e13_bench(benchmark::State& state, FaultStrategyKind strategy) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const std::uint64_t budget = static_cast<std::uint64_t>(state.range(2));
  const FaultPlan plan = e13_plan(strategy, budget);
  E13Run run;
  for (auto _ : state) {
    run = run_e13(n, ops, plan);
  }
  report_e13(state, n, plan, run);
}

void BM_E13_AdaptiveVsOblivious_Oblivious(benchmark::State& state) {
  run_e13_bench(state, FaultStrategyKind::kOblivious);
}
void BM_E13_AdaptiveVsOblivious_Adaptive(benchmark::State& state) {
  run_e13_bench(state, FaultStrategyKind::kAdaptive);
}
void BM_E13_AdaptiveVsOblivious_Burst(benchmark::State& state) {
  run_e13_bench(state, FaultStrategyKind::kBurst);
}
BENCHMARK(BM_E13_AdaptiveVsOblivious_Oblivious)
    ->Args({4, 256, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_E13_AdaptiveVsOblivious_Adaptive)
    ->Args({4, 256, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_E13_AdaptiveVsOblivious_Burst)
    ->Args({4, 256, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The acceptance row: both strategies, equal seed and budget, in one
// iteration — asserting the adaptive adversary buys strictly more
// worst-case retry amplification per unit of fault budget.
void BM_E13_AdaptiveVsOblivious_Gain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const std::uint64_t budget = static_cast<std::uint64_t>(state.range(2));
  const FaultPlan adaptive = e13_plan(FaultStrategyKind::kAdaptive, budget);
  const FaultPlan oblivious = e13_plan(FaultStrategyKind::kOblivious, budget);
  E13Run a;
  E13Run o;
  for (auto _ : state) {
    a = run_e13(n, ops, adaptive);
    o = run_e13(n, ops, oblivious);
    // Equal budgets actually spent: the adaptive adversary always finds a
    // live-link SC while its victim still has work, and the 0.9 oblivious
    // rate exhausts the cap long before the run ends.
    LLSC_CHECK(a.injected == budget, "adaptive budget not fully spent");
    LLSC_CHECK(o.injected == budget, "oblivious budget not fully spent");
    LLSC_CHECK(a.amp > o.amp,
               "adaptive placement must out-damage oblivious at equal "
               "budget");
  }
  report_e13(state, n, adaptive, a);
  state.counters["oblivious_retry_amplification"] = o.amp;
  state.counters["amplification_gain"] = o.amp > 0.0 ? a.amp / o.amp : 0.0;
}
BENCHMARK(BM_E13_AdaptiveVsOblivious_Gain)
    ->Args({4, 256, 128})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace llsc
