// E2 — tightness of the lower bound. Each process performs one operation
// on a fetch&increment object implemented by every registered universal
// construction (universal.h's make_universal): the Group-Update
// construction (O(log n) with unbounded registers — the paper's upper
// bound), the classic single-register helping construction (O(n)), the
// consensus-based construction, and the flat-combining construction
// (lock-free; its reported bound is the fault-free one-outstanding-op
// figure).
//
// Expected shape: `max_ops_per_op` grows like ~8·log2(n) for Group-Update
// and like ~2n for the single-register baseline, with the crossover at
// small n (around n = 16-32); all stay above log_4 n (the lower bound).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/adversary.h"
#include "objects/arith.h"
#include "sched/scheduler.h"
#include "universal/universal.h"
#include "util/check.h"
#include "util/str.h"

namespace llsc {
namespace {

SimTask one_op(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp op{"fetch&increment", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return r;
}

void run_case(benchmark::State& state, const std::string& which,
              bool adversarial) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t max_ops = 0;
  std::uint64_t worst_case = 0;
  for (auto _ : state) {
    std::unique_ptr<UniversalConstruction> uc = make_universal(which, n, [] {
      return std::make_unique<FetchAddObject>(64, 0);
    });
    System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
      return one_op(ctx, uc.get());
    });
    sys.set_recording(false);
    if (adversarial) {
      AdversaryOptions opts;
      opts.record_snapshots = false;
      const RunLog log = run_adversary(sys, opts);
      LLSC_CHECK(log.all_terminated, "run did not terminate");
    } else {
      RoundRobinScheduler sched;
      LLSC_CHECK(sched.run(sys, 1ull << 34).all_terminated,
                 "run did not terminate");
    }
    max_ops = sys.max_shared_ops();
    worst_case = uc->worst_case_shared_ops();
    // Sanity: every op got a distinct counter value 0..n-1.
    std::uint64_t total = 0;
    for (ProcId p = 0; p < n; ++p) {
      total += sys.process(p).result().as_u64();
    }
    LLSC_CHECK(total == static_cast<std::uint64_t>(n) *
                            static_cast<std::uint64_t>(n - 1) / 2,
               "fetch&increment implementation returned wrong values");
  }
  state.counters["n"] = n;
  state.counters["max_ops_per_op"] = static_cast<double>(max_ops);
  state.counters["analytic_worst_case"] = static_cast<double>(worst_case);
  state.counters["log4_n_lower_bound"] = log4(static_cast<double>(n));
}

void BM_GroupUpdate_RoundRobin(benchmark::State& state) {
  run_case(state, "group-update", /*adversarial=*/false);
}
void BM_SingleRegister_RoundRobin(benchmark::State& state) {
  run_case(state, "single-register", /*adversarial=*/false);
}
void BM_ConsensusBased_RoundRobin(benchmark::State& state) {
  run_case(state, "consensus-based", /*adversarial=*/false);
}
void BM_Combining_RoundRobin(benchmark::State& state) {
  run_case(state, "combining", /*adversarial=*/false);
}
void BM_GroupUpdate_Adversary(benchmark::State& state) {
  run_case(state, "group-update", /*adversarial=*/true);
}
void BM_SingleRegister_Adversary(benchmark::State& state) {
  run_case(state, "single-register", /*adversarial=*/true);
}
void BM_ConsensusBased_Adversary(benchmark::State& state) {
  run_case(state, "consensus-based", /*adversarial=*/true);
}
void BM_Combining_Adversary(benchmark::State& state) {
  run_case(state, "combining", /*adversarial=*/true);
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_GroupUpdate_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_ConsensusBased_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_Combining_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_GroupUpdate_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_ConsensusBased_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_Combining_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
