// E2 — tightness of the lower bound. Each process performs one operation
// on a fetch&increment object implemented by (a) the Group-Update
// construction (O(log n) with unbounded registers — the paper's upper
// bound) and (b) the classic single-register helping construction (O(n)).
//
// Expected shape: `max_ops_per_op` grows like ~8·log2(n) for Group-Update
// and like ~2n for the baseline, with the crossover at small n (around
// n = 16-32); both stay above log_4 n (the lower bound).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/adversary.h"
#include "objects/arith.h"
#include "sched/scheduler.h"
#include "universal/consensus_based.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"
#include "util/str.h"

namespace llsc {
namespace {

SimTask one_op(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp op{"fetch&increment", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return r;
}

enum class Which { kGroupUpdate, kSingleRegister, kConsensusBased };

void run_case(benchmark::State& state, Which which, bool adversarial) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t max_ops = 0;
  std::uint64_t worst_case = 0;
  for (auto _ : state) {
    std::unique_ptr<UniversalConstruction> uc;
    const ObjectFactory factory = [] {
      return std::make_unique<FetchAddObject>(64, 0);
    };
    switch (which) {
      case Which::kGroupUpdate:
        uc = std::make_unique<GroupUpdateUC>(n, factory);
        break;
      case Which::kSingleRegister:
        uc = std::make_unique<SingleRegisterUC>(n, factory);
        break;
      case Which::kConsensusBased:
        uc = std::make_unique<ConsensusBasedUC>(n, factory);
        break;
    }
    System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
      return one_op(ctx, uc.get());
    });
    sys.set_recording(false);
    if (adversarial) {
      AdversaryOptions opts;
      opts.record_snapshots = false;
      const RunLog log = run_adversary(sys, opts);
      LLSC_CHECK(log.all_terminated, "run did not terminate");
    } else {
      RoundRobinScheduler sched;
      LLSC_CHECK(sched.run(sys, 1ull << 34).all_terminated,
                 "run did not terminate");
    }
    max_ops = sys.max_shared_ops();
    worst_case = uc->worst_case_shared_ops();
    // Sanity: every op got a distinct counter value 0..n-1.
    std::uint64_t total = 0;
    for (ProcId p = 0; p < n; ++p) {
      total += sys.process(p).result().as_u64();
    }
    LLSC_CHECK(total == static_cast<std::uint64_t>(n) *
                            static_cast<std::uint64_t>(n - 1) / 2,
               "fetch&increment implementation returned wrong values");
  }
  state.counters["n"] = n;
  state.counters["max_ops_per_op"] = static_cast<double>(max_ops);
  state.counters["analytic_worst_case"] = static_cast<double>(worst_case);
  state.counters["log4_n_lower_bound"] = log4(static_cast<double>(n));
}

void BM_GroupUpdate_RoundRobin(benchmark::State& state) {
  run_case(state, Which::kGroupUpdate, /*adversarial=*/false);
}
void BM_SingleRegister_RoundRobin(benchmark::State& state) {
  run_case(state, Which::kSingleRegister, /*adversarial=*/false);
}
void BM_ConsensusBased_RoundRobin(benchmark::State& state) {
  run_case(state, Which::kConsensusBased, /*adversarial=*/false);
}
void BM_GroupUpdate_Adversary(benchmark::State& state) {
  run_case(state, Which::kGroupUpdate, /*adversarial=*/true);
}
void BM_SingleRegister_Adversary(benchmark::State& state) {
  run_case(state, Which::kSingleRegister, /*adversarial=*/true);
}
void BM_ConsensusBased_Adversary(benchmark::State& state) {
  run_case(state, Which::kConsensusBased, /*adversarial=*/true);
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_GroupUpdate_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_ConsensusBased_RoundRobin)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_GroupUpdate_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_ConsensusBased_Adversary)
    ->RangeMultiplier(4)
    ->Range(2, 256)
    ->Unit(benchmark::kMillisecond);
