// E8 — substrate micro-benchmarks: throughput of the five shared-memory
// operations, coroutine step dispatch, and end-to-end simulated ops/sec.
// These numbers calibrate every other experiment (they are simulator
// costs, not claims about hardware LL/SC).
#include <benchmark/benchmark.h>

#include "memory/shared_memory.h"
#include "runtime/system.h"
#include "sched/scheduler.h"

namespace llsc {
namespace {

void BM_LL(benchmark::State& state) {
  SharedMemory mem;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.ll(static_cast<ProcId>(i % 16), i % 64));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_LLSCPair(benchmark::State& state) {
  SharedMemory mem;
  const Value v = Value::of_u64(1);
  for (auto _ : state) {
    mem.ll(0, 3);
    benchmark::DoNotOptimize(mem.sc(0, 3, v));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2);
}

void BM_Validate(benchmark::State& state) {
  SharedMemory mem;
  mem.ll(0, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.validate(0, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Swap(benchmark::State& state) {
  SharedMemory mem;
  const Value v = Value::of_u64(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.swap(0, 7, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Move(benchmark::State& state) {
  SharedMemory mem;
  mem.swap(0, 1, Value::of_u64(5));
  for (auto _ : state) {
    mem.move(0, 1, 2);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// Contended Psets: n processes all linked to the same register.
void BM_ScUnderContention(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SharedMemory mem;
  const Value v = Value::of_u64(1);
  for (auto _ : state) {
    for (ProcId p = 0; p < n; ++p) mem.ll(p, 0);
    benchmark::DoNotOptimize(mem.sc(0, 0, v));  // clears an n-entry Pset
  }
  state.counters["n"] = n;
}

// End-to-end: coroutine processes doing LL/SC loops under round robin.
SimTask looper(ProcCtx ctx, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    (void)co_await ctx.ll(static_cast<RegId>(ctx.id() % 8));
    (void)co_await ctx.sc(static_cast<RegId>(ctx.id() % 8),
                          Value::of_u64(static_cast<std::uint64_t>(i)));
  }
  co_return Value::of_u64(0);
}

void BM_SimulatedSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rounds = 64;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    System sys(n, [rounds](ProcCtx ctx, ProcId, int) {
      return looper(ctx, rounds);
    });
    sys.set_recording(false);
    RoundRobinScheduler sched;
    const RunOutcome out = sched.run(sys, 1ull << 30);
    steps += out.steps_executed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
  state.counters["n"] = n;
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_LL);
BENCHMARK(llsc::BM_LLSCPair);
BENCHMARK(llsc::BM_Validate);
BENCHMARK(llsc::BM_Swap);
BENCHMARK(llsc::BM_Move);
BENCHMARK(llsc::BM_ScUnderContention)->RangeMultiplier(4)->Range(4, 1024);
BENCHMARK(llsc::BM_SimulatedSteps)->RangeMultiplier(4)->Range(1, 64);
