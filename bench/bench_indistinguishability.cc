// E7 — Lemma 5.2 as an executable check: cost of constructing the
// (S,A)-run and verifying full per-round indistinguishability against the
// (All,A)-run, for random subsets S.
//
// Expected shape: zero violations at every size and subset; the pipeline
// (adversary run + UP tracking + S-run + comparison) scales roughly with
// n · rounds · registers.
#include <benchmark/benchmark.h>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "util/check.h"
#include "util/rng.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void run_case(benchmark::State& state, const ProcBody& body,
              std::uint64_t subset_seed) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(subset_seed);
  ProcSet s(n);
  for (ProcId p = 0; p < n; ++p) {
    if (rng.next_bool()) s.insert(p);
  }
  if (s.empty()) s.insert(0);

  IndistReport report;
  for (auto _ : state) {
    const auto tosses = std::make_shared<SeededTossAssignment>(11);
    System all_sys(n, body, tosses);
    all_sys.set_recording(false);
    const RunLog all_log = run_adversary(all_sys);
    LLSC_CHECK(all_log.all_terminated, "run did not terminate");
    const UpTracker up = UpTracker::over(all_log);

    System s_sys(n, body, tosses);
    s_sys.set_recording(false);
    const RunLog s_log = run_s_run(s_sys, all_log, up, s);
    report = check_indistinguishability(all_log, s_log, up, s);
    benchmark::DoNotOptimize(report.ok);
  }
  LLSC_CHECK(report.ok, "Lemma 5.2 violated");
  state.counters["n"] = n;
  state.counters["subset_size"] = static_cast<double>(s.count());
  state.counters["process_checks"] =
      static_cast<double>(report.process_checks);
  state.counters["register_checks"] =
      static_cast<double>(report.register_checks);
  state.counters["violations"] = static_cast<double>(report.violations.size());
}

void BM_Tournament(benchmark::State& state) {
  run_case(state, tournament_wakeup(), 1);
}
void BM_SwapMoveMix(benchmark::State& state) {
  run_case(state, swap_mix_wakeup(), 2);
}
void BM_RandomizedTournament(benchmark::State& state) {
  run_case(state, randomized_tournament_wakeup(), 3);
}
void BM_NaiveCounter(benchmark::State& state) {
  run_case(state, counter_wakeup(), 4);
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_Tournament)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SwapMoveMix)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_RandomizedTournament)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_NaiveCounter)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond);
