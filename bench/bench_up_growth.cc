// E5 — Lemma 5.1 and its ablation. Under the Fig. 2 adversary with
// SECRETIVE move scheduling, |UP(X,r)| <= 4^r; with the ablated (id-order)
// move schedule, a single round of a move chain can already inflate a
// register's UP set to Θ(n).
//
// Expected shape: `max_up_round1..3` <= 4, 16, 64 with secretive moves on;
// the ablated move-chain workload shows `max_up_round1` ≈ n (the Section 4
// machinery is what keeps information from leaking through moves).
#include <benchmark/benchmark.h>

#include "core/adversary.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "util/check.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

// A move chain: process p performs move(R_p -> R_{p+1}) after staging a
// mark, then reads the end of the chain — the Section 4 motivating
// workload, maximally hostile to naive move scheduling.
SimTask chain_body(ProcCtx ctx, ProcId i, int n) {
  const RegId base = 1000;
  co_await ctx.swap(base + static_cast<RegId>(i), Value::of_u64(1));
  co_await ctx.move(base + static_cast<RegId>(i),
                    base + static_cast<RegId>(i) + 1);
  const Value v = co_await ctx.read(base + static_cast<RegId>(n));
  co_return Value::of_u64(v.is_nil() ? 0 : 1);
}

ProcBody chain() {
  return [](ProcCtx ctx, ProcId i, int n) { return chain_body(ctx, i, n); };
}

void run_case(benchmark::State& state, const ProcBody& body, bool secretive,
              bool check_lemma) {
  const int n = static_cast<int>(state.range(0));
  UpTracker tracker(n);
  int rounds = 0;
  for (auto _ : state) {
    const auto tosses = std::make_shared<SeededTossAssignment>(7);
    System sys(n, body, tosses);
    sys.set_recording(false);
    AdversaryOptions opts;
    opts.secretive_moves = secretive;
    const RunLog log = run_adversary(sys, opts);
    LLSC_CHECK(log.all_terminated, "run did not terminate");
    tracker = UpTracker::over(log);
    rounds = tracker.num_rounds();
  }
  if (check_lemma) {
    LLSC_CHECK(tracker.lemma51_holds(), "Lemma 5.1 violated");
  }
  state.counters["n"] = n;
  state.counters["rounds"] = rounds;
  for (int r = 1; r <= std::min(4, rounds); ++r) {
    state.counters["max_up_round" + std::to_string(r)] =
        static_cast<double>(tracker.max_up_size(r));
    state.counters["bound_round" + std::to_string(r)] =
        static_cast<double>(UpTracker::lemma51_bound(r));
  }
  state.counters["lemma51_holds"] = tracker.lemma51_holds() ? 1 : 0;
}

void BM_SwapMix_Secretive(benchmark::State& state) {
  run_case(state, swap_mix_wakeup(), /*secretive=*/true, /*check=*/true);
}
void BM_MoveChain_Secretive(benchmark::State& state) {
  run_case(state, chain(), /*secretive=*/true, /*check=*/true);
}
void BM_MoveChain_AblatedIdOrder(benchmark::State& state) {
  // Ablation: no Lemma 5.1 guarantee — the counters show the blow-up.
  run_case(state, chain(), /*secretive=*/false, /*check=*/false);
}
void BM_RandomMix_Secretive(benchmark::State& state) {
  run_case(state, random_mix_body(10, 8), /*secretive=*/true, /*check=*/true);
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_SwapMix_Secretive)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_MoveChain_Secretive)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_MoveChain_AblatedIdOrder)
    ->RangeMultiplier(2)
    ->Range(4, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_RandomMix_Secretive)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Unit(benchmark::kMillisecond);
