// S7 — the Section 7 register-size discussion, measured. For each
// algorithm/construction, audit the widest value ever written to a
// register during a complete run.
//
// Expected shape: the count-based wakeups (tournament, counters) fit in
// ceil(log2 n)+1 bits — they live inside the "practical" register regime
// Section 7 contemplates — while every oblivious construction writes
// structured payloads (announce sets, object snapshots, log cells):
// `bounded = 0`, the "impractical assumption on the size of registers"
// the paper flags in its tight upper bound.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/adversary.h"
#include "core/audit.h"
#include "objects/arith.h"
#include "sched/scheduler.h"
#include "universal/consensus_based.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"
#include "util/str.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void report(benchmark::State& state, const WidthAudit& audit, int n) {
  state.counters["n"] = n;
  state.counters["bounded"] = audit.bounded ? 1 : 0;
  state.counters["max_bits"] =
      audit.bounded ? static_cast<double>(audit.max_bits) : -1.0;
  state.counters["log2n_plus_1"] =
      static_cast<double>(ceil_log2(static_cast<std::size_t>(n)) + 1);
  state.counters["writes"] = static_cast<double>(audit.writes_inspected);
}

void audit_wakeup(benchmark::State& state, const ProcBody& body,
                  bool expect_bounded) {
  const int n = static_cast<int>(state.range(0));
  WidthAudit audit;
  for (auto _ : state) {
    System sys(n, body);
    const RunLog log = run_adversary(sys);
    LLSC_CHECK(log.all_terminated, "run did not terminate");
    audit = audit_register_widths(sys.trace());
  }
  LLSC_CHECK(audit.bounded == expect_bounded,
             "register-width verdict differs from the documented shape");
  report(state, audit, n);
}

void BM_TournamentWakeup(benchmark::State& state) {
  audit_wakeup(state, tournament_wakeup(), /*expect_bounded=*/true);
}
void BM_NaiveCounterWakeup(benchmark::State& state) {
  audit_wakeup(state, counter_wakeup(), /*expect_bounded=*/true);
}
void BM_SwapMixWakeup(benchmark::State& state) {
  // Stores subtree up-SETS: structured payloads, unbounded.
  audit_wakeup(state, swap_mix_wakeup(), /*expect_bounded=*/false);
}

SimTask one_fai(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp op{"fetch&increment", {}};
  const Value r = co_await uc->execute(ctx, std::move(op));
  co_return r;
}

void audit_construction(benchmark::State& state,
                        const std::function<std::unique_ptr<
                            UniversalConstruction>(int)>& make) {
  const int n = static_cast<int>(state.range(0));
  WidthAudit audit;
  for (auto _ : state) {
    auto uc = make(n);
    System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
      return one_fai(ctx, uc.get());
    });
    RoundRobinScheduler sched;
    LLSC_CHECK(sched.run(sys, 1ull << 30).all_terminated,
               "run did not terminate");
    audit = audit_register_widths(sys.trace());
  }
  LLSC_CHECK(!audit.bounded,
             "oblivious constructions must need unbounded registers");
  report(state, audit, n);
}

void BM_GroupUpdate(benchmark::State& state) {
  audit_construction(state, [](int n) {
    return std::make_unique<GroupUpdateUC>(
        n, [] { return std::make_unique<FetchAddObject>(64); });
  });
}
void BM_SingleRegister(benchmark::State& state) {
  audit_construction(state, [](int n) {
    return std::make_unique<SingleRegisterUC>(
        n, [] { return std::make_unique<FetchAddObject>(64); });
  });
}
void BM_ConsensusBased(benchmark::State& state) {
  audit_construction(state, [](int n) {
    return std::make_unique<ConsensusBasedUC>(
        n, [] { return std::make_unique<FetchAddObject>(64); });
  });
}

}  // namespace
}  // namespace llsc

#define LLSC_S7(fn) \
  BENCHMARK(fn)->RangeMultiplier(4)->Range(4, 256)->Unit( \
      benchmark::kMillisecond)

LLSC_S7(llsc::BM_TournamentWakeup);
LLSC_S7(llsc::BM_NaiveCounterWakeup);
LLSC_S7(llsc::BM_SwapMixWakeup);
LLSC_S7(llsc::BM_GroupUpdate);
LLSC_S7(llsc::BM_SingleRegister);
LLSC_S7(llsc::BM_ConsensusBased);
