// Custom benchmark main for the hw benches: google-benchmark's stock
// BENCHMARK_MAIN() rejects unrecognized flags, so --timeout_ms (the
// HwExecutor watchdog default — lets CI fail a hung bench fast instead of
// stalling the job) is parsed and stripped here before Initialize sees
// argv. The LLSC_TIMEOUT_MS environment variable is an equivalent channel
// (see default_hw_timeout_ms()).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

#include "hw/hw_executor.h"

int main(int argc, char** argv) {
  static const char kFlag[] = "--timeout_ms=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      llsc::set_default_hw_timeout_ms(
          std::strtoull(argv[i] + sizeof(kFlag) - 1, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
