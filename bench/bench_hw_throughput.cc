// E10 — hw backend throughput: the universal constructions running on real
// threads (HwExecutor over HwMemory) vs the single-threaded simulator.
//
// Reported per case: ops/sec across all processes, p50/p99 per-operation
// latency, and the observed worst per-op shared-access cost (which must
// stay within the analytic worst case — wait-freedom on metal). The
// `*_Simulator` benchmarks run the identical workload body through System
// under round-robin as the contrast column.
//
// Expected shape: hw ops/sec scales with thread count up to the core
// count; on a single-core host hw and simulator throughput are comparable
// (the hw column then mainly demonstrates correctness under preemptive
// interleavings, not speedup — see EXPERIMENTS.md E10 for the recorded
// caveat). shared_ops_per_uc_op grows ~log2(n) for Group-Update and ~n for
// the single-register construction on BOTH platforms.
// E11 rides along below: BM_HwBackoff_* compares the fixed, adaptive, and
// adaptive+parking backoff policies (hw/backoff.h) on a raw single-register
// rmw hammer across thread counts, including an oversubscribed point
// (threads = 2 × cores) where the parking tier earns its keep.
// E14: BM_E14_* compares the register-storage policies
// (memory/storage_policy.h) — boxed versioned nodes vs inline 64-bit
// tagged words — on the same single-register retry loop and on the
// count-based wakeup algorithm via HwExecutor.
// E15 (bottom): BM_E15_* pits the flat-combining universal construction
// (universal/combining.h) against the single-register helping baseline
// and the raw LL/SC DirectFetchAdd on real threads, reporting ops/sec and
// — for combining — the mean batch size per successful install. Combining
// and direct are lock-free, not wait-free, so E15 deliberately does NOT
// reuse E10's shared_ops-vs-analytic-worst-case assertion; exactness is
// audited through the response sum alone.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <barrier>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "direct/direct.h"
#include "hw/hw_executor.h"
#include "memory/rmw.h"
#include "memory/storage_policy.h"
#include "wakeup/algorithms.h"
#include "objects/arith.h"
#include "universal/combining.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"

namespace llsc {
namespace {

enum class Which { kGroupUpdate, kSingleRegister };

std::unique_ptr<UniversalConstruction> make_uc(Which which, int n) {
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  if (which == Which::kGroupUpdate) {
    return std::make_unique<GroupUpdateUC>(n, factory);
  }
  return std::make_unique<SingleRegisterUC>(n, factory);
}

void check_and_report(benchmark::State& state, const UcThroughput& t,
                      std::uint64_t analytic_worst_case) {
  // Every fetch&increment response is a distinct counter value — the sum
  // is schedule-independent, so this catches lost/duplicated operations.
  LLSC_CHECK(t.response_sum ==
                 t.total_uc_ops * (t.total_uc_ops - 1) / 2,
             "fetch&increment responses are wrong");
  state.counters["n_threads"] = t.n;
  state.counters["uc_ops_per_sec"] = t.ops_per_second;
  state.counters["latency_p50_ns"] = static_cast<double>(t.latency_p50_ns);
  state.counters["latency_p99_ns"] = static_cast<double>(t.latency_p99_ns);
  state.counters["shared_ops_per_uc_op"] = t.shared_ops_per_uc_op;
  state.counters["analytic_worst_case"] =
      static_cast<double>(analytic_worst_case);
  LLSC_CHECK(t.shared_ops_per_uc_op <=
                 static_cast<double>(analytic_worst_case),
             "a process exceeded the analytic worst case");
}

void run_hw(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    HwExecutor exec;
    t = run_uc_on_hw(exec, *uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void run_sim(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    t = run_uc_on_simulator(*uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void BM_GroupUpdate_Hw(benchmark::State& state) {
  run_hw(state, Which::kGroupUpdate);
}
void BM_GroupUpdate_Simulator(benchmark::State& state) {
  run_sim(state, Which::kGroupUpdate);
}
void BM_SingleRegister_Hw(benchmark::State& state) {
  run_hw(state, Which::kSingleRegister);
}
void BM_SingleRegister_Simulator(benchmark::State& state) {
  run_sim(state, Which::kSingleRegister);
}

void thread_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {1, 2, 4, 8, 16}) {
    b->Args({n, /*ops_per_process=*/64});
  }
}

// --- E11: backoff-policy comparison under raw register contention --------
//
// The purest retry-loop workload the backend has: every thread performs
// `ops` fetch&add rmw operations on ONE register, so each operation is one
// trip through HwMemory's CAS retry loop and the measured rate is the
// policy's, not an algorithm's. The final register value audits exactness.

struct HammerResult {
  double ops_per_second = 0.0;
  HwBackoffStats stats;
};

HammerResult hammer_one_register(BackoffPolicy policy, int threads, int ops) {
  BackoffOptions opts;
  opts.policy = policy;
  HwMemory mem(1, threads, opts);
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < ops; ++i) (void)mem.rmw(t, 0, *inc);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops);
  LLSC_CHECK(mem.peek_value(0).as_u64() == total,
             "lost or duplicated rmw increments");
  HammerResult out;
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  out.ops_per_second = wall > 0 ? static_cast<double>(total) / wall : 0.0;
  out.stats = mem.backoff_stats();
  return out;
}

void run_backoff(benchmark::State& state, BackoffPolicy policy) {
  const int threads = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  HammerResult r;
  for (auto _ : state) {
    r = hammer_one_register(policy, threads, ops);
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  state.counters["n_threads"] = threads;
  state.counters["policy_id"] = static_cast<double>(r.stats.policy);
  state.counters["oversubscribed"] =
      threads > static_cast<int>(cores) ? 1.0 : 0.0;
  state.counters["hw_ops_per_sec"] = r.ops_per_second;
  state.counters["cas_failure_rate"] = r.stats.failure_rate();
  state.counters["spin_pauses"] = static_cast<double>(r.stats.spin_pauses);
  state.counters["yields"] = static_cast<double>(r.stats.yields);
  state.counters["parks"] = static_cast<double>(r.stats.parks);
  state.counters["wakes"] = static_cast<double>(r.stats.wakes);
}

void BM_HwBackoff_Fixed(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kFixed);
}
void BM_HwBackoff_Adaptive(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kAdaptive);
}
void BM_HwBackoff_AdaptivePark(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kAdaptiveParking);
}

// Low contention (1), moderate (2), saturation (cores), and an
// oversubscribed point (2 × cores) where threads outnumber cores and
// spinning burns timeslices the contending writers need.
void backoff_sweep(benchmark::internal::Benchmark* b) {
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> counts{1, 2, cores, 2 * cores};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    b->Args({threads, /*ops_per_thread=*/2000});
  }
}

// --- E14: register-storage policy comparison -----------------------------
//
// Two workloads, each run once per StoragePolicy so the policy is the
// only variable:
//
//   * StorageHammer — the E11 single-register fetch&add rmw retry loop
//     (default backoff), the hot path where the boxed policy pays one
//     Node allocation per completed install and the inline policy pays
//     none. All counts fit a 47-bit payload, so inline runs must report
//     zero node allocations and zero overflows — checked, not assumed.
//   * Wakeup — the count-based wakeup algorithm (backoff_counter_wakeup)
//     on HwExecutor with HwRunOptions::storage set, i.e. the policy seam
//     exercised through the full executor stack rather than raw HwMemory.
//
// policy_id follows the StoragePolicy enum: 0 = boxed, 1 = inline,
// 2 = inline-strict (strict differs from inline only on overflow, which
// these workloads never hit — its column bounds the cost of the check).

struct StorageHammerResult {
  double ops_per_second = 0.0;
  RegisterWidthStats width;
  HwReclaimStats reclaim;
};

StorageHammerResult hammer_storage(StoragePolicy policy, int threads,
                                   int ops) {
  HwMemory mem(1, threads, {}, policy);
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < ops; ++i) (void)mem.rmw(t, 0, *inc);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops);
  LLSC_CHECK(mem.peek_value(0).as_u64() == total,
             "lost or duplicated rmw increments");
  StorageHammerResult out;
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  out.ops_per_second = wall > 0 ? static_cast<double>(total) / wall : 0.0;
  out.width = mem.width_stats();
  out.reclaim = mem.reclaim_stats();
  return out;
}

void report_e14(benchmark::State& state, int threads, double ops_per_second,
                const RegisterWidthStats& width,
                const HwReclaimStats& reclaim) {
  state.counters["n_threads"] = threads;
  state.counters["policy_id"] = static_cast<double>(width.policy);
  state.counters["hw_ops_per_sec"] = ops_per_second;
  state.counters["overflow_events"] =
      static_cast<double>(width.overflow_events);
  state.counters["nodes_allocated"] =
      static_cast<double>(reclaim.nodes_allocated);
  if (width.policy != StoragePolicy::kBoxed) {
    // The headline claim: the inline hot path is allocation-free on
    // counter workloads. Enforced here so a regression fails the bench
    // run, not just skews a column.
    LLSC_CHECK(reclaim.nodes_allocated == 0,
               "inline storage allocated nodes on an all-small workload");
    LLSC_CHECK(width.overflow_events == 0,
               "unexpected overflow on an all-small workload");
  }
}

void run_storage_hammer(benchmark::State& state, StoragePolicy policy) {
  const int threads = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  StorageHammerResult r;
  for (auto _ : state) {
    r = hammer_storage(policy, threads, ops);
  }
  report_e14(state, threads, r.ops_per_second, r.width, r.reclaim);
}

void BM_E14_StorageHammer_Boxed(benchmark::State& state) {
  run_storage_hammer(state, StoragePolicy::kBoxed);
}
void BM_E14_StorageHammer_Inline(benchmark::State& state) {
  run_storage_hammer(state, StoragePolicy::kInline);
}
void BM_E14_StorageHammer_InlineStrict(benchmark::State& state) {
  run_storage_hammer(state, StoragePolicy::kInlineStrict);
}

void run_storage_wakeup(benchmark::State& state, StoragePolicy policy) {
  const int n = static_cast<int>(state.range(0));
  const ProcBody body = backoff_counter_wakeup();
  HwRunResult run;
  for (auto _ : state) {
    HwRunOptions opts;
    opts.seed = 21;
    opts.storage = policy;
    HwExecutor exec(opts);
    run = exec.run(n, body);
    LLSC_CHECK(run.ok, "wakeup run did not terminate cleanly");
  }
  const double ops_per_second =
      run.wall_seconds > 0
          ? static_cast<double>(run.total_shared_ops) / run.wall_seconds
          : 0.0;
  report_e14(state, n, ops_per_second, run.width, run.reclaim);
}

void BM_E14_Wakeup_Boxed(benchmark::State& state) {
  run_storage_wakeup(state, StoragePolicy::kBoxed);
}
void BM_E14_Wakeup_Inline(benchmark::State& state) {
  run_storage_wakeup(state, StoragePolicy::kInline);
}

void e14_hammer_sweep(benchmark::internal::Benchmark* b) {
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> counts{1, 2, cores};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    b->Args({threads, /*ops_per_thread=*/2000});
  }
}

void e14_wakeup_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {2, 4, 8}) {
    b->Args({n});
  }
}

// --- E15: flat-combining vs helping vs raw LL/SC on real threads ---------
//
// Every thread performs `ops` fetch&increment operations through one of
// three implementations of the same object:
//
//   * Combining     — CombiningUniversal in its strict (unbounded-retry)
//     mode: announce + toggle, one winner applies the whole pending batch
//     and CAS-installs state + responses, losers adopt.
//   * SingleRegister — the classic one-register helping construction
//     (every process re-applies every announced op).
//   * DirectFetchAdd — the oblivious-free LL/SC retry loop; the
//     "hardware" price of the operation, no universality overhead.
//
// The batching thesis: under contention a single combining install
// retires several operations, so its ops/sec should beat SingleRegister
// from n >= 8 while mean_batch_size climbs past 1. Combining and direct
// are lock-free (per-attempt cost bounded, total cost not), so unlike
// E10 no shared-ops-vs-worst-case bound is asserted here — correctness
// is the response-sum audit only. The *_Inline legs re-run combining and
// single-register under StoragePolicy::kInline, where both constructions'
// structured payloads exercise the demote-on-overflow path on every
// install (toggle words stay inline by design; see universal/combining.h).

enum class E15Which { kCombining, kSingleRegister, kDirect };

void run_e15(benchmark::State& state, E15Which which, StoragePolicy policy) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  UcThroughput t;
  CombiningStats cstats;
  for (auto _ : state) {
    std::unique_ptr<UniversalConstruction> uc;
    CombiningUniversal* combining = nullptr;
    switch (which) {
      case E15Which::kCombining: {
        auto c = std::make_unique<CombiningUniversal>(n, factory);
        combining = c.get();
        uc = std::move(c);
        break;
      }
      case E15Which::kSingleRegister:
        uc = std::make_unique<SingleRegisterUC>(n, factory);
        break;
      case E15Which::kDirect:
        uc = std::make_unique<DirectFetchAdd>();
        break;
    }
    HwRunOptions opts;
    opts.storage = policy;
    opts.register_groups = uc->register_groups();
    HwExecutor exec(opts);
    t = run_uc_on_hw(exec, *uc, n, ops, make_op);
    if (combining != nullptr) cstats = combining->stats();
  }
  LLSC_CHECK(t.response_sum == t.total_uc_ops * (t.total_uc_ops - 1) / 2,
             "fetch&increment responses are wrong");
  state.counters["n_threads"] = n;
  state.counters["policy_id"] = static_cast<double>(policy);
  state.counters["uc_ops_per_sec"] = t.ops_per_second;
  state.counters["latency_p50_ns"] = static_cast<double>(t.latency_p50_ns);
  state.counters["latency_p99_ns"] = static_cast<double>(t.latency_p99_ns);
  state.counters["shared_ops_per_uc_op"] = t.shared_ops_per_uc_op;
  if (which == E15Which::kCombining) {
    // A zero-batch run (every op adopted, or crash-stop before the first
    // winner install) has no meaningful mean: report batches = 0 and OMIT
    // mean_batch_size rather than emit 0/NaN that --check would reject
    // (tools/bench_to_csv.py accepts exactly this shape).
    if (cstats.installs > 0) {
      state.counters["mean_batch_size"] = cstats.mean_batch_size();
    }
    state.counters["batches"] = static_cast<double>(cstats.installs);
    state.counters["adopted"] = static_cast<double>(cstats.adopted);
  }
}

void BM_E15_Combining_Boxed(benchmark::State& state) {
  run_e15(state, E15Which::kCombining, StoragePolicy::kBoxed);
}
void BM_E15_Combining_Inline(benchmark::State& state) {
  run_e15(state, E15Which::kCombining, StoragePolicy::kInline);
}
void BM_E15_SingleRegister_Boxed(benchmark::State& state) {
  run_e15(state, E15Which::kSingleRegister, StoragePolicy::kBoxed);
}
void BM_E15_SingleRegister_Inline(benchmark::State& state) {
  run_e15(state, E15Which::kSingleRegister, StoragePolicy::kInline);
}
void BM_E15_DirectFetchAdd_Boxed(benchmark::State& state) {
  run_e15(state, E15Which::kDirect, StoragePolicy::kBoxed);
}

// The batching contrast column. On a single-core host real threads rarely
// overlap mid-protocol (each ~1us operation completes within its
// timeslice), so the hw legs above report mean_batch_size barely over 1 —
// the same host caveat E10 records for its throughput columns. Under the
// simulator's round-robin schedule every process is mid-operation at
// once, which is the regime the batching argument is about: the winner's
// snapshot sees all n toggles flipped and one install retires ~n
// operations.
void BM_E15_Combining_Simulator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  CombiningStats cstats;
  for (auto _ : state) {
    CombiningUniversal uc(n, [] {
      return std::make_unique<FetchAddObject>(64, 0);
    });
    t = run_uc_on_simulator(uc, n, ops, make_op);
    cstats = uc.stats();
  }
  LLSC_CHECK(t.response_sum == t.total_uc_ops * (t.total_uc_ops - 1) / 2,
             "fetch&increment responses are wrong");
  state.counters["n_threads"] = n;
  state.counters["policy_id"] = static_cast<double>(StoragePolicy::kBoxed);
  state.counters["uc_ops_per_sec"] = t.ops_per_second;
  state.counters["shared_ops_per_uc_op"] = t.shared_ops_per_uc_op;
  // Same zero-batch contract as run_e15: omit the mean when no winner
  // ever installed.
  if (cstats.installs > 0) {
    state.counters["mean_batch_size"] = cstats.mean_batch_size();
  }
  state.counters["batches"] = static_cast<double>(cstats.installs);
  state.counters["adopted"] = static_cast<double>(cstats.adopted);
}

void e15_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {1, 2, 4, 8, 16}) {
    b->Args({n, /*ops_per_process=*/256});
  }
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_GroupUpdate_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_GroupUpdate_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_SingleRegister_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_HwBackoff_Fixed)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_HwBackoff_Adaptive)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_HwBackoff_AdaptivePark)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E14_StorageHammer_Boxed)
    ->Apply(llsc::e14_hammer_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E14_StorageHammer_Inline)
    ->Apply(llsc::e14_hammer_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E14_StorageHammer_InlineStrict)
    ->Apply(llsc::e14_hammer_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E14_Wakeup_Boxed)
    ->Apply(llsc::e14_wakeup_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E14_Wakeup_Inline)
    ->Apply(llsc::e14_wakeup_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_Combining_Boxed)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_Combining_Inline)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_SingleRegister_Boxed)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_SingleRegister_Inline)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_DirectFetchAdd_Boxed)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E15_Combining_Simulator)
    ->Apply(llsc::e15_sweep)
    ->Unit(benchmark::kMillisecond);
