// E10 — hw backend throughput: the universal constructions running on real
// threads (HwExecutor over HwMemory) vs the single-threaded simulator.
//
// Reported per case: ops/sec across all processes, p50/p99 per-operation
// latency, and the observed worst per-op shared-access cost (which must
// stay within the analytic worst case — wait-freedom on metal). The
// `*_Simulator` benchmarks run the identical workload body through System
// under round-robin as the contrast column.
//
// Expected shape: hw ops/sec scales with thread count up to the core
// count; on a single-core host hw and simulator throughput are comparable
// (the hw column then mainly demonstrates correctness under preemptive
// interleavings, not speedup — see EXPERIMENTS.md E10 for the recorded
// caveat). shared_ops_per_uc_op grows ~log2(n) for Group-Update and ~n for
// the single-register construction on BOTH platforms.
// E11 rides along below: BM_HwBackoff_* compares the fixed, adaptive, and
// adaptive+parking backoff policies (hw/backoff.h) on a raw single-register
// rmw hammer across thread counts, including an oversubscribed point
// (threads = 2 × cores) where the parking tier earns its keep.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <barrier>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "hw/hw_executor.h"
#include "memory/rmw.h"
#include "objects/arith.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"

namespace llsc {
namespace {

enum class Which { kGroupUpdate, kSingleRegister };

std::unique_ptr<UniversalConstruction> make_uc(Which which, int n) {
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  if (which == Which::kGroupUpdate) {
    return std::make_unique<GroupUpdateUC>(n, factory);
  }
  return std::make_unique<SingleRegisterUC>(n, factory);
}

void check_and_report(benchmark::State& state, const UcThroughput& t,
                      std::uint64_t analytic_worst_case) {
  // Every fetch&increment response is a distinct counter value — the sum
  // is schedule-independent, so this catches lost/duplicated operations.
  LLSC_CHECK(t.response_sum ==
                 t.total_uc_ops * (t.total_uc_ops - 1) / 2,
             "fetch&increment responses are wrong");
  state.counters["n_threads"] = t.n;
  state.counters["uc_ops_per_sec"] = t.ops_per_second;
  state.counters["latency_p50_ns"] = static_cast<double>(t.latency_p50_ns);
  state.counters["latency_p99_ns"] = static_cast<double>(t.latency_p99_ns);
  state.counters["shared_ops_per_uc_op"] = t.shared_ops_per_uc_op;
  state.counters["analytic_worst_case"] =
      static_cast<double>(analytic_worst_case);
  LLSC_CHECK(t.shared_ops_per_uc_op <=
                 static_cast<double>(analytic_worst_case),
             "a process exceeded the analytic worst case");
}

void run_hw(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    HwExecutor exec;
    t = run_uc_on_hw(exec, *uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void run_sim(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    t = run_uc_on_simulator(*uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void BM_GroupUpdate_Hw(benchmark::State& state) {
  run_hw(state, Which::kGroupUpdate);
}
void BM_GroupUpdate_Simulator(benchmark::State& state) {
  run_sim(state, Which::kGroupUpdate);
}
void BM_SingleRegister_Hw(benchmark::State& state) {
  run_hw(state, Which::kSingleRegister);
}
void BM_SingleRegister_Simulator(benchmark::State& state) {
  run_sim(state, Which::kSingleRegister);
}

void thread_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {1, 2, 4, 8, 16}) {
    b->Args({n, /*ops_per_process=*/64});
  }
}

// --- E11: backoff-policy comparison under raw register contention --------
//
// The purest retry-loop workload the backend has: every thread performs
// `ops` fetch&add rmw operations on ONE register, so each operation is one
// trip through HwMemory's CAS retry loop and the measured rate is the
// policy's, not an algorithm's. The final register value audits exactness.

struct HammerResult {
  double ops_per_second = 0.0;
  HwBackoffStats stats;
};

HammerResult hammer_one_register(BackoffPolicy policy, int threads, int ops) {
  BackoffOptions opts;
  opts.policy = policy;
  HwMemory mem(1, threads, opts);
  const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < ops; ++i) (void)mem.rmw(t, 0, *inc);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops);
  LLSC_CHECK(mem.peek_value(0).as_u64() == total,
             "lost or duplicated rmw increments");
  HammerResult out;
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  out.ops_per_second = wall > 0 ? static_cast<double>(total) / wall : 0.0;
  out.stats = mem.backoff_stats();
  return out;
}

void run_backoff(benchmark::State& state, BackoffPolicy policy) {
  const int threads = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  HammerResult r;
  for (auto _ : state) {
    r = hammer_one_register(policy, threads, ops);
  }
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  state.counters["n_threads"] = threads;
  state.counters["policy_id"] = static_cast<double>(r.stats.policy);
  state.counters["oversubscribed"] =
      threads > static_cast<int>(cores) ? 1.0 : 0.0;
  state.counters["hw_ops_per_sec"] = r.ops_per_second;
  state.counters["cas_failure_rate"] = r.stats.failure_rate();
  state.counters["spin_pauses"] = static_cast<double>(r.stats.spin_pauses);
  state.counters["yields"] = static_cast<double>(r.stats.yields);
  state.counters["parks"] = static_cast<double>(r.stats.parks);
  state.counters["wakes"] = static_cast<double>(r.stats.wakes);
}

void BM_HwBackoff_Fixed(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kFixed);
}
void BM_HwBackoff_Adaptive(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kAdaptive);
}
void BM_HwBackoff_AdaptivePark(benchmark::State& state) {
  run_backoff(state, BackoffPolicy::kAdaptiveParking);
}

// Low contention (1), moderate (2), saturation (cores), and an
// oversubscribed point (2 × cores) where threads outnumber cores and
// spinning burns timeslices the contending writers need.
void backoff_sweep(benchmark::internal::Benchmark* b) {
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> counts{1, 2, cores, 2 * cores};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    b->Args({threads, /*ops_per_thread=*/2000});
  }
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_GroupUpdate_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_GroupUpdate_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_SingleRegister_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_HwBackoff_Fixed)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_HwBackoff_Adaptive)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_HwBackoff_AdaptivePark)
    ->Apply(llsc::backoff_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
