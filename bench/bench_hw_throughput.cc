// E10 — hw backend throughput: the universal constructions running on real
// threads (HwExecutor over HwMemory) vs the single-threaded simulator.
//
// Reported per case: ops/sec across all processes, p50/p99 per-operation
// latency, and the observed worst per-op shared-access cost (which must
// stay within the analytic worst case — wait-freedom on metal). The
// `*_Simulator` benchmarks run the identical workload body through System
// under round-robin as the contrast column.
//
// Expected shape: hw ops/sec scales with thread count up to the core
// count; on a single-core host hw and simulator throughput are comparable
// (the hw column then mainly demonstrates correctness under preemptive
// interleavings, not speedup — see EXPERIMENTS.md E10 for the recorded
// caveat). shared_ops_per_uc_op grows ~log2(n) for Group-Update and ~n for
// the single-register construction on BOTH platforms.
#include <benchmark/benchmark.h>

#include <memory>

#include "hw/hw_executor.h"
#include "objects/arith.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/check.h"

namespace llsc {
namespace {

enum class Which { kGroupUpdate, kSingleRegister };

std::unique_ptr<UniversalConstruction> make_uc(Which which, int n) {
  const ObjectFactory factory = [] {
    return std::make_unique<FetchAddObject>(64, 0);
  };
  if (which == Which::kGroupUpdate) {
    return std::make_unique<GroupUpdateUC>(n, factory);
  }
  return std::make_unique<SingleRegisterUC>(n, factory);
}

void check_and_report(benchmark::State& state, const UcThroughput& t,
                      std::uint64_t analytic_worst_case) {
  // Every fetch&increment response is a distinct counter value — the sum
  // is schedule-independent, so this catches lost/duplicated operations.
  LLSC_CHECK(t.response_sum ==
                 t.total_uc_ops * (t.total_uc_ops - 1) / 2,
             "fetch&increment responses are wrong");
  state.counters["n_threads"] = t.n;
  state.counters["uc_ops_per_sec"] = t.ops_per_second;
  state.counters["latency_p50_ns"] = static_cast<double>(t.latency_p50_ns);
  state.counters["latency_p99_ns"] = static_cast<double>(t.latency_p99_ns);
  state.counters["shared_ops_per_uc_op"] = t.shared_ops_per_uc_op;
  state.counters["analytic_worst_case"] =
      static_cast<double>(analytic_worst_case);
  LLSC_CHECK(t.shared_ops_per_uc_op <=
                 static_cast<double>(analytic_worst_case),
             "a process exceeded the analytic worst case");
}

void run_hw(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    HwExecutor exec;
    t = run_uc_on_hw(exec, *uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void run_sim(benchmark::State& state, Which which) {
  const int n = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  UcThroughput t;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    auto uc = make_uc(which, n);
    worst = uc->worst_case_shared_ops();
    t = run_uc_on_simulator(*uc, n, ops, make_op);
  }
  check_and_report(state, t, worst);
}

void BM_GroupUpdate_Hw(benchmark::State& state) {
  run_hw(state, Which::kGroupUpdate);
}
void BM_GroupUpdate_Simulator(benchmark::State& state) {
  run_sim(state, Which::kGroupUpdate);
}
void BM_SingleRegister_Hw(benchmark::State& state) {
  run_hw(state, Which::kSingleRegister);
}
void BM_SingleRegister_Simulator(benchmark::State& state) {
  run_sim(state, Which::kSingleRegister);
}

void thread_sweep(benchmark::internal::Benchmark* b) {
  for (const int n : {1, 2, 4, 8, 16}) {
    b->Args({n, /*ops_per_process=*/64});
  }
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_GroupUpdate_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_GroupUpdate_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SingleRegister_Hw)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_SingleRegister_Simulator)
    ->Apply(llsc::thread_sweep)
    ->Unit(benchmark::kMillisecond);
