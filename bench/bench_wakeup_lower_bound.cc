// E1 — Theorem 6.1. For each wakeup algorithm and each n, run the Fig. 2
// adversary and report the shared-memory operations the 1-returner was
// forced to perform, next to the paper's log_4 n bound.
//
// Expected shape: `winner_ops` >= `log4_n` for every row (the adversary
// cannot be beaten); tournament rows grow like c·log2(n), naive-counter
// rows grow linearly — the gap between an optimal and a naive solution.
#include <benchmark/benchmark.h>

#include "core/lower_bound.h"
#include "util/check.h"
#include "util/str.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void run_case(benchmark::State& state, const ProcBody& body) {
  const int n = static_cast<int>(state.range(0));
  WakeupLowerBoundReport report;
  for (auto _ : state) {
    report = analyze_wakeup_run(body, n);
    benchmark::DoNotOptimize(report.winner_ops);
  }
  LLSC_CHECK(report.terminated, "adversary run did not terminate");
  LLSC_CHECK(report.bound_met, "Theorem 6.1 violated by a correct algorithm");
  state.counters["n"] = n;
  state.counters["winner_ops"] = static_cast<double>(report.winner_ops);
  state.counters["log4_n"] = report.log4_n;
  state.counters["max_ops"] = static_cast<double>(report.max_ops);
  state.counters["rounds"] = report.rounds;
  state.counters["ratio_vs_bound"] =
      report.log4_n > 0 ? static_cast<double>(report.winner_ops) / report.log4_n
                        : 0.0;
}

void BM_Tournament(benchmark::State& state) {
  run_case(state, tournament_wakeup());
}
void BM_NaiveCounter(benchmark::State& state) {
  run_case(state, counter_wakeup());
}
void BM_SwapMoveMix(benchmark::State& state) {
  run_case(state, swap_mix_wakeup());
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_Tournament)
    ->RangeMultiplier(2)
    ->Range(2, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_NaiveCounter)
    ->RangeMultiplier(4)
    ->Range(2, 512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_SwapMoveMix)
    ->RangeMultiplier(2)
    ->Range(2, 1024)
    ->Unit(benchmark::kMillisecond);
