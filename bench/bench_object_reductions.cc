// E3 — Theorem 6.2 / Corollary 6.1. Each of the eight object reductions
// solves wakeup with at most k operations on one implemented object; run
// through the oblivious Group-Update construction under the Fig. 2
// adversary, the winner's shared-memory cost must be >= (1/k)·log_4 n.
//
// Expected shape: every row's `winner_ops` is far above `corollary_bound`
// (the implementation pays Θ(log n) per implemented operation), and the
// wakeup specification holds for every type.
#include <benchmark/benchmark.h>

#include "core/adversary.h"
#include "universal/group_update.h"
#include "util/check.h"
#include "util/str.h"
#include "wakeup/reductions.h"
#include "wakeup/spec.h"

namespace llsc {
namespace {

void run_reduction(benchmark::State& state, const std::string& name, int k) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t winner_ops = 0;
  for (auto _ : state) {
    GroupUpdateUC uc(n, reduction_object_factory(name, n));
    System sys(n, reduction_wakeup_body(name, uc));
    sys.set_recording(false);
    AdversaryOptions opts;
    opts.record_snapshots = false;
    const RunLog log = run_adversary(sys, opts);
    LLSC_CHECK(log.all_terminated, "reduction run did not terminate");
    const WakeupCheckResult check = check_wakeup_run(sys);
    LLSC_CHECK(check.ok, "wakeup violated by reduction " + name);
    winner_ops = ~std::uint64_t{0};
    for (ProcId p = 0; p < n; ++p) {
      const Process& proc = sys.process(p);
      if (proc.done() && proc.result().as_u64() == 1) {
        winner_ops = std::min(winner_ops, proc.shared_ops());
      }
    }
  }
  const double bound = log4(static_cast<double>(n)) / k;
  LLSC_CHECK(static_cast<double>(winner_ops) >= bound,
             "Corollary 6.1 violated");
  state.counters["n"] = n;
  state.counters["k_ops_on_object"] = k;
  state.counters["winner_ops"] = static_cast<double>(winner_ops);
  state.counters["corollary_bound"] = bound;
}

}  // namespace
}  // namespace llsc

// One benchmark per object type of Theorem 6.2.
#define LLSC_REDUCTION_BENCH(fn, name, k)                        \
  static void fn(benchmark::State& state) {                      \
    ::llsc::run_reduction(state, name, k);                       \
  }                                                              \
  BENCHMARK(fn)->RangeMultiplier(4)->Range(4, 256)->Unit(        \
      benchmark::kMillisecond)

LLSC_REDUCTION_BENCH(BM_FetchIncrement, "fetch&increment", 1);
LLSC_REDUCTION_BENCH(BM_FetchAnd, "fetch&and", 1);
LLSC_REDUCTION_BENCH(BM_FetchOr, "fetch&or", 1);
LLSC_REDUCTION_BENCH(BM_FetchXor, "fetch&xor", 1);
LLSC_REDUCTION_BENCH(BM_FetchComplement, "fetch&complement", 1);
LLSC_REDUCTION_BENCH(BM_FetchMultiply, "fetch&multiply", 1);
LLSC_REDUCTION_BENCH(BM_Queue, "queue", 1);
LLSC_REDUCTION_BENCH(BM_Stack, "stack", 1);
LLSC_REDUCTION_BENCH(BM_PriorityQueue, "priority-queue", 1);
LLSC_REDUCTION_BENCH(BM_ReadIncrement, "read+increment", 2);
