// E16: open-loop service mode — M >> N logical processes on a small
// carrier pool, Poisson arrivals, enqueue->complete latency.
//
// The closed-loop benches (E10-E15) measure how fast n pinned threads can
// hammer the memory back-to-back; this experiment asks the "millions of
// users" question instead: hold the carrier pool at N threads, multiply
// the logical client population M = factor * N through the
// OversubscribedExecutor, and offer work at a fixed aggregate Poisson
// rate lambda. Latency is completion minus the SCHEDULED arrival (see
// src/hw/service.h), so when the pool saturates the backlog shows up in
// p99/p999 instead of being silently absorbed — the open-loop convention
// that defeats coordinated omission.
//
// Three workload legs mirror the paper's operation classes:
//   * FetchInc   — one strong RMW per request (Section 7 baseline).
//   * Wakeup     — the LL/SC increment retry loop; retries amplify under
//     contention, so its tail grows fastest with the oversub factor.
//   * Combining  — fetch&increment through CombiningUniversal; batching
//     soaks up the contention the Wakeup leg melts under.
//
// Counters per row: the pool fingerprint (n_threads, m_procs,
// oversub_factor), the offered/served accounting (arrival_rate_hz,
// offered_ops, served_ops, throughput_ops_per_sec), the latency quartet
// (latency_p50/p90/p99/p999_ns), and the scheduler counters (yields,
// steals, idle_parks). tools/bench_to_csv.py --check enforces the schema:
// served <= offered and monotone percentiles.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "hw/service.h"
#include "util/check.h"

namespace llsc {
namespace {

// Small fixed pool so the oversubscription factor — not the host's core
// count — is the swept variable, and the M = 64N leg stays a sane size.
constexpr int kThreads = 2;
constexpr int kOpsPerProc = 8;

void run_e16(benchmark::State& state, ServiceWorkload workload) {
  const int factor = static_cast<int>(state.range(0));
  const double rate_hz = static_cast<double>(state.range(1));

  ServiceOptions options;
  options.threads = kThreads;
  options.procs = factor * kThreads;
  options.arrival_rate_hz = rate_hz;
  options.ops_per_proc = kOpsPerProc;
  options.workload = workload;
  options.backoff.policy = BackoffPolicy::kAdaptiveParking;

  ServiceResult r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    r = run_service(options);
    LLSC_CHECK(r.run.ok, "E16 service run failed");
  }
  LLSC_CHECK(r.served_ops == r.offered_ops,
             "clean service run must serve every offered op");

  state.counters["n_threads"] = kThreads;
  state.counters["m_procs"] = options.procs;
  state.counters["oversub_factor"] = factor;
  state.counters["arrival_rate_hz"] = r.arrival_rate_hz;
  state.counters["offered_ops"] = static_cast<double>(r.offered_ops);
  state.counters["served_ops"] = static_cast<double>(r.served_ops);
  state.counters["throughput_ops_per_sec"] = r.throughput_ops_per_sec;
  state.counters["latency_p50_ns"] =
      static_cast<double>(r.run.latency.p50_ns());
  state.counters["latency_p90_ns"] =
      static_cast<double>(r.run.latency.p90_ns());
  state.counters["latency_p99_ns"] =
      static_cast<double>(r.run.latency.p99_ns());
  state.counters["latency_p999_ns"] =
      static_cast<double>(r.run.latency.p999_ns());
  state.counters["yields"] = static_cast<double>(r.run.sched.yields);
  state.counters["steals"] = static_cast<double>(r.run.sched.steals);
  state.counters["idle_parks"] =
      static_cast<double>(r.run.sched.idle_parks);
}

void BM_E16_FetchInc(benchmark::State& state) {
  run_e16(state, ServiceWorkload::kFetchInc);
}
void BM_E16_Wakeup(benchmark::State& state) {
  run_e16(state, ServiceWorkload::kWakeup);
}
void BM_E16_Combining(benchmark::State& state) {
  run_e16(state, ServiceWorkload::kCombining);
}

// Sweep M in {N, 4N, 16N, 64N} crossed with a moderate and a hot arrival
// rate. The moderate rate keeps utilization low (latency ~= service
// time); the hot rate pushes the M = 64N leg into visible queueing.
void e16_sweep(benchmark::internal::Benchmark* bench) {
  for (const int factor : {1, 4, 16, 64}) {
    for (const std::int64_t rate_hz : {20'000, 100'000}) {
      bench->Args({factor, rate_hz});
    }
  }
}

// -------------------------------------------------------------------------
// E17: availability under a crash storm — crash-stop vs crash+recover.
//
// Same open-loop pool as E16 (N = 2 carriers, Poisson arrivals), but the
// fault plan crash-stops `storm` of the M clients mid-schedule. The
// crash-stop leg (recover = 0) loses every victim's remaining requests:
// availability = served/offered drops with the storm size. The
// crash+recover leg (recover = 1) lets each victim rejoin after a
// hash-decided delay (amnesiac restart; the latency journal resumes at
// the first unserved arrival), so availability returns to 1.0 and the
// repair cost shows up instead as MTTR and a p999 dip — the re-served
// request's latency spans the crash and the rejoin delay.
//
// Row schema (tools/bench_to_csv.py --check): the E16 pool/accounting
// counters plus recover, storm, crashes, recoveries, in_flight_at_crash,
// availability, mttr_ms. Invariants: served <= offered, recoveries <=
// crashes, in_flight_at_crash <= crashes, monotone percentiles.

// Rejoin delay: up to 20 units of 50us => MTTR ~0.5ms, large enough to
// dent p999 at a 20kHz offered rate without stretching CI wall time.
constexpr std::uint32_t kE17StallUnitNs = 50'000;
constexpr std::uint32_t kE17DelayUnits = 20;
constexpr int kE17Procs = 16;

void run_e17(benchmark::State& state, ServiceWorkload workload) {
  const bool recover = state.range(0) != 0;
  const int storm = static_cast<int>(state.range(1));

  FaultPlan plan;
  plan.stall_unit_ns = kE17StallUnitNs;
  for (ProcId p = 0; p < storm; ++p) {
    CrashSpec crash;
    crash.proc = p;
    // Mid-schedule: every client has served some requests and still owes
    // some, so a lost victim visibly dents availability.
    crash.after_ops = 4;
    if (recover) {
      crash.recovery.delay_units = kE17DelayUnits;
      crash.recovery.max_restarts = 1;
      crash.recovery.amnesia = true;
    }
    plan.crashes.push_back(crash);
  }

  ServiceOptions options;
  options.threads = kThreads;
  options.procs = kE17Procs;
  options.arrival_rate_hz = 20'000.0;
  options.ops_per_proc = kOpsPerProc;
  options.workload = workload;
  options.backoff.policy = BackoffPolicy::kAdaptiveParking;
  options.fault = &plan;

  ServiceResult r;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    options.seed = seed++;
    plan.seed = options.seed;
    r = run_service(options);
    LLSC_CHECK(r.served_ops <= r.offered_ops,
               "service accounting must keep served <= offered");
    LLSC_CHECK(r.recoveries <= r.crashes, "more recoveries than crashes");
    LLSC_CHECK(r.in_flight_at_crash <= r.crashes,
               "more mid-op crashes than crashes");
    if (recover) {
      LLSC_CHECK(r.run.ok && r.served_ops == r.offered_ops,
                 "a fully-recovered storm must serve every offered op");
    } else if (storm > 0) {
      LLSC_CHECK(r.run.status == RunStatus::kCrashed,
                 "a crash-stop storm must report kCrashed");
    }
  }

  state.counters["n_threads"] = kThreads;
  state.counters["m_procs"] = options.procs;
  state.counters["recover"] = recover ? 1 : 0;
  state.counters["storm"] = storm;
  state.counters["arrival_rate_hz"] = r.arrival_rate_hz;
  state.counters["offered_ops"] = static_cast<double>(r.offered_ops);
  state.counters["served_ops"] = static_cast<double>(r.served_ops);
  state.counters["throughput_ops_per_sec"] = r.throughput_ops_per_sec;
  state.counters["availability"] = r.availability;
  state.counters["mttr_ms"] = r.mttr_ms;
  state.counters["crashes"] = static_cast<double>(r.crashes);
  state.counters["recoveries"] = static_cast<double>(r.recoveries);
  state.counters["in_flight_at_crash"] =
      static_cast<double>(r.in_flight_at_crash);
  state.counters["latency_p50_ns"] =
      static_cast<double>(r.run.latency.p50_ns());
  state.counters["latency_p90_ns"] =
      static_cast<double>(r.run.latency.p90_ns());
  state.counters["latency_p99_ns"] =
      static_cast<double>(r.run.latency.p99_ns());
  state.counters["latency_p999_ns"] =
      static_cast<double>(r.run.latency.p999_ns());
}

void BM_E17_CrashStorm_FetchInc(benchmark::State& state) {
  run_e17(state, ServiceWorkload::kFetchInc);
}
void BM_E17_CrashStorm_Combining(benchmark::State& state) {
  run_e17(state, ServiceWorkload::kCombining);
}

// Cross crash-stop vs crash+recover with a light and a heavy storm
// (quarter and three-quarters of the client population).
void e17_sweep(benchmark::internal::Benchmark* bench) {
  for (const int recover : {0, 1}) {
    for (const int storm : {4, 12}) {
      bench->Args({recover, storm});
    }
  }
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_E17_CrashStorm_FetchInc)
    ->Apply(llsc::e17_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E17_CrashStorm_Combining)
    ->Apply(llsc::e17_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(llsc::BM_E16_FetchInc)
    ->Apply(llsc::e16_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E16_Wakeup)
    ->Apply(llsc::e16_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(llsc::BM_E16_Combining)
    ->Apply(llsc::e16_sweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
