// E18 — expected steps vs n for randomized test-and-set and leader
// election (objects/tas.h, objects/leader.h) on all three substrates.
//
// The two retrieved papers put the strict protocol's cost between two
// curves, and the table splits them across two columns. The WINNER's cost
// (mean/min_winner_ops) is flat in n: the splitter fast path admits the
// first unobstructed process in O(1) ops — the upper-bound side, the
// shape Giakkoupis–Helmi–Higham–Woelfel (arXiv:1608.06033) drive all the
// way to O(log* n) expected. The LOSERS' cost (mean_max_ops) grows with
// log2(n): every chain reject descends the ceil(log2 n)-deep RatRace
// tournament — the side that Alistarh–Gelashvili–Nadiradze's
// (arXiv:2108.02802) Omega(log n) leader-election lower bound says some
// process must pay, and that transfers to TAS/leader here through the
// constant-op reductions of wakeup/reductions.h. EXPERIMENTS.md §E18
// records both columns against log2_n.
//
// Substrates: Sim = Monte-Carlo over the sharded parallel driver
// (adversary schedule, deterministic per seed); Hw = one thread per
// process, n capped near the core count; Oversub = n >> cores on 2
// carrier threads (the service-mode substrate). spec_violations counts
// samples where the exactly-one-winner postcondition failed and must be
// ZERO — that is the acceptance gate bench_to_csv.py --check enforces.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "hw/hw_executor.h"
#include "hw/mc_driver.h"
#include "hw/oversub_executor.h"
#include "objects/leader.h"
#include "objects/tas.h"
#include "util/check.h"

namespace llsc {
namespace {

constexpr int kSimSamples = 16;
constexpr int kHwSamples = 8;

ProcBody object_body(int object_id) {
  // 0 = TAS (1 iff won), 1 = leader election through the winner-flag body
  // (1 iff self elected) — both shapes feed the estimator's winner scan.
  return object_id == 0 ? randomized_tas_body() : leader_winner_flag_body();
}

void report_common(benchmark::State& state, int n, int object_id,
                   int substrate_id, int samples) {
  state.counters["n"] = n;
  state.counters["object_id"] = object_id;
  state.counters["substrate_id"] = substrate_id;
  state.counters["samples"] = samples;
  state.counters["log2_n"] = n > 1 ? std::log2(static_cast<double>(n)) : 0.0;
}

void run_sim_leg(benchmark::State& state, int object_id) {
  const int n = static_cast<int>(state.range(0));
  ParallelMcResult result;
  for (auto _ : state) {
    result = estimate_expected_complexity_parallel(
        object_body(object_id), n, kSimSamples, /*seed=*/0xE18 + object_id);
  }
  const ExpectedComplexityEstimate& est = result.estimate;
  LLSC_CHECK(est.spec_violations == 0, "E18 sim sample lost a winner");
  report_common(state, n, object_id, /*substrate_id=*/0, kSimSamples);
  state.counters["mean_winner_ops"] = est.mean_winner_ops;
  state.counters["mean_max_ops"] = est.mean_max_ops;
  state.counters["min_winner_ops"] = static_cast<double>(est.min_winner_ops);
  state.counters["spec_violations"] = est.spec_violations;
  state.counters["mc_workers"] = result.num_workers;
}

// Free-threaded legs: the executors have no estimator, so fold the winner
// scan by hand — exactly one result of 1 per sample or the sample counts
// as a spec violation (it never should; safety is deterministic).
void run_threaded_leg(benchmark::State& state, int object_id,
                      int substrate_id) {
  const int n = static_cast<int>(state.range(0));
  const ProcBody body = object_body(object_id);
  int spec_violations = 0;
  double sum_winner_ops = 0.0;
  double sum_max_ops = 0.0;
  std::uint64_t min_winner_ops = ~std::uint64_t{0};
  int measured = 0;
  for (auto _ : state) {
    spec_violations = 0;
    sum_winner_ops = 0.0;
    sum_max_ops = 0.0;
    min_winner_ops = ~std::uint64_t{0};
    measured = 0;
    for (int s = 0; s < kHwSamples; ++s) {
      HwRunResult run;
      if (substrate_id == 1) {
        HwRunOptions options;
        options.seed = 0xE18u + static_cast<std::uint64_t>(s);
        HwExecutor exec(options);
        run = exec.run(n, body);
      } else {
        OversubRunOptions options;
        options.seed = 0xE18u + static_cast<std::uint64_t>(s);
        options.num_threads = 2;  // n >> cores: the oversubscribed shape
        OversubscribedExecutor exec(options);
        run = exec.run(n, body);
      }
      LLSC_CHECK(run.ok, "E18 threaded sample did not complete");
      int winners = 0;
      std::uint64_t winner_ops = 0;
      std::uint64_t max_ops = 0;
      for (ProcId p = 0; p < n; ++p) {
        max_ops = std::max(max_ops, run.shared_ops[p]);
        if (run.results[p].holds_u64() && run.results[p].as_u64() == 1) {
          ++winners;
          winner_ops = run.shared_ops[p];
        }
      }
      if (winners != 1) {
        ++spec_violations;
        continue;
      }
      ++measured;
      sum_winner_ops += static_cast<double>(winner_ops);
      sum_max_ops += static_cast<double>(max_ops);
      min_winner_ops = std::min(min_winner_ops, winner_ops);
    }
  }
  LLSC_CHECK(spec_violations == 0, "E18 threaded sample lost a winner");
  LLSC_CHECK(measured > 0, "E18 leg measured nothing");
  report_common(state, n, object_id, substrate_id, kHwSamples);
  state.counters["mean_winner_ops"] = sum_winner_ops / measured;
  state.counters["mean_max_ops"] = sum_max_ops / measured;
  state.counters["min_winner_ops"] = static_cast<double>(min_winner_ops);
  state.counters["spec_violations"] = spec_violations;
}

void BM_E18_Tas_Sim(benchmark::State& state) { run_sim_leg(state, 0); }
void BM_E18_Leader_Sim(benchmark::State& state) { run_sim_leg(state, 1); }
void BM_E18_Tas_Hw(benchmark::State& state) {
  run_threaded_leg(state, 0, /*substrate_id=*/1);
}
void BM_E18_Leader_Hw(benchmark::State& state) {
  run_threaded_leg(state, 1, /*substrate_id=*/1);
}
void BM_E18_Tas_Oversub(benchmark::State& state) {
  run_threaded_leg(state, 0, /*substrate_id=*/2);
}
void BM_E18_Leader_Oversub(benchmark::State& state) {
  run_threaded_leg(state, 1, /*substrate_id=*/2);
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_E18_Tas_Sim)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_E18_Leader_Sim)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_E18_Tas_Hw)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_E18_Leader_Hw)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond);
// Oversubscribed: 2 carrier threads, up to 32 logical processes.
BENCHMARK(llsc::BM_E18_Tas_Oversub)
    ->RangeMultiplier(4)
    ->Range(8, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_E18_Leader_Oversub)
    ->RangeMultiplier(4)
    ->Range(8, 32)
    ->Unit(benchmark::kMillisecond);
