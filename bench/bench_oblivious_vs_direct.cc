// E9 — the paper's punchline, quantified. The same object types
// implemented three ways:
//
//   oblivious over LL/SC  (GroupUpdateUC)     — Θ(log n) per op, the best
//                                               any oblivious construction
//                                               can do (Theorem 6.1);
//   type-exploiting over LL/SC (src/direct)   — O(1) for register / swap /
//                                               consensus; fetch&add stays
//                                               Θ(n) under the adversary
//                                               (only lock-free, matching
//                                               the cited impossibilities);
//   oblivious over RMW (RmwUniversalUC)       — exactly 1 op for every
//                                               type (Section 7: with RMW
//                                               the lower bound is false).
//
// Expected shape: `max_ops_per_op` = Θ(log n) / 1 / 1 / Θ(n) per the rows
// above; the lower-bound column applies only to the LL/SC rows.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/adversary.h"
#include "direct/direct.h"
#include "direct/rmw_universal.h"
#include "objects/arith.h"
#include "objects/basic.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "util/check.h"
#include "util/str.h"

namespace llsc {
namespace {

SimTask one_op(ProcCtx ctx, UniversalConstruction* impl, ObjOp op) {
  const Value r = co_await impl->execute(ctx, std::move(op));
  co_return r;
}

// Runs n processes, each performing one `op` (parameterized by id) on
// `impl`, under the given scheduler; reports max shared ops.
template <typename MakeImpl, typename MakeOp>
void measure(benchmark::State& state, MakeImpl make_impl, MakeOp make_op,
             bool adversarial) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t max_ops = 0;
  for (auto _ : state) {
    auto impl = make_impl(n);
    System sys(n, [&impl, &make_op](ProcCtx ctx, ProcId i, int) {
      return one_op(ctx, impl.get(), make_op(i));
    });
    sys.set_recording(false);
    if (adversarial) {
      AdversaryOptions opts;
      opts.record_snapshots = false;
      LLSC_CHECK(run_adversary(sys, opts).all_terminated,
                 "run did not terminate");
    } else {
      RoundRobinScheduler sched;
      LLSC_CHECK(sched.run(sys, 1ull << 32).all_terminated,
                 "run did not terminate");
    }
    max_ops = sys.max_shared_ops();
  }
  state.counters["n"] = n;
  state.counters["max_ops_per_op"] = static_cast<double>(max_ops);
  state.counters["log4_n"] = log4(static_cast<double>(n));
}

ObjOp write_op(ProcId i) {
  return ObjOp{"write", Value::of_u64(static_cast<std::uint64_t>(i))};
}
ObjOp fai_op(ProcId) { return ObjOp{"fetch&increment", {}}; }
ObjOp propose_op(ProcId i) {
  return ObjOp{"propose", Value::of_u64(static_cast<std::uint64_t>(i))};
}

// --- register ---
void BM_Register_ObliviousLLSC(benchmark::State& state) {
  measure(state,
          [](int n) {
            return std::make_unique<GroupUpdateUC>(n, [] {
              return std::make_unique<RegisterObject>();
            });
          },
          write_op, /*adversarial=*/true);
}
void BM_Register_DirectLLSC(benchmark::State& state) {
  measure(state,
          [](int) { return std::make_unique<DirectRegister>(0); },
          write_op, /*adversarial=*/true);
}
void BM_Register_RmwUniversal(benchmark::State& state) {
  measure(state,
          [](int n) {
            return std::make_unique<RmwUniversalUC>(n, [] {
              return std::make_unique<RegisterObject>();
            });
          },
          write_op, /*adversarial=*/false);  // adversary rejects RMW
}

// --- consensus ---
void BM_Consensus_ObliviousLLSC(benchmark::State& state) {
  measure(state,
          [](int n) {
            return std::make_unique<GroupUpdateUC>(n, [] {
              return std::make_unique<ConsensusObject>();
            });
          },
          propose_op, /*adversarial=*/true);
}
void BM_Consensus_DirectLLSC(benchmark::State& state) {
  measure(state,
          [](int) { return std::make_unique<DirectConsensus>(0); },
          propose_op, /*adversarial=*/true);
}

// --- fetch&add ---
void BM_FetchAdd_ObliviousLLSC(benchmark::State& state) {
  measure(state,
          [](int n) {
            return std::make_unique<GroupUpdateUC>(n, [] {
              return std::make_unique<FetchAddObject>(64);
            });
          },
          fai_op, /*adversarial=*/true);
}
void BM_FetchAdd_DirectLLSC(benchmark::State& state) {
  // Type-exploiting but only lock-free: Θ(n) under the adversary.
  measure(state,
          [](int) { return std::make_unique<DirectFetchAdd>(0); },
          fai_op, /*adversarial=*/true);
}
void BM_FetchAdd_RmwUniversal(benchmark::State& state) {
  measure(state,
          [](int n) {
            return std::make_unique<RmwUniversalUC>(n, [] {
              return std::make_unique<FetchAddObject>(64);
            });
          },
          fai_op, /*adversarial=*/false);
}

}  // namespace
}  // namespace llsc

#define LLSC_E9(fn) \
  BENCHMARK(fn)->RangeMultiplier(4)->Range(4, 256)->Unit( \
      benchmark::kMillisecond)

LLSC_E9(llsc::BM_Register_ObliviousLLSC);
LLSC_E9(llsc::BM_Register_DirectLLSC);
LLSC_E9(llsc::BM_Register_RmwUniversal);
LLSC_E9(llsc::BM_Consensus_ObliviousLLSC);
LLSC_E9(llsc::BM_Consensus_DirectLLSC);
LLSC_E9(llsc::BM_FetchAdd_ObliviousLLSC);
LLSC_E9(llsc::BM_FetchAdd_DirectLLSC);
LLSC_E9(llsc::BM_FetchAdd_RmwUniversal);
