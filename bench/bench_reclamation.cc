// E19 — node reclamation under the Reclaimer seam (hw/reclaim.h):
// three-epoch batches vs per-slot hazard pointers.
//
// The E14 storage hammer (single boxed register, fetch&add rmw retry
// loop) re-run with the reclaimer as the only variable, across three
// executor shapes:
//
//   * Hammer          — raw HwMemory, one OS thread per process. The
//     no-fault baseline: epochs should win modestly on throughput (an
//     epoch entry is one uncontended store; a hazard protect is a
//     publish + re-validate round-trip, and max_stall_spins records its
//     worst retry tail under contention).
//   * Hammer/StalledPeer — one extra process parks *inside* an rmw (its
//     RmwFunction blocks until the hammer finishes), which keeps it in
//     the reclaimer critical section for the whole run. This is the leg
//     the seam exists for: the epoch column's node_high_water grows with
//     the entire churn (the pinned epoch leaks every retired node) while
//     the hazard column's stays a small constant (scan threshold + 1 per
//     slot) — same workload, same fault, opposite memory behavior.
//   * Oversub          — M = 16·N coroutine processes on N carrier
//     threads (OversubscribedExecutor, yield-on-SC-failure) so the
//     hazard reclaimer's carrier-bound slots (N hazard words, not M) are
//     on the measured path, protections surviving coroutine migration.
//
// Reported per case: hw_ops_per_sec, reclaimer_id (ReclaimPolicy enum:
// 0 = epoch, 1 = hazard), policy_id (storage), nodes_retired,
// nodes_reclaimed, node_high_water (the memory-growth headline),
// max_stall_spins (the reclamation-stall tail), scan_passes, and
// stalled_peer (0/1). tools/bench_to_csv.py --check validates the schema
// and the retired ≥ reclaimed invariant.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "hw/hw_memory.h"
#include "hw/oversub_executor.h"
#include "memory/rmw.h"
#include "util/check.h"

namespace llsc {
namespace {

std::shared_ptr<const RmwFunction> fetch_add1() {
  return make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
}

struct HammerResult {
  double ops_per_second = 0.0;
  HwReclaimStats reclaim;
};

// The E14 hammer with an optional stalled peer: `threads` processes
// fetch&add register 0; when `stalled_peer`, process `threads` blocks
// inside an rmw on register 1 until the hammer threads finish, pinning
// its reclaimer critical section across the whole measured interval.
HammerResult hammer(ReclaimPolicy reclaimer, int threads, int ops,
                    bool stalled_peer) {
  const int procs = threads + (stalled_peer ? 1 : 0);
  HwMemory mem(2, procs, {}, StoragePolicy::kBoxed, reclaimer);
  const auto inc = fetch_add1();

  std::atomic<bool> peer_entered{false};
  std::atomic<bool> peer_release{false};
  const auto stall = make_rmw("stall", [&](const Value&) {
    peer_entered.store(true, std::memory_order_release);
    while (!peer_release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return Value::of_u64(1);
  });
  std::thread peer;
  if (stalled_peer) {
    peer = std::thread([&] { (void)mem.rmw(threads, 1, *stall); });
    while (!peer_entered.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }

  std::barrier sync(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < ops; ++i) (void)mem.rmw(t, 0, *inc);
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sync.arrive_and_wait();
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  // Stats are read while the peer still pins its critical section — that
  // IS the measurement: the high water of a run whose stall never ended.
  HammerResult out;
  out.reclaim = mem.reclaim_stats();
  if (stalled_peer) {
    peer_release.store(true, std::memory_order_release);
    peer.join();
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops);
  LLSC_CHECK(mem.peek_value(0).as_u64() == total,
             "lost or duplicated rmw increments");
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  out.ops_per_second = wall > 0 ? static_cast<double>(total) / wall : 0.0;
  return out;
}

void report_e19(benchmark::State& state, int threads,
                double ops_per_second, const HwReclaimStats& reclaim,
                bool stalled_peer) {
  state.counters["n_threads"] = threads;
  state.counters["reclaimer_id"] = static_cast<double>(reclaim.policy);
  state.counters["policy_id"] =
      static_cast<double>(StoragePolicy::kBoxed);
  state.counters["hw_ops_per_sec"] = ops_per_second;
  state.counters["nodes_retired"] =
      static_cast<double>(reclaim.nodes_retired);
  state.counters["nodes_reclaimed"] =
      static_cast<double>(reclaim.nodes_freed);
  state.counters["node_high_water"] =
      static_cast<double>(reclaim.node_high_water);
  state.counters["max_stall_spins"] =
      static_cast<double>(reclaim.max_stall_spins);
  state.counters["scan_passes"] = static_cast<double>(reclaim.scan_passes);
  state.counters["stalled_peer"] = stalled_peer ? 1.0 : 0.0;
  LLSC_CHECK(reclaim.nodes_freed <= reclaim.nodes_retired,
             "freed more nodes than were retired");
}

void run_hammer(benchmark::State& state, ReclaimPolicy reclaimer,
                bool stalled_peer) {
  const int threads = static_cast<int>(state.range(0));
  const int ops = static_cast<int>(state.range(1));
  HammerResult r;
  for (auto _ : state) {
    r = hammer(reclaimer, threads, ops, stalled_peer);
  }
  report_e19(state, threads, r.ops_per_second, r.reclaim, stalled_peer);
}

void BM_E19_Hammer_Epoch(benchmark::State& state) {
  run_hammer(state, ReclaimPolicy::kEpoch, /*stalled_peer=*/false);
}
void BM_E19_Hammer_Hazard(benchmark::State& state) {
  run_hammer(state, ReclaimPolicy::kHazard, /*stalled_peer=*/false);
}
void BM_E19_Hammer_Epoch_StalledPeer(benchmark::State& state) {
  run_hammer(state, ReclaimPolicy::kEpoch, /*stalled_peer=*/true);
}
void BM_E19_Hammer_Hazard_StalledPeer(benchmark::State& state) {
  run_hammer(state, ReclaimPolicy::kHazard, /*stalled_peer=*/true);
}

// --- oversubscribed leg: M = 16·N coroutines on N carriers ---------------

SimTask counter_body(ProcCtx ctx, std::shared_ptr<const RmwFunction> inc,
                     int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    const Value old = co_await ctx.rmw(0, inc);
    sum += old.is_nil() ? 0 : old.as_u64();
  }
  co_return Value::of_u64(sum);
}

void run_oversub(benchmark::State& state, ReclaimPolicy reclaimer) {
  const int num_threads = static_cast<int>(state.range(0));
  const int m = 16 * num_threads;
  const int ops = static_cast<int>(state.range(1));
  const auto inc = fetch_add1();
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  HwRunResult run;
  for (auto _ : state) {
    OversubRunOptions options;
    options.seed = 19;
    options.num_threads = num_threads;
    options.yield_policy = YieldPolicy::kOnScFailure;
    options.storage = StoragePolicy::kBoxed;
    options.reclaimer = reclaimer;
    OversubscribedExecutor exec(options);
    run = exec.run(m, body);
    LLSC_CHECK(run.ok, "oversubscribed reclamation run did not terminate");
  }
  const double ops_per_second =
      run.wall_seconds > 0
          ? static_cast<double>(run.total_shared_ops) / run.wall_seconds
          : 0.0;
  report_e19(state, num_threads, ops_per_second, run.reclaim,
             /*stalled_peer=*/false);
  state.counters["oversub_factor"] = 16;
}

void BM_E19_Oversub_Epoch(benchmark::State& state) {
  run_oversub(state, ReclaimPolicy::kEpoch);
}
void BM_E19_Oversub_Hazard(benchmark::State& state) {
  run_oversub(state, ReclaimPolicy::kHazard);
}

void e19_hammer_sweep(benchmark::internal::Benchmark* b) {
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> counts{1, 2, cores};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int threads : counts) {
    b->Args({threads, /*ops_per_thread=*/2000});
  }
}

void e19_oversub_sweep(benchmark::internal::Benchmark* b) {
  const int cores = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> counts{2, std::max(2, std::min(4, cores))};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  for (const int n : counts) {
    b->Args({n, /*ops_per_proc=*/50});
  }
}

BENCHMARK(BM_E19_Hammer_Epoch)->Apply(e19_hammer_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E19_Hammer_Hazard)->Apply(e19_hammer_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E19_Hammer_Epoch_StalledPeer)->Apply(e19_hammer_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E19_Hammer_Hazard_StalledPeer)->Apply(e19_hammer_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E19_Oversub_Epoch)->Apply(e19_oversub_sweep)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E19_Oversub_Hazard)->Apply(e19_oversub_sweep)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace llsc
