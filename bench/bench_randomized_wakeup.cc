// E4 — the randomized bound (Theorem 6.1 with coin tosses + Lemma 3.1).
// Monte-Carlo over i.i.d. toss assignments: the randomized tournament
// terminates with probability 1 and its EXPECTED winner cost must stay
// >= log_4 n; the flaky variant terminates with probability c < 1 and its
// expected cost must stay >= c·log_4 n.
//
// The samples run through the sharded parallel driver (hw/mc_driver.h),
// which reproduces the serial estimator bit-for-bit — `mc_workers` reports
// the shard count, and on a multi-core box the wall time divides by it.
//
// Expected shape: `mean_winner_ops` tracks c·log2(n)-ish growth and
// `min_winner_ops` never dips below `log4_n`; for the flaky algorithm,
// `termination_rate` ≈ (1 - 1/4)^n and the Lemma 3.1 product bound holds.
#include <benchmark/benchmark.h>

#include "hw/mc_driver.h"
#include "util/check.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void BM_RandomizedTournament(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ParallelMcResult result;
  for (auto _ : state) {
    result = estimate_expected_complexity_parallel(
        randomized_tournament_wakeup(), n, /*samples=*/16, /*seed=*/12345);
  }
  const ExpectedComplexityEstimate& est = result.estimate;
  LLSC_CHECK(est.bound_met, "randomized lower bound violated");
  state.counters["n"] = n;
  state.counters["termination_rate_c"] = est.termination_rate;
  state.counters["mean_winner_ops"] = est.mean_winner_ops;
  state.counters["min_winner_ops"] = static_cast<double>(est.min_winner_ops);
  state.counters["bound_c_log4_n"] = est.bound;
  state.counters["spec_violations"] = est.spec_violations;
  state.counters["mc_workers"] = result.num_workers;
}

void BM_BackoffCounter(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ParallelMcResult result;
  for (auto _ : state) {
    result = estimate_expected_complexity_parallel(
        backoff_counter_wakeup(), n, /*samples=*/12, /*seed=*/31);
  }
  const ExpectedComplexityEstimate& est = result.estimate;
  LLSC_CHECK(est.bound_met, "randomized lower bound violated");
  state.counters["n"] = n;
  state.counters["mean_winner_ops"] = est.mean_winner_ops;
  state.counters["min_winner_ops"] = static_cast<double>(est.min_winner_ops);
  state.counters["mean_max_ops"] = est.mean_max_ops;
  state.counters["bound_c_log4_n"] = est.bound;
  state.counters["spec_violations"] = est.spec_violations;
  state.counters["mc_workers"] = result.num_workers;
}

void BM_FlakyWakeup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ParallelMcResult result;
  AdversaryOptions adversary;
  adversary.max_rounds = 400;  // non-terminating samples stop here
  for (auto _ : state) {
    result = estimate_expected_complexity_parallel(
        flaky_wakeup(4), n, /*samples=*/24, /*seed=*/999, /*num_workers=*/0,
        adversary);
  }
  const ExpectedComplexityEstimate& est = result.estimate;
  LLSC_CHECK(est.bound_met, "Lemma 3.1 bound violated");
  state.counters["n"] = n;
  state.counters["termination_rate_c"] = est.termination_rate;
  state.counters["mean_winner_ops"] = est.mean_winner_ops;
  state.counters["expected_cost"] = est.termination_rate * est.mean_winner_ops;
  state.counters["bound_c_log4_n"] = est.bound;
  state.counters["spec_violations"] = est.spec_violations;
  state.counters["mc_workers"] = result.num_workers;
}

}  // namespace
}  // namespace llsc

BENCHMARK(llsc::BM_RandomizedTournament)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_BackoffCounter)
    ->RangeMultiplier(4)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(llsc::BM_FlakyWakeup)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Unit(benchmark::kMillisecond);
