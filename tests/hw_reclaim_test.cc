// The Reclaimer seam (hw/reclaim.h): epoch vs hazard-pointer policies.
//
// Covers the trade-off the seam exists to expose — a peer stalled inside
// an operation pins the epoch and garbage grows with the stall, while
// hazard pointers bound unreclaimed nodes by the scan threshold whatever
// the peer does — plus crash-recovery protection release, per-HwMemory
// counter scoping (no process-global reclamation state), sim/hw parity of
// the deterministic counters, oversubscribed hazard stress with carrier-
// bound slots (the TSan-facing leg), and the FaultArtifact reclaimer
// block's byte-stability contract.
#include "hw/reclaim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "hw/fault.h"
#include "hw/hw_executor.h"
#include "hw/hw_memory.h"
#include "hw/oversub_executor.h"
#include "memory/rmw.h"
#include "memory/shared_memory.h"

namespace llsc {
namespace {

Value big_value(std::uint64_t i) {
  // Payloads above kInlineMaxU64 never fit an inline word, so they force
  // the node path under every storage policy.
  return Value::of_u64(kInlineMaxU64 + 2 + i);
}

// Drives a reclaimer directly: slot 0 hammers one register word with
// installs (allocate, CAS, retire the predecessor) while other slots hold
// whatever protections the test arranged.
struct WordHammer {
  std::atomic<std::uint64_t> word{0};

  explicit WordHammer(Reclaimer& r) : r_(r) {
    word.store(from_node(new VersionedNode{Value{}, 1}),
               std::memory_order_relaxed);
  }
  ~WordHammer() { delete as_node(word.load(std::memory_order_relaxed)); }

  void install(int slot, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      r_.begin(slot);
      const std::uint64_t cur = r_.acquire(slot, word);
      auto* fresh = new VersionedNode{Value::of_u64(i),
                                      as_node(cur)->version + 1};
      word.store(from_node(fresh), std::memory_order_release);
      r_.retire(slot, as_node(cur));
      r_.end(slot);
    }
  }

 private:
  Reclaimer& r_;
};

TEST(ReclaimerTest, EpochPinnedPeerBlocksAllReclamation) {
  EpochReclaimer r(2);
  WordHammer hammer(r);
  // Slot 1 parks inside a critical section: its epoch word holds the
  // global epoch it entered with, so the global epoch can never advance
  // and nothing ever becomes two epochs stale.
  r.begin(1);
  const std::uint64_t kInstalls = 4096;
  hammer.install(0, kInstalls);
  ReclaimStats pinned = r.stats();
  EXPECT_EQ(pinned.policy, ReclaimPolicy::kEpoch);
  EXPECT_EQ(pinned.nodes_retired, kInstalls);
  EXPECT_EQ(pinned.nodes_freed, 0u);
  // The leak metric: the whole retired backlog is the high water.
  EXPECT_GE(pinned.node_high_water, kInstalls);
  // Scans ran (every kScanInterval retires) — they just could not free.
  EXPECT_GT(pinned.scan_passes, 0u);
  // Releasing the peer un-pins the epoch; further traffic drains the
  // backlog down to the usual two-epoch tail.
  r.end(1);
  hammer.install(0, kInstalls);
  ReclaimStats drained = r.stats();
  EXPECT_GT(drained.nodes_freed, kInstalls);
}

TEST(ReclaimerTest, HazardBoundsGarbageUnderPinnedPeer) {
  HazardPointerReclaimer r(2);
  WordHammer hammer(r);
  // Slot 1 protects the current head and parks. One hazard word can keep
  // at most one node alive per scan; everything else must be freed.
  r.begin(1);
  const std::uint64_t protected_word = r.acquire(1, hammer.word);
  VersionedNode* protected_node = as_node(protected_word);
  const Value protected_value = protected_node->value;
  const std::uint64_t kInstalls = 4096;
  hammer.install(0, kInstalls);
  const ReclaimStats pinned = r.stats();
  EXPECT_EQ(pinned.policy, ReclaimPolicy::kHazard);
  EXPECT_EQ(pinned.nodes_retired, kInstalls);
  // Bounded garbage: the per-slot list never exceeds threshold + 1, and
  // each scan keeps at most num_slots protected nodes.
  EXPECT_LE(pinned.node_high_water, r.scan_threshold() + 1);
  EXPECT_GE(pinned.nodes_freed, kInstalls - r.scan_threshold() - 2);
  // The protected node is still dereferenceable (ASan would flag a
  // use-after-free here if the scan ignored the hazard word).
  EXPECT_EQ(protected_node->value, protected_value);
  r.end(1);
  r.quiesce();
  EXPECT_EQ(r.stats().nodes_freed, kInstalls);
}

TEST(ReclaimerTest, ReleaseDropsProtectionLikeCrashRecovery) {
  // release(slot) is what invalidate_links routes a restart through: the
  // dead incarnation's protection must not outlive it. After the release,
  // the previously protected node becomes reclaimable.
  HazardPointerReclaimer r(2);
  WordHammer hammer(r);
  r.begin(1);
  (void)r.acquire(1, hammer.word);
  r.release(1);  // the "crash": slot 1's protection dies with it
  const std::uint64_t kInstalls = 2 * r.scan_threshold() + 8;
  hammer.install(0, kInstalls);
  r.quiesce();
  // Every retired node was freed — the released hazard kept nothing.
  EXPECT_EQ(r.stats().nodes_freed, kInstalls);
}

// The memory-level version of the stalled-peer scenario: process 1 sits
// inside rmw() — its RmwFunction blocks until released, which keeps it in
// the reclaimer critical section — while process 0 churns boxed installs
// on another register. Epochs leak the whole churn; hazards stay bounded.
struct StalledPeer {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::shared_ptr<const RmwFunction> fn = make_rmw("stall", [this](
                                                                const Value&) {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return Value::of_u64(1);
  });
};

std::uint64_t churn_high_water(ReclaimPolicy policy, std::uint64_t installs) {
  HwMemory mem(2, 2, {}, StoragePolicy::kBoxed, policy);
  StalledPeer peer;
  std::thread stalled([&] { (void)mem.rmw(1, 1, *peer.fn); });
  while (!peer.entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  for (std::uint64_t i = 0; i < installs; ++i) {
    (void)mem.swap(0, 0, Value::of_u64(i));
  }
  const HwReclaimStats mid = mem.reclaim_stats();
  peer.release.store(true, std::memory_order_release);
  stalled.join();
  EXPECT_EQ(mid.policy, policy);
  EXPECT_GE(mid.nodes_retired, installs);
  return mid.node_high_water;
}

TEST(HwReclaimTest, StalledPeerLeaksUnderEpochsButNotHazards) {
  const std::uint64_t kInstalls = 8192;
  // Epochs: the stalled rmw pins the global epoch, so the churn's whole
  // backlog is unreclaimed — high water grows with the stall length.
  EXPECT_GE(churn_high_water(ReclaimPolicy::kEpoch, kInstalls), kInstalls);
  // Hazards: the stalled peer holds exactly one hazard word; the churn's
  // slot scans at its threshold (max(64, 2·slots) = 64 here), so high
  // water is a small constant independent of kInstalls.
  EXPECT_LE(churn_high_water(ReclaimPolicy::kHazard, kInstalls), 256u);
}

TEST(HwReclaimTest, CountersAreScopedPerHwMemoryInstance) {
  // Regression for process-global reclamation state: two back-to-back
  // instances must produce identical counters for identical workloads —
  // nothing may accumulate across instances or leak through statics.
  auto run_workload = [] {
    HwMemory mem(1, 1, {}, StoragePolicy::kBoxed, ReclaimPolicy::kHazard);
    for (std::uint64_t i = 0; i < 500; ++i) {
      (void)mem.swap(0, 0, Value::of_u64(i));
    }
    return mem.reclaim_stats();
  };
  const HwReclaimStats first = run_workload();
  const HwReclaimStats second = run_workload();
  EXPECT_EQ(first.nodes_allocated, 500u);
  EXPECT_EQ(second.nodes_allocated, first.nodes_allocated);
  EXPECT_EQ(second.nodes_retired, first.nodes_retired);
  EXPECT_EQ(second.nodes_freed, first.nodes_freed);
  EXPECT_EQ(second.scan_passes, first.scan_passes);
  EXPECT_EQ(second.node_high_water, first.node_high_water);
}

TEST(HwReclaimTest, SimulatorMirrorsDeterministicCountersBoxed) {
  // Identical single-process op sequences on both substrates: the
  // deterministic counters (allocated / retired) must agree exactly.
  // Boxed: every completed install allocates and retires.
  SharedMemory sim;
  sim.set_storage_policy(StoragePolicy::kBoxed);
  sim.set_reclaim_policy(ReclaimPolicy::kEpoch);
  HwMemory hw(4, 1, {}, StoragePolicy::kBoxed, ReclaimPolicy::kEpoch);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const RegId r = static_cast<RegId>(i % 4);
    (void)sim.swap(0, r, Value::of_u64(i));
    (void)hw.swap(0, r, Value::of_u64(i));
    (void)sim.ll(0, r);
    (void)hw.ll(0, r);
    const bool sim_ok = sim.sc(0, r, Value::of_u64(i + 1)).flag;
    const bool hw_ok = hw.sc(0, r, Value::of_u64(i + 1)).flag;
    ASSERT_EQ(sim_ok, hw_ok);
  }
  const ReclaimStats s = sim.reclaim_stats();
  const HwReclaimStats h = hw.reclaim_stats();
  EXPECT_EQ(s.nodes_allocated, h.nodes_allocated);
  EXPECT_EQ(s.nodes_retired, h.nodes_retired);
  EXPECT_EQ(s.nodes_allocated, 200u);  // 100 swaps + 100 SC successes
}

TEST(HwReclaimTest, SimulatorMirrorsDeterministicCountersInline) {
  // Inline: small values never touch a node; an overflow demotes the
  // register, after which every install on it allocates — and retires
  // only once a node is actually replaced (not on the demoting install).
  SharedMemory sim;
  sim.set_storage_policy(StoragePolicy::kInline);
  sim.set_reclaim_policy(ReclaimPolicy::kEpoch);
  HwMemory hw(4, 1, {}, StoragePolicy::kInline, ReclaimPolicy::kEpoch);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const RegId r = static_cast<RegId>(i % 4);
    (void)sim.swap(0, r, Value::of_u64(i));  // always fits inline
    (void)hw.swap(0, r, Value::of_u64(i));
  }
  ReclaimStats s = sim.reclaim_stats();
  HwReclaimStats h = hw.reclaim_stats();
  EXPECT_EQ(s.nodes_allocated, 0u);
  EXPECT_EQ(h.nodes_allocated, 0u);
  // Register 0 overflows once, then keeps receiving boxed installs.
  for (std::uint64_t i = 0; i < 10; ++i) {
    (void)sim.swap(0, 0, big_value(i));
    (void)hw.swap(0, 0, big_value(i));
  }
  s = sim.reclaim_stats();
  h = hw.reclaim_stats();
  EXPECT_EQ(s.nodes_allocated, h.nodes_allocated);
  EXPECT_EQ(s.nodes_retired, h.nodes_retired);
  EXPECT_EQ(s.nodes_allocated, 10u);
  EXPECT_EQ(s.nodes_retired, 9u);  // the demoting install replaced no node
}

std::shared_ptr<const RmwFunction> fetch_add1() {
  return make_rmw("fetch&add1", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
}

SimTask counter_body(ProcCtx ctx, std::shared_ptr<const RmwFunction> inc,
                     int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    const Value old = co_await ctx.rmw(0, inc);
    sum += old.is_nil() ? 0 : old.as_u64();
  }
  co_return Value::of_u64(sum);
}

TEST(HwReclaimTest, ExecutorSurfacesReclaimStatsPerPolicy) {
  auto inc = fetch_add1();
  const int n = 4;
  const int ops = 64;
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  for (const ReclaimPolicy policy :
       {ReclaimPolicy::kEpoch, ReclaimPolicy::kHazard}) {
    HwRunOptions options;
    options.seed = 3;
    options.storage = StoragePolicy::kBoxed;
    options.reclaimer = policy;
    HwExecutor exec(options);
    const HwRunResult run = exec.run(n, body);
    ASSERT_TRUE(run.ok) << to_string(policy);
    EXPECT_EQ(run.reclaim.policy, policy);
    EXPECT_EQ(run.reclaim.nodes_retired,
              static_cast<std::uint64_t>(n) * ops);
    EXPECT_LE(run.reclaim.nodes_freed, run.reclaim.nodes_retired);
    EXPECT_GT(run.reclaim.node_high_water, 0u);
  }
}

TEST(HwReclaimTest, OversubscribedHazardStressIsExactAndBounded) {
  // The TSan-facing leg: M = 64 coroutine processes on N = 4 carriers,
  // yield-on-SC-failure (maximal migration of contended processes),
  // hazard reclamation with carrier-bound slots. The exact counter total
  // proves no lost/duplicated op; ASan/TSan prove no protection was
  // dropped across a migration; the high-water bound proves slots really
  // are per carrier (4 slots → threshold 64 → small constant backlog).
  const int m = 64;
  const int ops = 30;
  auto inc = fetch_add1();
  const ProcBody body = [&](ProcCtx ctx, ProcId, int) {
    return counter_body(ctx, inc, ops);
  };
  OversubRunOptions options;
  options.num_threads = 4;
  options.seed = 17;
  options.yield_policy = YieldPolicy::kOnScFailure;
  options.storage = StoragePolicy::kBoxed;
  options.reclaimer = ReclaimPolicy::kHazard;
  OversubscribedExecutor exec(options);
  const HwRunResult run = exec.run(m, body);
  ASSERT_TRUE(run.ok);
  std::uint64_t sum = 0;
  for (const Value& v : run.results) {
    ASSERT_TRUE(v.holds_u64());
    sum += v.as_u64();
  }
  const std::uint64_t total = static_cast<std::uint64_t>(m) * ops;
  EXPECT_EQ(sum, total * (total - 1) / 2);
  EXPECT_EQ(run.reclaim.policy, ReclaimPolicy::kHazard);
  EXPECT_EQ(run.reclaim.nodes_retired, total);
  // 4 carrier slots, threshold max(64, 8) = 64: per-slot backlog is at
  // most threshold + 1, so the summed high water stays far below the
  // 1920-op churn even before any stall.
  EXPECT_LE(run.reclaim.node_high_water, 4u * 65u);
}

TEST(HwReclaimTest, FaultArtifactReclaimerBlockIsOptionalAndRoundTrips) {
  FaultArtifact artifact;
  artifact.scenario = "fixed_ll_sc";
  artifact.n = 2;
  artifact.sample_index = 0;
  artifact.toss_seed = 7;
  artifact.max_rounds = 100;
  artifact.status = RunStatus::kHung;
  artifact.proc_ops = {3, 4};
  // Default (epoch) artifacts must not grow new keys — the byte-stability
  // contract that keeps PR-5-era artifact JSON replayable unchanged.
  const std::string epoch_json = artifact.to_json();
  EXPECT_EQ(epoch_json.find("reclaimer"), std::string::npos);
  FaultArtifact parsed;
  std::string error;
  ASSERT_TRUE(FaultArtifact::from_json(epoch_json, &parsed, &error))
      << error;
  EXPECT_EQ(parsed.reclaimer, ReclaimPolicy::kEpoch);
  // Non-default runs carry the block and round-trip it.
  artifact.reclaimer = ReclaimPolicy::kHazard;
  artifact.nodes_retired = 11;
  artifact.nodes_reclaimed = 9;
  const std::string hazard_json = artifact.to_json();
  EXPECT_NE(hazard_json.find("\"reclaimer\": \"hazard\""),
            std::string::npos);
  ASSERT_TRUE(FaultArtifact::from_json(hazard_json, &parsed, &error))
      << error;
  EXPECT_EQ(parsed.reclaimer, ReclaimPolicy::kHazard);
  EXPECT_EQ(parsed.nodes_retired, 11u);
  EXPECT_EQ(parsed.nodes_reclaimed, 9u);
}

}  // namespace
}  // namespace llsc
