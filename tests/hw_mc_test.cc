// Parallel Monte-Carlo driver: the sharded estimator must reproduce the
// serial Lemma 3.1 estimator EXACTLY (same seeds, same fold), not merely
// statistically.
#include "hw/mc_driver.h"

#include <gtest/gtest.h>

#include "core/lower_bound.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void expect_identical(const ExpectedComplexityEstimate& a,
                      const ExpectedComplexityEstimate& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.termination_rate, b.termination_rate);
  EXPECT_EQ(a.mean_winner_ops, b.mean_winner_ops);
  EXPECT_EQ(a.mean_max_ops, b.mean_max_ops);
  EXPECT_EQ(a.min_winner_ops, b.min_winner_ops);
  EXPECT_EQ(a.bound, b.bound);
  EXPECT_EQ(a.bound_met, b.bound_met);
}

TEST(HwMcTest, ParallelMatchesSerialBitForBit) {
  const int n = 6;
  const int samples = 32;
  const std::uint64_t seed = 7;
  const ExpectedComplexityEstimate serial =
      estimate_expected_complexity(backoff_counter_wakeup(), n, samples, seed);
  for (const int workers : {1, 2, 4}) {
    const ParallelMcResult par = estimate_expected_complexity_parallel(
        backoff_counter_wakeup(), n, samples, seed, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(serial, par.estimate);
    EXPECT_EQ(par.num_workers, workers);
    int run = 0;
    for (const McShardStats& s : par.shards) run += s.samples_run;
    EXPECT_EQ(run, samples);
  }
}

TEST(HwMcTest, ParallelMatchesSerialOnRandomizedTournament) {
  const int n = 8;
  const int samples = 24;
  const ExpectedComplexityEstimate serial = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, /*seed=*/11);
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      randomized_tournament_wakeup(), n, samples, /*seed=*/11, /*workers=*/3);
  expect_identical(serial, par.estimate);
  // The randomized tournament meets the paper's bound on every sample.
  EXPECT_TRUE(par.estimate.bound_met);
}

TEST(HwMcTest, WorkerCountIsCappedBySamples) {
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      tournament_wakeup(), /*n=*/4, /*samples=*/2, /*seed=*/1, /*workers=*/16);
  EXPECT_EQ(par.num_workers, 2);
  EXPECT_EQ(par.estimate.samples, 2);
}

}  // namespace
}  // namespace llsc
