// Parallel Monte-Carlo driver: the sharded estimator must reproduce the
// serial Lemma 3.1 estimator EXACTLY (same seeds, same fold), not merely
// statistically.
#include "hw/mc_driver.h"

#include <gtest/gtest.h>

#include "core/lower_bound.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

void expect_identical(const ExpectedComplexityEstimate& a,
                      const ExpectedComplexityEstimate& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.termination_rate, b.termination_rate);
  EXPECT_EQ(a.spec_violations, b.spec_violations);
  EXPECT_EQ(a.crashed_samples, b.crashed_samples);
  EXPECT_EQ(a.hung_samples, b.hung_samples);
  EXPECT_EQ(a.mean_winner_ops, b.mean_winner_ops);
  EXPECT_EQ(a.mean_max_ops, b.mean_max_ops);
  EXPECT_EQ(a.min_winner_ops, b.min_winner_ops);
  EXPECT_EQ(a.bound, b.bound);
  EXPECT_EQ(a.bound_met, b.bound_met);
}

// Terminates immediately without ever returning 1: every terminated
// sample is a wakeup-spec violation.
SimTask return_zero_body(ProcCtx ctx, ProcId, int) {
  (void)co_await ctx.ll(0);
  co_return Value::of_u64(0);
}

// Never terminates; the adversary's round cap stops every sample.
SimTask spin_forever_body(ProcCtx ctx, ProcId, int) {
  for (;;) {
    (void)co_await ctx.ll(0);
  }
}

TEST(HwMcTest, ParallelMatchesSerialBitForBit) {
  const int n = 6;
  const int samples = 32;
  const std::uint64_t seed = 7;
  const ExpectedComplexityEstimate serial =
      estimate_expected_complexity(backoff_counter_wakeup(), n, samples, seed);
  for (const int workers : {1, 2, 4}) {
    const ParallelMcResult par = estimate_expected_complexity_parallel(
        backoff_counter_wakeup(), n, samples, seed, workers);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(serial, par.estimate);
    EXPECT_EQ(par.num_workers, workers);
    int run = 0;
    for (const McShardStats& s : par.shards) run += s.samples_run;
    EXPECT_EQ(run, samples);
  }
}

TEST(HwMcTest, ParallelMatchesSerialOnRandomizedTournament) {
  const int n = 8;
  const int samples = 24;
  const ExpectedComplexityEstimate serial = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, /*seed=*/11);
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      randomized_tournament_wakeup(), n, samples, /*seed=*/11, /*workers=*/3);
  expect_identical(serial, par.estimate);
  // The randomized tournament meets the paper's bound on every sample.
  EXPECT_TRUE(par.estimate.bound_met);
}

// Regression (ISSUE 2): a terminated run with no 1-returner used to be
// folded in as winner_ops = 0, dragging min_winner_ops to 0 and flipping
// bound_met with no trace. Such samples must be counted as spec
// violations and excluded from the winner-ops statistics — in the serial
// estimator and the parallel driver alike.
TEST(HwMcTest, SpecViolationsAreCountedNotFoldedIntoWinnerOps) {
  const int n = 4;
  const int samples = 8;
  const ProcBody algo = &return_zero_body;
  const ExpectedComplexityEstimate serial =
      estimate_expected_complexity(algo, n, samples, /*seed=*/5);
  EXPECT_EQ(serial.spec_violations, samples);
  EXPECT_EQ(serial.termination_rate, 1.0);
  // No winner sample: the winner statistics stay empty and the bound
  // check is vacuous (pre-fix: min_winner_ops = 0 made it "VIOLATED").
  EXPECT_EQ(serial.min_winner_ops, 0u);
  EXPECT_EQ(serial.mean_winner_ops, 0.0);
  EXPECT_TRUE(serial.bound_met);
  // t(R) still averages over all terminated samples, violations included.
  EXPECT_GE(serial.mean_max_ops, 1.0);

  const ParallelMcResult par =
      estimate_expected_complexity_parallel(algo, n, samples, /*seed=*/5,
                                            /*num_workers=*/3);
  expect_identical(serial, par.estimate);
}

// Regression (ISSUE 2): with no terminating sample, min_winner_ops used
// to keep its ~uint64{0} accumulator sentinel and leak UINT64_MAX into
// printed/JSON rows. It must report 0, with bound_met still vacuously
// true.
TEST(HwMcTest, NoTerminatingSampleReportsZeroMinWinnerOps) {
  const int n = 3;
  const int samples = 6;
  const ProcBody algo = &spin_forever_body;
  AdversaryOptions adversary;
  adversary.max_rounds = 16;
  const ExpectedComplexityEstimate serial =
      estimate_expected_complexity(algo, n, samples, /*seed=*/9, adversary);
  EXPECT_EQ(serial.termination_rate, 0.0);
  EXPECT_EQ(serial.spec_violations, 0);
  // Round-cap non-termination without a fault plan is classified "hung".
  EXPECT_EQ(serial.hung_samples, samples);
  EXPECT_EQ(serial.crashed_samples, 0);
  EXPECT_EQ(serial.min_winner_ops, 0u);  // pre-fix: UINT64_MAX
  EXPECT_TRUE(serial.bound_met);

  const ParallelMcResult par = estimate_expected_complexity_parallel(
      algo, n, samples, /*seed=*/9, /*num_workers=*/2, adversary);
  expect_identical(serial, par.estimate);
}

// A correct algorithm reports zero spec violations — the new counter must
// not fire on healthy runs.
TEST(HwMcTest, HealthyAlgorithmReportsZeroSpecViolations) {
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      tournament_wakeup(), /*n=*/4, /*samples=*/6, /*seed=*/3,
      /*num_workers=*/2);
  EXPECT_EQ(par.estimate.spec_violations, 0);
  EXPECT_GT(par.estimate.min_winner_ops, 0u);
  EXPECT_TRUE(par.estimate.bound_met);
}

// Fault-plan sweeps preserve the serial/parallel bit-for-bit contract:
// both drivers derive the identical per-sample plan from (base plan,
// toss seed), so crashed/hung taxonomy counts — not just the means —
// must agree exactly across worker counts.
TEST(HwMcTest, CrashedSamplesFoldIdenticallySerialAndParallel) {
  const int n = 8;
  const int samples = 16;
  const std::uint64_t seed = 13;
  FaultPlan plan;
  plan.seed = 77;
  plan.crashes.push_back(CrashSpec{.proc = 0, .after_ops = 2});
  const ExpectedComplexityEstimate serial = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, seed, {}, &plan);
  EXPECT_EQ(serial.crashed_samples, samples);  // proc 0 crashes every sample
  EXPECT_EQ(serial.termination_rate, 0.0);
  for (const int workers : {1, 3}) {
    McRunOptions options;
    options.num_workers = workers;
    options.fault = &plan;
    const ParallelMcResult par = estimate_expected_complexity_parallel(
        randomized_tournament_wakeup(), n, samples, seed, options);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(serial, par.estimate);
  }
}

TEST(HwMcTest, SpuriousFailureSweepFoldsIdenticallySerialAndParallel) {
  const int n = 8;
  const int samples = 24;
  const std::uint64_t seed = 29;
  FaultPlan plan;
  plan.seed = 5;
  plan.sc_fail_rate = 0.4;
  AdversaryOptions adversary;
  adversary.max_rounds = 1 << 10;
  const ExpectedComplexityEstimate serial = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, seed, adversary, &plan);
  McRunOptions options;
  options.num_workers = 4;
  options.adversary = adversary;
  options.fault = &plan;
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      randomized_tournament_wakeup(), n, samples, seed, options);
  expect_identical(serial, par.estimate);
}

// The fold-parity contract is policy-independent: the serial estimator
// and the parallel driver must agree bit for bit under the inline
// register-storage policy too (the policy only changes accounting on the
// simulator, so the estimates must also equal the boxed ones exactly).
TEST(HwMcTest, FoldParityHoldsUnderInlineStorage) {
  const int n = 6;
  const int samples = 24;
  const std::uint64_t seed = 17;
  const ExpectedComplexityEstimate boxed = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, seed, {}, nullptr,
      StoragePolicy::kBoxed);
  const ExpectedComplexityEstimate serial = estimate_expected_complexity(
      randomized_tournament_wakeup(), n, samples, seed, {}, nullptr,
      StoragePolicy::kInline);
  expect_identical(boxed, serial);
  for (const int workers : {1, 3}) {
    McRunOptions options;
    options.num_workers = workers;
    options.storage = StoragePolicy::kInline;
    const ParallelMcResult par = estimate_expected_complexity_parallel(
        randomized_tournament_wakeup(), n, samples, seed, options);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    expect_identical(serial, par.estimate);
  }
}

TEST(HwMcTest, WorkerCountIsCappedBySamples) {
  const ParallelMcResult par = estimate_expected_complexity_parallel(
      tournament_wakeup(), /*n=*/4, /*samples=*/2, /*seed=*/1, /*workers=*/16);
  EXPECT_EQ(par.num_workers, 2);
  EXPECT_EQ(par.estimate.samples, 2);
}

}  // namespace
}  // namespace llsc
