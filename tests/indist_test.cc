// Empirical validation of the Indistinguishability Lemma (Lemma 5.2):
// for every algorithm, toss assignment, and choice of S, any process or
// register X with UP(X, r) ⊆ S sees identical executions in the
// (All,A)-run and the (S,A)-run through round r.
#include "core/indistinguishability.h"

#include <gtest/gtest.h>

#include "core/adversary.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "util/rng.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

struct Subject {
  const char* name;
  ProcBody body;
  bool randomized;
};

std::vector<Subject> subjects() {
  return {
      {"tournament", tournament_wakeup(), false},
      {"counter", counter_wakeup(), false},
      {"swap_mix", swap_mix_wakeup(), false},
      {"randomized_tournament", randomized_tournament_wakeup(), true},
      {"random_mix", random_mix_body(10, 6), true},
      {"cheating", cheating_wakeup(2), false},
      {"backoff_counter", backoff_counter_wakeup(), true},
  };
}

// Runs the full pipeline for one (algorithm, n, S, seed) choice and checks
// the lemma.
void check_lemma(const ProcBody& body, int n, const ProcSet& s,
                 std::uint64_t toss_seed, const std::string& label) {
  const auto tosses = std::make_shared<SeededTossAssignment>(toss_seed);

  System all_sys(n, body, tosses);
  AdversaryOptions opts;
  opts.max_rounds = 4000;
  const RunLog all_log = run_adversary(all_sys, opts);
  ASSERT_TRUE(all_log.all_terminated) << label;
  const UpTracker up = UpTracker::over(all_log);

  System s_sys(n, body, tosses);
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);

  const IndistReport report =
      check_indistinguishability(all_log, s_log, up, s);
  EXPECT_TRUE(report.ok) << label << ": " << report.violations.front();
  EXPECT_GT(report.process_checks, 0u) << label;
}

class IndistSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IndistSweep, LemmaHoldsForSingletonAndRandomSubsets) {
  const int n = std::get<0>(GetParam());
  const int subject_idx = std::get<1>(GetParam());
  const Subject subject = subjects()[static_cast<std::size_t>(subject_idx)];

  Rng rng(static_cast<std::uint64_t>(n) * 31 +
          static_cast<std::uint64_t>(subject_idx));
  // Singleton subsets: S = {p}.
  for (ProcId p = 0; p < std::min(n, 3); ++p) {
    check_lemma(subject.body, n, ProcSet::singleton(n, p), 7,
                std::string(subject.name) + " singleton p" +
                    std::to_string(p));
  }
  // The full set (the (All,A)-run itself must replay exactly).
  check_lemma(subject.body, n, ProcSet::full(n), 7,
              std::string(subject.name) + " full");
  // Random subsets.
  for (int iter = 0; iter < 3; ++iter) {
    ProcSet s(n);
    for (ProcId p = 0; p < n; ++p) {
      if (rng.next_bool()) s.insert(p);
    }
    if (s.empty()) s.insert(0);
    check_lemma(subject.body, n, s, 100 + static_cast<std::uint64_t>(iter),
                std::string(subject.name) + " random subset");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IndistSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 13),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6)));

TEST(SRun, EmptySMeansNobodySteps) {
  // UP(p, 0) = {p} is never contained in the empty set, so no process is
  // ever scheduled: the (S,A)-run for S = {} is the empty run, and the
  // lemma holds vacuously for processes (registers stay at their initial
  // state in both runs only if nobody wrote them — which is precisely the
  // registers with UP(R, r) = {} ⊆ S).
  const int n = 5;
  System all_sys(n, tournament_wakeup());
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);
  System s_sys(n, tournament_wakeup());
  const RunLog s_log = run_s_run(s_sys, all_log, up, ProcSet(n));
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(s_sys.process(p).shared_ops(), 0u);
    EXPECT_EQ(s_sys.process(p).num_tosses(), 0u);
  }
  const IndistReport report =
      check_indistinguishability(all_log, s_log, up, ProcSet(n));
  EXPECT_TRUE(report.ok)
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.process_checks, 0u);
}

TEST(SRun, OnlyMembersOfSTakeSteps) {
  const int n = 8;
  System all_sys(n, tournament_wakeup());
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);
  const ProcSet s = ProcSet::of(n, {1, 4, 6});

  System s_sys(n, tournament_wakeup());
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);
  for (ProcId p = 0; p < n; ++p) {
    if (!s.contains(p)) {
      EXPECT_EQ(s_sys.process(p).shared_ops(), 0u)
          << "p" << p << " outside S took a step in the (S,A)-run";
      EXPECT_EQ(s_sys.process(p).num_tosses(), 0u);
    }
  }
}

TEST(SRun, FullSetReproducesAllRunExactly) {
  const int n = 6;
  const auto tosses = std::make_shared<SeededTossAssignment>(11);
  System all_sys(n, randomized_tournament_wakeup(), tosses);
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);

  System s_sys(n, randomized_tournament_wakeup(), tosses);
  const RunLog s_log = run_s_run(s_sys, all_log, up, ProcSet::full(n));

  ASSERT_EQ(s_log.num_rounds(), all_log.num_rounds());
  for (int r = 1; r <= all_log.num_rounds(); ++r) {
    const RoundRecord& a = all_log.rounds[static_cast<std::size_t>(r - 1)];
    const RoundRecord& b = s_log.rounds[static_cast<std::size_t>(r - 1)];
    ASSERT_EQ(a.ops.size(), b.ops.size()) << "round " << r;
    for (std::size_t i = 0; i < a.ops.size(); ++i) {
      EXPECT_EQ(a.ops[i].proc, b.ops[i].proc);
      EXPECT_EQ(a.ops[i].op.kind, b.ops[i].op.kind);
      EXPECT_EQ(a.ops[i].op.reg, b.ops[i].op.reg);
      EXPECT_EQ(a.ops[i].result.flag, b.ops[i].result.flag);
      EXPECT_EQ(a.ops[i].result.value, b.ops[i].result.value);
    }
  }
}

TEST(SRun, MoveGroupFollowsRestrictedSigma) {
  const int n = 10;
  System all_sys(n, swap_mix_wakeup());
  const RunLog all_log = run_adversary(all_sys);
  const UpTracker up = UpTracker::over(all_log);
  const ProcSet s = ProcSet::of(n, {0, 2, 3, 7, 9});

  System s_sys(n, swap_mix_wakeup());
  const RunLog s_log = run_s_run(s_sys, all_log, up, s);
  for (int r = 1; r <= s_log.num_rounds(); ++r) {
    const RoundRecord& srec = s_log.rounds[static_cast<std::size_t>(r - 1)];
    const RoundRecord& arec = all_log.rounds[static_cast<std::size_t>(r - 1)];
    // The S-run's sigma must be a subsequence of the All-run's.
    std::size_t ai = 0;
    for (const ProcId p : srec.sigma) {
      while (ai < arec.sigma.size() && arec.sigma[ai] != p) ++ai;
      ASSERT_LT(ai, arec.sigma.size())
          << "S-run mover p" << p << " not in sigma_" << r;
      ++ai;
    }
  }
}

}  // namespace
}  // namespace llsc
