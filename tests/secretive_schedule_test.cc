// Tests for sched/secretive_schedule.h: the Section 4 machinery.
// Lemma 4.1 (a secretive complete schedule always exists — the
// construction yields one) and Lemma 4.2 (restricting to any superset of
// a register's movers preserves its source) are checked on hand-crafted
// and randomly generated move sets.
#include "sched/secretive_schedule.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace llsc {
namespace {

TEST(MoveAnalysis, EmptyScheduleIsIdentity) {
  const MoveSet moves = {{0, 1, 2}};
  const MoveAnalysis a(moves, {});
  EXPECT_EQ(a.source(2), 2u);
  EXPECT_TRUE(a.movers(2).empty());
  EXPECT_TRUE(a.touched().empty());
}

TEST(MoveAnalysis, SingleMove) {
  const MoveSet moves = {{0, 1, 2}};  // p0: R1 -> R2
  const MoveAnalysis a(moves, {0});
  EXPECT_EQ(a.source(2), 1u);
  EXPECT_EQ(a.movers(2), (std::vector<ProcId>{0}));
  EXPECT_EQ(a.source(1), 1u);  // the source register itself is untouched
}

TEST(MoveAnalysis, ChainFollowsOrder) {
  // p0: R0->R1, p1: R1->R2. Scheduled 0 then 1: R2 gets R0's original.
  const MoveSet moves = {{0, 0, 1}, {1, 1, 2}};
  const MoveAnalysis forward(moves, {0, 1});
  EXPECT_EQ(forward.source(2), 0u);
  EXPECT_EQ(forward.movers(2), (std::vector<ProcId>{0, 1}));
  // Scheduled 1 then 0: R2 gets R1's original, R1 gets R0's.
  const MoveAnalysis backward(moves, {1, 0});
  EXPECT_EQ(backward.source(2), 1u);
  EXPECT_EQ(backward.movers(2), (std::vector<ProcId>{1}));
  EXPECT_EQ(backward.source(1), 0u);
}

TEST(MoveAnalysis, LaterMoveOverwrites) {
  // Both move into R5; the last one wins.
  const MoveSet moves = {{0, 1, 5}, {1, 2, 5}};
  const MoveAnalysis a(moves, {0, 1});
  EXPECT_EQ(a.source(5), 2u);
  EXPECT_EQ(a.movers(5), (std::vector<ProcId>{1}));
}

TEST(SecretiveSchedule, PaperChainExample) {
  // The Section 4 motivating example: p_i moves R_i into R_{i+1}. The
  // naive id order would give R_n the original value of R_0 with n movers;
  // a secretive schedule caps movers at 2 everywhere.
  const int n = 64;
  MoveSet moves;
  for (ProcId p = 0; p < n; ++p) {
    moves.push_back({p, static_cast<RegId>(p), static_cast<RegId>(p) + 1});
  }
  // Confirm the naive order is NOT secretive.
  std::vector<ProcId> naive;
  for (ProcId p = 0; p < n; ++p) naive.push_back(p);
  EXPECT_FALSE(is_secretive_complete(moves, naive));
  const MoveAnalysis bad(moves, naive);
  EXPECT_EQ(bad.movers(n).size(), static_cast<std::size_t>(n));

  // The constructed schedule is.
  const auto sigma = secretive_complete_schedule(moves);
  EXPECT_TRUE(is_secretive_complete(moves, sigma));
  // And matches the paper's even/odd intuition: each R_i receives the
  // original value of R_{i-1} or R_{i-2}.
  const MoveAnalysis good(moves, sigma);
  for (RegId r = 1; r <= static_cast<RegId>(n); ++r) {
    EXPECT_GE(good.source(r) + 2, r);
    EXPECT_LT(good.source(r), r);
  }
}

TEST(SecretiveSchedule, CycleHandled) {
  // p0: R0->R1, p1: R1->R0 — a two-cycle.
  const MoveSet moves = {{0, 0, 1}, {1, 1, 0}};
  const auto sigma = secretive_complete_schedule(moves);
  EXPECT_TRUE(is_secretive_complete(moves, sigma));
}

TEST(SecretiveSchedule, FanInManyToOne) {
  // Many processes all moving into the same register.
  MoveSet moves;
  for (ProcId p = 0; p < 20; ++p) {
    moves.push_back({p, static_cast<RegId>(100 + p), 7});
  }
  const auto sigma = secretive_complete_schedule(moves);
  ASSERT_TRUE(is_secretive_complete(moves, sigma));
  const MoveAnalysis a(moves, sigma);
  EXPECT_EQ(a.movers(7).size(), 1u);  // all sources fresh: closed with one
}

TEST(SecretiveSchedule, EmptyMoveSet) {
  EXPECT_TRUE(secretive_complete_schedule({}).empty());
  EXPECT_TRUE(is_secretive_complete({}, {}));
}

TEST(SecretiveSchedule, RestrictScheduleKeepsOrder) {
  const std::vector<ProcId> sigma = {4, 1, 3, 2};
  const std::unordered_set<ProcId> subset = {2, 1};
  EXPECT_EQ(restrict_schedule(sigma, subset), (std::vector<ProcId>{1, 2}));
}

TEST(SecretiveScheduleDeath, SelfMoveRejected) {
  const MoveSet moves = {{0, 3, 3}};
  EXPECT_DEATH(secretive_complete_schedule(moves), "self-move");
}

TEST(SecretiveScheduleDeath, DuplicateProcessRejected) {
  const MoveSet moves = {{0, 1, 2}, {0, 3, 4}};
  EXPECT_DEATH(secretive_complete_schedule(moves), "at most one");
}

// Random move-set generator: k processes, registers drawn from a small
// pool (heavy collision pressure), no self-moves.
MoveSet random_move_set(Rng& rng, int k, RegId pool) {
  MoveSet moves;
  for (ProcId p = 0; p < k; ++p) {
    const RegId src = rng.next_below(pool);
    RegId dst = rng.next_below(pool - 1);
    if (dst >= src) ++dst;
    moves.push_back({p, src, dst});
  }
  return moves;
}

class SecretivePropertyTest : public ::testing::TestWithParam<int> {};

// Lemma 4.1: the constructed schedule is always secretive and complete.
TEST_P(SecretivePropertyTest, ConstructionIsSecretiveComplete) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 100; ++iter) {
    const int k = 1 + static_cast<int>(rng.next_below(40));
    const RegId pool = 2 + rng.next_below(12);
    const MoveSet moves = random_move_set(rng, k, pool);
    const auto sigma = secretive_complete_schedule(moves);
    EXPECT_TRUE(is_secretive_complete(moves, sigma))
        << "k=" << k << " pool=" << pool << " iter=" << iter;
  }
}

// Lemma 4.2: for every touched register, restricting the schedule to any
// random superset of its movers preserves its source.
TEST_P(SecretivePropertyTest, RestrictionPreservesSources) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) ^ 0xABCD);
  for (int iter = 0; iter < 60; ++iter) {
    const int k = 2 + static_cast<int>(rng.next_below(30));
    const RegId pool = 2 + rng.next_below(10);
    const MoveSet moves = random_move_set(rng, k, pool);
    const auto sigma = secretive_complete_schedule(moves);
    const MoveAnalysis analysis(moves, sigma);
    for (const RegId r : analysis.touched()) {
      std::unordered_set<ProcId> subset;
      for (const ProcId p : analysis.movers(r)) subset.insert(p);
      // Pad the subset with random extra processes.
      for (const MoveOp& m : moves) {
        if (rng.next_bool()) subset.insert(m.proc);
      }
      EXPECT_TRUE(restriction_preserves_source(moves, sigma, subset, r))
          << "register " << r << " iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecretivePropertyTest,
                         ::testing::Values(1, 7, 13, 101, 9999));

}  // namespace
}  // namespace llsc
