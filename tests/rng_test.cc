// Tests for util/rng.h: determinism, uniformity sanity, helpers.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace llsc {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextInRespectsRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(rng.next_in(5, 5), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, RoughUniformity) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[static_cast<std::size_t>(rng.next_below(10))];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(12);
  Rng child = a.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(a.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Mix64, StatelessAndSpreading) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Low bits of consecutive inputs should decorrelate.
  std::set<std::uint64_t> low;
  for (std::uint64_t i = 0; i < 256; ++i) low.insert(mix64(i) & 0xFF);
  EXPECT_GT(low.size(), 150u);
}

TEST(Splitmix64, AdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

}  // namespace
}  // namespace llsc
