// Tests for the coroutine runtime: pending-step exposure, op/toss
// delivery, counters, SubTask nesting, toss assignments, System stepping.
#include <gtest/gtest.h>

#include "runtime/process.h"
#include "runtime/sub_task.h"
#include "runtime/system.h"
#include "runtime/toss.h"

namespace llsc {
namespace {

SimTask writer_body(ProcCtx ctx) {
  const Value old = co_await ctx.ll(0);
  (void)old;
  const ScResult sc = co_await ctx.sc(0, Value::of_u64(ctx.id() + 100));
  co_return Value::of_u64(sc.ok ? 1 : 0);
}

TEST(Runtime, PendingStepsVisibleToScheduler) {
  System sys(1, [](ProcCtx ctx, ProcId, int) { return writer_body(ctx); });
  Process& p = sys.process(0);
  EXPECT_EQ(p.step_kind(), StepKind::kNotStarted);
  sys.step(0);  // start: runs to the first suspension
  ASSERT_EQ(p.step_kind(), StepKind::kOp);
  EXPECT_EQ(p.pending_op().kind, OpKind::kLL);
  EXPECT_EQ(p.pending_op().reg, 0u);
  sys.step(0);  // execute the LL
  ASSERT_EQ(p.step_kind(), StepKind::kOp);
  EXPECT_EQ(p.pending_op().kind, OpKind::kSC);
  sys.step(0);  // execute the SC
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.result().as_u64(), 1u);
  EXPECT_EQ(p.shared_ops(), 2u);
  EXPECT_EQ(p.num_tosses(), 0u);
}

SimTask tosser_body(ProcCtx ctx) {
  const std::uint64_t a = co_await ctx.toss(10);
  const std::uint64_t b = co_await ctx.toss(10);
  const std::uint64_t raw = co_await ctx.toss(0);
  co_return Value::of_u64(a * 100 + b * 10 + (raw % 10));
}

TEST(Runtime, TossesServedFromAssignment) {
  auto table = std::make_shared<TableTossAssignment>();
  table->set(0, 0, 3);
  table->set(0, 1, 17);  // reduced mod 10 -> 7
  table->set(0, 2, 42);  // raw
  System sys(1, [](ProcCtx ctx, ProcId, int) { return tosser_body(ctx); },
             table);
  while (!sys.all_done()) sys.step(0);
  EXPECT_EQ(sys.process(0).result().as_u64(), 372u);
  EXPECT_EQ(sys.process(0).num_tosses(), 3u);
  EXPECT_EQ(sys.process(0).shared_ops(), 0u);
}

TEST(Runtime, AdvanceThroughTossesStopsAtOp) {
  SimTask (*body)(ProcCtx) = [](ProcCtx ctx) -> SimTask {
    (void)co_await ctx.toss(2);
    (void)co_await ctx.toss(2);
    (void)co_await ctx.ll(0);
    co_return Value::of_u64(0);
  };
  System sys(1, [body](ProcCtx ctx, ProcId, int) { return body(ctx); });
  const std::uint64_t served = sys.advance_through_tosses(0);
  EXPECT_EQ(served, 2u);
  EXPECT_EQ(sys.process(0).step_kind(), StepKind::kOp);
}

// A nested helper that performs two operations.
SubTask<Value> nested_two_ops(ProcCtx ctx, RegId r) {
  (void)co_await ctx.ll(r);
  const ScResult sc = co_await ctx.sc(r, Value::of_u64(7));
  co_return Value::of_u64(sc.ok ? 7 : 0);
}

// Doubly nested: calls nested_two_ops twice.
SubTask<Value> nested_outer(ProcCtx ctx) {
  const Value a = co_await nested_two_ops(ctx, 1);
  const Value b = co_await nested_two_ops(ctx, 2);
  co_return Value::of_u64(a.as_u64() + b.as_u64());
}

SimTask nesting_body(ProcCtx ctx) {
  const Value v = co_await nested_outer(ctx);
  (void)co_await ctx.validate(1);
  co_return v;
}

TEST(Runtime, SubTaskNestingSuspendsPerOperation) {
  System sys(1, [](ProcCtx ctx, ProcId, int) { return nesting_body(ctx); });
  int op_steps = 0;
  sys.step(0);  // start
  while (!sys.all_done()) {
    ASSERT_EQ(sys.process(0).step_kind(), StepKind::kOp);
    sys.step(0);
    ++op_steps;
  }
  EXPECT_EQ(op_steps, 5);  // 2 + 2 nested + 1 top-level validate
  EXPECT_EQ(sys.process(0).result().as_u64(), 14u);
  EXPECT_EQ(sys.process(0).shared_ops(), 5u);
}

TEST(Runtime, SeededAssignmentIsPure) {
  SeededTossAssignment a(99), b(99);
  for (ProcId p = 0; p < 4; ++p) {
    for (std::uint64_t j = 0; j < 10; ++j) {
      EXPECT_EQ(a.outcome(p, j), b.outcome(p, j));
    }
  }
  EXPECT_NE(a.outcome(0, 0), a.outcome(0, 1));
  EXPECT_NE(a.outcome(0, 0), a.outcome(1, 0));
  SeededTossAssignment c(100);
  EXPECT_NE(a.outcome(0, 0), c.outcome(0, 0));
}

TEST(Runtime, SystemTracksTraceAndClock) {
  System sys(2, [](ProcCtx ctx, ProcId, int) { return writer_body(ctx); });
  while (!sys.all_done()) {
    for (ProcId p = 0; p < 2; ++p) {
      if (!sys.process(p).done()) sys.step(p);
    }
  }
  // p0: LL, SC(success). p1: LL, SC — p1's SC fails (p0's SC cleared the
  // Pset), so p1 retries nothing (writer_body returns 0 on failure).
  EXPECT_EQ(sys.trace().size(), 4u);
  EXPECT_EQ(sys.process(0).result().as_u64(), 1u);
  EXPECT_EQ(sys.process(1).result().as_u64(), 0u);
  EXPECT_GT(sys.first_event(0), 0u);
  EXPECT_GT(sys.completion_event(1), sys.first_event(1));
}

TEST(Runtime, RecordingCanBeDisabled) {
  System sys(1, [](ProcCtx ctx, ProcId, int) { return writer_body(ctx); });
  sys.set_recording(false);
  while (!sys.all_done()) sys.step(0);
  EXPECT_TRUE(sys.trace().empty());
  EXPECT_EQ(sys.total_shared_ops(), 2u);
}

TEST(RuntimeDeath, SelfMoveRejected) {
  SimTask (*body)(ProcCtx) = [](ProcCtx ctx) -> SimTask {
    co_await ctx.move(3, 3);
    co_return Value{};
  };
  System sys(1, [body](ProcCtx ctx, ProcId, int) { return body(ctx); });
  EXPECT_DEATH(sys.step(0), "move");
}

}  // namespace
}  // namespace llsc
