// Tests for the universal constructions: correctness of implemented
// objects under many schedulers, the worst-case shared-op bounds (O(log n)
// for Group-Update, O(n) for the single-register baseline), and the
// obliviousness contract (any type runs through the same code).
#include <gtest/gtest.h>

#include <memory>

#include "objects/arith.h"
#include "objects/containers.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "util/str.h"

namespace llsc {
namespace {

// Each process performs `ops` fetch&increment operations and returns the
// sum of responses it saw.
SimTask fai_worker(ProcCtx ctx, UniversalConstruction* uc, int ops) {
  std::uint64_t sum = 0;
  for (int k = 0; k < ops; ++k) {
    // Hoisted: braced temporaries may not appear in co_await expressions
    // (GCC 12 workaround; see runtime/sub_task.h).
    ObjOp op{"fetch&increment", {}};
    const Value r = co_await uc->execute(ctx, std::move(op));
    sum += r.as_u64();
  }
  co_return Value::of_u64(sum);
}

std::unique_ptr<UniversalConstruction> make_uc(bool group, int n,
                                               ObjectFactory factory) {
  if (group) return std::make_unique<GroupUpdateUC>(n, std::move(factory));
  return std::make_unique<SingleRegisterUC>(n, std::move(factory));
}

class UniversalSweep
    : public ::testing::TestWithParam<std::tuple<bool, int, int, int>> {};

TEST_P(UniversalSweep, FetchIncrementCountsEveryOperationExactlyOnce) {
  const bool group = std::get<0>(GetParam());
  const int n = std::get<1>(GetParam());
  const int ops = std::get<2>(GetParam());
  const int sched_kind = std::get<3>(GetParam());

  auto uc = make_uc(group, n, [] {
    return std::make_unique<FetchAddObject>(64, 0);
  });
  System sys(n, [&uc, ops](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, uc.get(), ops);
  });

  std::unique_ptr<Scheduler> sched;
  switch (sched_kind) {
    case 0:
      sched = std::make_unique<RoundRobinScheduler>();
      break;
    case 1:
      sched = std::make_unique<SequentialScheduler>();
      break;
    default:
      sched = std::make_unique<RandomScheduler>(
          static_cast<std::uint64_t>(n * 1000 + ops));
      break;
  }
  const RunOutcome out = sched->run(sys, 1 << 24);
  ASSERT_TRUE(out.all_terminated);

  // A correct fetch&increment hands out each value 0..n*ops-1 exactly
  // once; the responses across all processes must sum to the triangular
  // number regardless of distribution.
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  const std::uint64_t count = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(total, count * (count - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniversalSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 3), ::testing::Values(0, 1, 2)));

TEST(GroupUpdate, WorstCaseOpsIsLogarithmic) {
  for (const int n : {2, 4, 16, 64, 256, 1024}) {
    GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
    // 1 announce + 8 per level + 1 response read.
    const std::uint64_t height = ceil_log2(static_cast<std::size_t>(n)) == 0
                                     ? 1
                                     : ceil_log2(static_cast<std::size_t>(n));
    EXPECT_EQ(uc.worst_case_shared_ops(), 2 + 8 * height) << "n=" << n;
  }
}

TEST(SingleRegister, WorstCaseOpsIsLinear) {
  for (const int n : {1, 4, 64, 1024}) {
    SingleRegisterUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
    EXPECT_EQ(uc.worst_case_shared_ops(),
              2 * static_cast<std::uint64_t>(n) + 6);
  }
}

TEST(GroupUpdate, MeasuredOpsNeverExceedWorstCase) {
  const int n = 8;
  GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 2);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(sys.process(p).shared_ops(), 2 * uc.worst_case_shared_ops())
        << "p" << p;
  }
}

TEST(SingleRegister, MeasuredOpsNeverExceedWorstCase) {
  const int n = 6;
  SingleRegisterUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 2);
  });
  RandomScheduler sched(99);
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(sys.process(p).shared_ops(), 2 * uc.worst_case_shared_ops());
  }
}

// Obliviousness: the same construction code implements a queue without
// any queue-specific logic — instantiate with the queue spec and check
// FIFO semantics end to end.
SimTask queue_worker(ProcCtx ctx, UniversalConstruction* uc) {
  ObjOp enq{"enqueue",
            Value::of_u64(static_cast<std::uint64_t>(ctx.id()))};
  co_await uc->execute(ctx, std::move(enq));
  ObjOp deq{"dequeue", {}};
  const Value r = co_await uc->execute(ctx, std::move(deq));
  co_return r;
}

TEST(GroupUpdate, ImplementsQueueObliviously) {
  const int n = 5;
  GroupUpdateUC uc(n, [] { return std::make_unique<QueueObject>(); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return queue_worker(ctx, &uc);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  // n enqueues and n dequeues: every enqueued id is dequeued exactly once.
  std::set<std::uint64_t> seen;
  for (ProcId p = 0; p < n; ++p) {
    const Value& r = sys.process(p).result();
    ASSERT_TRUE(r.holds_u64());
    EXPECT_TRUE(seen.insert(r.as_u64()).second);
    EXPECT_LT(r.as_u64(), static_cast<std::uint64_t>(n));
  }
}

TEST(GroupUpdate, SingleProcessSequentialSemantics) {
  GroupUpdateUC uc(1, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(1, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 10);
  });
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated);
  EXPECT_EQ(sys.process(0).result().as_u64(), 45u);  // 0+1+...+9
}

TEST(GroupUpdate, PruningBoundsAnnounceSetsAndStaysCorrect) {
  const int n = 4;
  const int ops = 12;
  GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64); },
                   /*base=*/0, /*prune_interval=*/2);
  System sys(n, [&uc, ops](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, ops);
  });
  RandomScheduler sched(321);
  ASSERT_TRUE(sched.run(sys, 1 << 24).all_terminated);
  // Exactness: all n*ops increments handed out exactly once.
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  const std::uint64_t count = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(total, count * (count - 1) / 2);
  // Announce sets stayed near the prune threshold instead of growing to
  // `ops` entries.
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(uc.announced_ops(p), 3u) << "p" << p;
  }
  // The extra root read stays within the (pruning-adjusted) bound.
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_LE(sys.process(p).shared_ops(),
              static_cast<std::uint64_t>(ops) * uc.worst_case_shared_ops());
  }
}

TEST(UniversalConstructions, ResponsesAreMonotoneUnderContention) {
  // Regression guard for the helping argument: with heavy interleaving,
  // every process still gets a response for every op (no lost updates).
  const int n = 8;
  GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64); });
  System sys(n, [&uc](ProcCtx ctx, ProcId, int) {
    return fai_worker(ctx, &uc, 3);
  });
  RandomScheduler sched(12345);
  const RunOutcome out = sched.run(sys, 1 << 24);
  ASSERT_TRUE(out.all_terminated);
  std::uint64_t total = 0;
  for (ProcId p = 0; p < n; ++p) total += sys.process(p).result().as_u64();
  EXPECT_EQ(total, 24u * 23u / 2u);
}

}  // namespace
}  // namespace llsc
