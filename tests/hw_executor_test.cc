// HwExecutor: whole algorithms on real threads — wakeup correctness under
// hardware interleavings, universal-construction exactness, toss parity
// with the simulator, and the hw-vs-sim workload harness.
#include "hw/hw_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "hw/fault_scenarios.h"
#include "objects/arith.h"
#include "runtime/system.h"
#include "sched/scheduler.h"
#include "universal/group_update.h"
#include "universal/single_register.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

HwRunOptions with_seed(std::uint64_t seed) {
  HwRunOptions opts;
  opts.seed = seed;
  return opts;
}

// Five bounded tosses folded into a value — a pure function of the toss
// assignment, so it must agree across platforms and across runs.
SimTask toss_sum_body(ProcCtx ctx) {
  std::uint64_t sum = 0;
  for (int k = 0; k < 5; ++k) {
    const std::uint64_t t = co_await ctx.toss(100);
    sum = sum * 101 + t;
  }
  co_return Value::of_u64(sum);
}

TEST(HwExecutorTest, TournamentWakeupSatisfiesSpecOnThreads) {
  // The tournament's guarantee is schedule-independent: in EVERY execution
  // at least one process returns 1 — including the OS's interleavings.
  for (const int n : {2, 4, 8}) {
    for (int rep = 0; rep < 5; ++rep) {
      HwExecutor exec(with_seed(static_cast<std::uint64_t>(rep)));
      const HwRunResult run = exec.run(n, tournament_wakeup());
      ASSERT_TRUE(run.ok);
      int ones = 0;
      for (const Value& v : run.results) {
        ASSERT_TRUE(v.holds_u64());
        ASSERT_LE(v.as_u64(), 1u);
        ones += static_cast<int>(v.as_u64());
      }
      EXPECT_GE(ones, 1) << "n=" << n << " rep=" << rep;
      EXPECT_GT(run.max_shared_ops, 0u);
    }
  }
}

TEST(HwExecutorTest, RandomizedWakeupRunsOnThreads) {
  HwExecutor exec(with_seed(3));
  const HwRunResult run = exec.run(4, randomized_tournament_wakeup());
  ASSERT_TRUE(run.ok);
  int ones = 0;
  for (const Value& v : run.results) ones += static_cast<int>(v.as_u64());
  EXPECT_GE(ones, 1);
  // The randomized variant actually tossed coins.
  std::uint64_t tosses = 0;
  for (const std::uint64_t t : run.num_tosses) tosses += t;
  EXPECT_GT(tosses, 0u);
}

TEST(HwExecutorTest, TossOutcomesMatchSimulatorExactly) {
  const int n = 3;
  const std::uint64_t seed = 99;
  const ProcBody body = [](ProcCtx ctx, ProcId, int) {
    return toss_sum_body(ctx);
  };
  HwExecutor exec(with_seed(seed));
  const HwRunResult hw = exec.run(n, body);
  ASSERT_TRUE(hw.ok);

  // Same seed, same pure outcome function — the per-process results on
  // real threads must equal the simulator's, toss for toss.
  System sys(n, body, std::make_shared<SeededTossAssignment>(seed));
  RoundRobinScheduler sched;
  ASSERT_TRUE(sched.run(sys, 1 << 20).all_terminated);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(hw.results[static_cast<std::size_t>(p)],
              sys.process(p).result())
        << "p=" << p;
    EXPECT_EQ(hw.num_tosses[static_cast<std::size_t>(p)], 5u);
  }

  // And a second hw run replays identically (interleaving-independent).
  HwExecutor exec2(with_seed(seed));
  const HwRunResult hw2 = exec2.run(n, body);
  EXPECT_EQ(hw.results, hw2.results);
}

TEST(HwExecutorTest, GroupUpdateFetchIncrementIsExactOnThreads) {
  const int n = 4;
  const int ops = 8;
  GroupUpdateUC uc(n, [] { return std::make_unique<FetchAddObject>(64, 0); });
  HwExecutor exec;
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  const UcThroughput t = run_uc_on_hw(exec, uc, n, ops, make_op);
  // n*ops distinct counter values 0..31 — their sum is invariant under any
  // linearization, so lost or duplicated operations are detected exactly.
  const std::uint64_t total = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(t.total_uc_ops, total);
  EXPECT_EQ(t.response_sum, total * (total - 1) / 2);
  EXPECT_EQ(t.latencies_ns.size(), total);
  EXPECT_LE(t.latency_p50_ns, t.latency_p99_ns);
  EXPECT_GT(t.ops_per_second, 0.0);
  // Wait-freedom carried over to metal: nobody exceeded the analytic
  // worst case.
  EXPECT_LE(t.shared_ops_per_uc_op,
            static_cast<double>(uc.worst_case_shared_ops()));
}

TEST(HwExecutorTest, SingleRegisterUcOnThreads) {
  const int n = 4;
  const int ops = 4;
  SingleRegisterUC uc(n, [] { return std::make_unique<FetchAddObject>(64, 0); });
  HwExecutor exec;
  const UcThroughput t = run_uc_on_hw(
      exec, uc, n, ops, [](ProcId, int) {
        return ObjOp{"fetch&increment", {}};
      });
  const std::uint64_t total = static_cast<std::uint64_t>(n) * ops;
  EXPECT_EQ(t.response_sum, total * (total - 1) / 2);
}

TEST(HwExecutorTest, SimulatorColumnMatchesHwResponses) {
  const int n = 4;
  const int ops = 4;
  const UcOpFactory make_op = [](ProcId, int) {
    return ObjOp{"fetch&increment", {}};
  };
  GroupUpdateUC hw_uc(n, [] { return std::make_unique<FetchAddObject>(64, 0); });
  HwExecutor exec;
  const UcThroughput hw = run_uc_on_hw(exec, hw_uc, n, ops, make_op);

  GroupUpdateUC sim_uc(n, [] { return std::make_unique<FetchAddObject>(64, 0); });
  const UcThroughput sim = run_uc_on_simulator(sim_uc, n, ops, make_op);
  // Different interleavings, same object: the multiset of responses (and
  // hence the sum) is forced by fetch&increment's semantics.
  EXPECT_EQ(hw.response_sum, sim.response_sum);
  EXPECT_EQ(sim.total_uc_ops, hw.total_uc_ops);
  EXPECT_GT(sim.max_shared_ops, 0u);
}

// A present-but-disabled fault plan (all rates zero, no crashes) must be
// indistinguishable from no plan at all: same clean taxonomy, same
// schedule-independent per-process op counts, zero decision counters.
TEST(HwExecutorTest, DisabledFaultPlanLeavesRunsUnchanged) {
  const int n = 4;
  const ProcBody algo = fault_scenario("fixed_swap");  // 8 ops/process
  HwExecutor plain;
  const HwRunResult baseline = plain.run(n, algo);

  FaultPlan disabled;  // enabled() == false
  HwRunOptions options;
  options.fault = &disabled;
  HwExecutor gated(options);
  const HwRunResult r = gated.run(n, algo);

  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.shared_ops, baseline.shared_ops);
  EXPECT_EQ(r.fault.ops, 0u);
  EXPECT_EQ(r.fault.injected_sc_failures, 0u);
  EXPECT_EQ(r.fault.crashes, 0u);
}

TEST(HwExecutorTest, ProgressWatchdogCancelsStagnantRun) {
  // Workers that keep taking steps but stop advancing: a certain stall on
  // every op, long enough (minutes of wall clock) that the run can only
  // end through the progress watchdog. Stalls checkpoint cancellation
  // every unit, so the cancel lands promptly once stagnation is detected.
  // Deadlines are tight (tens of ms) to keep the test fast, hence scaled
  // for sanitized CI jobs (LLSC_TIMEOUT_SCALE=4 under TSan).
  const int n = 2;
  FaultPlan plan;
  plan.seed = 1;
  plan.stall_rate = 1.0;
  plan.max_stall_units = 1u << 20;
  plan.stall_unit_ns = 1000 * 1000;  // 1 ms per unit, ~17 min max stall
  HwRunOptions options;
  options.fault = &plan;
  options.progress_timeout_ms = scale_timeout_ms(50);
  options.timeout_ms = scale_timeout_ms(5000);  // backstop only
  options.watchdog_poll_ms = 2;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, fault_scenario("fixed_swap"));
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.hung_procs, n);
}

}  // namespace
}  // namespace llsc
