// Seeded fuzzing of the lower-bound machinery: many random configurations
// (process counts, op mixes, toss assignments, subsets) pushed through the
// full pipeline, checking every invariant the paper's argument rests on:
//
//   * the adversary's structural facts (one op per live process per round,
//     at most one successful SC per register per round);
//   * Lemma 4.1 on every round's move schedule;
//   * Lemma 5.1 on the whole run;
//   * Lemma 5.2 for random subsets;
//   * Claims A.4/A.5 as run properties.
//
// Each configuration is derived deterministically from a seed, so any
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "hw/fault.h"
#include "hw/fault_scenarios.h"
#include "objects/leader.h"
#include "runtime/toss.h"
#include "sched/scheduler.h"
#include "util/rng.h"
#include "wakeup/algorithms.h"
#include "wakeup/reductions.h"

namespace llsc {
namespace {

struct FuzzConfig {
  int n;
  int steps;
  RegId regs;
  std::uint64_t toss_seed;
};

FuzzConfig config_from(Rng& rng) {
  return FuzzConfig{
      .n = 2 + static_cast<int>(rng.next_below(14)),
      .steps = 4 + static_cast<int>(rng.next_below(16)),
      .regs = 2 + rng.next_below(7),
      .toss_seed = rng.next_u64(),
  };
}

void check_structure(const RunLog& log) {
  for (const RoundRecord& rec : log.rounds) {
    std::set<ProcId> steppers;
    std::map<RegId, int> sc_successes;
    for (const OpRecord& op : rec.ops) {
      EXPECT_TRUE(steppers.insert(op.proc).second)
          << "p" << op.proc << " stepped twice in round " << rec.round;
      if (op.op.kind == OpKind::kSC && op.result.flag) {
        EXPECT_LE(++sc_successes[op.op.reg], 1)
            << "two successful SCs on R" << op.op.reg << " in round "
            << rec.round;
      }
    }
    if (!rec.move_set.empty()) {
      EXPECT_TRUE(is_secretive_complete(rec.move_set, rec.sigma))
          << "round " << rec.round;
    }
  }
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomMixesUpholdEveryInvariant) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 12; ++iter) {
    const FuzzConfig cfg = config_from(rng);
    const ProcBody body = random_mix_body(cfg.steps, cfg.regs);
    const auto tosses =
        std::make_shared<SeededTossAssignment>(cfg.toss_seed);

    System all_sys(cfg.n, body, tosses);
    const RunLog all_log = run_adversary(all_sys);
    ASSERT_TRUE(all_log.all_terminated);
    check_structure(all_log);

    const UpTracker up = UpTracker::over(all_log);
    EXPECT_TRUE(up.lemma51_holds()) << "seed iter " << iter;

    // Claims A.4/A.5.
    for (const RoundRecord& rec : all_log.rounds) {
      for (const OpRecord& op : rec.ops) {
        if (op.op.kind != OpKind::kSC) continue;
        if (op.result.flag) {
          EXPECT_TRUE(up.up_register(op.op.reg, rec.round - 1)
                          .subset_of(up.up_register(op.op.reg, rec.round)));
        }
        EXPECT_TRUE(up.up_register(op.op.reg, rec.round)
                        .subset_of(up.up_process(op.proc, rec.round)));
      }
    }

    // Lemma 5.2 for two random subsets per configuration.
    for (int sub = 0; sub < 2; ++sub) {
      ProcSet s(cfg.n);
      for (ProcId p = 0; p < cfg.n; ++p) {
        if (rng.next_bool()) s.insert(p);
      }
      if (s.empty()) s.insert(0);
      System s_sys(cfg.n, body, tosses);
      const RunLog s_log = run_s_run(s_sys, all_log, up, s);
      const IndistReport report =
          check_indistinguishability(all_log, s_log, up, s);
      EXPECT_TRUE(report.ok)
          << "iter " << iter << " subset " << s.to_string() << ": "
          << report.violations.front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(0x1111u, 0x2222u, 0x3333u,
                                           0x4444u, 0x5555u, 0x6666u,
                                           0x7777u, 0x8888u));

// --- object-protocol property fuzzer -------------------------------------
//
// Random (seed, n, scheduler, storage policy, fault plan) tuples pushed
// through the strict TAS, leader election, and every problem reduction,
// checking the two properties the protocols promise UNCONDITIONALLY:
//
//   * never two TAS winners — on any run, completed or not, under
//     spurious SC/VL failures (oblivious, burst, or adaptive placement)
//     and amnesiac crash-rejoins;
//   * never zero winners / zero agreed leaders on COMPLETED runs.
//
// On a violation the harness shrinks the case — smaller n first, then a
// simpler fault plan, keeping every step that still fails — and freezes
// the shrunk case as a replayable FaultArtifact JSON (the strict bodies
// are registered scenario names, so tools/replay_fault.py can feed the
// file back verbatim).

enum class FuzzKind { kTasLike, kLeader };

struct ObjectFuzzCase {
  int n = 2;
  std::uint64_t toss_seed = 0;
  int scheduler = 0;  // 0 round-robin, 1 random, 2 sequential
  StoragePolicy storage = StoragePolicy::kBoxed;
  FaultPlan plan;
};

ProcBody body_for(const std::string& name) {
  const ProcBody registered = fault_scenario(name);
  if (registered) return registered;
  return problem_reduction_body(name);
}

FuzzKind kind_for(const std::string& name) {
  return name == "leader_strict" || name == "leader_from_tas"
             ? FuzzKind::kLeader
             : FuzzKind::kTasLike;
}

struct ObjectFuzzOutcome {
  bool completed = false;
  bool violated = false;
  std::string why;
  RunStatus status = RunStatus::kClean;
  std::vector<std::uint64_t> proc_ops;
};

constexpr std::uint64_t kObjectFuzzBudget = 1 << 22;

ObjectFuzzOutcome run_object_case(const std::string& name,
                                  const ObjectFuzzCase& c) {
  const ProcBody body = body_for(name);
  auto tosses = std::make_shared<SeededTossAssignment>(c.toss_seed);
  System sys(c.n, body, tosses);
  sys.memory().set_storage_policy(c.storage);
  FaultInjector injector(c.plan, c.n);
  sys.set_fault_injector(&injector);

  bool all_terminated = false;
  if (c.scheduler == 0) {
    RoundRobinScheduler sched;
    all_terminated = sched.run(sys, kObjectFuzzBudget).all_terminated;
  } else if (c.scheduler == 1) {
    RandomScheduler sched(c.toss_seed ^ 0xF022u);
    all_terminated = sched.run(sys, kObjectFuzzBudget).all_terminated;
  } else {
    SequentialScheduler sched;
    all_terminated = sched.run(sys, kObjectFuzzBudget).all_terminated;
  }

  ObjectFuzzOutcome out;
  out.completed = all_terminated;
  out.status = all_terminated ? RunStatus::kClean : RunStatus::kHung;
  for (ProcId p = 0; p < c.n; ++p) {
    out.proc_ops.push_back(sys.process(p).shared_ops());
  }

  if (kind_for(name) == FuzzKind::kTasLike) {
    int winners = 0;
    for (ProcId p = 0; p < c.n; ++p) {
      const Process& proc = sys.process(p);
      if (proc.done() && proc.result().holds_u64() &&
          proc.result().as_u64() == 1) {
        ++winners;
      }
    }
    if (winners > 1) {
      out.violated = true;
      out.why = std::to_string(winners) + " TAS winners";
    } else if (all_terminated && winners == 0) {
      out.violated = true;
      out.why = "completed run with zero TAS winners";
    }
  } else {
    // Leader bodies return ids; the checker's agreement/claim conditions
    // are safe on partial runs (it only inspects done processes).
    const LeaderCheckResult res = check_leader_run(sys);
    if (!res.ok) {
      out.violated = true;
      out.why = res.summary();
    } else if (all_terminated && res.leader == -1) {
      out.violated = true;
      out.why = "completed run elected zero leaders";
    }
  }
  if (out.violated && all_terminated) out.status = RunStatus::kSpecViolation;
  return out;
}

// Greedy shrink: each simplification is kept only if the case still
// violates. Order: fewer processes, then drop crashes, strategy, rates.
ObjectFuzzCase shrink_case(const std::string& name, ObjectFuzzCase c) {
  while (c.n > 1) {
    ObjectFuzzCase t = c;
    t.n = c.n - 1;
    if (!run_object_case(name, t).violated) break;
    c = t;
  }
  {
    ObjectFuzzCase t = c;
    t.plan.crashes.clear();
    if (run_object_case(name, t).violated) c = t;
  }
  {
    ObjectFuzzCase t = c;
    t.plan.strategy = FaultStrategyKind::kOblivious;
    t.plan.fault_budget = 0;
    t.plan.burst_len = 0;
    t.plan.burst_period = 0;
    if (run_object_case(name, t).violated) c = t;
  }
  {
    ObjectFuzzCase t = c;
    t.plan.sc_fail_rate = 0.0;
    t.plan.vl_fail_rate = 0.0;
    if (run_object_case(name, t).violated) c = t;
  }
  return c;
}

std::string freeze_artifact(const std::string& name, const ObjectFuzzCase& c,
                            const ObjectFuzzOutcome& out) {
  FaultArtifact art;
  art.scenario = fault_scenario(name) ? name : "custom";
  art.n = c.n;
  art.toss_seed = c.toss_seed;
  art.max_rounds = static_cast<int>(kObjectFuzzBudget);
  art.status = out.status;
  art.proc_ops = out.proc_ops;
  art.plan = c.plan;
  art.storage = c.storage;
  const std::string path = ::testing::TempDir() + "object_fuzz_" + name +
                           "_n" + std::to_string(c.n) + ".json";
  std::ofstream f(path);
  f << art.to_json() << "\n";
  return path;
}

ObjectFuzzCase object_case_from(Rng& rng) {
  ObjectFuzzCase c;
  c.n = 2 + static_cast<int>(rng.next_below(8));
  c.toss_seed = rng.next_u64();
  c.scheduler = static_cast<int>(rng.next_below(3));
  c.storage = rng.next_bool() ? StoragePolicy::kBoxed : StoragePolicy::kInline;
  c.plan.seed = rng.next_u64();
  switch (rng.next_below(4)) {
    case 0:
      break;  // fault-free
    case 1:
      c.plan.sc_fail_rate = 0.1 + 0.5 * rng.next_double();
      if (rng.next_bool()) c.plan.vl_fail_rate = 0.3 * rng.next_double();
      break;
    case 2:
      c.plan.strategy = FaultStrategyKind::kBurst;
      c.plan.burst_len = 1 + static_cast<std::uint32_t>(rng.next_below(2));
      c.plan.burst_period =
          c.plan.burst_len + 1 +
          static_cast<std::uint32_t>(rng.next_below(4));
      break;
    default:
      c.plan.strategy = FaultStrategyKind::kAdaptive;
      c.plan.fault_budget = 1 + rng.next_below(6);
      break;
  }
  if (rng.next_below(3) == 0) {
    CrashSpec crash;
    crash.proc = static_cast<ProcId>(rng.next_below(c.n));
    crash.after_ops = 1 + rng.next_below(10);
    crash.recovery.max_restarts = 1;
    crash.recovery.delay_units = 1 + rng.next_below(3);
    crash.recovery.amnesia = rng.next_bool();
    c.plan.crashes.push_back(crash);
    // The sequential scheduler runs one process to completion at a time
    // and cannot drive a crash-rejoin interleaving; fall back.
    if (c.scheduler == 2) c.scheduler = 0;
  }
  return c;
}

class ObjectFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectFuzzSweep, NeverTwoWinnersNeverZeroLeaders) {
  static const char* const kBodies[] = {
      "tas_strict",      "leader_strict",
      "tas_from_leader", "leader_from_tas",
      "tas_from_wakeup", "single_winner_wakeup_from_tas"};
  Rng rng(GetParam());
  for (int iter = 0; iter < 8; ++iter) {
    const ObjectFuzzCase c = object_case_from(rng);
    for (const char* name : kBodies) {
      const ObjectFuzzOutcome out = run_object_case(name, c);
      if (!out.violated) continue;
      const ObjectFuzzCase small = shrink_case(name, c);
      const ObjectFuzzOutcome small_out = run_object_case(name, small);
      const std::string path = freeze_artifact(
          name, small_out.violated ? small : c,
          small_out.violated ? small_out : out);
      ADD_FAILURE() << name << ": " << out.why
                    << " (shrunk artifact: " << path << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectFuzzSweep,
                         ::testing::Values(0xAAAAu, 0xBBBBu, 0xCCCCu,
                                           0xDDDDu));

// The shrinker/artifact path itself, exercised with a deliberately broken
// "protocol" (everyone returns 1): the harness must flag it, shrink it to
// n = 1, and freeze a JSON artifact that parses back.
TEST(ObjectFuzzHarness, ShrinksAndFreezesABrokenProtocol) {
  ObjectFuzzCase c;
  c.n = 6;
  c.toss_seed = 77;
  c.plan.seed = 88;
  c.plan.sc_fail_rate = 0.25;

  // "Violation" here is the zero-winner arm: a body that returns 0 for
  // everyone completes with no winner at every n, so the shrinker's n-loop
  // can walk all the way down. Use the registered counter scenario shape
  // via a direct run to keep body_for()'s registry contract intact.
  const auto run_broken = [&](const ObjectFuzzCase& cc) {
    System sys(cc.n, [](ProcCtx ctx, ProcId, int) {
      return [](ProcCtx ctx) -> SimTask {
        (void)co_await ctx.read(0);
        co_return Value::of_u64(0);
      }(ctx);
    });
    RoundRobinScheduler sched;
    EXPECT_TRUE(sched.run(sys, 1000).all_terminated);
    int winners = 0;
    for (ProcId p = 0; p < cc.n; ++p) {
      if (sys.process(p).result().holds_u64() &&
          sys.process(p).result().as_u64() == 1) {
        ++winners;
      }
    }
    return winners == 0;
  };
  ASSERT_TRUE(run_broken(c));

  ObjectFuzzCase small = c;
  while (small.n > 1) {
    ObjectFuzzCase t = small;
    t.n = small.n - 1;
    if (!run_broken(t)) break;
    small = t;
  }
  EXPECT_EQ(small.n, 1);

  ObjectFuzzOutcome out;
  out.completed = true;
  out.violated = true;
  out.status = RunStatus::kSpecViolation;
  out.proc_ops = {1};
  const std::string path = freeze_artifact("custom-broken", small, out);

  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << path;
  std::stringstream buf;
  buf << f.rdbuf();
  FaultArtifact parsed;
  std::string error;
  ASSERT_TRUE(FaultArtifact::from_json(buf.str(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.scenario, "custom");
  EXPECT_EQ(parsed.n, 1);
  EXPECT_EQ(parsed.status, RunStatus::kSpecViolation);
  EXPECT_DOUBLE_EQ(parsed.plan.sc_fail_rate, 0.25);
}

}  // namespace
}  // namespace llsc
