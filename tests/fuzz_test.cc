// Seeded fuzzing of the lower-bound machinery: many random configurations
// (process counts, op mixes, toss assignments, subsets) pushed through the
// full pipeline, checking every invariant the paper's argument rests on:
//
//   * the adversary's structural facts (one op per live process per round,
//     at most one successful SC per register per round);
//   * Lemma 4.1 on every round's move schedule;
//   * Lemma 5.1 on the whole run;
//   * Lemma 5.2 for random subsets;
//   * Claims A.4/A.5 as run properties.
//
// Each configuration is derived deterministically from a seed, so any
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/adversary.h"
#include "core/indistinguishability.h"
#include "core/s_run.h"
#include "core/up_tracker.h"
#include "runtime/toss.h"
#include "util/rng.h"
#include "wakeup/algorithms.h"

namespace llsc {
namespace {

struct FuzzConfig {
  int n;
  int steps;
  RegId regs;
  std::uint64_t toss_seed;
};

FuzzConfig config_from(Rng& rng) {
  return FuzzConfig{
      .n = 2 + static_cast<int>(rng.next_below(14)),
      .steps = 4 + static_cast<int>(rng.next_below(16)),
      .regs = 2 + rng.next_below(7),
      .toss_seed = rng.next_u64(),
  };
}

void check_structure(const RunLog& log) {
  for (const RoundRecord& rec : log.rounds) {
    std::set<ProcId> steppers;
    std::map<RegId, int> sc_successes;
    for (const OpRecord& op : rec.ops) {
      EXPECT_TRUE(steppers.insert(op.proc).second)
          << "p" << op.proc << " stepped twice in round " << rec.round;
      if (op.op.kind == OpKind::kSC && op.result.flag) {
        EXPECT_LE(++sc_successes[op.op.reg], 1)
            << "two successful SCs on R" << op.op.reg << " in round "
            << rec.round;
      }
    }
    if (!rec.move_set.empty()) {
      EXPECT_TRUE(is_secretive_complete(rec.move_set, rec.sigma))
          << "round " << rec.round;
    }
  }
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, RandomMixesUpholdEveryInvariant) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 12; ++iter) {
    const FuzzConfig cfg = config_from(rng);
    const ProcBody body = random_mix_body(cfg.steps, cfg.regs);
    const auto tosses =
        std::make_shared<SeededTossAssignment>(cfg.toss_seed);

    System all_sys(cfg.n, body, tosses);
    const RunLog all_log = run_adversary(all_sys);
    ASSERT_TRUE(all_log.all_terminated);
    check_structure(all_log);

    const UpTracker up = UpTracker::over(all_log);
    EXPECT_TRUE(up.lemma51_holds()) << "seed iter " << iter;

    // Claims A.4/A.5.
    for (const RoundRecord& rec : all_log.rounds) {
      for (const OpRecord& op : rec.ops) {
        if (op.op.kind != OpKind::kSC) continue;
        if (op.result.flag) {
          EXPECT_TRUE(up.up_register(op.op.reg, rec.round - 1)
                          .subset_of(up.up_register(op.op.reg, rec.round)));
        }
        EXPECT_TRUE(up.up_register(op.op.reg, rec.round)
                        .subset_of(up.up_process(op.proc, rec.round)));
      }
    }

    // Lemma 5.2 for two random subsets per configuration.
    for (int sub = 0; sub < 2; ++sub) {
      ProcSet s(cfg.n);
      for (ProcId p = 0; p < cfg.n; ++p) {
        if (rng.next_bool()) s.insert(p);
      }
      if (s.empty()) s.insert(0);
      System s_sys(cfg.n, body, tosses);
      const RunLog s_log = run_s_run(s_sys, all_log, up, s);
      const IndistReport report =
          check_indistinguishability(all_log, s_log, up, s);
      EXPECT_TRUE(report.ok)
          << "iter " << iter << " subset " << s.to_string() << ": "
          << report.violations.front();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(0x1111u, 0x2222u, 0x3333u,
                                           0x4444u, 0x5555u, 0x6666u,
                                           0x7777u, 0x8888u));

}  // namespace
}  // namespace llsc
