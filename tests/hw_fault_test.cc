// Deterministic fault injection (hw/fault.h): spurious SC/VL failures,
// stalls, crash-stop, the HwExecutor watchdog, and cross-substrate replay.
//
// The load-bearing property throughout: every injection decision is a pure
// function of (plan.seed, process, per-process executed-op index), never of
// the interleaving — so a plan replays bit-for-bit on the simulator and on
// real threads, and the tests can assert exact counts, not distributions.
#include "hw/fault.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/lower_bound.h"
#include "hw/fault_scenarios.h"
#include "hw/hw_executor.h"
#include "hw/oversub_executor.h"
#include "memory/rmw.h"
#include "runtime/system.h"

namespace llsc {
namespace {

constexpr int kIncrements = 8;

// Lock-free fetch&increment: retry LL/SC until `kIncrements` stick.
SimTask retry_increment_body(ProcCtx ctx, ProcId, int) {
  std::uint64_t done = 0;
  while (done < kIncrements) {
    const Value cur = co_await ctx.ll(0);
    const std::uint64_t base = cur.is_nil() ? 0 : cur.as_u64();
    const ScResult r = co_await ctx.sc(0, Value::of_u64(base + 1));
    if (r.ok) ++done;
  }
  co_return Value::of_u64(done);
}

// One LL + one validate; returns 1 iff the validate failed.
SimTask ll_validate_body(ProcCtx ctx, ProcId, int) {
  (void)co_await ctx.ll(0);
  const VlResult v = co_await ctx.validate(0);
  co_return Value::of_u64(v.ok ? 0 : 1);
}

// kIncrements atomic increments on register 0 via RMW — each executed op
// is one complete increment, so the final register value must equal the
// total executed-op count whatever subset of processes crashed.
SimTask rmw_increment_body(ProcCtx ctx, ProcId, int) {
  static const auto inc = make_rmw("inc", [](const Value& v) {
    return Value::of_u64(v.is_nil() ? 1 : v.as_u64() + 1);
  });
  for (int k = 0; k < kIncrements; ++k) {
    (void)co_await ctx.rmw(0, inc);
  }
  co_return Value::of_u64(1);
}

SimTask spin_forever_body(ProcCtx ctx, ProcId, int) {
  for (;;) {
    (void)co_await ctx.ll(0);
  }
}

// --- spurious SC failures ------------------------------------------------

// A storm of forced SC failures must cost retries, never correctness: the
// retry loop still lands exactly kIncrements successful increments per
// process, and HwMemory is never written by a forced-failed SC.
TEST(HwFaultTest, SpuriousScStormKeepsRetryLoopExact) {
  const int n = 4;
  FaultPlan plan;
  plan.seed = 99;
  plan.sc_fail_rate = 0.6;
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, &retry_increment_body);
  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_TRUE(r.ok);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(r.results[static_cast<std::size_t>(p)].as_u64(),
              static_cast<std::uint64_t>(kIncrements));
  }
  EXPECT_GT(r.fault.injected_sc_failures, 0u);
  // Every shared op went through the injector.
  EXPECT_EQ(r.fault.ops, r.total_shared_ops);
}

TEST(HwFaultTest, VlFailuresAreInjectedAtTheConfiguredRate) {
  const int n = 3;
  FaultPlan plan;
  plan.seed = 4;
  plan.vl_fail_rate = 1.0;  // every validate loses its reservation
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, &ll_validate_body);
  EXPECT_EQ(r.status, RunStatus::kClean);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(r.results[static_cast<std::size_t>(p)].as_u64(), 1u);
  }
  EXPECT_EQ(r.fault.injected_vl_failures, static_cast<std::uint64_t>(n));
}

// --- crash-stop ----------------------------------------------------------

// Crash-stop lands exactly on an op boundary: the victim executes
// after_ops operations — not one more, not one fewer — and its result is
// nil while the survivors run to completion.
TEST(HwFaultTest, CrashStopsAtExactOpBoundaryOnHw) {
  const int n = 4;
  const ProcBody algo = fault_scenario("fixed_ll_sc");  // 16 ops/process
  FaultPlan plan;
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 5});
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kCrashed);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.crashed_procs, 1);
  EXPECT_EQ(r.proc_status[1], HwProcOutcome::kCrashed);
  EXPECT_EQ(r.shared_ops[1], 5u);
  EXPECT_TRUE(r.results[1].is_nil());
  for (const ProcId p : {0, 2, 3}) {
    EXPECT_EQ(r.proc_status[static_cast<std::size_t>(p)],
              HwProcOutcome::kDone);
    EXPECT_EQ(r.shared_ops[static_cast<std::size_t>(p)], 16u);
  }
  EXPECT_EQ(r.fault.crashes, 1u);
}

// Crashes never tear an operation: on the simulator (where memory is
// inspectable) the register ends at exactly the number of executed
// increments — a crash "mid-run" removed whole future ops, not half of
// one.
TEST(HwFaultTest, CrashStopLeavesNoTornRegisterState) {
  const int n = 3;
  FaultPlan plan;
  plan.crashes.push_back(CrashSpec{.proc = 0, .after_ops = 3});
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 5});
  System sys(n, &rmw_increment_body);
  FaultInjector injector(plan, n);
  sys.set_fault_injector(&injector);
  while (!sys.all_halted()) {
    for (ProcId p = 0; p < n; ++p) {
      if (!sys.process(p).halted()) sys.step(p);
    }
  }
  EXPECT_EQ(sys.num_crashed(), 2);
  EXPECT_EQ(sys.process(0).shared_ops(), 3u);
  EXPECT_EQ(sys.process(1).shared_ops(), 5u);
  EXPECT_EQ(sys.process(2).shared_ops(),
            static_cast<std::uint64_t>(kIncrements));
  const std::uint64_t executed = 3 + 5 + kIncrements;
  EXPECT_EQ(sys.memory().peek_value(0).as_u64(), executed);
}

// Crash-stop is a terminal outcome the executor can classify the moment
// the last worker unwinds: when EVERY process crash-stops, the run must
// report kCrashed promptly from the per-process outcomes, not sit out the
// watchdog's stagnation window and come back kHung. The progress timeout
// here is deliberately enormous — if the taxonomy leaned on it, the test
// would stall for minutes instead of finishing in milliseconds.
TEST(HwFaultTest, AllProcessesCrashStopReportsCrashedNotHungOnHw) {
  const int n = 4;
  const ProcBody algo = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  for (ProcId p = 0; p < n; ++p) {
    plan.crashes.push_back(CrashSpec{.proc = p, .after_ops = 2});
  }
  HwRunOptions options;
  options.fault = &plan;
  options.progress_timeout_ms = 600'000;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kCrashed);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.crashed_procs, n);
  EXPECT_EQ(r.hung_procs, 0);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(r.proc_status[static_cast<std::size_t>(p)],
              HwProcOutcome::kCrashed);
    EXPECT_EQ(r.shared_ops[static_cast<std::size_t>(p)], 2u);
  }
  EXPECT_EQ(r.fault.crashes, static_cast<std::uint64_t>(n));
}

// Same contract on the oversubscribed pool: a worker whose every resident
// coroutine crash-stopped drains its shard and exits; nothing waits for
// the watchdog.
TEST(HwFaultTest, AllProcessesCrashStopReportsCrashedNotHungOnOversub) {
  const int n = 6;
  const ProcBody algo = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  for (ProcId p = 0; p < n; ++p) {
    plan.crashes.push_back(CrashSpec{.proc = p, .after_ops = 3});
  }
  OversubRunOptions options;
  options.fault = &plan;
  options.progress_timeout_ms = 600'000;
  options.num_threads = 2;
  OversubscribedExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kCrashed);
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.crashed_procs, n);
  EXPECT_EQ(r.hung_procs, 0);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(r.shared_ops[static_cast<std::size_t>(p)], 3u);
  }
}

// --- crash recovery ------------------------------------------------------

// An amnesiac rejoin: the victim loses its coroutine frame, restarts the
// body from scratch (next incarnation), and the run finishes CLEAN — the
// crash is visible only in the FaultStats. The per-process op counter is
// cumulative across incarnations, so the victim's total is after_ops plus
// one full replay of the 16-op fixed body.
TEST(HwFaultTest, AmnesiacRecoveryRejoinsAndRunsClean) {
  const int n = 4;
  const ProcBody algo = fault_scenario("fixed_ll_sc");  // 16 ops/process
  FaultPlan plan;
  plan.stall_unit_ns = 1;  // keep the rejoin delay fast
  CrashSpec crash{.proc = 1, .after_ops = 5};
  crash.recovery.delay_units = 3;
  crash.recovery.max_restarts = 1;
  crash.recovery.amnesia = true;
  plan.crashes.push_back(crash);
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.proc_status[1], HwProcOutcome::kDone);
  EXPECT_EQ(r.shared_ops[1], 5u + 16u);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_EQ(r.fault.recoveries, 1u);
  EXPECT_GT(r.fault.recovery_units, 0u);
}

// Pause-and-resume (amnesia = false): the frame survives, the victim
// finishes its remaining ops in place — 16 total, not after_ops + 16 —
// and the run is clean.
TEST(HwFaultTest, PauseAndResumeRecoveryFinishesInPlace) {
  const int n = 4;
  const ProcBody algo = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  plan.stall_unit_ns = 1;
  CrashSpec crash{.proc = 2, .after_ops = 7};
  crash.recovery.delay_units = 2;
  crash.recovery.max_restarts = 1;
  crash.recovery.amnesia = false;
  plan.crashes.push_back(crash);
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kClean);
  EXPECT_EQ(r.proc_status[2], HwProcOutcome::kDone);
  EXPECT_EQ(r.shared_ops[2], 16u);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_EQ(r.fault.recoveries, 1u);
}

// Exhausted restarts stay terminal: with max_restarts = 1 the second
// crash of the same process has no recovery left, so the run reports
// kCrashed like any crash-stop.
TEST(HwFaultTest, ExhaustedRestartsReportCrashed) {
  const int n = 3;
  const ProcBody algo = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  plan.stall_unit_ns = 1;
  CrashSpec first{.proc = 0, .after_ops = 2};
  first.recovery.delay_units = 2;
  first.recovery.max_restarts = 1;
  first.recovery.amnesia = true;
  CrashSpec second{.proc = 0, .after_ops = 6};  // crash-stop, no recovery
  plan.crashes.push_back(first);
  plan.crashes.push_back(second);
  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, algo);
  EXPECT_EQ(r.status, RunStatus::kCrashed);
  EXPECT_EQ(r.proc_status[0], HwProcOutcome::kCrashed);
  EXPECT_EQ(r.shared_ops[0], 6u);
  EXPECT_EQ(r.fault.crashes, 2u);
  EXPECT_EQ(r.fault.recoveries, 1u);
}

// --- cross-substrate replay ----------------------------------------------

// The acceptance criterion in miniature: one plan, one toss seed, both
// substrates — identical taxonomy and identical per-process op counts.
TEST(HwFaultTest, PlanReplaysBitForBitAcrossSubstrates) {
  const int n = 4;
  const std::uint64_t toss_seed = 42;
  const ProcBody algo = fault_scenario("fixed_ll_sc");
  FaultPlan plan;
  plan.seed = 7;
  plan.sc_fail_rate = 0.5;
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 3});

  const McSampleOutcome sim =
      run_mc_sample(algo, n, toss_seed, AdversaryOptions{}, &plan);
  EXPECT_EQ(sim.status, RunStatus::kCrashed);

  HwRunOptions options;
  options.seed = toss_seed;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult hw = exec.run(n, algo);
  EXPECT_EQ(hw.status, sim.status);
  ASSERT_EQ(hw.shared_ops.size(), sim.proc_ops.size());
  for (std::size_t p = 0; p < sim.proc_ops.size(); ++p) {
    EXPECT_EQ(hw.shared_ops[p], sim.proc_ops[p]) << "process " << p;
  }
}

// Stall decisions are part of the deterministic stream too: on a
// schedule-independent workload both substrates roll the identical stall
// count (the simulator only counts them; hw additionally sleeps).
TEST(HwFaultTest, StallDecisionsMatchAcrossSubstrates) {
  const int n = 3;
  const ProcBody algo = fault_scenario("fixed_swap");  // 8 ops/process
  FaultPlan plan;
  plan.seed = 21;
  plan.stall_rate = 0.5;
  plan.max_stall_units = 4;
  plan.stall_unit_ns = 1;  // keep the hw run fast

  System sys(n, algo);
  FaultInjector sim_injector(plan, n);
  sys.set_fault_injector(&sim_injector);
  while (!sys.all_halted()) {
    for (ProcId p = 0; p < n; ++p) {
      if (!sys.process(p).halted()) sys.step(p);
    }
  }

  HwRunOptions options;
  options.fault = &plan;
  HwExecutor exec(options);
  const HwRunResult hw = exec.run(n, algo);
  EXPECT_EQ(hw.status, RunStatus::kClean);
  EXPECT_GT(hw.fault.stalls, 0u);
  EXPECT_EQ(hw.fault.stalls, sim_injector.stats().stalls);
  EXPECT_EQ(hw.fault.stall_units, sim_injector.stats().stall_units);
  EXPECT_EQ(hw.fault.ops, sim_injector.stats().ops);
}

// --- watchdog ------------------------------------------------------------

TEST(HwFaultTest, WatchdogCancelsHungRunWithTaxonomy) {
  const int n = 2;
  HwRunOptions options;
  // Tight deadline so the watchdog fires fast; scaled because sanitized
  // CI jobs (LLSC_TIMEOUT_SCALE=4 under TSan) run several times slower.
  options.timeout_ms = scale_timeout_ms(50);
  options.watchdog_poll_ms = 2;
  HwExecutor exec(options);
  const HwRunResult r = exec.run(n, &spin_forever_body);
  EXPECT_EQ(r.status, RunStatus::kHung);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.hung_procs, n);
  for (ProcId p = 0; p < n; ++p) {
    EXPECT_EQ(r.proc_status[static_cast<std::size_t>(p)],
              HwProcOutcome::kHung);
    EXPECT_TRUE(r.results[static_cast<std::size_t>(p)].is_nil());
  }
}

// --- plan derivation & JSON ----------------------------------------------

TEST(HwFaultTest, DeriveSamplePlanIsPureAndPreservesRates) {
  FaultPlan base;
  base.seed = 5;
  base.sc_fail_rate = 0.25;
  base.crashes.push_back(CrashSpec{.proc = 2, .after_ops = 7});
  const FaultPlan a = derive_sample_plan(base, 100);
  const FaultPlan b = derive_sample_plan(base, 100);
  const FaultPlan c = derive_sample_plan(base, 101);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_EQ(a.sc_fail_rate, base.sc_fail_rate);
  ASSERT_EQ(a.crashes.size(), 1u);
  EXPECT_EQ(a.crashes[0], base.crashes[0]);
}

TEST(HwFaultTest, FaultPlanJsonRoundTripsExactly) {
  FaultPlan plan;
  plan.seed = 0xDEADBEEFCAFEF00Dull;  // must survive as a u64, not a double
  plan.sc_fail_rate = 0.125;
  plan.vl_fail_rate = 0.5;
  plan.stall_rate = 0.75;
  plan.max_stall_units = 9;
  plan.stall_unit_ns = 250;
  plan.crashes.push_back(CrashSpec{.proc = 3, .after_ops = 1ull << 40});
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(plan.to_json(), &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
}

TEST(HwFaultTest, FaultArtifactJsonRoundTripsExactly) {
  FaultArtifact artifact;
  artifact.scenario = "fixed_ll_sc";
  artifact.n = 4;
  artifact.sample_index = 17;
  artifact.toss_seed = 0xFFFFFFFFFFFFFFFFull;
  artifact.max_rounds = 1 << 20;
  artifact.status = RunStatus::kCrashed;
  artifact.proc_ops = {16, 3, 16, 16};
  artifact.plan.seed = 7;
  artifact.plan.sc_fail_rate = 0.5;
  artifact.plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 3});
  FaultArtifact parsed;
  std::string error;
  ASSERT_TRUE(FaultArtifact::from_json(artifact.to_json(), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.scenario, artifact.scenario);
  EXPECT_EQ(parsed.n, artifact.n);
  EXPECT_EQ(parsed.sample_index, artifact.sample_index);
  EXPECT_EQ(parsed.toss_seed, artifact.toss_seed);
  EXPECT_EQ(parsed.max_rounds, artifact.max_rounds);
  EXPECT_EQ(parsed.status, artifact.status);
  EXPECT_EQ(parsed.proc_ops, artifact.proc_ops);
  EXPECT_EQ(parsed.plan, artifact.plan);
}

TEST(HwFaultTest, RecoverySpecJsonRoundTripsExactly) {
  FaultPlan plan;
  plan.seed = 11;
  CrashSpec rejoins{.proc = 0, .after_ops = 4};
  rejoins.recovery.delay_units = 7;
  rejoins.recovery.max_restarts = 2;
  rejoins.recovery.amnesia = true;
  CrashSpec stays_down{.proc = 2, .after_ops = 9};
  plan.crashes.push_back(rejoins);
  plan.crashes.push_back(stays_down);
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(plan.to_json(), &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
}

// Old artifacts predate the optional "recovery" object. A plan whose
// crashes are all crash-stop must serialize to the pre-recovery schema —
// no "recovery" key at all — and re-serialize byte for byte, so frozen
// artifacts keep replaying unchanged.
TEST(HwFaultTest, CrashStopPlansKeepPreRecoverySchemaByteForByte) {
  FaultPlan plan;
  plan.seed = 3;
  plan.sc_fail_rate = 0.25;
  plan.crashes.push_back(CrashSpec{.proc = 1, .after_ops = 3});
  const std::string json = plan.to_json();
  EXPECT_EQ(json.find("recovery"), std::string::npos) << json;
  FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(FaultPlan::from_json(json, &parsed, &error)) << error;
  EXPECT_EQ(parsed, plan);
  EXPECT_EQ(parsed.to_json(), json);
}

// Malformed recovery objects fail with the offending FIELD in the error,
// not a generic parse failure — the replay tooling surfaces these
// verbatim (tools/replay_fault.py).
TEST(HwFaultTest, MalformedRecoveryJsonNamesTheOffendingField) {
  // Splice a broken crash entry into an otherwise-valid serialized plan,
  // so the parse fails on the recovery field under test and nothing else.
  const auto plan_with_crash_entry = [](const std::string& entry) {
    FaultPlan valid;
    std::string json = valid.to_json();
    const std::string empty = "\"crashes\": []";
    const std::string::size_type at = json.find(empty);
    EXPECT_NE(at, std::string::npos) << json;
    return json.replace(at, empty.size(), "\"crashes\": [" + entry + "]");
  };
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json(
      plan_with_crash_entry(
          "{\"proc\": 0, \"after_ops\": 1, \"recovery\": 5}"),
      &plan, &error));
  EXPECT_NE(error.find("recovery"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(FaultPlan::from_json(
      plan_with_crash_entry("{\"proc\": 0, \"after_ops\": 1, "
                            "\"recovery\": {\"max_restarts\": 1}}"),
      &plan, &error));
  EXPECT_NE(error.find("delay_units"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(FaultPlan::from_json(
      plan_with_crash_entry("{\"proc\": 0, \"after_ops\": 1, "
                            "\"recovery\": {\"delay_units\": 2, "
                            "\"max_restarts\": 1, \"amnesia\": 7}}"),
      &plan, &error));
  EXPECT_NE(error.find("amnesia"), std::string::npos) << error;
}

TEST(HwFaultTest, MalformedJsonIsRejectedWithAnError) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::from_json("{\"seed\": }", &plan, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  FaultArtifact artifact;
  EXPECT_FALSE(FaultArtifact::from_json("[1,2,3]", &artifact, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace llsc
