// Tests for memory/value.h: nil semantics, typed payloads, equality, hash.
#include "memory/value.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bigint.h"

namespace llsc {
namespace {

struct Point {
  int x = 0;
  int y = 0;
  bool operator==(const Point&) const = default;
  std::string to_string() const {
    return "(" + std::to_string(x) + "," + std::to_string(y) + ")";
  }
};

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v.to_string(), "nil");
  EXPECT_EQ(v.hash(), 0u);
  EXPECT_EQ(v, Value{});
}

TEST(Value, U64RoundTrip) {
  const Value v = Value::of_u64(42);
  EXPECT_FALSE(v.is_nil());
  EXPECT_TRUE(v.holds_u64());
  EXPECT_EQ(v.as_u64(), 42u);
  EXPECT_EQ(v.to_string(), "42");
}

TEST(Value, BigRoundTrip) {
  const Value v = Value::of_big(BigInt::pow2(100));
  EXPECT_TRUE(v.holds_big());
  EXPECT_FALSE(v.holds_u64());
  EXPECT_EQ(v.as_big(), BigInt::pow2(100));
}

TEST(Value, StringRoundTrip) {
  const Value v = Value::of_string("hello");
  EXPECT_EQ(v.as_string(), "hello");
  EXPECT_EQ(v.to_string(), "\"hello\"");
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::of_u64(7), Value::of_u64(7));
  EXPECT_NE(Value::of_u64(7), Value::of_u64(8));
  EXPECT_NE(Value::of_u64(7), Value{});
  // Same number under different payload types is NOT equal.
  EXPECT_NE(Value::of_u64(7), Value::of_big(BigInt(7)));
}

TEST(Value, EqualHashesForEqualValues) {
  EXPECT_EQ(Value::of_u64(99).hash(), Value::of_u64(99).hash());
  EXPECT_EQ(Value::of_string("x").hash(), Value::of_string("x").hash());
}

TEST(Value, CustomPayload) {
  const Value a = Value::of(Point{1, 2});
  const Value b = Value::of(Point{1, 2});
  const Value c = Value::of(Point{3, 4});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string(), "(1,2)");
  ASSERT_NE(a.get_if<Point>(), nullptr);
  EXPECT_EQ(a.get_if<Point>()->x, 1);
  EXPECT_EQ(a.get_if<BigInt>(), nullptr);
}

TEST(Value, CopyIsCheapAliasing) {
  const Value a = Value::of_string(std::string(10000, 'x'));
  const Value b = a;  // shares the payload
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.as_string(), &b.as_string());
}

TEST(Value, GetIfOnNil) {
  Value v;
  EXPECT_EQ(v.get_if<Point>(), nullptr);
  EXPECT_FALSE(v.holds_u64());
}

}  // namespace
}  // namespace llsc
